package imc_test

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI executes one of the repository's commands via `go run`,
// returning combined output. These integration tests exercise the real
// binaries end to end; skip them with -short.
func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, buf.String())
	}
	return buf.String()
}

func TestCLIGengraphStats(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	out := runCLI(t, "./cmd/gengraph", "-dataset", "wikivote", "-scale", "0.02", "-stats")
	for _, want := range []string{"dataset=wikivote", "nodes=142", "wcc="} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIGraphRoundTripThroughImcrun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	edge := filepath.Join(dir, "g.txt")
	comm := filepath.Join(dir, "comm.json")
	runCLI(t, "./cmd/gengraph", "-dataset", "facebook", "-scale", "0.05", "-out", edge)
	out := runCLI(t, "./cmd/imcrun",
		"-graph", edge, "-alg", "MAF", "-k", "3",
		"-maxsamples", "4096", "-save-communities", comm)
	if !strings.Contains(out, "algorithm  MAF") || !strings.Contains(out, "benefit") {
		t.Fatalf("imcrun output:\n%s", out)
	}
	// Reload the saved partition on a second run.
	out = runCLI(t, "./cmd/imcrun",
		"-graph", edge, "-alg", "HBC", "-k", "3",
		"-maxsamples", "4096", "-communities", comm)
	if !strings.Contains(out, "algorithm  HBC") {
		t.Fatalf("imcrun with -communities output:\n%s", out)
	}
}

func TestCLIBinaryGraphFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.imcg")
	runCLI(t, "./cmd/gengraph", "-dataset", "facebook", "-scale", "0.05", "-binary", "-out", bin)
	out := runCLI(t, "./cmd/imcrun",
		"-graph", bin, "-alg", "KS", "-k", "3", "-maxsamples", "4096")
	if !strings.Contains(out, "algorithm  KS") {
		t.Fatalf("imcrun on binary graph:\n%s", out)
	}
}

func TestCLIImcbenchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	out := runCLI(t, "./cmd/imcbench", "-experiment", "table1", "-scale", "0.02")
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "facebook") {
		t.Fatalf("imcbench table1 output:\n%s", out)
	}
}
