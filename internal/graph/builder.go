package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoNodes is returned when building a graph with a non-positive node
// count.
var ErrNoNodes = errors.New("graph: node count must be positive")

// Builder accumulates edges and produces an immutable Graph. Duplicate
// (from, to) pairs are merged keeping the last weight; self-loops are
// dropped (they never affect diffusion).
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records the directed edge u->v with the given weight. Invalid
// endpoints and self-loops are ignored; weights are clamped to [0, 1].
func (b *Builder) AddEdge(u, v NodeID, w float64) {
	if u == v || u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return
	}
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	b.edges = append(b.edges, Edge{From: u, To: v, Weight: w})
}

// AddUndirected records both u->v and v->u with the given weight.
func (b *Builder) AddUndirected(u, v NodeID, w float64) {
	b.AddEdge(u, v, w)
	b.AddEdge(v, u, w)
}

// Build finalizes the graph. The builder can be reused afterwards but
// shares no state with the returned graph.
func (b *Builder) Build() (*Graph, error) {
	if b.n <= 0 {
		return nil, ErrNoNodes
	}
	if b.n >= 1<<31 {
		return nil, fmt.Errorf("graph: node count %d exceeds NodeID range", b.n)
	}
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	// Deduplicate, keeping the last-added weight for each pair. Because
	// sort.Slice is not stable across equal keys we re-scan b.edges order:
	// simplest correct rule here is "last write wins", so overwrite during
	// the dedup pass using a map from pair to final weight.
	if len(edges) > 1 {
		dedup := edges[:0]
		for _, e := range edges {
			if len(dedup) > 0 {
				last := &dedup[len(dedup)-1]
				if last.From == e.From && last.To == e.To {
					last.Weight = e.Weight
					continue
				}
			}
			dedup = append(dedup, e)
		}
		edges = dedup
	}
	m := len(edges)

	g := &Graph{
		n:      b.n,
		outOff: make([]int32, b.n+1),
		outTo:  make([]NodeID, m),
		outW:   make([]float64, m),
		outEID: make([]EdgeID, m),
		inOff:  make([]int32, b.n+1),
		inFrom: make([]NodeID, m),
		inW:    make([]float64, m),
		inEID:  make([]EdgeID, m),
	}

	// Forward CSR directly from the sorted order; edge IDs follow it.
	for _, e := range edges {
		g.outOff[e.From+1]++
		g.inOff[e.To+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	for i, e := range edges {
		g.outTo[i] = e.To
		g.outW[i] = e.Weight
		g.outEID[i] = EdgeID(i)
	}
	// Reverse CSR via a counting pass.
	cursor := make([]int32, b.n)
	copy(cursor, g.inOff[:b.n])
	for i, e := range edges {
		pos := cursor[e.To]
		cursor[e.To]++
		g.inFrom[pos] = e.From
		g.inW[pos] = e.Weight
		g.inEID[pos] = EdgeID(i)
	}
	return g, nil
}

// FromEdges is a convenience constructor building a graph with n nodes
// from an edge slice.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.From, e.To, e.Weight)
	}
	return b.Build()
}
