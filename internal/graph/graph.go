// Package graph provides the directed weighted graph substrate for the
// IMC library.
//
// Graphs are stored in compressed sparse row (CSR) form in both
// orientations: the forward adjacency drives Independent Cascade
// simulation, and the reverse adjacency drives RIC / RIS sampling, which
// walk influence paths backwards. Every directed edge carries a global
// edge ID shared by both orientations so that samplers can keep one
// live/blocked state entry per edge (paper Alg. 1's st[] array).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node in [0, NumNodes()).
type NodeID = int32

// EdgeID identifies a directed edge in [0, NumEdges()).
type EdgeID = int32

// Edge is one weighted directed edge u->v: u influences v with
// probability Weight.
type Edge struct {
	From   NodeID
	To     NodeID
	Weight float64
}

// Graph is an immutable directed weighted graph. Build one with a
// Builder; the zero value is an empty graph.
type Graph struct {
	n int

	// Forward CSR: out-edges of u are outTo[outOff[u]:outOff[u+1]].
	outOff []int32
	outTo  []NodeID
	outW   []float64
	outEID []EdgeID

	// Reverse CSR: in-edges of v are inFrom[inOff[v]:inOff[v+1]].
	inOff  []int32
	inFrom []NodeID
	inW    []float64
	inEID  []EdgeID
}

// NumNodes returns the node count n.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the directed edge count m.
func (g *Graph) NumEdges() int { return len(g.outTo) }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outOff[u+1] - g.outOff[u])
}

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// OutNeighbors returns the targets and weights of u's out-edges. The
// returned slices alias internal storage and must not be modified.
func (g *Graph) OutNeighbors(u NodeID) ([]NodeID, []float64) {
	lo, hi := g.outOff[u], g.outOff[u+1]
	return g.outTo[lo:hi], g.outW[lo:hi]
}

// InNeighbors returns the sources, weights, and global edge IDs of v's
// in-edges. The returned slices alias internal storage and must not be
// modified.
func (g *Graph) InNeighbors(v NodeID) ([]NodeID, []float64, []EdgeID) {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inFrom[lo:hi], g.inW[lo:hi], g.inEID[lo:hi]
}

// OutEdgeIDs returns the global edge IDs of u's out-edges, parallel to
// OutNeighbors.
func (g *Graph) OutEdgeIDs(u NodeID) []EdgeID {
	lo, hi := g.outOff[u], g.outOff[u+1]
	return g.outEID[lo:hi]
}

// Edges materializes all edges in forward-CSR order, indexed by EdgeID.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := NodeID(0); int(u) < g.n; u++ {
		tos, ws := g.OutNeighbors(u)
		for i, v := range tos {
			out = append(out, Edge{From: u, To: v, Weight: ws[i]})
		}
	}
	return out
}

// Weight returns w(u, v), or 0 if the edge does not exist.
func (g *Graph) Weight(u, v NodeID) float64 {
	tos, ws := g.OutNeighbors(u)
	for i, t := range tos {
		if t == v {
			return ws[i]
		}
	}
	return 0
}

// HasEdge reports whether the directed edge u->v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	tos, _ := g.OutNeighbors(u)
	for _, t := range tos {
		if t == v {
			return true
		}
	}
	return false
}

// Stats summarizes graph shape for reports and Table I.
type Stats struct {
	Nodes        int
	Edges        int
	MaxOutDegree int
	MaxInDegree  int
	AvgDegree    float64
	// MedianOutDegree and P99OutDegree summarize the out-degree
	// distribution: their ratio to AvgDegree reveals tail heaviness.
	MedianOutDegree int
	P99OutDegree    int
}

// ComputeStats scans the graph once and returns its Stats.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.n, Edges: g.NumEdges()}
	degs := make([]int, g.n)
	for u := NodeID(0); int(u) < g.n; u++ {
		d := g.OutDegree(u)
		degs[u] = d
		if d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if di := g.InDegree(u); di > s.MaxInDegree {
			s.MaxInDegree = di
		}
	}
	if g.n > 0 {
		s.AvgDegree = float64(g.NumEdges()) / float64(g.n)
		sort.Ints(degs)
		s.MedianOutDegree = degs[g.n/2]
		p99 := (99 * g.n) / 100
		if p99 >= g.n {
			p99 = g.n - 1
		}
		s.P99OutDegree = degs[p99]
	}
	return s
}

// String renders a short description such as "graph(n=747, m=60050)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.n, g.NumEdges())
}
