package graph

// KCore computes the k-core decomposition of the graph's undirected
// projection: core[v] is the largest k such that v belongs to a
// subgraph in which every node has (undirected) degree ≥ k. Computed
// by the classic Matula–Beck peeling in O(n + m). Core numbers
// summarize how deep in the dense nucleus each node sits — a cheap
// structural signal for analyzing which nodes the solvers favor.
func KCore(g *Graph) []int32 {
	n := g.NumNodes()
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		d := int32(g.OutDegree(NodeID(v)) + g.InDegree(NodeID(v)))
		deg[v] = d
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Bucket sort nodes by degree.
	binStart := make([]int32, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for i := int32(1); i <= maxDeg+1; i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int32, n)   // node -> index in order
	order := make([]int32, n) // peeling order
	cursor := make([]int32, maxDeg+1)
	copy(cursor, binStart[:maxDeg+1])
	for v := 0; v < n; v++ {
		p := cursor[deg[v]]
		cursor[deg[v]]++
		order[p] = int32(v)
		pos[v] = p
	}

	core := make([]int32, n)
	copy(core, deg)
	// Peel in degree order, lowering neighbors as we go.
	for i := 0; i < n; i++ {
		v := order[i]
		lowerNeighbor := func(u NodeID) {
			if core[u] > core[v] {
				// Swap u toward the front of its bucket, then shrink it.
				du := core[u]
				pu := pos[u]
				pw := binStart[du]
				w := order[pw]
				if u != w {
					order[pu], order[pw] = w, int32(u)
					pos[u], pos[w] = pw, pu
				}
				binStart[du]++
				core[u]--
			}
		}
		tos, _ := g.OutNeighbors(v)
		for _, u := range tos {
			lowerNeighbor(u)
		}
		froms, _, _ := g.InNeighbors(v)
		for _, u := range froms {
			lowerNeighbor(u)
		}
	}
	return core
}

// MaxCore returns the degeneracy: the largest core number.
func MaxCore(core []int32) int32 {
	best := int32(0)
	for _, c := range core {
		if c > best {
			best = c
		}
	}
	return best
}
