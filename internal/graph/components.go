package graph

// Components computes connectivity structure: weakly and strongly
// connected components. The dataset reports use WCC counts (as SNAP's
// own statistics pages do), and the DkS reduction's correctness rests
// on copy classes being strongly connected.

// WeaklyConnectedComponents labels each node with a component ID in
// [0, count) ignoring edge direction, and returns the labels and the
// component count.
func WeaklyConnectedComponents(g *Graph) ([]int32, int) {
	n := g.NumNodes()
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	queue := make([]NodeID, 0, n)
	next := int32(0)
	for start := 0; start < n; start++ {
		if label[start] != -1 {
			continue
		}
		label[start] = next
		queue = append(queue[:0], NodeID(start))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			tos, _ := g.OutNeighbors(u)
			for _, v := range tos {
				if label[v] == -1 {
					label[v] = next
					queue = append(queue, v)
				}
			}
			froms, _, _ := g.InNeighbors(u)
			for _, v := range froms {
				if label[v] == -1 {
					label[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return label, int(next)
}

// StronglyConnectedComponents labels each node with its SCC ID in
// [0, count) using an iterative Tarjan algorithm (safe for deep
// graphs), and returns the labels and the SCC count. IDs are assigned
// in reverse topological order of the condensation.
func StronglyConnectedComponents(g *Graph) ([]int32, int) {
	n := g.NumNodes()
	const unvisited = -1
	var (
		index   = make([]int32, n)
		lowlink = make([]int32, n)
		onStack = make([]bool, n)
		label   = make([]int32, n)
		stack   = make([]NodeID, 0, n)
		counter int32
		nextSCC int32
	)
	for i := range index {
		index[i] = unvisited
		label[i] = -1
	}

	// Explicit DFS frames: node plus the offset into its out-edge list.
	type frame struct {
		node NodeID
		edge int32
	}
	frames := make([]frame, 0, 64)

	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{node: NodeID(start)})
		index[start] = counter
		lowlink[start] = counter
		counter++
		stack = append(stack, NodeID(start))
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			u := f.node
			tos, _ := g.OutNeighbors(u)
			advanced := false
			for int(f.edge) < len(tos) {
				v := tos[f.edge]
				f.edge++
				if index[v] == unvisited {
					index[v] = counter
					lowlink[v] = counter
					counter++
					stack = append(stack, v)
					onStack[v] = true
					frames = append(frames, frame{node: v})
					advanced = true
					break
				}
				if onStack[v] && index[v] < lowlink[u] {
					lowlink[u] = index[v]
				}
			}
			if advanced {
				continue
			}
			// u is finished: pop its SCC if it is a root.
			if lowlink[u] == index[u] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					label[w] = nextSCC
					if w == u {
						break
					}
				}
				nextSCC++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if lowlink[u] < lowlink[parent] {
					lowlink[parent] = lowlink[u]
				}
			}
		}
	}
	return label, int(nextSCC)
}

// LargestComponentSize returns the node count of the biggest component
// given a labeling from either components function.
func LargestComponentSize(label []int32, count int) int {
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, c := range label {
		if c >= 0 {
			sizes[c]++
		}
	}
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return best
}
