package graph

import (
	"testing"
	"testing/quick"

	"imc/internal/xrand"
)

func TestKCoreCliqueWithTail(t *testing.T) {
	// A 4-clique (undirected) with a pendant path: clique nodes are
	// 3-core, path nodes 1-core.
	b := NewBuilder(6)
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddUndirected(i, j, 1)
		}
	}
	b.AddUndirected(3, 4, 1)
	b.AddUndirected(4, 5, 1)
	g := mustBuild(t, b)
	core := KCore(g)
	for v := 0; v < 4; v++ {
		// Each undirected pair is 2 arcs, so degrees double: the clique
		// core is 6 in arc terms (3 undirected neighbors × 2).
		if core[v] != 6 {
			t.Fatalf("clique node %d core = %d, want 6", v, core[v])
		}
	}
	if core[5] != 2 {
		t.Fatalf("pendant node core = %d, want 2", core[5])
	}
	if MaxCore(core) != 6 {
		t.Fatalf("degeneracy = %d", MaxCore(core))
	}
}

func TestKCoreEmptyAndIsolated(t *testing.T) {
	g := mustBuild(t, NewBuilder(3))
	core := KCore(g)
	for v, c := range core {
		if c != 0 {
			t.Fatalf("isolated node %d core = %d", v, c)
		}
	}
	if MaxCore(core) != 0 {
		t.Fatal("degeneracy of empty graph")
	}
}

// Property: the k-core invariant — within the subgraph induced by
// {v : core[v] ≥ k}, every node has degree ≥ k (checked for k =
// degeneracy, the strictest level).
func TestQuickKCoreInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 8 + rng.Intn(20)
		b := NewBuilder(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddUndirected(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), 1)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		core := KCore(g)
		k := MaxCore(core)
		if k == 0 {
			return true
		}
		inCore := make([]bool, n)
		for v, c := range core {
			inCore[v] = c >= k
		}
		for v := 0; v < n; v++ {
			if !inCore[v] {
				continue
			}
			d := int32(0)
			tos, _ := g.OutNeighbors(NodeID(v))
			for _, u := range tos {
				if inCore[u] {
					d++
				}
			}
			froms, _, _ := g.InNeighbors(NodeID(v))
			for _, u := range froms {
				if inCore[u] {
					d++
				}
			}
			if d < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: core numbers never exceed degree and are monotone under
// the peeling (no core number exceeds the degeneracy).
func TestQuickKCoreBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(15)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), 1)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		core := KCore(g)
		degeneracy := MaxCore(core)
		for v := 0; v < n; v++ {
			d := int32(g.OutDegree(NodeID(v)) + g.InDegree(NodeID(v)))
			if core[v] > d || core[v] > degeneracy || core[v] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
