package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder) *Graph {
	t.Helper()
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func triangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.25)
	b.AddEdge(2, 0, 1)
	return mustBuild(t, b)
}

func TestBasicShape(t *testing.T) {
	g := triangle(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %s", g)
	}
	if g.OutDegree(0) != 1 || g.InDegree(0) != 1 {
		t.Fatalf("degrees of node 0: out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if w := g.Weight(1, 2); w != 0.25 {
		t.Fatalf("Weight(1,2) = %g", w)
	}
	if g.Weight(2, 1) != 0 {
		t.Fatal("nonexistent edge has nonzero weight")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge mismatch")
	}
}

func TestForwardReverseConsistency(t *testing.T) {
	g := triangle(t)
	// Every forward edge must appear in the reverse CSR with the same
	// weight and edge ID.
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		tos, ws := g.OutNeighbors(u)
		eids := g.OutEdgeIDs(u)
		for i, v := range tos {
			froms, iws, ieids := g.InNeighbors(v)
			found := false
			for j, f := range froms {
				if f == u && ieids[j] == eids[i] {
					if iws[j] != ws[i] {
						t.Fatalf("weight mismatch on edge %d", eids[i])
					}
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from reverse CSR", u, v)
			}
		}
	}
}

func TestDuplicateLastWins(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 0.2)
	b.AddEdge(0, 1, 0.9)
	g := mustBuild(t, b)
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edge not merged: m=%d", g.NumEdges())
	}
	if w := g.Weight(0, 1); w != 0.9 {
		t.Fatalf("want last weight 0.9, got %g", w)
	}
}

func TestSelfLoopsAndInvalidDropped(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1, 0.5)
	b.AddEdge(-1, 0, 0.5)
	b.AddEdge(0, 5, 0.5)
	g := mustBuild(t, b)
	if g.NumEdges() != 0 {
		t.Fatalf("invalid edges kept: m=%d", g.NumEdges())
	}
}

func TestWeightsClamped(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 1.5)
	g := mustBuild(t, b)
	if w := g.Weight(0, 1); w != 1 {
		t.Fatalf("weight not clamped: %g", w)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Fatal("want error for zero nodes")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := triangle(t)
	g2, err := FromEdges(3, g.Edges())
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("Edges round trip lost edges")
	}
	for _, e := range g.Edges() {
		if g2.Weight(e.From, e.To) != e.Weight {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestWeightedCascade(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 3, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 0, 1)
	g := ApplyWeights(mustBuild(t, b), WeightedCascade, 0, 0)
	for _, u := range []NodeID{0, 1, 2} {
		if w := g.Weight(u, 3); w != 1.0/3 {
			t.Fatalf("w(%d,3) = %g, want 1/3", u, w)
		}
	}
	if w := g.Weight(3, 0); w != 1 {
		t.Fatalf("w(3,0) = %g, want 1 (in-degree 1)", w)
	}
}

func TestApplyWeightsDoesNotMutate(t *testing.T) {
	g := triangle(t)
	_ = ApplyWeights(g, ConstantWeight, 0.123, 0)
	if g.Weight(0, 1) != 0.5 {
		t.Fatal("ApplyWeights mutated the input graph")
	}
}

func TestConstantAndTrivalency(t *testing.T) {
	g := triangle(t)
	c := ApplyWeights(g, ConstantWeight, 0.07, 0)
	for _, e := range c.Edges() {
		if e.Weight != 0.07 {
			t.Fatalf("constant weight %g", e.Weight)
		}
	}
	tri := ApplyWeights(g, Trivalency, 0, 99)
	for _, e := range tri.Edges() {
		if e.Weight != 0.1 && e.Weight != 0.01 && e.Weight != 0.001 {
			t.Fatalf("trivalency weight %g", e.Weight)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := triangle(t)
	s := g.ComputeStats()
	if s.Nodes != 3 || s.Edges != 3 || s.MaxOutDegree != 1 || s.MaxInDegree != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgDegree != 1 {
		t.Fatalf("avg degree = %g", s.AvgDegree)
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment
0 1 0.5
1 2
% another comment
2 0 0.75
`
	g, err := ReadEdgeList(strings.NewReader(in), true)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %s", g)
	}
	if g.Weight(1, 2) != 1 {
		t.Fatal("default weight should be 1")
	}
	if g.Weight(0, 1) != 0.5 {
		t.Fatal("explicit weight lost")
	}
}

func TestReadEdgeListUndirected(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected load missing a direction")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{"abc 1\n", "1 xyz\n", "1\n", "-1 2\n", "0 1 notaweight\n", ""}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c), true); err == nil {
			t.Fatalf("input %q: want error", c)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if g2.Weight(e.From, e.To) != e.Weight {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

// Property: for random edge sets, out-degree sums and in-degree sums
// both equal the edge count, and every reverse edge matches a forward
// edge.
func TestQuickDegreeConservation(t *testing.T) {
	f := func(pairs []uint16) bool {
		n := 40
		b := NewBuilder(n)
		for _, p := range pairs {
			u := NodeID(int(p>>8) % n)
			v := NodeID(int(p&0xff) % n)
			b.AddEdge(u, v, 0.5)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		outSum, inSum := 0, 0
		for u := NodeID(0); int(u) < n; u++ {
			outSum += g.OutDegree(u)
			inSum += g.InDegree(u)
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
