package graph

import "imc/internal/xrand"

// WeightScheme assigns influence probabilities to edges after the graph
// topology is fixed. The paper's experiments use the weighted-cascade
// scheme: w(u, v) = 1 / d_in(v).
type WeightScheme int

const (
	// WeightedCascade sets w(u,v) = 1/d_in(v), the scheme used in the
	// paper's evaluation (Section VI-A).
	WeightedCascade WeightScheme = iota + 1
	// ConstantWeight sets every edge to the same probability.
	ConstantWeight
	// Trivalency draws each weight uniformly from {0.1, 0.01, 0.001},
	// a standard alternative in the IM literature.
	Trivalency
)

// ApplyWeights returns a copy of g with edge weights reassigned by the
// scheme. p is the probability for ConstantWeight (ignored otherwise);
// seed drives Trivalency.
func ApplyWeights(g *Graph, scheme WeightScheme, p float64, seed uint64) *Graph {
	out := cloneTopology(g)
	switch scheme {
	case WeightedCascade:
		for v := NodeID(0); int(v) < out.n; v++ {
			d := out.InDegree(v)
			if d == 0 {
				continue
			}
			w := 1.0 / float64(d)
			lo, hi := out.inOff[v], out.inOff[v+1]
			for i := lo; i < hi; i++ {
				out.inW[i] = w
				out.outW[indexOfEdge(out, out.inEID[i])] = w
			}
		}
	case ConstantWeight:
		for i := range out.outW {
			out.outW[i] = p
		}
		for i := range out.inW {
			out.inW[i] = p
		}
	case Trivalency:
		rng := xrand.New(seed)
		vals := [3]float64{0.1, 0.01, 0.001}
		perEdge := make([]float64, out.NumEdges())
		for i := range perEdge {
			perEdge[i] = vals[rng.Intn(3)]
		}
		for i := range out.outW {
			out.outW[i] = perEdge[out.outEID[i]]
		}
		for i := range out.inW {
			out.inW[i] = perEdge[out.inEID[i]]
		}
	}
	return out
}

// indexOfEdge maps a global edge ID back to its forward-CSR slot. Edge
// IDs are assigned in forward-CSR order, so the mapping is the identity.
func indexOfEdge(_ *Graph, id EdgeID) int { return int(id) }

// cloneTopology deep-copies a graph so weight reassignment never mutates
// the input.
func cloneTopology(g *Graph) *Graph {
	out := &Graph{
		n:      g.n,
		outOff: append([]int32(nil), g.outOff...),
		outTo:  append([]NodeID(nil), g.outTo...),
		outW:   append([]float64(nil), g.outW...),
		outEID: append([]EdgeID(nil), g.outEID...),
		inOff:  append([]int32(nil), g.inOff...),
		inFrom: append([]NodeID(nil), g.inFrom...),
		inW:    append([]float64(nil), g.inW...),
		inEID:  append([]EdgeID(nil), g.inEID...),
	}
	return out
}
