package graph

import "math"

// WeightDigest returns a 64-bit FNV-1a digest of the graph's topology
// and edge weights: node count, edge count, and every forward-CSR edge
// (source boundary, target, weight bits) in deterministic order. Two
// graphs digest equal iff they have identical CSR layouts and
// bit-identical weights, so the digest distinguishes "same shape,
// different instance" — the case pure shape checks (node/edge counts)
// let through. Pool snapshots embed it to refuse loading onto a graph
// the samples were not drawn from.
//
// FNV-1a is not cryptographic; it guards against operational mix-ups
// (wrong file for the instance), not adversarial collisions. The
// content-addressed pool cache layers a SHA-256 key on top for
// addressing.
func (g *Graph) WeightDigest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(g.n))
	mix(uint64(len(g.outTo)))
	for _, off := range g.outOff {
		mix(uint64(uint32(off)))
	}
	for i, to := range g.outTo {
		mix(uint64(uint32(to)))
		mix(math.Float64bits(g.outW[i]))
	}
	return h
}
