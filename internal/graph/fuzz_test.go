package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary checks the binary-graph parser never panics or
// over-allocates on corrupt input, and accepts its own output.
func FuzzReadBinary(f *testing.F) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IMCG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the CSR invariants.
		if got.NumNodes() <= 0 {
			t.Fatal("accepted graph with no nodes")
		}
		for u := NodeID(0); int(u) < got.NumNodes(); u++ {
			tos, ws := got.OutNeighbors(u)
			for i, v := range tos {
				if int(v) >= got.NumNodes() || ws[i] < 0 || ws[i] > 1 {
					t.Fatalf("invalid edge %d->%d w=%g", u, v, ws[i])
				}
			}
		}
	})
}

// FuzzReadEdgeList checks the edge-list parser never panics and that
// every successfully parsed graph survives a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1 0.5\n1 2\n", true)
	f.Add("# comment\n3 4 1.0\n", false)
	f.Add("0 0\n", true)
	f.Add("", true)
	f.Add("9999999999999999999999 1\n", true)
	f.Add("1 2 nan\n-1 2\n", false)
	f.Fuzz(func(t *testing.T, input string, directed bool) {
		g, err := ReadEdgeList(strings.NewReader(input), directed)
		if err != nil {
			return
		}
		if g.NumNodes() <= 0 {
			t.Fatalf("parsed graph with %d nodes and no error", g.NumNodes())
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		if g.NumEdges() == 0 {
			return
		}
		back, err := ReadEdgeList(&buf, true)
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count: %d -> %d", g.NumEdges(), back.NumEdges())
		}
	})
}
