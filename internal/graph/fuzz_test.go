package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadBinary checks the binary-graph parser never panics or
// over-allocates on corrupt input, and accepts its own output.
func FuzzReadBinary(f *testing.F) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IMCG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must satisfy the CSR invariants.
		if got.NumNodes() <= 0 {
			t.Fatal("accepted graph with no nodes")
		}
		for u := NodeID(0); int(u) < got.NumNodes(); u++ {
			tos, ws := got.OutNeighbors(u)
			for i, v := range tos {
				if int(v) >= got.NumNodes() || ws[i] < 0 || ws[i] > 1 {
					t.Fatalf("invalid edge %d->%d w=%g", u, v, ws[i])
				}
			}
		}
	})
}

// FuzzWeightDigest checks the digest's identity contract on arbitrary
// small graphs: it is deterministic across builds, independent of edge
// insertion order (Build canonicalizes the CSR), and preserved by a
// binary write/read round trip — the exact path pool snapshots travel
// before the digest gate runs.
func FuzzWeightDigest(f *testing.F) {
	f.Add([]byte{4, 0, 1, 128, 2, 3, 255})
	f.Add([]byte{1})
	f.Add([]byte{8, 0, 1, 0, 1, 0, 1, 7, 6, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%16 + 1
		var edges []Edge
		for i := 1; i+2 < len(data); i += 3 {
			edges = append(edges, Edge{
				From:   NodeID(int(data[i]) % n),
				To:     NodeID(int(data[i+1]) % n),
				Weight: float64(data[i+2]) / 255,
			})
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			t.Fatalf("FromEdges rejected in-range input: %v", err)
		}
		d := g.WeightDigest()
		if d != g.WeightDigest() {
			t.Fatal("digest differs across calls")
		}

		reversed := make([]Edge, 0, len(edges))
		for i := len(edges) - 1; i >= 0; i-- {
			reversed = append(reversed, edges[i])
		}
		g2, err := FromEdges(n, reversed)
		if err != nil {
			t.Fatal(err)
		}
		// Duplicate (from, to) pairs keep the last-added weight, so
		// reversal can legitimately change the graph; compare digests
		// only when the canonical edge streams agree.
		if len(g.Edges()) == len(g2.Edges()) {
			same := true
			for i, e := range g.Edges() {
				if g2.Edges()[i] != e {
					same = false
					break
				}
			}
			if same && d != g2.WeightDigest() {
				t.Fatal("digest depends on edge insertion order")
			}
		}

		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		rt, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected own output: %v", err)
		}
		if rt.WeightDigest() != d {
			t.Fatalf("digest changed across binary round trip: %x != %x", rt.WeightDigest(), d)
		}
	})
}

// FuzzReadEdgeList checks the edge-list parser never panics and that
// every successfully parsed graph survives a write/read round trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1 0.5\n1 2\n", true)
	f.Add("# comment\n3 4 1.0\n", false)
	f.Add("0 0\n", true)
	f.Add("", true)
	f.Add("9999999999999999999999 1\n", true)
	f.Add("1 2 nan\n-1 2\n", false)
	f.Fuzz(func(t *testing.T, input string, directed bool) {
		g, err := ReadEdgeList(strings.NewReader(input), directed)
		if err != nil {
			return
		}
		if g.NumNodes() <= 0 {
			t.Fatalf("parsed graph with %d nodes and no error", g.NumNodes())
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		if g.NumEdges() == 0 {
			return
		}
		back, err := ReadEdgeList(&buf, true)
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count: %d -> %d", g.NumEdges(), back.NumEdges())
		}
	})
}
