package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary graph format: a compact serialization for large generated
// analogs (the text edge list for the pokec analog is ~100 MB; the
// binary form is about a third of that and parses an order of
// magnitude faster).
//
// Layout (little endian):
//
//	magic   [4]byte  "IMCG"
//	version uint32   (1)
//	n       uint64   node count
//	m       uint64   edge count
//	outOff  [n+1]uint32
//	outTo   [m]uint32 (delta-varint would shave more; kept fixed-width
//	                   for O(1) random access when mmapped)
//	outW    [m]float64
//
// The reverse CSR is rebuilt on load — it is fully determined by the
// forward CSR plus the edge-ID convention.

var binaryMagic = [4]byte{'I', 'M', 'C', 'G'}

const binaryVersion = 1

// WriteBinary serializes g in the binary graph format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("graph: write magic: %w", err)
	}
	var scratch [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := put32(binaryVersion); err != nil {
		return fmt.Errorf("graph: write version: %w", err)
	}
	if err := put64(uint64(g.n)); err != nil {
		return fmt.Errorf("graph: write n: %w", err)
	}
	if err := put64(uint64(g.NumEdges())); err != nil {
		return fmt.Errorf("graph: write m: %w", err)
	}
	for _, off := range g.outOff {
		if err := put32(uint32(off)); err != nil {
			return fmt.Errorf("graph: write offsets: %w", err)
		}
	}
	for _, to := range g.outTo {
		if err := put32(uint32(to)); err != nil {
			return fmt.Errorf("graph: write targets: %w", err)
		}
	}
	for _, wt := range g.outW {
		if err := put64(math.Float64bits(wt)); err != nil {
			return fmt.Errorf("graph: write weights: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush binary graph: %w", err)
	}
	return nil
}

// ReadBinary deserializes a graph written by WriteBinary, validating
// structural invariants before accepting it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: read magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var scratch [8]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	version, err := get32()
	if err != nil {
		return nil, fmt.Errorf("graph: read version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	n64, err := get64()
	if err != nil {
		return nil, fmt.Errorf("graph: read n: %w", err)
	}
	m64, err := get64()
	if err != nil {
		return nil, fmt.Errorf("graph: read m: %w", err)
	}
	// Caps bound the allocation a hostile header can trigger; 1<<27
	// nodes / edges (≈134M) is far beyond any analog this library
	// generates while keeping the worst-case allocation ≈4 GB.
	if n64 == 0 || n64 > 1<<27 {
		return nil, fmt.Errorf("graph: node count %d out of range", n64)
	}
	if m64 > 1<<27 {
		return nil, fmt.Errorf("graph: edge count %d out of range", m64)
	}
	n, m := int(n64), int(m64)

	g := &Graph{
		n:      n,
		outOff: make([]int32, n+1),
		outTo:  make([]NodeID, m),
		outW:   make([]float64, m),
		outEID: make([]EdgeID, m),
		inOff:  make([]int32, n+1),
		inFrom: make([]NodeID, m),
		inW:    make([]float64, m),
		inEID:  make([]EdgeID, m),
	}
	for i := 0; i <= n; i++ {
		v, err := get32()
		if err != nil {
			return nil, fmt.Errorf("graph: read offsets: %w", err)
		}
		g.outOff[i] = int32(v)
	}
	if g.outOff[0] != 0 || int(g.outOff[n]) != m {
		return nil, fmt.Errorf("graph: offset envelope [%d, %d] does not match m=%d", g.outOff[0], g.outOff[n], m)
	}
	for i := 1; i <= n; i++ {
		if g.outOff[i] < g.outOff[i-1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	for i := 0; i < m; i++ {
		v, err := get32()
		if err != nil {
			return nil, fmt.Errorf("graph: read targets: %w", err)
		}
		if v >= uint32(n) {
			return nil, fmt.Errorf("graph: edge target %d out of range", v)
		}
		g.outTo[i] = NodeID(v)
		g.outEID[i] = EdgeID(i)
	}
	for i := 0; i < m; i++ {
		v, err := get64()
		if err != nil {
			return nil, fmt.Errorf("graph: read weights: %w", err)
		}
		w := math.Float64frombits(v)
		if math.IsNaN(w) || w < 0 || w > 1 {
			return nil, fmt.Errorf("graph: edge weight %g out of [0, 1]", w)
		}
		g.outW[i] = w
	}
	// Rebuild the reverse CSR.
	for _, to := range g.outTo {
		g.inOff[to+1]++
	}
	for i := 0; i < n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	cursor := make([]int32, n)
	copy(cursor, g.inOff[:n])
	for u := 0; u < n; u++ {
		for idx := g.outOff[u]; idx < g.outOff[u+1]; idx++ {
			to := g.outTo[idx]
			pos := cursor[to]
			cursor[to]++
			g.inFrom[pos] = NodeID(u)
			g.inW[pos] = g.outW[idx]
			g.inEID[pos] = g.outEID[idx]
		}
	}
	return g, nil
}
