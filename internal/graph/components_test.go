package graph

import (
	"testing"
	"testing/quick"

	"imc/internal/xrand"
)

func buildFromPairs(t *testing.T, n int, pairs [][2]int32) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, p := range pairs {
		b.AddEdge(p[0], p[1], 1)
	}
	return mustBuild(t, b)
}

func TestWCCTwoIslands(t *testing.T) {
	g := buildFromPairs(t, 6, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	label, count := WeaklyConnectedComponents(g)
	if count != 3 { // {0,1,2}, {3,4}, {5}
		t.Fatalf("WCC count = %d, want 3", count)
	}
	if label[0] != label[2] || label[3] != label[4] || label[0] == label[3] {
		t.Fatalf("labels %v", label)
	}
	if got := LargestComponentSize(label, count); got != 3 {
		t.Fatalf("largest WCC = %d, want 3", got)
	}
}

func TestWCCIgnoresDirection(t *testing.T) {
	// 0 -> 1 <- 2: weakly one component, strongly three.
	g := buildFromPairs(t, 3, [][2]int32{{0, 1}, {2, 1}})
	_, wcc := WeaklyConnectedComponents(g)
	if wcc != 1 {
		t.Fatalf("WCC = %d, want 1", wcc)
	}
	_, scc := StronglyConnectedComponents(g)
	if scc != 3 {
		t.Fatalf("SCC = %d, want 3", scc)
	}
}

func TestSCCCycleAndTail(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 cycle, plus 2 -> 3 tail.
	g := buildFromPairs(t, 4, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	label, count := StronglyConnectedComponents(g)
	if count != 2 {
		t.Fatalf("SCC count = %d, want 2", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatalf("cycle split: %v", label)
	}
	if label[3] == label[0] {
		t.Fatalf("tail merged into cycle: %v", label)
	}
	// Reverse topological order: the sink SCC ({3}) gets the smaller ID.
	if label[3] != 0 {
		t.Fatalf("sink SCC id = %d, want 0", label[3])
	}
}

func TestSCCDeepPathNoOverflow(t *testing.T) {
	// A 200k-node path would blow a recursive Tarjan's stack.
	const n = 200000
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1), 1)
	}
	g := mustBuild(t, b)
	_, count := StronglyConnectedComponents(g)
	if count != n {
		t.Fatalf("path SCC count = %d, want %d", count, n)
	}
}

// Property: SCCs refine WCCs, and node counts are conserved.
func TestQuickSCCRefinesWCC(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 12 + rng.Intn(12)
		b := NewBuilder(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), 1)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		wl, wc := WeaklyConnectedComponents(g)
		sl, sc := StronglyConnectedComponents(g)
		if sc < wc {
			return false // an SCC can never span two WCCs
		}
		// Same SCC ⇒ same WCC.
		repWCC := make(map[int32]int32)
		for v := 0; v < n; v++ {
			if w, ok := repWCC[sl[v]]; ok {
				if w != wl[v] {
					return false
				}
			} else {
				repWCC[sl[v]] = wl[v]
			}
		}
		// Every label in range.
		for v := 0; v < n; v++ {
			if wl[v] < 0 || int(wl[v]) >= wc || sl[v] < 0 || int(sl[v]) >= sc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutual reachability ⇔ same SCC, checked by brute-force
// reachability on small graphs.
func TestQuickSCCMatchesReachability(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 6 + rng.Intn(6)
		b := NewBuilder(n)
		m := rng.Intn(2 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), 1)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		// Floyd–Warshall style reachability closure.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
			reach[i][i] = true
		}
		for u := NodeID(0); int(u) < n; u++ {
			tos, _ := g.OutNeighbors(u)
			for _, v := range tos {
				reach[u][v] = true
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if !reach[i][k] {
					continue
				}
				for j := 0; j < n; j++ {
					if reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		label, _ := StronglyConnectedComponents(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				mutual := reach[i][j] && reach[j][i]
				if mutual != (label[i] == label[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
