package graph

import (
	"math"
	"testing"
)

func mustFromEdges(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestWeightDigestStable: the digest is a pure function of the built
// graph — identical across calls, across separate builds of the same
// edges, and across edge insertion order (Build canonicalizes the CSR
// by sorting on (from, to)).
func TestWeightDigestStable(t *testing.T) {
	edges := []Edge{
		{From: 0, To: 1, Weight: 0.5},
		{From: 0, To: 2, Weight: 0.25},
		{From: 2, To: 3, Weight: 1},
		{From: 3, To: 0, Weight: 0.125},
	}
	g := mustFromEdges(t, 4, edges)
	if g.WeightDigest() != g.WeightDigest() {
		t.Fatal("digest differs across calls on one graph")
	}

	again := mustFromEdges(t, 4, edges)
	if g.WeightDigest() != again.WeightDigest() {
		t.Error("digest differs across builds of identical edges")
	}

	reversed := make([]Edge, 0, len(edges))
	for i := len(edges) - 1; i >= 0; i-- {
		reversed = append(reversed, edges[i])
	}
	shuffled := mustFromEdges(t, 4, reversed)
	if g.WeightDigest() != shuffled.WeightDigest() {
		t.Error("digest depends on edge insertion order; Build should have canonicalized")
	}
}

// TestWeightDigestWeightPermutation: permuting weights across a fixed
// topology must change the digest — the exact mix-up pool snapshots
// use it to refuse (same graph file, different weight scheme).
func TestWeightDigestWeightPermutation(t *testing.T) {
	a := mustFromEdges(t, 3, []Edge{
		{From: 0, To: 1, Weight: 0.3},
		{From: 0, To: 2, Weight: 0.7},
	})
	b := mustFromEdges(t, 3, []Edge{
		{From: 0, To: 1, Weight: 0.7},
		{From: 0, To: 2, Weight: 0.3},
	})
	if a.WeightDigest() == b.WeightDigest() {
		t.Error("digest blind to weight permutation across edges")
	}
}

// TestWeightDigestCSRReorder: two graphs whose concatenated target and
// weight arrays are identical but whose row boundaries differ (the
// same edges hanging off different sources) must digest differently —
// the offsets are part of the digest, not just the flat edge stream.
func TestWeightDigestCSRReorder(t *testing.T) {
	a := mustFromEdges(t, 3, []Edge{
		{From: 0, To: 1, Weight: 0.5},
		{From: 0, To: 2, Weight: 0.5},
	})
	b := mustFromEdges(t, 3, []Edge{
		{From: 0, To: 1, Weight: 0.5},
		{From: 1, To: 2, Weight: 0.5},
	})
	if a.WeightDigest() == b.WeightDigest() {
		t.Error("digest blind to CSR row boundaries: outTo/outW agree, outOff differs")
	}
}

// TestWeightDigestShape: node count and edge presence are load-bearing.
func TestWeightDigestShape(t *testing.T) {
	edges := []Edge{{From: 0, To: 1, Weight: 0.5}}
	small := mustFromEdges(t, 2, edges)
	padded := mustFromEdges(t, 3, edges)
	if small.WeightDigest() == padded.WeightDigest() {
		t.Error("digest blind to isolated extra node")
	}
	more := mustFromEdges(t, 2, append([]Edge{{From: 1, To: 0, Weight: 0.5}}, edges...))
	if small.WeightDigest() == more.WeightDigest() {
		t.Error("digest blind to an added edge")
	}
}

// TestWeightDigestBitIdentical: equality is on weight bits, not on
// approximate value — one ULP apart is a different instance.
func TestWeightDigestBitIdentical(t *testing.T) {
	a := mustFromEdges(t, 2, []Edge{{From: 0, To: 1, Weight: math.Nextafter(0.3, 1)}})
	b := mustFromEdges(t, 2, []Edge{{From: 0, To: 1, Weight: 0.3}})
	if a.WeightDigest() == b.WeightDigest() {
		t.Error("digest should separate weights that differ only in low bits")
	}
}
