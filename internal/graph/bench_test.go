package graph

import (
	"testing"

	"imc/internal/xrand"
)

func benchEdges(n, m int) []Edge {
	rng := xrand.New(1)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{
			From:   NodeID(rng.Intn(n)),
			To:     NodeID(rng.Intn(n)),
			Weight: rng.Float64(),
		})
	}
	return edges
}

// BenchmarkBuild100K measures CSR construction from 100K edges.
func BenchmarkBuild100K(b *testing.B) {
	edges := benchEdges(10000, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(10000, edges); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyWeightedCascade measures the paper's weight assignment.
func BenchmarkApplyWeightedCascade(b *testing.B) {
	g, err := FromEdges(10000, benchEdges(10000, 100000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyWeights(g, WeightedCascade, 0, 0)
	}
}

// BenchmarkNeighborScan measures a full forward+reverse adjacency scan
// (the inner loop of every sampler).
func BenchmarkNeighborScan(b *testing.B) {
	g, err := FromEdges(10000, benchEdges(10000, 100000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		for u := NodeID(0); int(u) < g.NumNodes(); u++ {
			tos, _ := g.OutNeighbors(u)
			froms, _, _ := g.InNeighbors(u)
			sum += len(tos) + len(froms)
		}
	}
	_ = sum
}
