package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list with lines of the
// form "u v" or "u v w". Lines starting with '#' or '%' are comments.
// Node IDs must be non-negative integers; n is inferred as max ID + 1.
// When directed is false each line adds both directions. Edges without an
// explicit weight get weight 1 (reassign with ApplyWeights).
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	type rawEdge struct {
		u, v int64
		w    float64
	}
	var (
		raws    []rawEdge
		maxNode int64 = -1
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %w", lineNo, fields[2], err)
			}
		}
		if u > maxNode {
			maxNode = u
		}
		if v > maxNode {
			maxNode = v
		}
		raws = append(raws, rawEdge{u: u, v: v, w: w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan edge list: %w", err)
	}
	if maxNode < 0 {
		return nil, ErrNoNodes
	}
	b := NewBuilder(int(maxNode + 1))
	for _, e := range raws {
		if directed {
			b.AddEdge(NodeID(e.u), NodeID(e.v), e.w)
		} else {
			b.AddUndirected(NodeID(e.u), NodeID(e.v), e.w)
		}
	}
	return b.Build()
}

// WriteEdgeList emits the graph as "u v w" lines in edge-ID order.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		tos, ws := g.OutNeighbors(u)
		for i, v := range tos {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, ws[i]); err != nil {
				return fmt.Errorf("graph: write edge list: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush edge list: %w", err)
	}
	return nil
}
