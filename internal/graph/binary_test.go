package graph

import (
	"bytes"
	"testing"
	"testing/quick"

	"imc/internal/xrand"
)

func TestBinaryRoundTrip(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 2, 0.125)
	b.AddEdge(4, 3, 1)
	b.AddEdge(3, 0, 0.25)
	g := mustBuild(t, b)

	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: %s -> %s", g, back)
	}
	for _, e := range g.Edges() {
		if back.Weight(e.From, e.To) != e.Weight {
			t.Fatalf("edge %v lost", e)
		}
	}
	// Reverse CSR must be rebuilt consistently.
	for v := NodeID(0); int(v) < back.NumNodes(); v++ {
		if back.InDegree(v) != g.InDegree(v) {
			t.Fatalf("in-degree of %d changed", v)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 0.5)
	g := mustBuild(t, b)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("want magic error")
	}
	// Bad version.
	bad = append([]byte(nil), good...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("want version error")
	}
	// Truncated.
	if _, err := ReadBinary(bytes.NewReader(good[:len(good)-3])); err == nil {
		t.Fatal("want truncation error")
	}
	// Out-of-range target: flip the single edge target to 200.
	bad = append([]byte(nil), good...)
	// layout: 4 magic + 4 version + 8 n + 8 m + (n+1)*4 offsets = 24+16.
	targetPos := 4 + 4 + 8 + 8 + 4*4
	bad[targetPos] = 200
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("want target-range error")
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := mustBuild(t, NewBuilder(4))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 4 || back.NumEdges() != 0 {
		t.Fatalf("empty graph mangled: %s", back)
	}
}

// Property: binary round trip is the identity on random graphs.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(30)
		b := NewBuilder(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), rng.Float64())
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			return false
		}
		ea, eb := g.Edges(), back.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
