package serve

import (
	"context"

	"imc/internal/diffusion"
	"imc/internal/expt"
	"imc/internal/graph"
	"imc/internal/maxr"
	"imc/internal/poolcache"
	"imc/internal/ric"
	"imc/internal/xrand"
)

// estimateBenefit Monte-Carlo-scores a seed set against an instance.
func estimateBenefit(ctx context.Context, inst *expt.Instance, seeds []graph.NodeID, iters int, seed uint64) (float64, error) {
	return diffusion.EstimateBenefitCtx(ctx, inst.G, inst.Part, seeds, diffusion.MCOptions{
		Iterations: iters,
		Seed:       seed ^ 0x9e3779b97f4a7c15,
	})
}

// estimateSpread Monte-Carlo-estimates raw activation count.
func estimateSpread(ctx context.Context, inst *expt.Instance, seeds []graph.NodeID, iters int, seed uint64) (float64, error) {
	return diffusion.EstimateSpreadCtx(ctx, inst.G, seeds, diffusion.MCOptions{
		Iterations: iters,
		Seed:       seed ^ 0x517cc1b727220a95,
	})
}

// traceCascade runs one traced IC cascade on an instance.
func traceCascade(inst *expt.Instance, seeds []graph.NodeID, seed uint64) []diffusion.TraceRound {
	return diffusion.Trace(inst.G, seeds, xrand.New(seed^0x2545f4914f6cdd1d))
}

// solveBudgeted runs the cost-aware solver over a fresh pool and
// Monte-Carlo-scores the pick. Sampling and scoring — the dominant
// costs — are ctx-aware; the greedy selection between them runs on an
// already-bounded pool and gets one up-front check. The cache session
// (nil-safe) donates cached samples into the pool and receives the
// grown pool back — best-effort on both sides, and byte-identical to
// cold sampling because generation is stream-indexed.
func solveBudgeted(ctx context.Context, inst *expt.Instance, budget, costUnit float64, samples int, seed uint64, sess *poolcache.Session) ([]graph.NodeID, float64, float64, error) {
	pool, err := ric.NewPool(inst.G, inst.Part, ric.PoolOptions{Seed: seed})
	if err != nil {
		return nil, 0, 0, err
	}
	if err := sess.Grow(ctx, pool, samples); err != nil {
		return nil, 0, 0, err
	}
	// Store-back is best-effort: Save counts its own failures and the
	// request's answer does not depend on it.
	_ = sess.Save(pool)
	cost := maxr.UniformCost
	if costUnit > 0 {
		cost = maxr.DegreeCost(inst.G, costUnit)
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, err
	}
	res, err := maxr.SolveBudgeted(pool, cost, budget)
	if err != nil {
		return nil, 0, 0, err
	}
	benefit, err := estimateBenefit(ctx, inst, res.Seeds, 2000, seed)
	if err != nil {
		return nil, 0, 0, err
	}
	return res.Seeds, maxr.TotalCost(res.Seeds, cost), benefit, nil
}
