package serve

import (
	"strings"

	"imc/internal/community"
	"imc/internal/expt"
	"imc/internal/graph"
	"imc/internal/shard"
)

// This file is the bridge between the HTTP layer and the distributed
// shard runtime: it is the single place where an InstanceRequest, a
// shard.InstanceSpec, and an expt.InstanceConfig are kept in sync, so
// a coordinator's spec and a worker's rebuild cannot drift apart.

// shardSpec names the instance a request selects, after the same
// normalization instance() applies — coordinator-side spec and
// worker-side rebuild must describe the identical instance.
func shardSpec(req InstanceRequest) shard.InstanceSpec {
	if req.Dataset == "" {
		req.Dataset = "facebook"
	}
	if req.Scale == 0 {
		req.Scale = 0.1
	}
	formation := "louvain"
	if strings.EqualFold(req.Formation, "random") {
		formation = "random"
	}
	return shard.InstanceSpec{
		Dataset:   req.Dataset,
		Scale:     req.Scale,
		Formation: formation,
		SizeCap:   req.SizeCap,
		Bounded:   req.Bounded,
		Seed:      req.Seed,
	}
}

// ShardInstanceBuilder returns the worker-side instance factory: a spec
// rebuilds through expt.BuildInstance, the exact path the coordinator's
// own instance cache uses, so both ends hold byte-identical graphs and
// partitions (and the IMCS weight-digest check stays a formality).
func ShardInstanceBuilder() shard.BuildFunc {
	return func(spec shard.InstanceSpec) (*graph.Graph, *community.Partition, error) {
		formation := expt.Louvain
		if strings.EqualFold(spec.Formation, "random") {
			formation = expt.RandomFormation
		}
		inst, err := expt.BuildInstance(expt.InstanceConfig{
			Dataset:   spec.Dataset,
			Scale:     spec.Scale,
			Formation: formation,
			SizeCap:   spec.SizeCap,
			Bounded:   spec.Bounded,
			Seed:      spec.Seed,
		})
		if err != nil {
			return nil, nil, err
		}
		return inst.G, inst.Part, nil
	}
}
