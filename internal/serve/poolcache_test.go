package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"imc/internal/expt"
	"imc/internal/poolcache"
)

// TestInstanceCacheEvictsOneEntry: at capacity, inserting a new
// instance evicts exactly one resident entry — not the whole cache, and
// never the key being inserted. (The previous clear-all eviction threw
// away every warm instance on each miss past capacity.)
func TestInstanceCacheEvictsOneEntry(t *testing.T) {
	s := NewWithOptions(nil, nil, Config{})
	s.buildInstance = func(cfg expt.InstanceConfig) (*expt.Instance, error) {
		return &expt.Instance{Name: cfg.Dataset}, nil
	}
	for i := 0; i < s.maxCached; i++ {
		if _, err := s.instance(context.Background(), instReq(fmt.Sprintf("ds-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	full := len(s.cache)
	s.mu.Unlock()
	if full != s.maxCached {
		t.Fatalf("warm cache holds %d entries, want %d", full, s.maxCached)
	}

	// One past capacity: exactly one victim.
	if _, err := s.instance(context.Background(), instReq("overflow")); err != nil {
		t.Fatal(err)
	}
	overflowKey := fmt.Sprintf("%s|%g|%v|%d|%v|%d", "overflow", 0.1, expt.Louvain, 0, false, 0)
	s.mu.Lock()
	after := len(s.cache)
	_, newPresent := s.cache[overflowKey]
	s.mu.Unlock()
	if after != s.maxCached {
		t.Fatalf("cache holds %d entries after overflow insert, want %d (single-entry eviction)", after, s.maxCached)
	}
	if !newPresent {
		t.Fatal("the inserted key was evicted")
	}

	// A hit on a resident key must never evict anything.
	if _, err := s.instance(context.Background(), instReq("overflow")); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	hitLen := len(s.cache)
	s.mu.Unlock()
	if hitLen != s.maxCached {
		t.Fatalf("cache shrank to %d on a hit", hitLen)
	}
}

// TestSolveColdWarmIdentical is the end-to-end determinism pin: a cold
// /solve (empty pool cache) and a warm repeat of the same request
// return the same seed set and benefit, the warm run adopting its
// samples from the cache; /metrics shows the traffic and /estimate
// exposes the cached-pool benefit.
func TestSolveColdWarmIdentical(t *testing.T) {
	cache, err := poolcache.Open(t.TempDir(), poolcache.Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(nil, nil, Config{MaxInflight: 64, PoolCache: cache})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	req := SolveRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03, Bounded: true, Seed: 1},
		Alg:             "MAF",
		K:               4,
		MaxSamples:      1 << 12,
	}
	var cold SolveResponse
	if status, body := postJSON(t, ts.URL+"/solve", req, &cold); status != http.StatusOK {
		t.Fatalf("cold solve: status %d: %s", status, body)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after cold solve: %+v", st)
	}
	if st.Saves == 0 || st.Entries != 1 {
		t.Fatalf("cold solve did not store its pool: %+v", st)
	}

	var warm SolveResponse
	if status, body := postJSON(t, ts.URL+"/solve", req, &warm); status != http.StatusOK {
		t.Fatalf("warm solve: status %d: %s", status, body)
	}
	st = cache.Stats()
	if st.Hits != 1 {
		t.Fatalf("warm solve missed the cache: %+v", st)
	}
	if st.Extends == 0 || st.AdoptedSamples == 0 {
		t.Fatalf("warm solve adopted nothing: %+v", st)
	}
	if !reflect.DeepEqual(cold.Seeds, warm.Seeds) {
		t.Fatalf("seed sets differ: cold %v, warm %v", cold.Seeds, warm.Seeds)
	}
	if cold.Benefit != warm.Benefit {
		t.Fatalf("benefits differ: cold %g, warm %g", cold.Benefit, warm.Benefit)
	}

	// /metrics surfaces the same counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.PoolCache == nil {
		t.Fatal("/metrics poolCache missing with caching enabled")
	}
	if m.PoolCache.Hits != st.Hits || m.PoolCache.Entries != st.Entries {
		t.Fatalf("/metrics poolCache %+v does not match cache %+v", m.PoolCache, st)
	}

	// /estimate over the same (instance, seed) sees the cached pool.
	var est EstimateResponse
	status, body := postJSON(t, ts.URL+"/estimate", EstimateRequest{
		InstanceRequest: req.InstanceRequest,
		Seeds:           cold.Seeds,
		Iterations:      500,
	}, &est)
	if status != http.StatusOK {
		t.Fatalf("estimate: status %d: %s", status, body)
	}
	if est.PoolBenefit == nil || est.PoolSamples == 0 {
		t.Fatalf("estimate did not expose the cached pool: %+v", est)
	}

	// Without a cache, /metrics omits the block and /estimate stays
	// silent about pools.
	plain := newTestServer(t)
	resp2, err := http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var m2 Metrics
	if err := json.NewDecoder(resp2.Body).Decode(&m2); err != nil {
		t.Fatal(err)
	}
	if m2.PoolCache != nil {
		t.Fatal("/metrics poolCache present with caching disabled")
	}
}
