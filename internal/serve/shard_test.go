package serve

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"imc/internal/shard"
)

// solveReq is the karate solve both the distributed and the
// single-process servers run: small enough to finish in milliseconds,
// fixed enough to compare byte-for-byte.
var shardSolveReq = map[string]any{
	"dataset": "karate", "scale": 1.0, "alg": "UBG", "k": 3, "seed": 7,
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, nil))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// startShardWorker boots one worker imcserve-style: the real
// expt-backed instance builder, no persistence (workers are stateless
// between these requests).
func startShardWorker(t *testing.T) *httptest.Server {
	t.Helper()
	w, err := shard.NewWorker(shard.WorkerConfig{Build: ShardInstanceBuilder(), Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithOptions(quietLogger(), nil, Config{
		MaxInflight: 64, ShardWorker: w,
	}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestSolveDistributedMatchesSingleProcess is the serve-level
// worker-count independence pin: a coordinator with 1, 2, or 4
// workers returns the exact seed set and benefit a plain
// single-process server does on karate.
func TestSolveDistributedMatchesSingleProcess(t *testing.T) {
	var want SolveResponse
	if code, body := postJSON(t, newTestServer(t).URL+"/solve", shardSolveReq, &want); code != http.StatusOK {
		t.Fatalf("single-process solve: %d %s", code, body)
	}

	for _, workers := range []int{1, 2, 4} {
		coord := shard.NewCoordinator(shard.CoordinatorConfig{Logger: quietLogger()})
		for i := 0; i < workers; i++ {
			coord.Register(startShardWorker(t).URL)
		}
		ts := httptest.NewServer(NewWithOptions(quietLogger(), nil, Config{
			MaxInflight: 64, ShardCoordinator: coord,
		}).Handler())
		t.Cleanup(ts.Close)

		var got SolveResponse
		if code, body := postJSON(t, ts.URL+"/solve", shardSolveReq, &got); code != http.StatusOK {
			t.Fatalf("%d-worker solve: %d %s", workers, code, body)
		}
		if !reflect.DeepEqual(want.Seeds, got.Seeds) || want.Benefit != got.Benefit {
			t.Fatalf("%d-worker solve = %+v, single-process = %+v", workers, got, want)
		}
		m := coord.Metrics()
		if m.RangesDispatched == 0 || m.Merges == 0 {
			t.Fatalf("%d-worker coordinator did no distributed work: %+v", workers, m)
		}
	}
}

// TestShardJoinOverServe: a worker joins through the coordinator
// server's own mux and is counted in /metrics.
func TestShardJoinOverServe(t *testing.T) {
	coord := shard.NewCoordinator(shard.CoordinatorConfig{Logger: quietLogger()})
	ts := httptest.NewServer(NewWithOptions(quietLogger(), nil, Config{
		MaxInflight: 4, ShardCoordinator: coord,
	}).Handler())
	t.Cleanup(ts.Close)

	worker := startShardWorker(t)
	if err := shard.Join(t.Context(), nil, ts.URL, worker.URL); err != nil {
		t.Fatal(err)
	}
	if m := coord.Metrics(); m.WorkersRegistered != 1 || m.WorkersAlive != 1 {
		t.Fatalf("after join: %+v", m)
	}
}

// TestMetricsShardSection pins the JSON shape of the /metrics "shard"
// section: present (with every counter key and the latency histogram)
// on a coordinator, absent otherwise.
func TestMetricsShardSection(t *testing.T) {
	coord := shard.NewCoordinator(shard.CoordinatorConfig{Logger: quietLogger()})
	coord.Register("http://127.0.0.1:1") // registered but never dialed
	ts := httptest.NewServer(NewWithOptions(quietLogger(), nil, Config{
		MaxInflight: 4, ShardCoordinator: coord,
	}).Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	raw, ok := m["shard"]
	if !ok {
		t.Fatal("coordinator /metrics has no shard section")
	}
	var sec map[string]json.RawMessage
	if err := json.Unmarshal(raw, &sec); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"workersRegistered", "workersAlive", "rangesDispatched",
		"retries", "reassignments", "localFallbacks", "merges",
		"mergeLatencySeconds",
	} {
		if _, ok := sec[key]; !ok {
			t.Errorf("shard section missing %q: %s", key, raw)
		}
	}
	var workers int
	if err := json.Unmarshal(sec["workersRegistered"], &workers); err != nil || workers != 1 {
		t.Errorf("workersRegistered = %s, want 1", sec["workersRegistered"])
	}

	// A non-coordinator server omits the section entirely.
	plain := newTestServer(t)
	resp2, err := http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var m2 map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&m2); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2["shard"]; ok {
		t.Error("plain server /metrics leaked a shard section")
	}
}
