package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"imc/internal/community"
	"imc/internal/expt"
	"imc/internal/gen"
	"imc/internal/job"
)

// testJobInstance is the job pool's BuildInstance seam for these
// tests: a small random instance so job runs finish in milliseconds.
func testJobInstance(cfg expt.InstanceConfig) (*expt.Instance, error) {
	g, err := gen.RandomDirected(30, 100, 0.4, cfg.Seed)
	if err != nil {
		return nil, err
	}
	part, err := community.Random(30, 6, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return &expt.Instance{Name: "test/random", G: g, Part: part, Config: cfg}, nil
}

// newJobTestServer wires a server to a fresh store + pool. When start
// is false the pool never runs, so submitted jobs stay pending — the
// handle for testing pre-execution states.
func newJobTestServer(t *testing.T, start bool) *httptest.Server {
	t.Helper()
	store, err := job.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := job.NewPool(store, job.PoolOptions{
		Workers:       1,
		Log:           slog.New(slog.NewTextHandler(io.Discard, nil)),
		BuildInstance: testJobInstance,
	})
	if start {
		pool.Start()
	}
	srv := NewWithOptions(nil, nil, Config{MaxInflight: 64, JobStore: store, JobPool: pool})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if start {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := pool.Shutdown(ctx); err != nil {
				t.Error(err)
			}
		}
		store.Close()
	})
	return ts
}

// doJSON issues a request with an optional JSON body and decodes any
// 2xx reply into out.
func doJSON(t *testing.T, method, url string, headers map[string]string, body, out any) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func testJobSpec(seed uint64) job.Spec {
	return job.Spec{Dataset: "test", K: 3, Eps: 0.3, Delta: 0.3, Seed: seed, MaxSamples: 1 << 12}
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	ts := newJobTestServer(t, true)

	var created job.Job
	status, body := doJSON(t, "POST", ts.URL+"/v1/jobs", nil, JobSubmitRequest{Spec: testJobSpec(31)}, &created)
	if status != http.StatusCreated {
		t.Fatalf("submit status %d: %s", status, body)
	}
	if created.ID == "" || created.State != job.StatePending {
		t.Fatalf("created job %+v", created)
	}

	deadline := time.Now().Add(60 * time.Second)
	var got job.Job
	for {
		status, body = doJSON(t, "GET", ts.URL+"/v1/jobs/"+created.ID, nil, nil, &got)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		if got.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.State != job.StateSucceeded {
		t.Fatalf("state %s (%s)", got.State, got.Error)
	}
	if got.Checkpoint == nil {
		t.Fatal("job finished without any checkpoint")
	}

	var res job.Result
	status, body = doJSON(t, "GET", ts.URL+"/v1/jobs/"+created.ID+"/result", nil, nil, &res)
	if status != http.StatusOK {
		t.Fatalf("result status %d: %s", status, body)
	}
	if len(res.Seeds) != 3 || res.Benefit <= 0 {
		t.Fatalf("implausible result %+v", res)
	}

	var list []job.Job
	if status, body = doJSON(t, "GET", ts.URL+"/v1/jobs", nil, nil, &list); status != http.StatusOK {
		t.Fatalf("list status %d: %s", status, body)
	}
	if len(list) != 1 || list[0].ID != created.ID {
		t.Fatalf("list %+v", list)
	}
}

func TestJobSubmitIdempotencyKey(t *testing.T) {
	ts := newJobTestServer(t, false)
	hdr := map[string]string{"Idempotency-Key": "abc"}

	var first job.Job
	status, body := doJSON(t, "POST", ts.URL+"/v1/jobs", hdr, JobSubmitRequest{Spec: testJobSpec(1)}, &first)
	if status != http.StatusCreated {
		t.Fatalf("first submit status %d: %s", status, body)
	}
	var second job.Job
	status, body = doJSON(t, "POST", ts.URL+"/v1/jobs", hdr, JobSubmitRequest{Spec: testJobSpec(2)}, &second)
	if status != http.StatusOK {
		t.Fatalf("resubmit status %d: %s", status, body)
	}
	if second.ID != first.ID || second.Spec.Seed != 1 {
		t.Fatalf("idempotency broken: %+v vs %+v", second, first)
	}
	// The body "key" field works too.
	var third job.Job
	status, _ = doJSON(t, "POST", ts.URL+"/v1/jobs", nil, JobSubmitRequest{Spec: testJobSpec(3), Key: "abc"}, &third)
	if status != http.StatusOK || third.ID != first.ID {
		t.Fatalf("body key ignored: status %d, id %s", status, third.ID)
	}
}

func TestJobValidationAndNotFound(t *testing.T) {
	ts := newJobTestServer(t, false)
	if status, body := doJSON(t, "POST", ts.URL+"/v1/jobs", nil, JobSubmitRequest{Spec: job.Spec{K: 0}}, nil); status != http.StatusBadRequest {
		t.Fatalf("k=0 status %d: %s", status, body)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/j99999999", nil, nil, nil); status != http.StatusNotFound {
		t.Fatalf("unknown job status %d", status)
	}
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/j99999999/result", nil, nil, nil); status != http.StatusNotFound {
		t.Fatalf("unknown result status %d", status)
	}
	if status, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/j99999999", nil, nil, nil); status != http.StatusNotFound {
		t.Fatalf("unknown cancel status %d", status)
	}
}

func TestJobResultConflictBeforeSuccess(t *testing.T) {
	ts := newJobTestServer(t, false) // pool never runs: job stays pending
	var created job.Job
	if status, body := doJSON(t, "POST", ts.URL+"/v1/jobs", nil, JobSubmitRequest{Spec: testJobSpec(5)}, &created); status != http.StatusCreated {
		t.Fatalf("submit status %d: %s", status, body)
	}
	status, body := doJSON(t, "GET", ts.URL+"/v1/jobs/"+created.ID+"/result", nil, nil, nil)
	if status != http.StatusConflict {
		t.Fatalf("pending result status %d: %s", status, body)
	}
}

func TestJobCancelOverHTTP(t *testing.T) {
	ts := newJobTestServer(t, false)
	var created job.Job
	if status, body := doJSON(t, "POST", ts.URL+"/v1/jobs", nil, JobSubmitRequest{Spec: testJobSpec(6)}, &created); status != http.StatusCreated {
		t.Fatalf("submit status %d: %s", status, body)
	}
	var after job.Job
	if status, body := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+created.ID, nil, nil, &after); status != http.StatusOK {
		t.Fatalf("cancel status %d: %s", status, body)
	}
	if after.State != job.StateCanceled {
		t.Fatalf("state %s, want canceled", after.State)
	}
}

func TestJobEndpointsAbsentWhenNotConfigured(t *testing.T) {
	ts := newTestServer(t) // no job store wired
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", nil, JobSubmitRequest{Spec: testJobSpec(1)}, nil); status != http.StatusNotFound {
		t.Fatalf("jobs-disabled submit status %d", status)
	}
	// /metrics omits the jobs section entirely.
	var m Metrics
	if status, body := doJSON(t, "GET", ts.URL+"/metrics", nil, nil, &m); status != http.StatusOK {
		t.Fatalf("metrics status %d: %s", status, body)
	}
	if m.Jobs != nil {
		t.Fatalf("jobs section present without a store: %+v", m.Jobs)
	}
}

func TestMetricsLatencyHistogramAndJobs(t *testing.T) {
	ts := newJobTestServer(t, true)
	var solve SolveResponse
	status, body := postJSON(t, ts.URL+"/solve", SolveRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03, Bounded: true, Seed: 1},
		Alg:             "HBC",
		K:               3,
	}, &solve)
	if status != http.StatusOK {
		t.Fatalf("solve status %d: %s", status, body)
	}

	var m Metrics
	if status, body := doJSON(t, "GET", ts.URL+"/metrics", nil, nil, &m); status != http.StatusOK {
		t.Fatalf("metrics status %d: %s", status, body)
	}
	lat, ok := m.LatencySeconds["/solve"]
	if !ok {
		t.Fatalf("no /solve latency histogram: %+v", m.LatencySeconds)
	}
	if lat.Count != 1 || len(lat.Buckets) == 0 {
		t.Fatalf("latency snapshot %+v", lat)
	}
	// Cumulative buckets are monotone and end at Count (nothing here
	// takes 2 minutes).
	prev := int64(0)
	for _, b := range lat.Buckets {
		if b.Count < prev {
			t.Fatalf("bucket counts not monotone: %+v", lat.Buckets)
		}
		prev = b.Count
	}
	if prev != lat.Count {
		t.Fatalf("last bucket %d != count %d", prev, lat.Count)
	}
	if m.Jobs == nil {
		t.Fatal("jobs section missing")
	}
	if m.Jobs.QueueDepth != 0 || m.Jobs.Running != 0 {
		t.Fatalf("idle pool reports work: %+v", m.Jobs)
	}
}
