package serve

import (
	"errors"
	"net/http"

	"imc/internal/job"
	"imc/internal/stats"
)

// Job endpoints. Synchronous /solve sheds anything that cannot finish
// inside one request deadline; /v1/jobs is the escape hatch: submit
// the same spec as a durable job, poll its status, and fetch the
// result when a worker finishes it — across process restarts if
// necessary, since interrupted jobs resume from their last checkpoint.
//
//	POST   /v1/jobs             submit (idempotent via key)
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        status
//	GET    /v1/jobs/{id}/result terminal result (409 until succeeded)
//	DELETE /v1/jobs/{id}        cancel

// JobSubmitRequest is the POST /v1/jobs body: a job spec plus an
// optional idempotency key (the Idempotency-Key header wins when both
// are set). Resubmitting the same key returns the original job with
// status 200 instead of creating a duplicate (201).
type JobSubmitRequest struct {
	job.Spec
	Key string `json:"key,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobSubmitRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, kindValidation, err)
		return
	}
	key := req.Key
	if h := r.Header.Get("Idempotency-Key"); h != "" {
		key = h
	}
	j, created, err := s.jobStore.Submit(req.Spec, key)
	if err != nil {
		writeError(w, http.StatusBadRequest, kindValidation, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
		s.jobPool.Enqueue(j.ID)
	}
	writeJSON(w, status, j)
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.jobStore.List())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobStore.Get(r.PathValue("id"))
	if err != nil {
		writeJobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.jobStore.Result(id)
	if errors.Is(err, job.ErrNotFound) {
		writeJobError(w, err)
		return
	}
	if err != nil {
		// The job exists but has not succeeded (yet): a state conflict,
		// not a client mistake — poll GET /v1/jobs/{id} until it settles.
		writeError(w, http.StatusConflict, kindConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.jobPool.Cancel(id); err != nil {
		writeJobError(w, err)
		return
	}
	// Report the post-cancel view: canceled for pending jobs, still
	// running (canceled soon) or already terminal otherwise.
	j, err := s.jobStore.Get(id)
	if err != nil {
		writeJobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// writeJobError maps store lookup failures: unknown IDs are 404,
// anything else is internal.
func writeJobError(w http.ResponseWriter, err error) {
	if errors.Is(err, job.ErrNotFound) {
		writeError(w, http.StatusNotFound, kindNotFound, err)
		return
	}
	writeError(w, http.StatusInternalServerError, kindInternal, err)
}

// registerJobRoutes mounts the job endpoints; called from Handler only
// when a job store is configured.
func (s *Server) registerJobRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
}

// JobMetrics is the /metrics jobs section.
type JobMetrics struct {
	QueueDepth int            `json:"queueDepth"`
	Running    int            `json:"running"`
	States     map[string]int `json:"states"`
	// RunSeconds is the completed-run duration histogram; p50/p95/p99
	// are derived from the same buckets.
	RunSeconds stats.HistogramSnapshot `json:"runSeconds"`
}

func (s *Server) jobMetrics() *JobMetrics {
	if s.jobPool == nil {
		return nil
	}
	st := s.jobPool.Stats()
	states := make(map[string]int, len(st.States))
	for k, v := range st.States {
		states[string(k)] = v
	}
	return &JobMetrics{
		QueueDepth: st.QueueDepth,
		Running:    st.Running,
		States:     states,
		RunSeconds: st.RunSeconds,
	}
}
