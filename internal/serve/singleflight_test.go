package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"imc/internal/expt"
)

// instReq builds a request whose cache key is unique to name.
func instReq(name string) InstanceRequest {
	return InstanceRequest{Dataset: name, Scale: 0.1}
}

// TestSingleflightBuildsOnce floods one cold key per dataset with
// concurrent misses and asserts the singleflight contract exactly:
// one build per key, every caller handed the same instance.
func TestSingleflightBuildsOnce(t *testing.T) {
	s := NewWithOptions(nil, nil, Config{})
	builds := make(map[string]*atomic.Int64)
	const keys = 8 // below maxCached: no eviction churn in this phase
	for i := 0; i < keys; i++ {
		builds[fmt.Sprintf("ds-%d", i)] = new(atomic.Int64)
	}
	s.buildInstance = func(cfg expt.InstanceConfig) (*expt.Instance, error) {
		builds[cfg.Dataset].Add(1)
		return &expt.Instance{Name: cfg.Dataset}, nil
	}

	const waitersPerKey = 16
	got := make([][]*expt.Instance, keys)
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		got[k] = make([]*expt.Instance, waitersPerKey)
		for w := 0; w < waitersPerKey; w++ {
			wg.Add(1)
			go func(k, w int) {
				defer wg.Done()
				inst, err := s.instance(context.Background(), instReq(fmt.Sprintf("ds-%d", k)))
				if err != nil {
					t.Errorf("instance(ds-%d): %v", k, err)
					return
				}
				got[k][w] = inst
			}(k, w)
		}
	}
	wg.Wait()

	for k := 0; k < keys; k++ {
		name := fmt.Sprintf("ds-%d", k)
		if n := builds[name].Load(); n != 1 {
			t.Errorf("key %s built %d times, want exactly 1", name, n)
		}
		for w := 1; w < waitersPerKey; w++ {
			if got[k][w] != got[k][0] {
				t.Errorf("key %s: waiter %d received a different instance", name, w)
			}
		}
	}
}

// TestSingleflightUnderEvictChurn mixes hits, misses, and clear-all
// evictions (more keys than maxCached) from many goroutines. Rebuilds
// after eviction are legitimate, so the invariant asserted is the one
// eviction cannot excuse: at most one build in flight per key at any
// instant, and every caller gets the instance for the key it asked
// for. Run under -race, this is also the data-race probe for the
// cache/building maps.
func TestSingleflightUnderEvictChurn(t *testing.T) {
	s := NewWithOptions(nil, nil, Config{})
	const keys = 40 // > maxCached (16): steady clear-all evictions
	inflight := make([]atomic.Int64, keys)
	s.buildInstance = func(cfg expt.InstanceConfig) (*expt.Instance, error) {
		var k int
		if _, err := fmt.Sscanf(cfg.Dataset, "ds-%d", &k); err != nil {
			return nil, err
		}
		if n := inflight[k].Add(1); n != 1 {
			t.Errorf("key %s: %d concurrent builds in flight", cfg.Dataset, n)
		}
		defer inflight[k].Add(-1)
		return &expt.Instance{Name: cfg.Dataset}, nil
	}

	const workers = 12
	const iters = 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("ds-%d", (w*7+i*13)%keys)
				inst, err := s.instance(context.Background(), instReq(name))
				if err != nil {
					t.Errorf("instance(%s): %v", name, err)
					return
				}
				if inst.Name != name {
					t.Errorf("asked for %s, got instance %s", name, inst.Name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
