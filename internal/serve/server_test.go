package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"net/http"
	"net/http/httptest"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	// Plenty of in-flight slots: these tests exercise handler behavior,
	// not load shedding (TestLoadShedding pins MaxInflight itself).
	ts := httptest.NewServer(NewWithOptions(nil, nil, Config{MaxInflight: 64}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("decode %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, buf.String()
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestDatasets(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []datasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || rows[0].Name != "facebook" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestSolveEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	var out SolveResponse
	status, body := postJSON(t, ts.URL+"/solve", SolveRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03, Bounded: true, Seed: 1},
		Alg:             "MAF",
		K:               4,
		MaxSamples:      1 << 12,
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if len(out.Seeds) != 4 {
		t.Fatalf("seeds = %v", out.Seeds)
	}
	if out.Benefit < 0 || out.Benefit > out.TotalBenefit {
		t.Fatalf("benefit %g out of [0, %g]", out.Benefit, out.TotalBenefit)
	}
	if out.Alg != "MAF" {
		t.Fatalf("alg echo %q", out.Alg)
	}
}

func TestSolveValidation(t *testing.T) {
	ts := newTestServer(t)
	// Bad k.
	status, _ := postJSON(t, ts.URL+"/solve", SolveRequest{K: 0}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("k=0 status %d", status)
	}
	// Unknown algorithm.
	status, body := postJSON(t, ts.URL+"/solve", SolveRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03},
		Alg:             "NOPE", K: 2, MaxSamples: 1 << 10,
	}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("bad alg status %d: %s", status, body)
	}
	// Unknown dataset.
	status, _ = postJSON(t, ts.URL+"/solve", SolveRequest{
		InstanceRequest: InstanceRequest{Dataset: "zzz"},
		K:               2,
	}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("bad dataset status %d", status)
	}
	// Unknown field rejected.
	resp, err := http.Post(ts.URL+"/solve", "application/json",
		bytes.NewReader([]byte(`{"bogus": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d", resp.StatusCode)
	}
}

func TestEstimateEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	var out EstimateResponse
	status, body := postJSON(t, ts.URL+"/estimate", EstimateRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03, Bounded: true, Seed: 1},
		Seeds:           []int32{0, 1, 2},
		Iterations:      500,
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if out.Spread < 3 {
		t.Fatalf("spread %g below seed count", out.Spread)
	}
	if out.Benefit < 0 || out.Benefit > out.TotalBenefit {
		t.Fatalf("benefit %g out of range", out.Benefit)
	}
	// Empty seeds rejected.
	status, _ = postJSON(t, ts.URL+"/estimate", EstimateRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03},
	}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("empty seeds status %d", status)
	}
}

func TestBudgetedEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	var out BudgetedResponse
	status, body := postJSON(t, ts.URL+"/budgeted", BudgetedRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03, Bounded: true, Seed: 1},
		Budget:          5,
		NumSamples:      1000,
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if out.Spent > 5 {
		t.Fatalf("spent %g exceeds budget", out.Spent)
	}
	if len(out.Seeds) == 0 {
		t.Fatal("no seeds selected")
	}
	// Bad budget rejected.
	status, _ = postJSON(t, ts.URL+"/budgeted", BudgetedRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03},
	}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("budget=0 status %d", status)
	}
}

func TestTraceEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	var out TraceResponse
	status, body := postJSON(t, ts.URL+"/trace", TraceRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03, Seed: 1},
		Seeds:           []int32{0, 1},
	}, &out)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if len(out.Rounds) == 0 || out.Rounds[0].Round != 0 {
		t.Fatalf("rounds = %+v", out.Rounds)
	}
	if len(out.Rounds[0].Activated) != 2 {
		t.Fatalf("round 0 activations = %v, want the 2 seeds", out.Rounds[0].Activated)
	}
	if out.Total < 2 {
		t.Fatalf("total = %d", out.Total)
	}
	// Empty seeds rejected.
	status, _ = postJSON(t, ts.URL+"/trace", TraceRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03},
	}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("empty seeds status %d", status)
	}
}

func TestInstanceCaching(t *testing.T) {
	s := New(nil)
	ctx := context.Background()
	req := InstanceRequest{Dataset: "facebook", Scale: 0.03, Seed: 5}
	a, err := s.instance(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.instance(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical request not served from cache")
	}
	other, err := s.instance(ctx, InstanceRequest{Dataset: "facebook", Scale: 0.03, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Fatal("different seed shared a cached instance")
	}
}

// TestConcurrentRequests hammers the cached-instance path from many
// goroutines; run with -race to certify the cache locking.
func TestConcurrentRequests(t *testing.T) {
	ts := newTestServer(t)
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			var out SolveResponse
			status, body := postJSONNoFatal(ts.URL+"/solve", SolveRequest{
				InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03, Seed: 1},
				Alg:             "MAF",
				K:               2 + w%3,
				MaxSamples:      1 << 10,
			}, &out)
			if status != http.StatusOK {
				errs <- fmt.Errorf("worker %d: status %d: %s", w, status, body)
				return
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func postJSONNoFatal(url string, body any, out any) (int, string) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, err.Error()
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, err.Error()
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			return 0, err.Error()
		}
	}
	return resp.StatusCode, buf.String()
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Generate one success and one error.
	if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
		resp.Body.Close()
	} else {
		t.Fatal(err)
	}
	status, _ := postJSON(t, ts.URL+"/solve", SolveRequest{K: 0}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("setup error request status %d", status)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["/healthz"] < 1 {
		t.Fatalf("healthz requests = %d", m.Requests["/healthz"])
	}
	if m.Errors["/solve"] < 1 {
		t.Fatalf("solve errors = %d", m.Errors["/solve"])
	}
	if m.UptimeSeconds < 0 {
		t.Fatal("negative uptime")
	}
}

func TestMethodRouting(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz status %d", resp.StatusCode)
	}
}
