// Package serve exposes the IMC solver as a small JSON-over-HTTP
// service, so the library can run as a long-lived sidecar instead of a
// batch CLI. Instances (generated graph + communities) are cached per
// configuration, which makes repeated solves against the same dataset
// cheap.
//
// Endpoints:
//
//	GET  /healthz    liveness probe
//	GET  /datasets   dataset registry with Table I statistics
//	POST /solve      select seeds {dataset, alg, k, ...} → {seeds, ...}
//	POST /estimate   score a given seed set on an instance
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"imc/internal/clock"
	"imc/internal/expt"
	"imc/internal/gen"
)

// Server is the HTTP handler set. Create with New and mount via
// Handler.
type Server struct {
	logger *slog.Logger
	now    clock.Func
	start  time.Time

	mu    sync.Mutex
	cache map[string]*expt.Instance
	// maxCached bounds the instance cache (simple clear-all eviction:
	// instances are cheap to rebuild relative to their memory).
	maxCached int

	// Request counters, keyed by path, for /metrics.
	statsMu  sync.Mutex
	requests map[string]int64
	errors   map[string]int64
}

// New returns a server on the real wall clock. logger may be nil.
func New(logger *slog.Logger) *Server {
	return NewWithClock(logger, nil)
}

// NewWithClock returns a server reading time from now (nil means the
// real wall clock). Tests inject a pinned clock to make uptime and
// latency fields reproducible.
func NewWithClock(logger *slog.Logger, now clock.Func) *Server {
	if logger == nil {
		logger = slog.Default()
	}
	now = clock.OrWall(now)
	return &Server{
		logger:    logger,
		now:       now,
		start:     now(),
		cache:     make(map[string]*expt.Instance),
		maxCached: 16,
		requests:  make(map[string]int64),
		errors:    make(map[string]int64),
	}
}

// Handler returns the routed http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("POST /solve", s.handleSolve)
	mux.HandleFunc("POST /estimate", s.handleEstimate)
	mux.HandleFunc("POST /budgeted", s.handleBudgeted)
	mux.HandleFunc("POST /trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logRequests(mux)
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.statsMu.Lock()
		s.requests[r.URL.Path]++
		if rec.status >= 400 {
			s.errors[r.URL.Path]++
		}
		s.statsMu.Unlock()
		s.logger.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", rec.status, "elapsed", s.now().Sub(start))
	})
}

// Metrics is the /metrics reply.
type Metrics struct {
	UptimeSeconds   float64          `json:"uptimeSeconds"`
	Requests        map[string]int64 `json:"requests"`
	Errors          map[string]int64 `json:"errors"`
	CachedInstances int              `json:"cachedInstances"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.statsMu.Lock()
	reqs := make(map[string]int64, len(s.requests))
	for k, v := range s.requests {
		reqs[k] = v
	}
	errs := make(map[string]int64, len(s.errors))
	for k, v := range s.errors {
		errs[k] = v
	}
	s.statsMu.Unlock()
	s.mu.Lock()
	cached := len(s.cache)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Metrics{
		UptimeSeconds:   s.now().Sub(s.start).Seconds(),
		Requests:        reqs,
		Errors:          errs,
		CachedInstances: cached,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// datasetInfo is one /datasets row.
type datasetInfo struct {
	Name       string `json:"name"`
	Family     string `json:"family"`
	Directed   bool   `json:"directed"`
	PaperNodes int    `json:"paperNodes"`
	PaperEdges int    `json:"paperEdges"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	reg := gen.Registry()
	out := make([]datasetInfo, 0, len(reg))
	for _, name := range gen.Names() {
		d := reg[name]
		out = append(out, datasetInfo{
			Name:       d.Name,
			Family:     d.Family,
			Directed:   d.Directed,
			PaperNodes: d.PaperNodes,
			PaperEdges: d.PaperEdges,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// InstanceRequest selects/builds the experimental instance.
type InstanceRequest struct {
	Dataset   string  `json:"dataset"`
	Scale     float64 `json:"scale"`
	Formation string  `json:"formation"` // "louvain" (default) | "random"
	SizeCap   int     `json:"sizeCap"`
	Bounded   bool    `json:"bounded"`
	Seed      uint64  `json:"seed"`
}

// SolveRequest is the /solve body.
type SolveRequest struct {
	InstanceRequest
	Alg        string  `json:"alg"` // UBG | MAF | MB | HBC | KS | IM
	K          int     `json:"k"`
	Eps        float64 `json:"eps"`
	Delta      float64 `json:"delta"`
	MaxSamples int     `json:"maxSamples"`
	BTMaxRoots int     `json:"btMaxRoots"`
}

// SolveResponse is the /solve reply.
type SolveResponse struct {
	Instance     string  `json:"instance"`
	Alg          string  `json:"alg"`
	Seeds        []int32 `json:"seeds"`
	Benefit      float64 `json:"benefit"`
	TotalBenefit float64 `json:"totalBenefit"`
	ElapsedMS    int64   `json:"elapsedMs"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be ≥ 1, got %d", req.K))
		return
	}
	inst, err := s.instance(req.InstanceRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	alg := strings.ToUpper(req.Alg)
	if alg == "" {
		alg = expt.AlgUBG
	}
	res, err := expt.RunAlg(inst, alg, req.K, expt.RunConfig{
		Eps:        req.Eps,
		Delta:      req.Delta,
		Seed:       req.Seed,
		Runs:       1,
		MaxSamples: req.MaxSamples,
		BTMaxRoots: req.BTMaxRoots,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	seeds := make([]int32, len(res.Seeds))
	copy(seeds, res.Seeds)
	writeJSON(w, http.StatusOK, SolveResponse{
		Instance:     inst.Name,
		Alg:          res.Alg,
		Seeds:        seeds,
		Benefit:      res.Benefit,
		TotalBenefit: inst.Part.TotalBenefit(),
		ElapsedMS:    res.Runtime.Milliseconds(),
	})
}

// EstimateRequest is the /estimate body.
type EstimateRequest struct {
	InstanceRequest
	Seeds      []int32 `json:"seeds"`
	Iterations int     `json:"iterations"`
}

// EstimateResponse is the /estimate reply.
type EstimateResponse struct {
	Instance     string  `json:"instance"`
	Benefit      float64 `json:"benefit"`
	Spread       float64 `json:"spread"`
	TotalBenefit float64 `json:"totalBenefit"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Seeds) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("seeds must be non-empty"))
		return
	}
	inst, err := s.instance(req.InstanceRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	iters := req.Iterations
	if iters < 1 {
		iters = 2000
	}
	if iters > 1<<20 {
		iters = 1 << 20
	}
	seeds := make([]int32, len(req.Seeds))
	copy(seeds, req.Seeds)
	benefit, err := estimateBenefit(inst, seeds, iters, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spread, err := estimateSpread(inst, seeds, iters, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Instance:     inst.Name,
		Benefit:      benefit,
		Spread:       spread,
		TotalBenefit: inst.Part.TotalBenefit(),
	})
}

// BudgetedRequest is the /budgeted body: cost-aware seed selection
// with per-node pricing unit·(outDegree+1) (unit ≤ 0 means uniform
// cost 1).
type BudgetedRequest struct {
	InstanceRequest
	Budget     float64 `json:"budget"`
	CostUnit   float64 `json:"costUnit"`
	NumSamples int     `json:"numSamples"`
}

// BudgetedResponse is the /budgeted reply.
type BudgetedResponse struct {
	Instance  string  `json:"instance"`
	Seeds     []int32 `json:"seeds"`
	Spent     float64 `json:"spent"`
	Benefit   float64 `json:"benefit"`
	ElapsedMS int64   `json:"elapsedMs"`
}

func (s *Server) handleBudgeted(w http.ResponseWriter, r *http.Request) {
	var req BudgetedRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Budget <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("budget must be positive"))
		return
	}
	inst, err := s.instance(req.InstanceRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	samples := req.NumSamples
	if samples < 1 {
		samples = 4000
	}
	if samples > 1<<18 {
		samples = 1 << 18
	}
	start := s.now()
	seeds, spent, benefit, err := solveBudgeted(inst, req.Budget, req.CostUnit, samples, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]int32, len(seeds))
	copy(out, seeds)
	writeJSON(w, http.StatusOK, BudgetedResponse{
		Instance:  inst.Name,
		Seeds:     out,
		Spent:     spent,
		Benefit:   benefit,
		ElapsedMS: s.now().Sub(start).Milliseconds(),
	})
}

// TraceRequest is the /trace body: simulate one cascade and report the
// round-by-round activations.
type TraceRequest struct {
	InstanceRequest
	Seeds []int32 `json:"seeds"`
}

// TraceRoundJSON is one round of a traced cascade.
type TraceRoundJSON struct {
	Round     int     `json:"round"`
	Activated []int32 `json:"activated"`
}

// TraceResponse is the /trace reply.
type TraceResponse struct {
	Instance string           `json:"instance"`
	Rounds   []TraceRoundJSON `json:"rounds"`
	Total    int              `json:"totalActivated"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	var req TraceRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Seeds) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("seeds must be non-empty"))
		return
	}
	inst, err := s.instance(req.InstanceRequest)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rounds := traceCascade(inst, req.Seeds, req.Seed)
	out := TraceResponse{Instance: inst.Name, Rounds: make([]TraceRoundJSON, 0, len(rounds))}
	for _, round := range rounds {
		activated := make([]int32, len(round.Activated))
		copy(activated, round.Activated)
		out.Total += len(activated)
		out.Rounds = append(out.Rounds, TraceRoundJSON{Round: round.Round, Activated: activated})
	}
	writeJSON(w, http.StatusOK, out)
}

// instance returns a cached or freshly built instance for the request.
func (s *Server) instance(req InstanceRequest) (*expt.Instance, error) {
	if req.Dataset == "" {
		req.Dataset = "facebook"
	}
	if req.Scale == 0 {
		req.Scale = 0.1
	}
	formation := expt.Louvain
	if strings.EqualFold(req.Formation, "random") {
		formation = expt.RandomFormation
	}
	key := fmt.Sprintf("%s|%g|%v|%d|%v|%d", req.Dataset, req.Scale, formation, req.SizeCap, req.Bounded, req.Seed)
	s.mu.Lock()
	if inst, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return inst, nil
	}
	s.mu.Unlock()

	inst, err := expt.BuildInstance(expt.InstanceConfig{
		Dataset:   req.Dataset,
		Scale:     req.Scale,
		Formation: formation,
		SizeCap:   req.SizeCap,
		Bounded:   req.Bounded,
		Seed:      req.Seed,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if len(s.cache) >= s.maxCached {
		s.cache = make(map[string]*expt.Instance)
	}
	s.cache[key] = inst
	s.mu.Unlock()
	return inst, nil
}

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
