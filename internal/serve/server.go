// Package serve exposes the IMC solver as a small JSON-over-HTTP
// service, so the library can run as a long-lived sidecar instead of a
// batch CLI. Instances (generated graph + communities) are cached per
// configuration, which makes repeated solves against the same dataset
// cheap.
//
// Endpoints:
//
//	GET  /healthz    liveness probe
//	GET  /datasets   dataset registry with Table I statistics
//	POST /solve      select seeds {dataset, alg, k, ...} → {seeds, ...}
//	POST /estimate   score a given seed set on an instance
//	POST /v1/jobs    submit an async solve job (see jobs.go; requires a
//	                 configured job store)
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"imc/internal/clock"
	"imc/internal/core"
	"imc/internal/diffusion"
	"imc/internal/expt"
	"imc/internal/gen"
	"imc/internal/job"
	"imc/internal/poolcache"
	"imc/internal/ric"
	"imc/internal/shard"
	"imc/internal/stats"
)

// Config tunes the server's robustness knobs.
type Config struct {
	// SolveTimeout is the per-request deadline applied to the heavy
	// endpoints (/solve, /estimate, /budgeted). Zero means the 60 s
	// default; a negative value disables the deadline (the request
	// context still propagates client disconnects).
	SolveTimeout time.Duration
	// MaxInflight bounds how many heavy requests run concurrently;
	// excess requests are shed with 429 + Retry-After. Zero or negative
	// means GOMAXPROCS.
	MaxInflight int
	// JobStore and JobPool, when both set, enable the async /v1/jobs
	// endpoints. The caller owns their lifecycle (Start, Shutdown,
	// Close); the server only submits, queries, and cancels.
	JobStore *job.Store
	JobPool  *job.Pool
	// PoolCache, when set, shares RIC pool snapshots across requests:
	// /solve and /budgeted adopt cached samples and store grown pools
	// back, /estimate reports the cached-pool ĉ_R alongside the Monte
	// Carlo score, and /metrics exposes the hit/miss/extend counters.
	// Nil disables caching (every request samples from scratch).
	PoolCache *poolcache.Cache
	// ShardCoordinator, when set, runs this server as the distributed
	// shard coordinator: /solve farms RIC generation out to the
	// registered workers (splicing the shards back byte-identically),
	// POST /shard/join accepts worker registrations, and /metrics gains
	// a "shard" section. With no registered workers every solve simply
	// generates locally, so enabling it is always safe.
	ShardCoordinator *shard.Coordinator
	// ShardWorker, when set, mounts the shard worker endpoints
	// (/shard/ping, /shard/generate, /shard/pool, /shard/eval) so this
	// server can serve sample ranges to a coordinator.
	ShardWorker *shard.Worker
}

// DefaultSolveTimeout is the per-request deadline when none is set.
const DefaultSolveTimeout = 60 * time.Second

// Server is the HTTP handler set. Create with New and mount via
// Handler.
type Server struct {
	logger       *slog.Logger  //imc:guardedby immutable
	now          clock.Func    //imc:guardedby immutable
	start        time.Time     //imc:guardedby immutable
	solveTimeout time.Duration //imc:guardedby immutable

	// inflight is the heavy-endpoint admission semaphore: a slot is
	// acquired non-blocking, so a full channel sheds load immediately
	// instead of queueing latency.
	inflight chan struct{} //imc:guardedby immutable

	mu    sync.Mutex
	cache map[string]*expt.Instance //imc:guardedby mu
	// maxCached bounds the instance cache (simple clear-all eviction:
	// instances are cheap to rebuild relative to their memory).
	maxCached int //imc:guardedby immutable
	// building holds one in-flight build per cache key (singleflight):
	// concurrent misses wait on the first builder's done channel instead
	// of rebuilding the same instance N times.
	building map[string]*buildResult //imc:guardedby mu
	// buildInstance is the instance factory; a test seam defaulting to
	// expt.BuildInstance (tests replace it before serving traffic).
	buildInstance func(expt.InstanceConfig) (*expt.Instance, error) //imc:guardedby immutable

	// Request counters for /metrics, keyed by registered route (anything
	// else is bucketed under "other" so path scans can't grow the maps).
	// latency holds per-route request-duration histograms for the
	// compute-heavy routes, guarded by the same mutex.
	statsMu   sync.Mutex
	requests  map[string]int64            //imc:guardedby statsMu
	errors4xx map[string]int64            //imc:guardedby statsMu
	errors5xx map[string]int64            //imc:guardedby statsMu
	latency   map[string]*stats.Histogram //imc:guardedby statsMu

	// jobStore/jobPool are nil unless Config enabled the job endpoints.
	jobStore *job.Store //imc:guardedby immutable
	jobPool  *job.Pool  //imc:guardedby immutable

	// poolCache is the shared snapshot store; nil disables caching
	// (poolcache methods are nil-safe, so call sites stay unconditional).
	poolCache *poolcache.Cache //imc:guardedby immutable

	// shardCoord/shardWorker are nil unless Config enabled the
	// distributed shard runtime roles.
	shardCoord  *shard.Coordinator //imc:guardedby immutable
	shardWorker *shard.Worker      //imc:guardedby immutable
}

// buildResult is one singleflight build slot. inst and err are written
// exactly once, before done is closed; the channel close publishes them
// to every waiter.
type buildResult struct {
	done chan struct{}
	inst *expt.Instance
	err  error
}

// New returns a server on the real wall clock. logger may be nil.
func New(logger *slog.Logger) *Server {
	return NewWithClock(logger, nil)
}

// NewWithClock returns a server reading time from now (nil means the
// real wall clock). Tests inject a pinned clock to make uptime and
// latency fields reproducible.
func NewWithClock(logger *slog.Logger, now clock.Func) *Server {
	return NewWithOptions(logger, now, Config{})
}

// NewWithOptions returns a server with explicit robustness settings.
func NewWithOptions(logger *slog.Logger, now clock.Func, cfg Config) *Server {
	if logger == nil {
		logger = slog.Default()
	}
	now = clock.OrWall(now)
	if cfg.SolveTimeout == 0 {
		cfg.SolveTimeout = DefaultSolveTimeout
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		logger:        logger,
		now:           now,
		start:         now(),
		solveTimeout:  cfg.SolveTimeout,
		inflight:      make(chan struct{}, cfg.MaxInflight),
		cache:         make(map[string]*expt.Instance),
		maxCached:     16,
		building:      make(map[string]*buildResult),
		buildInstance: expt.BuildInstance,
		requests:      make(map[string]int64),
		errors4xx:     make(map[string]int64),
		errors5xx:     make(map[string]int64),
		latency:       make(map[string]*stats.Histogram, len(latencyRoutes)),
	}
	for route := range latencyRoutes {
		s.latency[route] = stats.NewLatencyHistogram()
	}
	if cfg.JobStore != nil && cfg.JobPool != nil {
		s.jobStore = cfg.JobStore
		s.jobPool = cfg.JobPool
	}
	s.poolCache = cfg.PoolCache
	s.shardCoord = cfg.ShardCoordinator
	s.shardWorker = cfg.ShardWorker
	return s
}

// routes is the set of registered paths; /metrics counters collapse
// everything else into "other" so a path scan cannot grow the maps.
var routes = map[string]bool{
	"/healthz":  true,
	"/datasets": true,
	"/solve":    true,
	"/estimate": true,
	"/budgeted": true,
	"/trace":    true,
	"/metrics":  true,
	"/v1/jobs":  true,
}

// latencyRoutes is the subset of routes whose request durations feed a
// latency histogram (the ones where tail latency is worth watching).
var latencyRoutes = map[string]bool{
	"/solve":    true,
	"/estimate": true,
	"/budgeted": true,
}

// metricsPath maps a request path to its counter key. All /v1/jobs/…
// subpaths share one key so per-job IDs cannot grow the counter maps.
func metricsPath(p string) string {
	if routes[p] {
		return p
	}
	if strings.HasPrefix(p, "/v1/jobs/") {
		return "/v1/jobs"
	}
	if strings.HasPrefix(p, "/shard/") {
		return "/shard"
	}
	return "other"
}

// Handler returns the routed http.Handler. The compute-heavy endpoints
// sit behind the in-flight semaphore.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("POST /solve", s.heavy(s.handleSolve))
	mux.HandleFunc("POST /estimate", s.heavy(s.handleEstimate))
	mux.HandleFunc("POST /budgeted", s.heavy(s.handleBudgeted))
	mux.HandleFunc("POST /trace", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.jobStore != nil {
		s.registerJobRoutes(mux)
	}
	if s.shardWorker != nil {
		s.shardWorker.Routes(mux)
	}
	if s.shardCoord != nil {
		mux.HandleFunc("POST "+shard.JoinPath, s.shardCoord.HandleJoin)
	}
	return s.logRequests(mux)
}

// heavy guards a compute-heavy handler with the in-flight semaphore:
// the slot is acquired without blocking, so when all slots are busy the
// request is shed immediately with 429 + Retry-After instead of
// queueing behind work the client may no longer want.
func (s *Server) heavy(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, kindOverloaded,
				errors.New("server at capacity, retry later"))
			return
		}
		next(w, r)
	}
}

// requestCtx derives the solver context for one heavy request: the
// request context (so client disconnects cancel the work) bounded by
// the configured per-request deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.solveTimeout < 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.solveTimeout)
}

// statusRecorder captures the response code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := s.now().Sub(start)
		key := metricsPath(r.URL.Path)
		s.statsMu.Lock()
		s.requests[key]++
		switch {
		case rec.status >= 500:
			s.errors5xx[key]++
		case rec.status >= 400:
			s.errors4xx[key]++
		}
		if h := s.latency[key]; h != nil {
			h.Observe(elapsed.Seconds())
		}
		s.statsMu.Unlock()
		s.logger.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", rec.status, "elapsed", elapsed)
	})
}

// Metrics is the /metrics reply. Errors is the combined per-route
// error count; Errors4xx/Errors5xx split client mistakes from server
// failures (including shed and timed-out requests).
type Metrics struct {
	UptimeSeconds   float64          `json:"uptimeSeconds"`
	Requests        map[string]int64 `json:"requests"`
	Errors          map[string]int64 `json:"errors"`
	Errors4xx       map[string]int64 `json:"errors4xx"`
	Errors5xx       map[string]int64 `json:"errors5xx"`
	CachedInstances int              `json:"cachedInstances"`
	// LatencySeconds holds per-route request-duration histograms for
	// the heavy endpoints, with p50/p95/p99 derived from the buckets.
	LatencySeconds map[string]stats.HistogramSnapshot `json:"latencySeconds"`
	// Jobs reports the async job subsystem; absent when jobs are not
	// configured.
	Jobs *JobMetrics `json:"jobs,omitempty"`
	// PoolCache reports the shared pool snapshot store (hits, misses,
	// extends, eviction pressure); absent when caching is disabled.
	PoolCache *poolcache.Stats `json:"poolCache,omitempty"`
	// Shard reports the distributed shard coordinator (worker registry,
	// dispatch/retry/reassignment counters, splice-latency histogram);
	// absent when the server is not a coordinator.
	Shard *shard.Metrics `json:"shard,omitempty"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.statsMu.Lock()
	reqs := make(map[string]int64, len(s.requests))
	for k, v := range s.requests {
		reqs[k] = v
	}
	e4 := make(map[string]int64, len(s.errors4xx))
	combined := make(map[string]int64, len(s.errors4xx)+len(s.errors5xx))
	for k, v := range s.errors4xx {
		e4[k] = v
		combined[k] += v
	}
	e5 := make(map[string]int64, len(s.errors5xx))
	for k, v := range s.errors5xx {
		e5[k] = v
		combined[k] += v
	}
	lat := make(map[string]stats.HistogramSnapshot, len(s.latency))
	for k, h := range s.latency {
		lat[k] = h.Snapshot()
	}
	s.statsMu.Unlock()
	s.mu.Lock()
	cached := len(s.cache)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Metrics{
		UptimeSeconds:   s.now().Sub(s.start).Seconds(),
		Requests:        reqs,
		Errors:          combined,
		Errors4xx:       e4,
		Errors5xx:       e5,
		CachedInstances: cached,
		LatencySeconds:  lat,
		Jobs:            s.jobMetrics(),
		PoolCache:       s.poolCacheMetrics(),
		Shard:           s.shardMetrics(),
	})
}

// shardMetrics snapshots the coordinator for /metrics; nil when this
// server is not a coordinator, so the section is omitted entirely.
func (s *Server) shardMetrics() *shard.Metrics {
	if s.shardCoord == nil {
		return nil
	}
	m := s.shardCoord.Metrics()
	return &m
}

// poolCacheMetrics snapshots the pool cache for /metrics; nil when
// caching is disabled, so the field is omitted rather than all-zero.
func (s *Server) poolCacheMetrics() *poolcache.Stats {
	if s.poolCache == nil {
		return nil
	}
	st := s.poolCache.Stats()
	return &st
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// datasetInfo is one /datasets row.
type datasetInfo struct {
	Name       string `json:"name"`
	Family     string `json:"family"`
	Directed   bool   `json:"directed"`
	PaperNodes int    `json:"paperNodes"`
	PaperEdges int    `json:"paperEdges"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	reg := gen.Registry()
	out := make([]datasetInfo, 0, len(reg))
	for _, name := range gen.Names() {
		d := reg[name]
		out = append(out, datasetInfo{
			Name:       d.Name,
			Family:     d.Family,
			Directed:   d.Directed,
			PaperNodes: d.PaperNodes,
			PaperEdges: d.PaperEdges,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// InstanceRequest selects/builds the experimental instance.
type InstanceRequest struct {
	Dataset   string  `json:"dataset"`
	Scale     float64 `json:"scale"`
	Formation string  `json:"formation"` // "louvain" (default) | "random"
	SizeCap   int     `json:"sizeCap"`
	Bounded   bool    `json:"bounded"`
	Seed      uint64  `json:"seed"`
}

// SolveRequest is the /solve body.
type SolveRequest struct {
	InstanceRequest
	Alg        string  `json:"alg"` // UBG | MAF | MB | HBC | KS | IM
	K          int     `json:"k"`
	Eps        float64 `json:"eps"`
	Delta      float64 `json:"delta"`
	MaxSamples int     `json:"maxSamples"`
	BTMaxRoots int     `json:"btMaxRoots"`
}

// SolveResponse is the /solve reply.
type SolveResponse struct {
	Instance     string  `json:"instance"`
	Alg          string  `json:"alg"`
	Seeds        []int32 `json:"seeds"`
	Benefit      float64 `json:"benefit"`
	TotalBenefit float64 `json:"totalBenefit"`
	ElapsedMS    int64   `json:"elapsedMs"`
}

// knownAlgs is the algorithm whitelist for /solve, validated up front
// so a typo stays a 400 instead of surfacing as a solver failure.
var knownAlgs = func() map[string]bool {
	m := make(map[string]bool, len(expt.AllAlgorithms)+2)
	for _, a := range expt.AllAlgorithms {
		m[a] = true
	}
	m[expt.AlgUBGLS] = true
	m[expt.AlgDD] = true
	return m
}()

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, kindValidation, err)
		return
	}
	if req.K < 1 {
		writeError(w, http.StatusBadRequest, kindValidation, fmt.Errorf("k must be ≥ 1, got %d", req.K))
		return
	}
	alg := strings.ToUpper(req.Alg)
	if alg == "" {
		alg = expt.AlgUBG
	}
	if !knownAlgs[alg] {
		writeError(w, http.StatusBadRequest, kindValidation,
			fmt.Errorf("unknown algorithm %q (valid: %v)", alg, expt.AllAlgorithms))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	inst, err := s.instance(ctx, req.InstanceRequest)
	if err != nil {
		writeInstanceError(w, err)
		return
	}
	cfg := expt.RunConfig{
		Eps:        req.Eps,
		Delta:      req.Delta,
		Seed:       req.Seed,
		Runs:       1,
		MaxSamples: req.MaxSamples,
		BTMaxRoots: req.BTMaxRoots,
	}
	// One cache session per request: the core solvers adopt cached
	// samples through Grow and store grown pools back at every
	// checkpoint boundary. Cache trouble is never a solve failure —
	// Save errors are logged and the request proceeds. (A nil session,
	// when no cache is configured, adopts and saves nothing.)
	var sess *poolcache.Session
	if s.poolCache != nil {
		sess = s.poolCache.Begin(inst.G, inst.Part, diffusion.IC, req.Seed)
		cfg.Checkpoint = func(cp core.Checkpoint) error {
			if err := sess.Save(cp.Pool); err != nil {
				s.logger.Warn("pool cache save failed", "err", err)
			}
			return nil
		}
	}
	switch {
	case s.shardCoord != nil:
		// Coordinator mode: adopt whatever the cache holds, then farm the
		// missing tail out to the shard workers. Both halves splice
		// stream-indexed samples, so the grown pool is byte-identical to
		// local generation — distribution changes where samples come
		// from, never what they are.
		spec := shardSpec(req.InstanceRequest)
		coord := s.shardCoord
		cfg.Grow = func(ctx context.Context, pool *ric.Pool, target int) error {
			sess.Adopt(pool, target)
			return coord.Grow(ctx, spec, pool, target)
		}
	case sess != nil:
		cfg.Grow = sess.Grow
	}
	res, err := expt.RunAlgCtx(ctx, inst, alg, req.K, cfg)
	if err != nil {
		writeSolverError(w, err)
		return
	}
	seeds := make([]int32, len(res.Seeds))
	copy(seeds, res.Seeds)
	writeJSON(w, http.StatusOK, SolveResponse{
		Instance:     inst.Name,
		Alg:          res.Alg,
		Seeds:        seeds,
		Benefit:      res.Benefit,
		TotalBenefit: inst.Part.TotalBenefit(),
		ElapsedMS:    res.Runtime.Milliseconds(),
	})
}

// EstimateRequest is the /estimate body.
type EstimateRequest struct {
	InstanceRequest
	Seeds      []int32 `json:"seeds"`
	Iterations int     `json:"iterations"`
}

// EstimateResponse is the /estimate reply. PoolBenefit/PoolSamples
// appear only when the pool cache holds a snapshot for the request's
// (instance, seed): the cached-pool estimate ĉ_R(seeds) comes for free
// and gives a second, sampling-independent read on the Monte Carlo
// score.
type EstimateResponse struct {
	Instance     string   `json:"instance"`
	Benefit      float64  `json:"benefit"`
	Spread       float64  `json:"spread"`
	TotalBenefit float64  `json:"totalBenefit"`
	PoolBenefit  *float64 `json:"poolBenefit,omitempty"`
	PoolSamples  int      `json:"poolSamples,omitempty"`
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, kindValidation, err)
		return
	}
	if len(req.Seeds) == 0 {
		writeError(w, http.StatusBadRequest, kindValidation, fmt.Errorf("seeds must be non-empty"))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	inst, err := s.instance(ctx, req.InstanceRequest)
	if err != nil {
		writeInstanceError(w, err)
		return
	}
	iters := req.Iterations
	if iters < 1 {
		iters = 2000
	}
	if iters > 1<<20 {
		iters = 1 << 20
	}
	seeds := make([]int32, len(req.Seeds))
	copy(seeds, req.Seeds)
	benefit, err := estimateBenefit(ctx, inst, seeds, iters, req.Seed)
	if err != nil {
		writeSolverError(w, err)
		return
	}
	spread, err := estimateSpread(ctx, inst, seeds, iters, req.Seed)
	if err != nil {
		writeSolverError(w, err)
		return
	}
	resp := EstimateResponse{
		Instance:     inst.Name,
		Benefit:      benefit,
		Spread:       spread,
		TotalBenefit: inst.Part.TotalBenefit(),
	}
	if pool := s.poolCache.Begin(inst.G, inst.Part, diffusion.IC, req.Seed).Cached(); pool != nil {
		pb := pool.CHat(seeds)
		resp.PoolBenefit = &pb
		resp.PoolSamples = pool.NumSamples()
	}
	writeJSON(w, http.StatusOK, resp)
}

// BudgetedRequest is the /budgeted body: cost-aware seed selection
// with per-node pricing unit·(outDegree+1) (unit ≤ 0 means uniform
// cost 1).
type BudgetedRequest struct {
	InstanceRequest
	Budget     float64 `json:"budget"`
	CostUnit   float64 `json:"costUnit"`
	NumSamples int     `json:"numSamples"`
}

// BudgetedResponse is the /budgeted reply.
type BudgetedResponse struct {
	Instance  string  `json:"instance"`
	Seeds     []int32 `json:"seeds"`
	Spent     float64 `json:"spent"`
	Benefit   float64 `json:"benefit"`
	ElapsedMS int64   `json:"elapsedMs"`
}

func (s *Server) handleBudgeted(w http.ResponseWriter, r *http.Request) {
	var req BudgetedRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, kindValidation, err)
		return
	}
	if req.Budget <= 0 {
		writeError(w, http.StatusBadRequest, kindValidation, fmt.Errorf("budget must be positive"))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	inst, err := s.instance(ctx, req.InstanceRequest)
	if err != nil {
		writeInstanceError(w, err)
		return
	}
	samples := req.NumSamples
	if samples < 1 {
		samples = 4000
	}
	if samples > 1<<18 {
		samples = 1 << 18
	}
	start := s.now()
	sess := s.poolCache.Begin(inst.G, inst.Part, diffusion.IC, req.Seed)
	seeds, spent, benefit, err := solveBudgeted(ctx, inst, req.Budget, req.CostUnit, samples, req.Seed, sess)
	if err != nil {
		writeSolverError(w, err)
		return
	}
	out := make([]int32, len(seeds))
	copy(out, seeds)
	writeJSON(w, http.StatusOK, BudgetedResponse{
		Instance:  inst.Name,
		Seeds:     out,
		Spent:     spent,
		Benefit:   benefit,
		ElapsedMS: s.now().Sub(start).Milliseconds(),
	})
}

// TraceRequest is the /trace body: simulate one cascade and report the
// round-by-round activations.
type TraceRequest struct {
	InstanceRequest
	Seeds []int32 `json:"seeds"`
}

// TraceRoundJSON is one round of a traced cascade.
type TraceRoundJSON struct {
	Round     int     `json:"round"`
	Activated []int32 `json:"activated"`
}

// TraceResponse is the /trace reply.
type TraceResponse struct {
	Instance string           `json:"instance"`
	Rounds   []TraceRoundJSON `json:"rounds"`
	Total    int              `json:"totalActivated"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	var req TraceRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, kindValidation, err)
		return
	}
	if len(req.Seeds) == 0 {
		writeError(w, http.StatusBadRequest, kindValidation, fmt.Errorf("seeds must be non-empty"))
		return
	}
	inst, err := s.instance(r.Context(), req.InstanceRequest)
	if err != nil {
		writeInstanceError(w, err)
		return
	}
	rounds := traceCascade(inst, req.Seeds, req.Seed)
	out := TraceResponse{Instance: inst.Name, Rounds: make([]TraceRoundJSON, 0, len(rounds))}
	for _, round := range rounds {
		activated := make([]int32, len(round.Activated))
		copy(activated, round.Activated)
		out.Total += len(activated)
		out.Rounds = append(out.Rounds, TraceRoundJSON{Round: round.Round, Activated: activated})
	}
	writeJSON(w, http.StatusOK, out)
}

// instance returns a cached or freshly built instance for the request.
// Concurrent misses on one key are deduplicated (singleflight): the
// first caller builds, the rest wait on its done channel — or bail when
// their own ctx is cancelled. The build itself is not ctx-bound: it is
// bounded work whose result every waiter (and the cache) can still use.
func (s *Server) instance(ctx context.Context, req InstanceRequest) (*expt.Instance, error) {
	if req.Dataset == "" {
		req.Dataset = "facebook"
	}
	if req.Scale == 0 {
		req.Scale = 0.1
	}
	formation := expt.Louvain
	if strings.EqualFold(req.Formation, "random") {
		formation = expt.RandomFormation
	}
	key := fmt.Sprintf("%s|%g|%v|%d|%v|%d", req.Dataset, req.Scale, formation, req.SizeCap, req.Bounded, req.Seed)
	s.mu.Lock()
	if inst, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return inst, nil
	}
	if b, ok := s.building[key]; ok {
		s.mu.Unlock()
		select {
		case <-b.done:
			return b.inst, b.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	b := &buildResult{done: make(chan struct{})}
	s.building[key] = b
	s.mu.Unlock()

	inst, err := s.buildInstance(expt.InstanceConfig{
		Dataset:   req.Dataset,
		Scale:     req.Scale,
		Formation: formation,
		SizeCap:   req.SizeCap,
		Bounded:   req.Bounded,
		Seed:      req.Seed,
	})
	b.inst, b.err = inst, err

	s.mu.Lock()
	delete(s.building, key)
	if err == nil {
		// At capacity, evict a single entry to make room — never the key
		// being inserted. The old clear-all here threw away every cached
		// instance (and with it the identity of any pool-cache donors
		// pointing at them) just to admit one more.
		if _, exists := s.cache[key]; !exists && len(s.cache) >= s.maxCached {
			for k := range s.cache {
				if k == key {
					continue
				}
				delete(s.cache, k)
				break
			}
		}
		s.cache[key] = inst
	}
	s.mu.Unlock()
	close(b.done)
	return inst, err
}

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Error kinds reported in the JSON error body, so clients can branch on
// a stable token instead of parsing messages.
const (
	kindValidation = "validation"
	kindCanceled   = "canceled"
	kindTimeout    = "timeout"
	kindOverloaded = "overloaded"
	kindInternal   = "internal"
	kindNotFound   = "not-found"
	kindConflict   = "conflict"
)

func writeError(w http.ResponseWriter, status int, kind string, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error(), "kind": kind})
}

// writeSolverError classifies a post-validation failure: cancellation
// and deadline expiry are service-level conditions (503 — the request
// was valid, the server stopped the work), everything else is an
// internal failure (500). Validation errors never reach this path.
func writeSolverError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, kindTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, kindCanceled, err)
	default:
		writeError(w, http.StatusInternalServerError, kindInternal, err)
	}
}

// writeInstanceError classifies an instance-build failure: ctx errors
// are service-level (503), anything else is a bad instance spec
// (unknown dataset, invalid scale — the client's mistake, 400).
func writeInstanceError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeSolverError(w, err)
		return
	}
	writeError(w, http.StatusBadRequest, kindValidation, err)
}
