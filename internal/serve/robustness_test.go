package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"imc/internal/expt"
)

func solveBody(t *testing.T) []byte {
	t.Helper()
	raw, err := json.Marshal(SolveRequest{
		InstanceRequest: InstanceRequest{Dataset: "facebook", Scale: 0.03, Bounded: true, Seed: 1},
		Alg:             "MAF",
		K:               3,
		MaxSamples:      1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func decodeErrorKind(t *testing.T, body []byte) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decode error body %q: %v", body, err)
	}
	return e.Kind
}

// TestSolveTimeoutReturns503 pins the deadline path: with a
// sub-microsecond solve timeout the kernel's first ctx poll fires and
// the handler must answer 503 with the timeout kind.
func TestSolveTimeoutReturns503(t *testing.T) {
	ts := httptest.NewServer(NewWithOptions(nil, nil, Config{
		SolveTimeout: time.Nanosecond,
		MaxInflight:  4,
	}).Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(solveBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", resp.StatusCode, buf.String())
	}
	if kind := decodeErrorKind(t, buf.Bytes()); kind != kindTimeout {
		t.Fatalf("kind %q, want %q", kind, kindTimeout)
	}
}

// TestCancelMidSolveReturns503 cancels the request context while the
// handler is inside the instance build, then asserts the handler
// answers 503 promptly AND the semaphore slot is released — a
// disconnected client must not leak capacity. The build is gated on
// channels so the cancellation point is deterministic.
func TestCancelMidSolveReturns503(t *testing.T) {
	s := NewWithOptions(nil, nil, Config{MaxInflight: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	realBuild := s.buildInstance
	s.buildInstance = func(cfg expt.InstanceConfig) (*expt.Instance, error) {
		close(started)
		<-release
		return realBuild(cfg)
	}
	h := s.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(solveBody(t))).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		h.ServeHTTP(rec, req)
		close(done)
	}()
	<-started // the handler holds the only in-flight slot and is mid-build
	cancel()
	close(release)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("handler did not return after cancellation")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", rec.Code, rec.Body.String())
	}
	if kind := decodeErrorKind(t, rec.Body.Bytes()); kind != kindCanceled {
		t.Fatalf("kind %q, want %q", kind, kindCanceled)
	}

	// The slot must be free again: a fresh request (cache hit now, the
	// gated build still completed and was cached) solves end to end.
	rec2 := httptest.NewRecorder()
	req2 := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(solveBody(t)))
	h.ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("follow-up status %d, want 200 (slot leaked?); body %s", rec2.Code, rec2.Body.String())
	}
}

// TestLoadShedding pins the 429 contract: with every in-flight slot
// occupied a heavy request is shed immediately with Retry-After, and
// admitted again once a slot frees.
func TestLoadShedding(t *testing.T) {
	s := NewWithOptions(nil, nil, Config{MaxInflight: 1})
	h := s.Handler()
	s.inflight <- struct{}{} // occupy the only slot

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(solveBody(t))))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if kind := decodeErrorKind(t, rec.Body.Bytes()); kind != kindOverloaded {
		t.Fatalf("kind %q, want %q", kind, kindOverloaded)
	}

	<-s.inflight // free the slot
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(solveBody(t))))
	if rec2.Code != http.StatusOK {
		t.Fatalf("post-shed status %d, want 200; body %s", rec2.Code, rec2.Body.String())
	}
}

// TestSingleflightConcurrentMisses pins the dogpile fix: N concurrent
// misses on one cache key must run exactly one build.
func TestSingleflightConcurrentMisses(t *testing.T) {
	s := New(nil)
	var builds atomic.Int64
	release := make(chan struct{})
	realBuild := s.buildInstance
	s.buildInstance = func(cfg expt.InstanceConfig) (*expt.Instance, error) {
		builds.Add(1)
		<-release
		return realBuild(cfg)
	}
	req := InstanceRequest{Dataset: "facebook", Scale: 0.03, Seed: 5}
	const workers = 8
	insts := make([]*expt.Instance, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			insts[w], errs[w] = s.instance(context.Background(), req)
		}(w)
	}
	// Let every goroutine reach the builder or its wait channel, then
	// let the single build finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if insts[w] != insts[0] {
			t.Fatalf("worker %d got a different instance pointer", w)
		}
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("builds = %d, want exactly 1", got)
	}
}

// TestSingleflightWaiterHonorsContext: a waiter blocked behind another
// request's build must abandon the wait when its own context dies.
func TestSingleflightWaiterHonorsContext(t *testing.T) {
	s := New(nil)
	release := make(chan struct{})
	realBuild := s.buildInstance
	started := make(chan struct{})
	s.buildInstance = func(cfg expt.InstanceConfig) (*expt.Instance, error) {
		close(started)
		<-release
		return realBuild(cfg)
	}
	req := InstanceRequest{Dataset: "facebook", Scale: 0.03, Seed: 6}
	go func() {
		_, _ = s.instance(context.Background(), req) // builder
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.instance(ctx, req); err != context.Canceled {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
}

// TestMetricsCardinalityBounded pins the 404-flood fix: unregistered
// paths collapse into the "other" bucket instead of growing the
// counter maps without bound.
func TestMetricsCardinalityBounded(t *testing.T) {
	ts := newTestServer(t)
	const flood = 40
	for i := 0; i < flood; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/scan-%d", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("scan path status %d, want 404", resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["other"] < flood {
		t.Fatalf("other requests = %d, want ≥ %d", m.Requests["other"], flood)
	}
	if m.Errors4xx["other"] < flood {
		t.Fatalf("other 4xx = %d, want ≥ %d", m.Errors4xx["other"], flood)
	}
	maxKeys := len(routes) + 1 // registered routes + "other"
	if len(m.Requests) > maxKeys {
		t.Fatalf("requests map has %d keys (cardinality leak): %v", len(m.Requests), m.Requests)
	}
	for key := range m.Requests {
		if key != "other" && !routes[key] {
			t.Fatalf("unexpected counter key %q", key)
		}
	}
}

// TestErrorClassSplit pins the 4xx/5xx metrics split: a validation
// error lands in Errors4xx, a timeout in Errors5xx, and both appear in
// the combined Errors map.
func TestErrorClassSplit(t *testing.T) {
	ts := httptest.NewServer(NewWithOptions(nil, nil, Config{
		SolveTimeout: time.Nanosecond,
		MaxInflight:  4,
	}).Handler())
	defer ts.Close()
	// 400: validation.
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader([]byte(`{"k":0}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("validation status %d", resp.StatusCode)
	}
	// 503: timeout.
	resp, err = http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(solveBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timeout status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Errors4xx["/solve"] != 1 {
		t.Fatalf("solve 4xx = %d, want 1", m.Errors4xx["/solve"])
	}
	if m.Errors5xx["/solve"] != 1 {
		t.Fatalf("solve 5xx = %d, want 1", m.Errors5xx["/solve"])
	}
	if m.Errors["/solve"] != 2 {
		t.Fatalf("solve combined errors = %d, want 2", m.Errors["/solve"])
	}
}
