// Package exact computes ground-truth IMC quantities by exhaustive
// enumeration. It is exponential in both the edge count (2^m live-edge
// worlds) and the seed budget (C(n,k) candidate sets), so it only
// applies to toy instances — which is exactly its purpose: the test
// suite uses it to certify the RIC estimator's unbiasedness and the
// solvers' near-optimality where the truth is computable.
package exact

import (
	"fmt"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
)

// MaxEdges bounds the live-edge enumeration (2^MaxEdges worlds).
const MaxEdges = 22

// Benefit computes c(S) exactly by enumerating every deterministic
// world of the live-edge model.
func Benefit(g *graph.Graph, part *community.Partition, seeds []graph.NodeID) (float64, error) {
	m := g.NumEdges()
	if m > MaxEdges {
		return 0, fmt.Errorf("exact: %d edges exceeds enumeration bound %d", m, MaxEdges)
	}
	edges := g.Edges()
	n := g.NumNodes()
	adj := make([][]graph.NodeID, n)
	active := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)
	total := 0.0
	for mask := 0; mask < 1<<m; mask++ {
		pr := 1.0
		for i := range adj {
			adj[i] = adj[i][:0]
		}
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				pr *= e.Weight
				adj[e.From] = append(adj[e.From], e.To)
			} else {
				pr *= 1 - e.Weight
			}
			if pr == 0 {
				break
			}
		}
		if pr == 0 {
			continue
		}
		for i := range active {
			active[i] = false
		}
		queue = queue[:0]
		for _, s := range seeds {
			if s >= 0 && int(s) < n && !active[s] {
				active[s] = true
				queue = append(queue, s)
			}
		}
		for head := 0; head < len(queue); head++ {
			for _, v := range adj[queue[head]] {
				if !active[v] {
					active[v] = true
					queue = append(queue, v)
				}
			}
		}
		total += pr * diffusion.CommunityBenefit(part, active)
	}
	return total, nil
}

// Spread computes the expected activation count exactly, by the same
// enumeration.
func Spread(g *graph.Graph, seeds []graph.NodeID) (float64, error) {
	m := g.NumEdges()
	if m > MaxEdges {
		return 0, fmt.Errorf("exact: %d edges exceeds enumeration bound %d", m, MaxEdges)
	}
	edges := g.Edges()
	n := g.NumNodes()
	adj := make([][]graph.NodeID, n)
	active := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)
	total := 0.0
	for mask := 0; mask < 1<<m; mask++ {
		pr := 1.0
		for i := range adj {
			adj[i] = adj[i][:0]
		}
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				pr *= e.Weight
				adj[e.From] = append(adj[e.From], e.To)
			} else {
				pr *= 1 - e.Weight
			}
		}
		if pr == 0 {
			continue
		}
		for i := range active {
			active[i] = false
		}
		queue = queue[:0]
		count := 0
		for _, s := range seeds {
			if s >= 0 && int(s) < n && !active[s] {
				active[s] = true
				count++
				queue = append(queue, s)
			}
		}
		for head := 0; head < len(queue); head++ {
			for _, v := range adj[queue[head]] {
				if !active[v] {
					active[v] = true
					count++
					queue = append(queue, v)
				}
			}
		}
		total += pr * float64(count)
	}
	return total, nil
}

// MaxLTWorlds bounds the Linear Threshold live-edge enumeration
// (∏(d_in(v)+1) worlds).
const MaxLTWorlds = 1 << 22

// BenefitLT computes c(S) under the Linear Threshold model exactly, by
// enumerating the live-edge worlds of the LT model: independently for
// each node, at most one incoming edge is live — edge (u, v) with
// probability w(u,v), none with probability 1 − Σ_u w(u,v).
func BenefitLT(g *graph.Graph, part *community.Partition, seeds []graph.NodeID) (float64, error) {
	n := g.NumNodes()
	worlds := 1.0
	for v := graph.NodeID(0); int(v) < n; v++ {
		worlds *= float64(g.InDegree(v) + 1)
		if worlds > MaxLTWorlds {
			return 0, fmt.Errorf("exact: LT world count exceeds %d", MaxLTWorlds)
		}
	}
	// choice[v] ∈ [0, d_in(v)]: which in-edge is live (d_in = none).
	choice := make([]int, n)
	active := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)
	total := 0.0
	for {
		// Probability of this world and its live adjacency.
		pr := 1.0
		for v := graph.NodeID(0); int(v) < n; v++ {
			froms, ws, _ := g.InNeighbors(v)
			sum := 0.0
			for _, w := range ws {
				sum += w
			}
			if choice[v] < len(froms) {
				pr *= ws[choice[v]]
			} else {
				none := 1 - sum
				if none < 0 {
					none = 0
				}
				pr *= none
			}
			if pr == 0 {
				break
			}
		}
		if pr > 0 {
			for i := range active {
				active[i] = false
			}
			queue = queue[:0]
			for _, s := range seeds {
				if s >= 0 && int(s) < n && !active[s] {
					active[s] = true
					queue = append(queue, s)
				}
			}
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				// Forward scan: v activates if its chosen in-edge
				// source is u.
				tos, _ := g.OutNeighbors(u)
				for _, v := range tos {
					if active[v] {
						continue
					}
					froms, _, _ := g.InNeighbors(v)
					if choice[v] < len(froms) && froms[choice[v]] == u {
						active[v] = true
						queue = append(queue, v)
					}
				}
			}
			total += pr * diffusion.CommunityBenefit(part, active)
		}
		// Advance the mixed-radix counter.
		v := 0
		for v < n {
			choice[v]++
			if choice[v] <= g.InDegree(graph.NodeID(v)) {
				break
			}
			choice[v] = 0
			v++
		}
		if v == n {
			break
		}
	}
	return total, nil
}

// Optimum finds the optimal seed set of size k by exhaustive search
// over all C(n, k) candidates, scoring each with Benefit.
func Optimum(g *graph.Graph, part *community.Partition, k int) ([]graph.NodeID, float64, error) {
	n := g.NumNodes()
	if k < 1 || k > n {
		return nil, 0, fmt.Errorf("exact: k=%d out of [1, %d]", k, n)
	}
	var (
		best      []graph.NodeID
		bestValue = -1.0
		current   = make([]graph.NodeID, 0, k)
		firstErr  error
	)
	var recurse func(start int)
	recurse = func(start int) {
		if firstErr != nil {
			return
		}
		if len(current) == k {
			v, err := Benefit(g, part, current)
			if err != nil {
				firstErr = err
				return
			}
			if v > bestValue {
				bestValue = v
				best = append(best[:0], current...)
			}
			return
		}
		// Prune: not enough nodes left to fill the set.
		for i := start; i <= n-(k-len(current)); i++ {
			current = append(current, graph.NodeID(i))
			recurse(i + 1)
			current = current[:len(current)-1]
		}
	}
	recurse(0)
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return append([]graph.NodeID(nil), best...), bestValue, nil
}
