package exact

import (
	"math"
	"testing"

	"imc/internal/community"
	"imc/internal/core"
	"imc/internal/diffusion"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/maxr"
	"imc/internal/ric"
)

func tinyInstance(t *testing.T, seed uint64) (*graph.Graph, *community.Partition) {
	t.Helper()
	g, err := gen.RandomDirected(8, 14, 0.6, seed)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(8, [][]graph.NodeID{{0, 1, 2, 3}, {4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part
}

func TestBenefitHandComputable(t *testing.T) {
	// a -> x with weight p; community {x} threshold 1 benefit 1:
	// c({a}) = p exactly.
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 0.3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(2, [][]graph.NodeID{{1}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetUniformBenefits(1)
	got, err := Benefit(g, part, []graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("c({a}) = %g, want 0.3", got)
	}
	// Seeding the member itself yields benefit 1 regardless of edges.
	got, err = Benefit(g, part, []graph.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("c({x}) = %g, want 1", got)
	}
}

func TestBenefitMatchesMonteCarlo(t *testing.T) {
	g, part := tinyInstance(t, 5)
	seeds := []graph.NodeID{0, 4}
	want, err := Benefit(g, part, seeds)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := diffusion.EstimateBenefit(g, part, seeds, diffusion.MCOptions{Iterations: 200000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-mc) > 0.02+0.02*want {
		t.Fatalf("exact %g vs Monte-Carlo %g", want, mc)
	}
}

func TestSpreadMatchesClosedForm(t *testing.T) {
	g, err := gen.PathGraph(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// E[spread({0})] = 1 + 0.5 + 0.25 = 1.75.
	got, err := Spread(g, []graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("spread = %g, want 1.75", got)
	}
}

func TestEnumerationBoundEnforced(t *testing.T) {
	g, err := gen.RandomDirected(10, MaxEdges+1, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.Random(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Benefit(g, part, []graph.NodeID{0}); err == nil {
		t.Fatal("want edge-bound error")
	}
	if _, err := Spread(g, []graph.NodeID{0}); err == nil {
		t.Fatal("want edge-bound error")
	}
}

func TestOptimumBudgetValidation(t *testing.T) {
	g, part := tinyInstance(t, 1)
	if _, _, err := Optimum(g, part, 0); err == nil {
		t.Fatal("want k error")
	}
	if _, _, err := Optimum(g, part, 99); err == nil {
		t.Fatal("want k error")
	}
}

func TestOptimumDominatesEverySet(t *testing.T) {
	g, part := tinyInstance(t, 7)
	seeds, value, err := Optimum(g, part, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 2 {
		t.Fatalf("optimum seeds %v", seeds)
	}
	// Spot-check against a handful of explicit sets.
	for _, s := range [][]graph.NodeID{{0, 1}, {0, 4}, {3, 7}, {2, 5}} {
		v, err := Benefit(g, part, s)
		if err != nil {
			t.Fatal(err)
		}
		if v > value+1e-12 {
			t.Fatalf("set %v scores %g above claimed optimum %g", s, v, value)
		}
	}
}

// TestSolversNearOptimalOnTinyInstances is the end-to-end quality
// certificate: on enumerable instances, IMCAF+UBG must come close to
// the true optimum (sampling noise allowed).
func TestSolversNearOptimalOnTinyInstances(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g, part := tinyInstance(t, seed*13)
		_, opt, err := Optimum(g, part, 2)
		if err != nil {
			t.Fatal(err)
		}
		if opt <= 0 {
			continue
		}
		sol, err := core.Solve(g, part, maxr.UBG{}, core.Options{
			K: 2, Eps: 0.2, Delta: 0.2, Seed: seed, MaxSamples: 1 << 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Benefit(g, part, sol.Seeds)
		if err != nil {
			t.Fatal(err)
		}
		if got < 0.75*opt {
			t.Fatalf("seed %d: UBG exact value %g below 75%% of optimum %g", seed, got, opt)
		}
	}
}

// TestBenefitLTHandComputable validates the LT enumerator on a
// two-node chain: under LT, a -> x with weight p activates x with
// probability exactly p.
func TestBenefitLTHandComputable(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 0.3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(2, [][]graph.NodeID{{1}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetUniformBenefits(1)
	got, err := BenefitLT(g, part, []graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("LT c({a}) = %g, want 0.3", got)
	}
}

// TestLTPipelineMatchesExact cross-validates the three LT engines —
// exact enumeration, forward Monte Carlo, and RIC-LT sampling — on one
// tiny instance.
func TestLTPipelineMatchesExact(t *testing.T) {
	g, err := gen.RandomDirected(6, 8, 0.5, 77)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(6, [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	seeds := []graph.NodeID{0, 3}

	want, err := BenefitLT(g, part, seeds)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := diffusion.EstimateBenefit(g, part, seeds, diffusion.MCOptions{
		Iterations: 100000, Seed: 5, Model: diffusion.LT,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-want) > 0.03+0.03*want {
		t.Fatalf("forward LT MC %g vs exact %g", mc, want)
	}
	pool, err := ric.NewPool(g, part, ric.PoolOptions{Model: diffusion.LT, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(60000); err != nil {
		t.Fatal(err)
	}
	if got := pool.CHat(seeds); math.Abs(got-want) > 0.05+0.05*want {
		t.Fatalf("RIC-LT ĉ %g vs exact %g", got, want)
	}
}

// TestTheorem7GuaranteeHoldsEmpirically validates IMCAF's headline
// guarantee on enumerable instances: across independent runs,
// c(S) ≥ α(1−ε)·OPT must hold in at least a 1−δ fraction (here: with
// δ=0.3, at most ~1/5 failures tolerated across 10 runs, allowing for
// small-sample slack).
func TestTheorem7GuaranteeHoldsEmpirically(t *testing.T) {
	g, part := tinyInstance(t, 31)
	_, opt, err := Optimum(g, part, 2)
	if err != nil {
		t.Fatal(err)
	}
	if opt <= 0 {
		t.Skip("degenerate instance")
	}
	const (
		eps   = 0.3
		delta = 0.3
		runs  = 10
	)
	failures := 0
	for run := uint64(0); run < runs; run++ {
		sol, err := core.Solve(g, part, maxr.UBG{}, core.Options{
			K: 2, Eps: eps, Delta: delta, Seed: run*97 + 1, MaxSamples: 1 << 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		val, err := Benefit(g, part, sol.Seeds)
		if err != nil {
			t.Fatal(err)
		}
		// UBG's effective α is its data-dependent sandwich factor; use
		// the very conservative floor α(1−ε) with α = sandwich·(1−1/e),
		// bounded below by the MB-style √ guarantee. For a strong yet
		// fair check we require val ≥ (1−1/e)(1−ε)·OPT·ratio with the
		// observed sandwich ratio.
		bound := (1 - 1/math.E) * (1 - eps) * sol.SandwichRatio * opt
		if val < bound-1e-9 {
			failures++
		}
	}
	if failures > 2 {
		t.Fatalf("guarantee violated in %d/%d runs (δ=%.1f)", failures, runs, delta)
	}
}

// TestRICPoolUnbiasedAgainstExact cross-checks the RIC estimator once
// more, this time through the exact package's independent enumerator.
func TestRICPoolUnbiasedAgainstExact(t *testing.T) {
	g, part := tinyInstance(t, 21)
	sol, err := core.SolveFixed(g, part, maxr.UBG{}, 2, 40000, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Benefit(g, part, sol.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.CHat-want) > 0.05+0.05*want {
		t.Fatalf("pool ĉ = %g vs exact %g", sol.CHat, want)
	}
}
