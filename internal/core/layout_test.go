//go:build amd64

package core

import "unsafe"

// Compile-time layout pin (gc/amd64): EstimateResult is //imc:compact
// — 24 bytes, no padding. The constant index compiles only when the
// size is exactly 24; results are returned by value on every estimate
// call, so layout drift is a per-call cost.
var _ = [1]struct{}{}[unsafe.Sizeof(EstimateResult{})-24]
