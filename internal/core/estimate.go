// Package core implements the paper's Section V: the IMC Algorithmic
// Framework (IMCAF, Alg. 5) that wraps any α-approximate MAXR solver
// into an α(1−ε)-approximate IMC algorithm with probability ≥ 1−δ, and
// the Estimate verification procedure (Alg. 6) built on the
// Dagum–Karp–Luby–Ross stopping rule.
package core

import (
	"context"
	"fmt"
	"math"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
	"imc/internal/ric"
	"imc/internal/xrand"
)

// ctxPollBatch is how many fresh RIC samples Estimate draws between
// cooperative ctx.Err() polls — batch-boundary cancellation that keeps
// the check off the per-sample hot path.
const ctxPollBatch = 1024

// EstimateResult is the outcome of the Estimate procedure. One is
// produced per stop-and-stare round; the layout is pinned waste-free
// (24 bytes, flag byte in the tail word's slack).
//
//imc:compact
type EstimateResult struct {
	// Benefit is the estimated c(S) (or ν(S) in fractional mode).
	Benefit float64
	// Samples is the number of RIC samples drawn.
	Samples int
	// Converged reports whether the stopping rule triggered before
	// TMax; a false value corresponds to Alg. 6 returning −1.
	Converged bool
}

// EstimateOptions configures the Estimate procedure.
type EstimateOptions struct {
	// Eps is ε′, the relative error target.
	Eps float64
	// Delta is δ′, the failure probability.
	Delta float64
	// TMax caps the number of samples (Alg. 6's T_max).
	TMax int
	// Model selects the propagation model for fresh samples.
	Model diffusion.Model
	// Seed drives the fresh sample stream.
	Seed uint64
	// Fractional switches the per-sample statistic from the 0/1
	// indicator X_g(S) to min(|I_g(S)|/h_g, 1) — estimating ν(S)
	// instead of c(S). Used by the ν-guided UBG stop rule.
	Fractional bool
}

// Estimate implements the paper's Alg. 6: draw fresh RIC samples until
// the influenced mass reaches the stopping-rule threshold, returning an
// estimate of c(S) with relative error ≤ ε′ with probability ≥ 1−δ′.
func Estimate(g *graph.Graph, part *community.Partition, seeds []graph.NodeID, opts EstimateOptions) (EstimateResult, error) {
	return EstimateCtx(context.Background(), g, part, seeds, opts)
}

// EstimateCtx is Estimate with cooperative cancellation: the sampling
// loop polls ctx every ctxPollBatch draws (never per sample). A
// completed run is byte-identical to the ctx-free path.
//
//imc:hotpath
//imc:longrun
func EstimateCtx(ctx context.Context, g *graph.Graph, part *community.Partition, seeds []graph.NodeID, opts EstimateOptions) (EstimateResult, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return EstimateResult{}, fmt.Errorf("core: estimate eps %g out of (0, 1)", opts.Eps)
	}
	if opts.Delta <= 0 || opts.Delta >= 1 {
		return EstimateResult{}, fmt.Errorf("core: estimate delta %g out of (0, 1)", opts.Delta)
	}
	if opts.TMax < 1 {
		return EstimateResult{}, fmt.Errorf("core: estimate TMax %d must be ≥ 1", opts.TMax)
	}
	gen, err := ric.NewGenerator(g, part, opts.Model)
	if err != nil {
		return EstimateResult{}, err
	}
	inSeed := make([]bool, g.NumNodes())
	for _, s := range seeds {
		if s >= 0 && int(s) < len(inSeed) {
			inSeed[s] = true
		}
	}
	if err := ctx.Err(); err != nil {
		return EstimateResult{}, err
	}
	root := xrand.New(opts.Seed)
	// Λ' = 1 + 4(e−2)·ln(2/δ')·(1+ε')/ε'².
	lambda := 1 + 4*(math.E-2)*math.Log(2/opts.Delta)*(1+opts.Eps)/(opts.Eps*opts.Eps)
	mass := 0.0
	var rng xrand.RNG
	for t := 1; t <= opts.TMax; t++ {
		if t&(ctxPollBatch-1) == 0 {
			if err := ctx.Err(); err != nil {
				return EstimateResult{}, err
			}
		}
		root.SplitInto(uint64(t), &rng)
		if opts.Fractional {
			mass += gen.FractionalInfluence(&rng, inSeed)
		} else if gen.Influenced(&rng, inSeed) {
			mass++
		}
		if mass >= lambda {
			return EstimateResult{
				Benefit:   part.TotalBenefit() * lambda / float64(t),
				Samples:   t,
				Converged: true,
			}, nil
		}
	}
	// Alg. 6 returns −1 here; we surface the best-effort mean with
	// Converged=false so callers can fall through to pool doubling.
	return EstimateResult{
		Benefit:   part.TotalBenefit() * mass / float64(opts.TMax),
		Samples:   opts.TMax,
		Converged: false,
	}, nil
}
