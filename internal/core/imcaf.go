package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"time"

	"imc/internal/clock"
	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
	"imc/internal/maxr"
	"imc/internal/ric"
)

// StopReason explains why IMCAF terminated.
type StopReason int

const (
	// StopCondition means the Alg. 5 statistical check passed: the
	// candidate's estimated quality certifies the α(1−ε) guarantee.
	StopCondition StopReason = iota + 1
	// StopPsiCap means the pool reached the worst-case bound Ψ (eq. 22),
	// which alone certifies the guarantee (Theorem 6).
	StopPsiCap
	// StopSampleCap means the configured MaxSamples safety cap was hit
	// before either statistical certificate; the result is best-effort.
	StopSampleCap
)

// String implements fmt.Stringer.
func (s StopReason) String() string {
	switch s {
	case StopCondition:
		return "stop-condition"
	case StopPsiCap:
		return "psi-cap"
	case StopSampleCap:
		return "sample-cap"
	default:
		return fmt.Sprintf("StopReason(%d)", int(s))
	}
}

// Options configures one IMCAF run.
type Options struct {
	// K is the seed budget.
	K int
	// Eps is the total approximation slack ε ∈ (0, 1); the paper's
	// experiments use 0.2.
	Eps float64
	// Delta is the total failure probability δ ∈ (0, 1); default 0.2.
	Delta float64
	// Model selects IC (default) or LT.
	Model diffusion.Model
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds sample-generation parallelism; 0 = GOMAXPROCS.
	Workers int
	// MaxSamples is a practical safety cap on |R| (Ψ can be astronomically
	// large for weak α). 0 defaults to 1<<20.
	MaxSamples int
	// NuGuided switches to the paper's UBG integration (§V-B end):
	// stop-and-stare against the submodular ν objective with
	// maxr.GreedyNu as the selector, yielding the
	// (c(S_ν)/ν(S_ν))·(1−1/e−ε) guarantee. Solver is ignored when set.
	NuGuided bool
	// Logger, when non-nil, receives per-round progress (pool size,
	// candidate quality, stop checks) at Debug level.
	Logger *slog.Logger
	// Clock supplies timestamps for the Elapsed report; nil means the
	// real wall clock. Only reporting reads it — never sampling.
	Clock clock.Func
	// Checkpoint, when non-nil, is invoked at every pool-growth boundary
	// (after the initial generation and after each doubling, before the
	// round's solver pass) with the live pool and round counter. A
	// checkpoint error aborts the solve: the caller asked for durable
	// progress and is not getting it. The callback must not mutate the
	// pool.
	Checkpoint CheckpointFunc
	// Resume, when non-nil, restarts the stop-and-stare loop from a
	// previously checkpointed pool instead of generating the initial
	// batch. The pool must have been created over the same graph and
	// partition with the same Seed and Model (validated), and Options
	// must otherwise equal the original run's — then the resumed run
	// retraces the uninterrupted one exactly, seed for seed.
	Resume *Checkpoint
	// Grow, when non-nil, supplies pool samples in place of plain
	// generation: the stop-and-stare loop calls it wherever it would
	// otherwise generate (the initial batch and each doubling), and the
	// hook must leave the pool with at least target samples. This is
	// the pool cache's seam — a cached snapshot donates its prefix and
	// only the missing tail is generated. Because sample i is always
	// drawn from PRNG stream i, a correct hook is observationally
	// identical to generation, so every stop check still runs against
	// exactly the pool a cold run would have had. Nil means
	// ric.Pool.EnsureCtx.
	Grow GrowFunc
}

// GrowFunc grows pool to at least target samples. Implementations may
// source samples anywhere (generation, a cache, a donor pool) but the
// result must be byte-identical to pool.EnsureCtx(ctx, target) — the
// solvers' determinism and the statistical guarantees both ride on it.
type GrowFunc func(ctx context.Context, pool *ric.Pool, target int) error

// growFunc returns the configured Grow hook or the plain-generation
// default.
func (o Options) growFunc() GrowFunc {
	if o.Grow != nil {
		return o.Grow
	}
	return func(ctx context.Context, pool *ric.Pool, target int) error {
		return pool.EnsureCtx(ctx, target)
	}
}

// Checkpoint captures the resumable progress of a SolveCtx run at a
// pool-growth boundary. Everything else the loop consults — Λ, Ψ, the
// estimate-check seeds — is recomputed deterministically from Options,
// so the pool plus the round counter is the whole resume state.
type Checkpoint struct {
	// Pool is the live sample pool; persist it with Pool.Save.
	Pool *ric.Pool
	// Doublings is the stop-and-stare round counter at the boundary.
	Doublings int
}

// CheckpointFunc receives solver checkpoints. Implementations typically
// serialize cp.Pool and record cp.Doublings somewhere durable.
type CheckpointFunc func(cp Checkpoint) error

func (o Options) normalized() (Options, error) {
	if o.K < 1 {
		return o, fmt.Errorf("core: K=%d must be ≥ 1", o.K)
	}
	if o.Eps <= 0 || o.Eps >= 1 {
		return o, fmt.Errorf("core: Eps %g out of (0, 1)", o.Eps)
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return o, fmt.Errorf("core: Delta %g out of (0, 1)", o.Delta)
	}
	if o.Model == 0 {
		o.Model = diffusion.IC
	}
	if o.MaxSamples <= 0 {
		o.MaxSamples = 1 << 20
	}
	return o, nil
}

// Solution is the outcome of an IMCAF run.
type Solution struct {
	// Seeds is the selected seed set.
	Seeds []graph.NodeID
	// CHat is the pool estimate ĉ_R(Seeds) at termination.
	CHat float64
	// EstimatedBenefit is the independent Estimate-procedure value when
	// the stop condition fired (0 when terminated by a cap).
	EstimatedBenefit float64
	// Samples is the final pool size |R|.
	Samples int
	// Doublings counts pool-doubling rounds.
	Doublings int
	// Stopped records why the loop ended.
	Stopped StopReason
	// Alpha is the solver's approximation guarantee used in Ψ.
	Alpha float64
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
	// SandwichRatio is ĉ_R/ν̂_R of the returned seeds (UBG's empirical
	// factor); 0 when ν̂_R is 0.
	SandwichRatio float64
}

// Solve runs the IMC Algorithmic Framework (paper Alg. 5) with the
// given MAXR solver: generate Λ RIC samples, repeatedly solve MAXR and
// verify the candidate with the Estimate procedure, doubling the pool
// until a statistical certificate or the Ψ bound is reached.
func Solve(g *graph.Graph, part *community.Partition, solver maxr.Solver, opts Options) (Solution, error) {
	return SolveCtx(context.Background(), g, part, solver, opts)
}

// SolveCtx is Solve with cooperative cancellation: the stop-and-stare
// loop checks ctx between doubling rounds and threads it into sample
// generation, the MAXR solver (when it implements maxr.CtxSolver), and
// the Estimate verification batches. A run that completes returns
// byte-identical seeds with or without a context — the checks never
// touch the PRNG streams — while a cancelled run returns the ctx error
// promptly (within one worker batch, ~1k samples).
//
//imc:longrun
func SolveCtx(ctx context.Context, g *graph.Graph, part *community.Partition, solver maxr.Solver, opts Options) (Solution, error) {
	opts, err := opts.normalized()
	if err != nil {
		return Solution{}, err
	}
	if err := compatible(g, part, opts.K); err != nil {
		return Solution{}, err
	}
	now := clock.OrWall(opts.Clock)
	start := now()

	var pool *ric.Pool
	resumeFrom := 0
	if opts.Resume != nil {
		if pool, err = validateResume(g, part, opts); err != nil {
			return Solution{}, err
		}
		resumeFrom = opts.Resume.Doublings
	} else {
		pool, err = ric.NewPool(g, part, ric.PoolOptions{Model: opts.Model, Seed: opts.Seed, Workers: opts.Workers})
		if err != nil {
			return Solution{}, err
		}
	}

	// Alg. 5 line 1: split ε, δ for the Ψ bound (paper setting:
	// ε1 = ε2 = ε/2, δ1 = δ2 = δ/2).
	eps1, eps2 := opts.Eps/2, opts.Eps/2
	delta1, delta2 := opts.Delta/2, opts.Delta/2
	// Alg. 5 line 3: split ε for the stop stage (paper setting ε/4 each;
	// ε ≥ ε1+ε2+ε3+ε1ε2 holds).
	se1, se2, se3 := opts.Eps/4, opts.Eps/4, opts.Eps/4

	alpha := solver.Guarantee(pool, opts.K)
	if opts.NuGuided {
		alpha = 1 - 1/math.E
	}
	psi := PsiBound(g, part, opts.K, alpha, eps1, eps2, delta1, delta2)

	// Alg. 5 line 4: Λ = (1+ε1)(1+ε2)·(3/ε3²)·ln(3/(2δ)). (The paper's
	// typography is ambiguous about the ε3 exponent; we use the SSA
	// form, see DESIGN.md.)
	lambda := (1 + se1) * (1 + se2) * 3 / (se3 * se3) * math.Log(3/(2*opts.Delta))
	initial := int(math.Ceil(lambda))
	if initial < 1 {
		initial = 1
	}
	if initial > opts.MaxSamples {
		initial = opts.MaxSamples
	}
	grow := opts.growFunc()
	if opts.Resume == nil {
		if err := grow(ctx, pool, initial); err != nil {
			return Solution{}, err
		}
	}

	// Checkpoint count for the union bound over stop stages. Ψ can be
	// infinite when the solver's guarantee is vacuous (e.g. MAF with
	// h > k), in which case the doubling schedule is bounded by
	// MaxSamples instead.
	checkpoints := math.Log2(psi / lambda)
	if math.IsInf(checkpoints, 1) || math.IsNaN(checkpoints) {
		checkpoints = math.Log2(float64(opts.MaxSamples) / lambda)
	}
	if checkpoints < 1 {
		checkpoints = 1
	}
	estDelta := opts.Delta / (3 * checkpoints)
	if estDelta >= 1 {
		estDelta = 0.5
	}
	if estDelta < 1e-9 {
		estDelta = 1e-9
	}

	logger := opts.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	logger.Debug("imcaf start",
		"k", opts.K, "alpha", alpha, "psi", psi, "lambda", lambda,
		"initialSamples", initial, "resumeDoublings", resumeFrom)

	sol := Solution{Alpha: alpha, Stopped: StopSampleCap}
	doublings := resumeFrom
	// Boundary checkpoint before the first (or first resumed) solver
	// round: once this returns, a crash loses at most one round of work.
	if opts.Checkpoint != nil {
		if err := opts.Checkpoint(Checkpoint{Pool: pool, Doublings: doublings}); err != nil {
			return Solution{}, fmt.Errorf("core: checkpoint at round %d: %w", doublings, err)
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		seeds, chat, ratio, err := runSolver(ctx, pool, solver, opts)
		if err != nil {
			return Solution{}, err
		}
		sol.Seeds = seeds
		sol.CHat = chat
		sol.SandwichRatio = ratio
		sol.Samples = pool.NumSamples()
		sol.Doublings = doublings

		// Alg. 5 line 8: enough influenced samples for a reliable check?
		coverage := influencedMass(pool, seeds, opts.NuGuided)
		logger.Debug("imcaf round",
			"round", doublings, "samples", pool.NumSamples(),
			"chat", chat, "coverage", coverage)
		if coverage >= lambda {
			tmax := int(float64(pool.NumSamples()) * (1 + se2) / (1 - se2) * (se3 * se3) / (se2 * se2))
			if tmax < 1 {
				tmax = 1
			}
			est, err := EstimateCtx(ctx, g, part, seeds, EstimateOptions{
				Eps:        se2,
				Delta:      estDelta,
				TMax:       tmax,
				Model:      opts.Model,
				Seed:       opts.Seed ^ 0x5e5e5e5e5e5e5e5e ^ uint64(doublings)<<32,
				Fractional: opts.NuGuided,
			})
			if err != nil {
				return Solution{}, err
			}
			objective := chat
			if opts.NuGuided {
				objective = pool.NuHat(seeds)
			}
			logger.Debug("imcaf estimate check",
				"round", doublings, "estimate", est.Benefit,
				"converged", est.Converged, "objective", objective)
			if est.Converged && objective <= (1+se1)*est.Benefit {
				sol.EstimatedBenefit = est.Benefit
				sol.Stopped = StopCondition
				break
			}
		}

		if float64(pool.NumSamples()) >= psi {
			sol.Stopped = StopPsiCap
			break
		}
		if pool.NumSamples()*2 > opts.MaxSamples {
			sol.Stopped = StopSampleCap
			break
		}
		if err := grow(ctx, pool, pool.NumSamples()*2); err != nil {
			return Solution{}, err
		}
		doublings++
		if opts.Checkpoint != nil {
			if err := opts.Checkpoint(Checkpoint{Pool: pool, Doublings: doublings}); err != nil {
				return Solution{}, fmt.Errorf("core: checkpoint at round %d: %w", doublings, err)
			}
		}
	}
	sol.Elapsed = now().Sub(start)
	logger.Debug("imcaf done",
		"stopped", sol.Stopped.String(), "samples", sol.Samples,
		"chat", sol.CHat, "elapsed", sol.Elapsed)
	return sol, nil
}

// validateResume checks that a Resume checkpoint can only continue the
// run it was taken from: same instance shape, same seed, same model,
// and a non-empty pool. Anything else would silently fork the sample
// sequence and break the byte-identical-resume guarantee.
func validateResume(g *graph.Graph, part *community.Partition, opts Options) (*ric.Pool, error) {
	pool := opts.Resume.Pool
	switch {
	case pool == nil:
		return nil, fmt.Errorf("core: resume checkpoint has no pool")
	case pool.NumSamples() == 0:
		return nil, fmt.Errorf("core: resume pool is empty")
	case opts.Resume.Doublings < 0:
		return nil, fmt.Errorf("core: resume doublings %d is negative", opts.Resume.Doublings)
	case pool.Graph().NumNodes() != g.NumNodes():
		return nil, fmt.Errorf("core: resume pool covers %d nodes, graph has %d", pool.Graph().NumNodes(), g.NumNodes())
	case pool.Partition().NumCommunities() != part.NumCommunities():
		return nil, fmt.Errorf("core: resume pool has %d communities, partition has %d", pool.Partition().NumCommunities(), part.NumCommunities())
	case pool.Seed() != opts.Seed:
		return nil, fmt.Errorf("core: resume pool seed %d does not match Options.Seed %d", pool.Seed(), opts.Seed)
	case pool.Model() != opts.Model:
		return nil, fmt.Errorf("core: resume pool model %v does not match Options.Model %v", pool.Model(), opts.Model)
	}
	return pool, nil
}

// discardHandler drops every record; it stands in when no Logger is
// configured so call sites stay unconditional.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// SolveFixed runs a MAXR solver against a fixed-size pool, skipping the
// adaptive stop machinery. Benchmarks and examples that want direct
// control over sampling effort use this entry point.
func SolveFixed(g *graph.Graph, part *community.Partition, solver maxr.Solver, k, numSamples int, opts Options) (Solution, error) {
	return SolveFixedCtx(context.Background(), g, part, solver, k, numSamples, opts)
}

// SolveFixedCtx is SolveFixed with cooperative cancellation threaded
// into sample generation and the solver.
//
//imc:longrun
func SolveFixedCtx(ctx context.Context, g *graph.Graph, part *community.Partition, solver maxr.Solver, k, numSamples int, opts Options) (Solution, error) {
	if numSamples < 1 {
		return Solution{}, fmt.Errorf("core: numSamples=%d must be ≥ 1", numSamples)
	}
	opts.K = k
	if opts.Eps == 0 {
		opts.Eps = 0.2
	}
	if opts.Delta == 0 {
		opts.Delta = 0.2
	}
	opts, err := opts.normalized()
	if err != nil {
		return Solution{}, err
	}
	if err := compatible(g, part, k); err != nil {
		return Solution{}, err
	}
	now := clock.OrWall(opts.Clock)
	start := now()
	pool, err := ric.NewPool(g, part, ric.PoolOptions{Model: opts.Model, Seed: opts.Seed, Workers: opts.Workers})
	if err != nil {
		return Solution{}, err
	}
	if err := opts.growFunc()(ctx, pool, numSamples); err != nil {
		return Solution{}, err
	}
	seeds, chat, ratio, err := runSolver(ctx, pool, solver, opts)
	if err != nil {
		return Solution{}, err
	}
	return Solution{
		Seeds:         seeds,
		CHat:          chat,
		Samples:       pool.NumSamples(),
		Stopped:       StopSampleCap,
		Alpha:         solver.Guarantee(pool, k),
		Elapsed:       now().Sub(start),
		SandwichRatio: ratio,
	}, nil
}

// runSolver executes the configured selection step: the MAXR solver, or
// greedy-on-ν when NuGuided. The ctx reaches solvers that implement
// maxr.CtxSolver; plain solvers get one up-front cancellation check.
func runSolver(ctx context.Context, pool *ric.Pool, solver maxr.Solver, opts Options) (seeds []graph.NodeID, chat, ratio float64, err error) {
	if opts.NuGuided {
		seeds, err = maxr.GreedyNuCtx(ctx, pool, opts.K)
		if err != nil {
			return nil, 0, 0, err
		}
		chat = pool.CHat(seeds)
	} else {
		var res maxr.Result
		res, err = maxr.SolveWithContext(ctx, solver, pool, opts.K)
		if err != nil {
			return nil, 0, 0, err
		}
		seeds, chat = res.Seeds, res.CHat
	}
	ratio = maxr.SandwichRatio(pool, seeds)
	return seeds, chat, ratio, nil
}

// influencedMass returns the Alg. 5 line-8 statistic: the influenced
// sample count (or, in ν-guided mode, the fractional sum).
func influencedMass(pool *ric.Pool, seeds []graph.NodeID, fractional bool) float64 {
	st := pool.NewState()
	for _, s := range seeds {
		st.Add(s)
	}
	if fractional {
		return st.FractionalSum()
	}
	return float64(st.InfluencedCount())
}

// PsiBound computes Ψ (paper eq. 22): the worst-case number of RIC
// samples certifying an α(1−ε) guarantee, using the optimum lower bound
// c(S*) ≥ βk/h (β = min benefit, h = max threshold).
func PsiBound(g *graph.Graph, part *community.Partition, k int, alpha, eps1, eps2, delta1, delta2 float64) float64 {
	b := part.TotalBenefit()
	beta := part.MinBenefit()
	h := float64(part.MaxThreshold())
	if beta <= 0 || h <= 0 || alpha <= 0 {
		return math.Inf(1)
	}
	n := float64(g.NumNodes())
	lnBinom := lnChoose(n, float64(k))
	t1 := 2 * math.Log(1/delta1) / (eps1 * eps1)
	t2 := 3 * (lnBinom + math.Log(1/delta2)) / (alpha * alpha * eps2 * eps2)
	lead := b * h / (beta * float64(k))
	return lead * math.Max(t1, t2)
}

// lnChoose returns ln C(n, k) via log-gamma.
func lnChoose(n, k float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// compatible validates (graph, partition, budget) agreement.
func compatible(g *graph.Graph, part *community.Partition, k int) error {
	if g.NumNodes() != part.NumNodes() {
		return fmt.Errorf("core: graph has %d nodes but partition covers %d", g.NumNodes(), part.NumNodes())
	}
	if k > g.NumNodes() {
		return fmt.Errorf("core: K=%d exceeds node count %d", k, g.NumNodes())
	}
	return part.Validate()
}
