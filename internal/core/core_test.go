package core

import (
	"bytes"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/maxr"
	"imc/internal/ric"
)

// testInstance builds a 30-node random graph with 6 random communities
// (threshold 2, population benefits).
func testInstance(t *testing.T, seed uint64) (*graph.Graph, *community.Partition) {
	t.Helper()
	g, err := gen.RandomDirected(30, 100, 0.4, seed)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.Random(30, 6, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part
}

func TestSolveEndToEnd(t *testing.T) {
	g, part := testInstance(t, 3)
	sol, err := Solve(g, part, maxr.UBG{}, Options{K: 4, Eps: 0.3, Delta: 0.3, Seed: 7, MaxSamples: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) != 4 {
		t.Fatalf("got %d seeds", len(sol.Seeds))
	}
	if sol.CHat <= 0 || sol.CHat > part.TotalBenefit() {
		t.Fatalf("ĉ = %g out of range", sol.CHat)
	}
	if sol.Samples < 1 {
		t.Fatal("no samples recorded")
	}
	if sol.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
	// The pool estimate must agree with an independent Monte-Carlo
	// estimate of c(S) within loose statistical tolerance.
	mc, err := diffusion.EstimateBenefit(g, part, sol.Seeds, diffusion.MCOptions{Iterations: 20000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.CHat-mc) > 0.15*part.TotalBenefit() {
		t.Fatalf("pool ĉ = %g vs Monte-Carlo c = %g", sol.CHat, mc)
	}
}

func TestSolveAllSolvers(t *testing.T) {
	g, part := testInstance(t, 9)
	for _, s := range []maxr.Solver{maxr.UBG{}, maxr.MAF{}, maxr.MB{BT: maxr.BT{MaxRoots: 10}}} {
		sol, err := Solve(g, part, s, Options{K: 3, Eps: 0.3, Delta: 0.3, Seed: 5, MaxSamples: 1 << 13})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(sol.Seeds) != 3 {
			t.Fatalf("%s returned %d seeds", s.Name(), len(sol.Seeds))
		}
		if sol.Stopped != StopCondition && sol.Stopped != StopPsiCap && sol.Stopped != StopSampleCap {
			t.Fatalf("%s: unknown stop reason %v", s.Name(), sol.Stopped)
		}
	}
}

// TestSolveVacuousGuarantee regresses the Ψ=∞ path: MAF's ⌊k/h⌋/r
// guarantee is zero when every threshold exceeds k, and IMCAF must fall
// back to the MaxSamples-bounded doubling schedule rather than erroring.
func TestSolveVacuousGuarantee(t *testing.T) {
	g, err := gen.RandomDirected(30, 120, 0.5, 77)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.Random(30, 3, 78)
	if err != nil {
		t.Fatal(err)
	}
	part.SetFractionThresholds(0.9) // h ≈ 9-10 > k
	part.SetPopulationBenefits()
	sol, err := Solve(g, part, maxr.MAF{}, Options{K: 3, Eps: 0.3, Delta: 0.3, Seed: 5, MaxSamples: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) != 3 {
		t.Fatalf("got %d seeds", len(sol.Seeds))
	}
	if sol.Alpha != 0 {
		t.Fatalf("alpha = %g, want 0 (vacuous)", sol.Alpha)
	}
}

func TestSolveNuGuided(t *testing.T) {
	g, part := testInstance(t, 21)
	sol, err := Solve(g, part, maxr.UBG{}, Options{K: 3, Eps: 0.3, Delta: 0.3, Seed: 5, MaxSamples: 1 << 13, NuGuided: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) != 3 {
		t.Fatalf("got %d seeds", len(sol.Seeds))
	}
	if math.Abs(sol.Alpha-(1-1/math.E)) > 1e-12 {
		t.Fatalf("ν-guided alpha = %g", sol.Alpha)
	}
	if sol.SandwichRatio < 0 || sol.SandwichRatio > 1+1e-9 {
		t.Fatalf("sandwich ratio %g", sol.SandwichRatio)
	}
}

func TestSolveFixed(t *testing.T) {
	g, part := testInstance(t, 31)
	sol, err := SolveFixed(g, part, maxr.UBG{}, 3, 500, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Samples != 500 {
		t.Fatalf("samples = %d, want exactly 500", sol.Samples)
	}
	if len(sol.Seeds) != 3 {
		t.Fatalf("seeds = %v", sol.Seeds)
	}
	if _, err := SolveFixed(g, part, maxr.UBG{}, 3, 0, Options{}); err == nil {
		t.Fatal("want numSamples error")
	}
}

func TestSolveDeterministic(t *testing.T) {
	g, part := testInstance(t, 41)
	opts := Options{K: 3, Eps: 0.3, Delta: 0.3, Seed: 77, MaxSamples: 1 << 12}
	a, err := Solve(g, part, maxr.UBG{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, part, maxr.UBG{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.CHat != b.CHat || a.Samples != b.Samples || len(a.Seeds) != len(b.Seeds) {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seeds differ: %v vs %v", a.Seeds, b.Seeds)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	g, part := testInstance(t, 51)
	bad := []Options{
		{K: 0, Eps: 0.2, Delta: 0.2},
		{K: 2, Eps: 0, Delta: 0.2},
		{K: 2, Eps: 0.2, Delta: 1.5},
		{K: 1000, Eps: 0.2, Delta: 0.2}, // K > n
	}
	for i, o := range bad {
		if _, err := Solve(g, part, maxr.UBG{}, o); err == nil {
			t.Fatalf("case %d: want validation error", i)
		}
	}
	// Mismatched partition.
	small, err := community.Random(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(g, small, maxr.UBG{}, Options{K: 2, Eps: 0.2, Delta: 0.2}); err == nil {
		t.Fatal("want mismatch error")
	}
}

func TestEstimateAgainstMonteCarlo(t *testing.T) {
	g, part := testInstance(t, 61)
	seeds := []graph.NodeID{0, 1, 2, 3, 4, 5}
	est, err := Estimate(g, part, seeds, EstimateOptions{Eps: 0.1, Delta: 0.1, TMax: 1 << 18, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Converged {
		t.Fatal("estimate did not converge on a rich seed set")
	}
	mc, err := diffusion.EstimateBenefit(g, part, seeds, diffusion.MCOptions{Iterations: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if mc <= 0 {
		t.Fatal("MC benefit unexpectedly zero")
	}
	if math.Abs(est.Benefit-mc)/mc > 0.2 {
		t.Fatalf("Estimate %g vs Monte-Carlo %g", est.Benefit, mc)
	}
}

func TestEstimateFractionalAtLeastIndicator(t *testing.T) {
	g, part := testInstance(t, 71)
	seeds := []graph.NodeID{0, 1, 2}
	ind, err := Estimate(g, part, seeds, EstimateOptions{Eps: 0.15, Delta: 0.15, TMax: 1 << 17, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	frac, err := Estimate(g, part, seeds, EstimateOptions{Eps: 0.15, Delta: 0.15, TMax: 1 << 17, Seed: 9, Fractional: true})
	if err != nil {
		t.Fatal(err)
	}
	// ν(S) ≥ c(S) (Lemma 3); allow statistical slack.
	if frac.Benefit < ind.Benefit*0.7 {
		t.Fatalf("fractional estimate %g implausibly below indicator %g", frac.Benefit, ind.Benefit)
	}
}

func TestEstimateValidation(t *testing.T) {
	g, part := testInstance(t, 81)
	cases := []EstimateOptions{
		{Eps: 0, Delta: 0.1, TMax: 10},
		{Eps: 0.1, Delta: 0, TMax: 10},
		{Eps: 0.1, Delta: 0.1, TMax: 0},
	}
	for i, o := range cases {
		if _, err := Estimate(g, part, []graph.NodeID{0}, o); err == nil {
			t.Fatalf("case %d: want error", i)
		}
	}
}

func TestPsiBoundBehaviour(t *testing.T) {
	g, part := testInstance(t, 91)
	base := PsiBound(g, part, 4, 0.5, 0.1, 0.1, 0.1, 0.1)
	if base <= 0 || math.IsInf(base, 1) {
		t.Fatalf("Ψ = %g", base)
	}
	// Weaker α needs more samples.
	weak := PsiBound(g, part, 4, 0.05, 0.1, 0.1, 0.1, 0.1)
	if weak <= base {
		t.Fatalf("Ψ(α=0.05)=%g not above Ψ(α=0.5)=%g", weak, base)
	}
	// Tighter ε needs more samples.
	tight := PsiBound(g, part, 4, 0.5, 0.05, 0.05, 0.1, 0.1)
	if tight <= base {
		t.Fatalf("Ψ(ε/2)=%g not above Ψ=%g", tight, base)
	}
	if v := PsiBound(g, part, 4, 0, 0.1, 0.1, 0.1, 0.1); !math.IsInf(v, 1) {
		t.Fatalf("Ψ with α=0 should be +Inf, got %g", v)
	}
}

func TestStopReasonString(t *testing.T) {
	if StopCondition.String() != "stop-condition" || StopPsiCap.String() != "psi-cap" || StopSampleCap.String() != "sample-cap" {
		t.Fatal("StopReason strings wrong")
	}
	if StopReason(99).String() != "StopReason(99)" {
		t.Fatal("unknown stop reason string")
	}
}

// TestSolveLeavesNoGoroutines certifies every worker goroutine joins:
// the goroutine count after repeated solves must return to (near) the
// pre-solve level.
func TestSolveLeavesNoGoroutines(t *testing.T) {
	g, part := testInstance(t, 7)
	// Warm up once so lazily-started runtime goroutines don't count.
	if _, err := Solve(g, part, maxr.MAF{}, Options{K: 2, Eps: 0.3, Delta: 0.3, Seed: 1, MaxSamples: 1 << 11, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		if _, err := Solve(g, part, maxr.MAF{}, Options{K: 2, Eps: 0.3, Delta: 0.3, Seed: uint64(i), MaxSamples: 1 << 11, Workers: 4}); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines grew %d -> %d: worker leak", before, after)
	}
}

// TestSolveLogsProgress checks the optional slog hook emits the
// start/round/done records.
func TestSolveLogsProgress(t *testing.T) {
	g, part := testInstance(t, 99)
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, err := Solve(g, part, maxr.MAF{}, Options{
		K: 3, Eps: 0.3, Delta: 0.3, Seed: 5, MaxSamples: 1 << 12, Logger: logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"imcaf start", "imcaf round", "imcaf done"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log missing %q:\n%s", want, out)
		}
	}
}

// TestNonSubmodularExample reproduces the flavor of the paper's Fig. 2:
// a concrete instance where the marginal gain of b grows after a is
// added, certifying that c(·) is not submodular.
func TestNonSubmodularExample(t *testing.T) {
	// a -> x1, b -> x2, community {x1, x2} with threshold 2: alone each
	// seed influences nothing; together they can.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2, 1) // a -> x1
	b.AddEdge(1, 3, 1) // b -> x2
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(4, [][]graph.NodeID{{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	mc := func(seeds []graph.NodeID) float64 {
		v, err := diffusion.EstimateBenefit(g, part, seeds, diffusion.MCOptions{Iterations: 200, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cEmpty, cA, cB, cAB := 0.0, mc([]graph.NodeID{0}), mc([]graph.NodeID{1}), mc([]graph.NodeID{0, 1})
	// Submodularity would require c(b)−c(∅) ≥ c(ab)−c(a).
	if cB-cEmpty >= cAB-cA {
		t.Fatalf("instance unexpectedly submodular: c(b)=%g, c(ab)=%g, c(a)=%g", cB, cAB, cA)
	}
	if cAB != 2 {
		t.Fatalf("c({a,b}) = %g, want 2 (deterministic edges)", cAB)
	}
}

// savedCheckpoint is one serialized pool-growth boundary captured by
// the checkpoint tests.
type savedCheckpoint struct {
	doublings int
	pool      []byte
}

func captureCheckpoints(t *testing.T, sink *[]savedCheckpoint) CheckpointFunc {
	t.Helper()
	return func(cp Checkpoint) error {
		var buf bytes.Buffer
		if err := cp.Pool.Save(&buf); err != nil {
			return err
		}
		*sink = append(*sink, savedCheckpoint{doublings: cp.Doublings, pool: buf.Bytes()})
		return nil
	}
}

// TestSolveCheckpointResume pins the resume contract: restarting the
// stop-and-stare loop from ANY pool-growth boundary reproduces the
// uninterrupted run's solution exactly — same seeds, same estimates,
// same stop reason.
func TestSolveCheckpointResume(t *testing.T) {
	g, part := testInstance(t, 41)
	opts := Options{K: 3, Eps: 0.3, Delta: 0.3, Seed: 77, MaxSamples: 1 << 12}

	var ckpts []savedCheckpoint
	withCp := opts
	withCp.Checkpoint = captureCheckpoints(t, &ckpts)
	baseline, err := Solve(g, part, maxr.UBG{}, withCp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) < 2 {
		t.Fatalf("want at least 2 checkpoints (initial + a doubling), got %d", len(ckpts))
	}

	// The checkpoint callback must not perturb the solve at all.
	plain, err := Solve(g, part, maxr.UBG{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolution(t, "checkpointing run", baseline, plain)

	for _, ck := range ckpts {
		pool, err := ric.NewPool(g, part, ric.PoolOptions{Seed: opts.Seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.ReadInto(bytes.NewReader(ck.pool)); err != nil {
			t.Fatalf("restore checkpoint at round %d: %v", ck.doublings, err)
		}
		resumed := opts
		resumed.Resume = &Checkpoint{Pool: pool, Doublings: ck.doublings}
		sol, err := Solve(g, part, maxr.UBG{}, resumed)
		if err != nil {
			t.Fatalf("resume from round %d: %v", ck.doublings, err)
		}
		assertSameSolution(t, fmt.Sprintf("resume from round %d", ck.doublings), baseline, sol)
	}
}

func assertSameSolution(t *testing.T, label string, want, got Solution) {
	t.Helper()
	if len(want.Seeds) != len(got.Seeds) {
		t.Fatalf("%s: %d seeds, want %d", label, len(got.Seeds), len(want.Seeds))
	}
	for i := range want.Seeds {
		if want.Seeds[i] != got.Seeds[i] {
			t.Fatalf("%s: seeds %v, want %v", label, got.Seeds, want.Seeds)
		}
	}
	if got.CHat != want.CHat || got.EstimatedBenefit != want.EstimatedBenefit ||
		got.Samples != want.Samples || got.Doublings != want.Doublings ||
		got.Stopped != want.Stopped || got.Alpha != want.Alpha ||
		got.SandwichRatio != want.SandwichRatio {
		t.Fatalf("%s: solution drifted:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestSolveResumeValidation pins the guard rails: a resume checkpoint
// that could fork the sample sequence is rejected up front.
func TestSolveResumeValidation(t *testing.T) {
	g, part := testInstance(t, 41)
	opts := Options{K: 3, Eps: 0.3, Delta: 0.3, Seed: 77, MaxSamples: 1 << 12}

	goodPool := func(seed uint64) *ric.Pool {
		pool, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Generate(64); err != nil {
			t.Fatal(err)
		}
		return pool
	}

	cases := []struct {
		name    string
		resume  *Checkpoint
		wantSub string
	}{
		{"nil pool", &Checkpoint{}, "no pool"},
		{"empty pool", func() *Checkpoint {
			pool, err := ric.NewPool(g, part, ric.PoolOptions{Seed: 77})
			if err != nil {
				t.Fatal(err)
			}
			return &Checkpoint{Pool: pool}
		}(), "empty"},
		{"seed mismatch", &Checkpoint{Pool: goodPool(78)}, "seed"},
		{"negative round", &Checkpoint{Pool: goodPool(77), Doublings: -1}, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := opts
			o.Resume = tc.resume
			_, err := Solve(g, part, maxr.UBG{}, o)
			if err == nil {
				t.Fatal("invalid resume accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// Checkpoint failures surface instead of silently losing durability.
	o := opts
	o.Checkpoint = func(Checkpoint) error { return fmt.Errorf("disk full") }
	if _, err := Solve(g, part, maxr.UBG{}, o); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("checkpoint error not surfaced: %v", err)
	}
}
