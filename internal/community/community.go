// Package community provides the community substrate for IMC: disjoint
// node sets with activation thresholds and benefits, plus the two
// partitioners used in the paper's evaluation (Louvain modularity
// detection and a random baseline) and the size-cap splitting rule.
package community

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"imc/internal/graph"
	"imc/internal/xrand"
)

// Unassigned marks nodes that belong to no community.
const Unassigned = int32(-1)

// Community is one disjoint set of users with an activation threshold
// h (the community is influenced iff ≥ h members activate) and a benefit
// b earned when it is influenced.
type Community struct {
	// Members lists the community's nodes in ascending order.
	Members []graph.NodeID
	// Threshold is h_i ≥ 1.
	Threshold int
	// Benefit is b_i > 0.
	Benefit float64
}

// Partition is a set of disjoint communities over a graph's nodes.
// Nodes may be left unassigned. Construct with New or a partitioner.
type Partition struct {
	comms []Community
	of    []int32 // node -> community index or Unassigned
	n     int
}

// New builds a partition over n nodes from explicit member lists.
// Every node may appear in at most one community. Thresholds default to
// 1 and benefits to the community population; adjust with the Set*
// methods.
func New(n int, memberSets [][]graph.NodeID) (*Partition, error) {
	p := &Partition{
		of: make([]int32, n),
		n:  n,
	}
	for i := range p.of {
		p.of[i] = Unassigned
	}
	for ci, members := range memberSets {
		if len(members) == 0 {
			continue
		}
		ms := append([]graph.NodeID(nil), members...)
		sort.Slice(ms, func(a, b int) bool { return ms[a] < ms[b] })
		for _, u := range ms {
			if u < 0 || int(u) >= n {
				return nil, fmt.Errorf("community: node %d out of range [0, %d)", u, n)
			}
			if p.of[u] != Unassigned {
				return nil, fmt.Errorf("community: node %d in both community %d and %d", u, p.of[u], ci)
			}
			p.of[u] = int32(len(p.comms))
		}
		p.comms = append(p.comms, Community{
			Members:   ms,
			Threshold: 1,
			Benefit:   float64(len(ms)),
		})
	}
	if len(p.comms) == 0 {
		return nil, errors.New("community: partition has no non-empty communities")
	}
	return p, nil
}

// NumNodes returns the size of the underlying node universe.
func (p *Partition) NumNodes() int { return p.n }

// NumCommunities returns r, the community count.
func (p *Partition) NumCommunities() int { return len(p.comms) }

// Community returns the i-th community. The returned struct shares its
// member slice with the partition; treat it as read-only.
func (p *Partition) Community(i int) Community { return p.comms[i] }

// Of returns the community index of node u, or Unassigned.
func (p *Partition) Of(u graph.NodeID) int32 { return p.of[u] }

// TotalBenefit returns b = Σ b_i.
func (p *Partition) TotalBenefit() float64 {
	total := 0.0
	for _, c := range p.comms {
		total += c.Benefit
	}
	return total
}

// MaxThreshold returns h = max_i h_i.
func (p *Partition) MaxThreshold() int {
	h := 0
	for _, c := range p.comms {
		if c.Threshold > h {
			h = c.Threshold
		}
	}
	return h
}

// MinBenefit returns β = min_i b_i.
func (p *Partition) MinBenefit() float64 {
	if len(p.comms) == 0 {
		return 0
	}
	b := p.comms[0].Benefit
	for _, c := range p.comms[1:] {
		if c.Benefit < b {
			b = c.Benefit
		}
	}
	return b
}

// SetBoundedThresholds sets h_i = min(h, |C_i|) for every community —
// the paper's "bounded activation threshold" configuration (h = 2).
func (p *Partition) SetBoundedThresholds(h int) {
	if h < 1 {
		h = 1
	}
	for i := range p.comms {
		t := h
		if n := len(p.comms[i].Members); t > n {
			t = n
		}
		p.comms[i].Threshold = t
	}
}

// SetFractionThresholds sets h_i = max(1, ⌈frac·|C_i|⌉) — the paper's
// "regular" configuration uses frac = 0.5.
func (p *Partition) SetFractionThresholds(frac float64) {
	for i := range p.comms {
		t := int(math.Ceil(frac * float64(len(p.comms[i].Members))))
		if t < 1 {
			t = 1
		}
		if n := len(p.comms[i].Members); t > n {
			t = n
		}
		p.comms[i].Threshold = t
	}
}

// SetPopulationBenefits sets b_i = |C_i| (the paper's benefit rule).
func (p *Partition) SetPopulationBenefits() {
	for i := range p.comms {
		p.comms[i].Benefit = float64(len(p.comms[i].Members))
	}
}

// SetUniformBenefits sets b_i = b for every community.
func (p *Partition) SetUniformBenefits(b float64) {
	if b <= 0 {
		b = 1
	}
	for i := range p.comms {
		p.comms[i].Benefit = b
	}
}

// SetBenefit overrides one community's benefit (scenario-specific, e.g.
// electoral votes in the election example).
func (p *Partition) SetBenefit(i int, b float64) error {
	if i < 0 || i >= len(p.comms) {
		return fmt.Errorf("community: index %d out of range [0, %d)", i, len(p.comms))
	}
	if b <= 0 {
		return fmt.Errorf("community: benefit must be positive, got %g", b)
	}
	p.comms[i].Benefit = b
	return nil
}

// SetThreshold overrides one community's threshold.
func (p *Partition) SetThreshold(i, h int) error {
	if i < 0 || i >= len(p.comms) {
		return fmt.Errorf("community: index %d out of range [0, %d)", i, len(p.comms))
	}
	if h < 1 || h > len(p.comms[i].Members) {
		return fmt.Errorf("community: threshold %d out of [1, %d]", h, len(p.comms[i].Members))
	}
	p.comms[i].Threshold = h
	return nil
}

// Validate checks the partition invariants: disjoint member sets that
// match the reverse index, thresholds within [1, |C_i|], positive
// benefits.
func (p *Partition) Validate() error {
	seen := make(map[graph.NodeID]int, p.n)
	for ci, c := range p.comms {
		if len(c.Members) == 0 {
			return fmt.Errorf("community: community %d is empty", ci)
		}
		if c.Threshold < 1 || c.Threshold > len(c.Members) {
			return fmt.Errorf("community: community %d threshold %d out of [1, %d]", ci, c.Threshold, len(c.Members))
		}
		if c.Benefit <= 0 {
			return fmt.Errorf("community: community %d benefit %g not positive", ci, c.Benefit)
		}
		for _, u := range c.Members {
			if prev, dup := seen[u]; dup {
				return fmt.Errorf("community: node %d in communities %d and %d", u, prev, ci)
			}
			seen[u] = ci
			if int(p.of[u]) != ci {
				return fmt.Errorf("community: reverse index for node %d is %d, want %d", u, p.of[u], ci)
			}
		}
	}
	for u, ci := range p.of {
		if ci == Unassigned {
			continue
		}
		if got, ok := seen[graph.NodeID(u)]; !ok || got != int(ci) {
			return fmt.Errorf("community: reverse index claims node %d in community %d but member list disagrees", u, ci)
		}
	}
	return nil
}

// SplitBySize enforces the paper's size cap: any community larger than s
// is split into ⌈|C|/s⌉ chunks. Thresholds and benefits are re-derived
// afterwards by the caller (the split resets them to the defaults of
// New). The split is deterministic in seed (members are shuffled before
// chunking so splits are not biased by node-ID order).
func (p *Partition) SplitBySize(s int, seed uint64) (*Partition, error) {
	if s < 1 {
		return nil, fmt.Errorf("community: size cap %d must be ≥ 1", s)
	}
	rng := xrand.New(seed)
	sets := make([][]graph.NodeID, 0, len(p.comms))
	for _, c := range p.comms {
		if len(c.Members) <= s {
			sets = append(sets, c.Members)
			continue
		}
		shuffled := append([]graph.NodeID(nil), c.Members...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		for off := 0; off < len(shuffled); off += s {
			end := off + s
			if end > len(shuffled) {
				end = len(shuffled)
			}
			sets = append(sets, shuffled[off:end])
		}
	}
	return New(p.n, sets)
}

// Random partitions all n nodes uniformly into r communities — the
// paper's Random community-formation baseline.
func Random(n, r int, seed uint64) (*Partition, error) {
	if r < 1 {
		return nil, fmt.Errorf("community: community count %d must be ≥ 1", r)
	}
	if r > n {
		r = n
	}
	rng := xrand.New(seed)
	sets := make([][]graph.NodeID, r)
	perm := rng.Perm(n)
	// Guarantee non-empty communities by dealing the first r nodes round
	// robin, then assigning the rest uniformly.
	for i, u := range perm {
		var c int
		if i < r {
			c = i
		} else {
			c = rng.Intn(r)
		}
		sets[c] = append(sets[c], graph.NodeID(u))
	}
	return New(n, sets)
}

// Sizes returns the community sizes in index order.
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.comms))
	for i, c := range p.comms {
		out[i] = len(c.Members)
	}
	return out
}
