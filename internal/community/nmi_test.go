package community

import (
	"math"
	"testing"

	"imc/internal/gen"
	"imc/internal/graph"
)

func TestNMIIdenticalPartitions(t *testing.T) {
	p := mustNew(t, 6, [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}})
	if got := NMI(p, p); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(p, p) = %g, want 1", got)
	}
	// Identical up to relabeling.
	q := mustNew(t, 6, [][]graph.NodeID{{3, 4, 5}, {0, 1, 2}})
	if got := NMI(p, q); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI under relabeling = %g, want 1", got)
	}
}

func TestNMISingleCommunityEdgeCase(t *testing.T) {
	p := mustNew(t, 4, [][]graph.NodeID{{0, 1, 2, 3}})
	if got := NMI(p, p); got != 1 {
		t.Fatalf("NMI of trivial partitions = %g, want 1", got)
	}
}

func TestNMIOrthogonalPartitions(t *testing.T) {
	// Rows vs columns of a 2×2 grid: mutual information zero.
	rows := mustNew(t, 4, [][]graph.NodeID{{0, 1}, {2, 3}})
	cols := mustNew(t, 4, [][]graph.NodeID{{0, 2}, {1, 3}})
	if got := NMI(rows, cols); got > 1e-9 {
		t.Fatalf("NMI of orthogonal partitions = %g, want 0", got)
	}
}

func TestNMIMismatchedUniverse(t *testing.T) {
	p := mustNew(t, 4, [][]graph.NodeID{{0, 1}})
	q := mustNew(t, 5, [][]graph.NodeID{{0, 1}})
	if NMI(p, q) != 0 {
		t.Fatal("mismatched universes should score 0")
	}
}

func TestNMILouvainRecoversPlantedBetterThanRandom(t *testing.T) {
	g, err := gen.SBM(240, 8, 7, 0.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: the planted blocks (round-robin assignment).
	sets := make([][]graph.NodeID, 8)
	for u := 0; u < 240; u++ {
		sets[u%8] = append(sets[u%8], graph.NodeID(u))
	}
	truth, err := New(240, sets)
	if err != nil {
		t.Fatal(err)
	}
	louvain, err := Louvain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Random(240, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	nmiL, nmiR := NMI(truth, louvain), NMI(truth, random)
	if nmiL < 0.7 {
		t.Fatalf("Louvain NMI vs planted truth = %g, want ≥ 0.7", nmiL)
	}
	if nmiL <= nmiR {
		t.Fatalf("Louvain NMI %g not above random %g", nmiL, nmiR)
	}
}
