package community

import (
	"sort"

	"imc/internal/graph"
	"imc/internal/xrand"
)

// Louvain detects communities with the Louvain modularity method
// (Blondel et al. 2008) on the undirected projection of g: every
// directed edge contributes weight 1 between its endpoints. The paper
// partitions each dataset this way before capping community sizes.
//
// The result is a Partition covering all n nodes, with default
// thresholds/benefits (adjust with Set* methods). seed breaks ties in
// the node-visit order, making the output deterministic.
func Louvain(g *graph.Graph, seed uint64) (*Partition, error) {
	lg := projectUndirected(g)
	n := g.NumNodes()
	// membership[u] = community of original node u, refined level by level.
	membership := make([]int32, n)
	for i := range membership {
		membership[i] = int32(i)
	}
	rng := xrand.New(seed)
	const maxLevels = 12
	for level := 0; level < maxLevels; level++ {
		comm, improved := localMove(lg, rng.Split(uint64(level)))
		if !improved {
			break
		}
		// Re-map original nodes through this level's assignment.
		for u := range membership {
			membership[u] = comm[membership[u]]
		}
		var renumber []int32
		lg, renumber = aggregate(lg, comm)
		for u := range membership {
			membership[u] = renumber[membership[u]]
		}
		if lg.n <= 1 {
			break
		}
	}
	return partitionFromMembership(n, membership)
}

// halfEdge is one endpoint of an undirected weighted edge in a level
// graph.
type halfEdge struct {
	to int32
	w  float64
}

// levelGraph is the working multigraph at one Louvain level.
type levelGraph struct {
	n        int
	adj      [][]halfEdge
	selfLoop []float64 // aggregated intra-community weight per super-node
	total2   float64   // 2m: total degree mass including self loops
}

func projectUndirected(g *graph.Graph) *levelGraph {
	n := g.NumNodes()
	lg := &levelGraph{
		n:        n,
		adj:      make([][]halfEdge, n),
		selfLoop: make([]float64, n),
	}
	agg := make(map[int64]float64)
	for u := graph.NodeID(0); int(u) < n; u++ {
		tos, _ := g.OutNeighbors(u)
		for _, v := range tos {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			agg[int64(a)*int64(n)+int64(b)]++
		}
	}
	keys := make([]int64, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		w := agg[k]
		a := int32(k / int64(n))
		b := int32(k % int64(n))
		lg.adj[a] = append(lg.adj[a], halfEdge{to: b, w: w})
		lg.adj[b] = append(lg.adj[b], halfEdge{to: a, w: w})
		lg.total2 += 2 * w
	}
	return lg
}

// localMove runs Louvain phase 1: greedy node moves maximizing the
// modularity gain until a full pass makes no move. Returns the community
// assignment (indices in [0, lg.n)) and whether any move happened.
func localMove(lg *levelGraph, rng *xrand.RNG) ([]int32, bool) {
	n := lg.n
	comm := make([]int32, n)
	degree := make([]float64, n)    // weighted degree incl. self loops
	commTotal := make([]float64, n) // Σ_tot per community
	neighW := make([]float64, n)    // scratch: weight from node to community
	touched := make([]int32, 0, 64) // scratch: communities seen this node
	for u := 0; u < n; u++ {
		comm[u] = int32(u)
		d := lg.selfLoop[u] * 2
		for _, e := range lg.adj[u] {
			d += e.w
		}
		degree[u] = d
		commTotal[u] = d
	}
	if lg.total2 <= 0 {
		return comm, false
	}
	order := rng.Perm(n)
	anyMove := false
	for pass := 0; pass < 32; pass++ {
		moved := 0
		for _, ui := range order {
			u := int32(ui)
			cu := comm[u]
			// Tally edge weight from u to each adjacent community.
			touched = touched[:0]
			for _, e := range lg.adj[u] {
				c := comm[e.to]
				if neighW[c] == 0 {
					touched = append(touched, c)
				}
				neighW[c] += e.w
			}
			commTotal[cu] -= degree[u]
			best := cu
			// Gain of staying, relative baseline.
			bestGain := neighW[cu] - commTotal[cu]*degree[u]/lg.total2
			for _, c := range touched {
				if c == cu {
					continue
				}
				gain := neighW[c] - commTotal[c]*degree[u]/lg.total2
				if gain > bestGain+1e-12 {
					bestGain = gain
					best = c
				}
			}
			commTotal[best] += degree[u]
			if best != cu {
				comm[u] = best
				moved++
			}
			for _, c := range touched {
				neighW[c] = 0
			}
		}
		if moved == 0 {
			break
		}
		anyMove = true
	}
	return comm, anyMove
}

// aggregate runs Louvain phase 2: collapse each community to a
// super-node. Returns the next-level graph and the renumbering from the
// phase-1 community IDs to compact super-node IDs.
func aggregate(lg *levelGraph, comm []int32) (*levelGraph, []int32) {
	renumber := make([]int32, lg.n)
	for i := range renumber {
		renumber[i] = -1
	}
	next := int32(0)
	for _, c := range comm {
		if renumber[c] == -1 {
			renumber[c] = next
			next++
		}
	}
	out := &levelGraph{
		n:        int(next),
		adj:      make([][]halfEdge, next),
		selfLoop: make([]float64, next),
		total2:   lg.total2,
	}
	agg := make(map[int64]float64)
	for u := 0; u < lg.n; u++ {
		cu := renumber[comm[u]]
		out.selfLoop[cu] += lg.selfLoop[u]
		for _, e := range lg.adj[u] {
			cv := renumber[comm[e.to]]
			if cu == cv {
				// Each undirected edge is seen from both endpoints;
				// halve to count intra weight once.
				out.selfLoop[cu] += e.w / 2
				continue
			}
			a, b := cu, cv
			if a > b {
				a, b = b, a
			}
			// Seen from both endpoints: halve.
			agg[int64(a)*int64(next)+int64(b)] += e.w / 2
		}
	}
	keys := make([]int64, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		w := agg[k]
		a := int32(k / int64(next))
		b := int32(k % int64(next))
		out.adj[a] = append(out.adj[a], halfEdge{to: b, w: w})
		out.adj[b] = append(out.adj[b], halfEdge{to: a, w: w})
	}
	return out, renumber
}

func partitionFromMembership(n int, membership []int32) (*Partition, error) {
	groups := make(map[int32][]graph.NodeID)
	for u, c := range membership {
		groups[c] = append(groups[c], graph.NodeID(u))
	}
	ids := make([]int32, 0, len(groups))
	for c := range groups {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sets := make([][]graph.NodeID, 0, len(ids))
	for _, c := range ids {
		sets = append(sets, groups[c])
	}
	return New(n, sets)
}

// Modularity computes the undirected-projection modularity of a
// partition, useful for tests and reports.
func Modularity(g *graph.Graph, p *Partition) float64 {
	lg := projectUndirected(g)
	if lg.total2 <= 0 {
		return 0
	}
	intra := 0.0
	degTot := make([]float64, p.NumCommunities())
	for u := 0; u < lg.n; u++ {
		cu := p.Of(graph.NodeID(u))
		d := lg.selfLoop[u] * 2
		for _, e := range lg.adj[u] {
			d += e.w
			if cu != Unassigned && p.Of(graph.NodeID(e.to)) == cu {
				intra += e.w // counted from both sides => 2×
			}
		}
		if cu != Unassigned {
			degTot[cu] += d
		}
	}
	q := intra / lg.total2
	for _, d := range degTot {
		q -= (d / lg.total2) * (d / lg.total2)
	}
	return q
}
