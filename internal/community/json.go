package community

import (
	"encoding/json"
	"fmt"
	"io"

	"imc/internal/graph"
)

// fileFormat is the JSON wire form of a Partition.
type fileFormat struct {
	NumNodes    int             `json:"numNodes"`
	Communities []fileCommunity `json:"communities"`
}

type fileCommunity struct {
	Members   []graph.NodeID `json:"members"`
	Threshold int            `json:"threshold"`
	Benefit   float64        `json:"benefit"`
}

// WriteJSON serializes the partition, including thresholds and
// benefits, so experimental configurations are reproducible across
// processes.
func WriteJSON(w io.Writer, p *Partition) error {
	ff := fileFormat{
		NumNodes:    p.NumNodes(),
		Communities: make([]fileCommunity, 0, p.NumCommunities()),
	}
	for i := 0; i < p.NumCommunities(); i++ {
		c := p.Community(i)
		ff.Communities = append(ff.Communities, fileCommunity{
			Members:   c.Members,
			Threshold: c.Threshold,
			Benefit:   c.Benefit,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ff); err != nil {
		return fmt.Errorf("community: encode partition: %w", err)
	}
	return nil
}

// ReadJSON deserializes a partition written by WriteJSON, validating
// the result.
func ReadJSON(r io.Reader) (*Partition, error) {
	var ff fileFormat
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ff); err != nil {
		return nil, fmt.Errorf("community: decode partition: %w", err)
	}
	sets := make([][]graph.NodeID, 0, len(ff.Communities))
	for _, c := range ff.Communities {
		sets = append(sets, c.Members)
	}
	p, err := New(ff.NumNodes, sets)
	if err != nil {
		return nil, err
	}
	for i, c := range ff.Communities {
		if c.Threshold != 0 {
			if err := p.SetThreshold(i, c.Threshold); err != nil {
				return nil, err
			}
		}
		if c.Benefit != 0 {
			if err := p.SetBenefit(i, c.Benefit); err != nil {
				return nil, err
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
