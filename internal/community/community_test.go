package community

import (
	"testing"
	"testing/quick"

	"imc/internal/gen"
	"imc/internal/graph"
)

func mustNew(t *testing.T, n int, sets [][]graph.NodeID) *Partition {
	t.Helper()
	p, err := New(n, sets)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestNewAndAccessors(t *testing.T) {
	p := mustNew(t, 6, [][]graph.NodeID{{2, 0, 1}, {5, 3}})
	if p.NumCommunities() != 2 || p.NumNodes() != 6 {
		t.Fatalf("r=%d n=%d", p.NumCommunities(), p.NumNodes())
	}
	c0 := p.Community(0)
	if len(c0.Members) != 3 || c0.Members[0] != 0 || c0.Members[2] != 2 {
		t.Fatalf("members not sorted: %v", c0.Members)
	}
	if p.Of(4) != Unassigned {
		t.Fatal("node 4 should be unassigned")
	}
	if p.Of(5) != 1 {
		t.Fatalf("Of(5) = %d", p.Of(5))
	}
	if p.TotalBenefit() != 5 {
		t.Fatalf("default total benefit = %g, want populations 3+2", p.TotalBenefit())
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNewRejectsOverlapAndOutOfRange(t *testing.T) {
	if _, err := New(4, [][]graph.NodeID{{0, 1}, {1, 2}}); err == nil {
		t.Fatal("want overlap error")
	}
	if _, err := New(4, [][]graph.NodeID{{0, 9}}); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := New(4, nil); err == nil {
		t.Fatal("want empty partition error")
	}
}

func TestThresholdPolicies(t *testing.T) {
	p := mustNew(t, 10, [][]graph.NodeID{{0}, {1, 2, 3}, {4, 5, 6, 7, 8, 9}})
	p.SetBoundedThresholds(2)
	if got := p.Community(0).Threshold; got != 1 {
		t.Fatalf("bounded threshold of singleton = %d, want clamp to 1", got)
	}
	if got := p.Community(2).Threshold; got != 2 {
		t.Fatalf("bounded threshold = %d", got)
	}
	p.SetFractionThresholds(0.5)
	if got := p.Community(1).Threshold; got != 2 {
		t.Fatalf("ceil(0.5·3) = %d, want 2", got)
	}
	if got := p.Community(2).Threshold; got != 3 {
		t.Fatalf("ceil(0.5·6) = %d, want 3", got)
	}
	if h := p.MaxThreshold(); h != 3 {
		t.Fatalf("MaxThreshold = %d", h)
	}
}

func TestBenefitPolicies(t *testing.T) {
	p := mustNew(t, 5, [][]graph.NodeID{{0, 1}, {2, 3, 4}})
	p.SetUniformBenefits(4)
	if p.TotalBenefit() != 8 || p.MinBenefit() != 4 {
		t.Fatal("uniform benefits wrong")
	}
	p.SetPopulationBenefits()
	if p.TotalBenefit() != 5 || p.MinBenefit() != 2 {
		t.Fatal("population benefits wrong")
	}
	if err := p.SetBenefit(1, 10); err != nil {
		t.Fatal(err)
	}
	if p.Community(1).Benefit != 10 {
		t.Fatal("SetBenefit did not stick")
	}
	if err := p.SetBenefit(5, 1); err == nil {
		t.Fatal("want index error")
	}
	if err := p.SetBenefit(0, -1); err == nil {
		t.Fatal("want positivity error")
	}
	if err := p.SetThreshold(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.SetThreshold(0, 3); err == nil {
		t.Fatal("want threshold range error")
	}
}

func TestSplitBySize(t *testing.T) {
	members := make([]graph.NodeID, 20)
	for i := range members {
		members[i] = graph.NodeID(i)
	}
	p := mustNew(t, 20, [][]graph.NodeID{members})
	sp, err := p.SplitBySize(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumCommunities() != 3 {
		t.Fatalf("split into %d communities, want ⌈20/8⌉ = 3", sp.NumCommunities())
	}
	for _, s := range sp.Sizes() {
		if s > 8 {
			t.Fatalf("community of size %d exceeds cap", s)
		}
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SplitBySize(0, 1); err == nil {
		t.Fatal("want cap error")
	}
}

func TestRandomPartition(t *testing.T) {
	p, err := Random(100, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCommunities() != 10 {
		t.Fatalf("r = %d", p.NumCommunities())
	}
	total := 0
	for _, s := range p.Sizes() {
		if s == 0 {
			t.Fatal("empty community in random partition")
		}
		total += s
	}
	if total != 100 {
		t.Fatalf("random partition covers %d/100 nodes", total)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// r > n clamps.
	if p2, err := Random(3, 10, 0); err != nil || p2.NumCommunities() != 3 {
		t.Fatalf("Random(3,10): %v, r=%d", err, p2.NumCommunities())
	}
}

func TestLouvainRecoversPlantedBlocks(t *testing.T) {
	// Strong SBM: dense blocks, sparse across — Louvain must produce a
	// partition with clearly positive modularity covering all nodes.
	g, err := gen.SBM(200, 8, 6, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Louvain(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range p.Sizes() {
		total += s
	}
	if total != 200 {
		t.Fatalf("Louvain covers %d/200 nodes", total)
	}
	if q := Modularity(g, p); q < 0.3 {
		t.Fatalf("modularity %g too low for planted blocks", q)
	}
	if p.NumCommunities() < 4 || p.NumCommunities() > 40 {
		t.Fatalf("Louvain found %d communities on 8 planted blocks", p.NumCommunities())
	}
}

func TestLouvainDeterministic(t *testing.T) {
	g, err := gen.SBM(100, 5, 5, 0.4, 9)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Louvain(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Louvain(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumCommunities() != p2.NumCommunities() {
		t.Fatal("Louvain not deterministic in seed")
	}
	for u := graph.NodeID(0); u < 100; u++ {
		for v := graph.NodeID(0); v < 100; v++ {
			if (p1.Of(u) == p1.Of(v)) != (p2.Of(u) == p2.Of(v)) {
				t.Fatalf("co-membership of %d,%d differs between runs", u, v)
			}
		}
	}
}

func TestLouvainBeatsRandomModularity(t *testing.T) {
	g, err := gen.SBM(150, 6, 5, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := Louvain(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Random(150, lp.NumCommunities(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if Modularity(g, lp) <= Modularity(g, rp) {
		t.Fatalf("Louvain modularity %g not above random %g", Modularity(g, lp), Modularity(g, rp))
	}
}

// Property: SplitBySize preserves the node universe and respects the
// cap for any community layout.
func TestQuickSplitPreservesNodes(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		capSize := int(capRaw%10) + 1
		p, err := Random(60, 4, seed)
		if err != nil {
			return false
		}
		sp, err := p.SplitBySize(capSize, seed)
		if err != nil {
			return false
		}
		if sp.Validate() != nil {
			return false
		}
		total := 0
		for _, s := range sp.Sizes() {
			if s > capSize {
				return false
			}
			total += s
		}
		return total == 60
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
