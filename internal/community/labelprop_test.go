package community

import (
	"testing"

	"imc/internal/gen"
	"imc/internal/graph"
)

func TestLabelPropagationFindsPlantedBlocks(t *testing.T) {
	g, err := gen.SBM(300, 10, 8, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := LabelPropagation(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range p.Sizes() {
		total += s
	}
	if total != 300 {
		t.Fatalf("covers %d/300 nodes", total)
	}
	if q := Modularity(g, p); q < 0.2 {
		t.Fatalf("modularity %g too low for strongly planted blocks", q)
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	g, err := gen.SBM(150, 6, 5, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := LabelPropagation(g, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LabelPropagation(g, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCommunities() != b.NumCommunities() {
		t.Fatal("nondeterministic community count")
	}
	for u := graph.NodeID(0); u < 150; u++ {
		for v := u + 1; v < 150; v++ {
			if (a.Of(u) == a.Of(v)) != (b.Of(u) == b.Of(v)) {
				t.Fatalf("co-membership of %d,%d differs", u, v)
			}
		}
	}
}

func TestLabelPropagationIsolatedNodes(t *testing.T) {
	// Two disconnected dyads plus an isolated node: labels stay put for
	// the isolate, dyads merge.
	b := graph.NewBuilder(5)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := LabelPropagation(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Of(0) != p.Of(1) || p.Of(2) != p.Of(3) {
		t.Fatal("dyads did not merge")
	}
	if p.Of(0) == p.Of(2) {
		t.Fatal("disconnected dyads merged")
	}
	if p.Of(4) == p.Of(0) || p.Of(4) == p.Of(2) {
		t.Fatal("isolated node joined a dyad")
	}
}
