package community

import (
	"testing"

	"imc/internal/gen"
)

// BenchmarkLouvain10K measures community detection on a 10K-node
// block-structured graph — the setup cost of every experiment.
func BenchmarkLouvain10K(b *testing.B) {
	g, err := gen.SBM(10000, 500, 4, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Louvain(g, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitBySize measures the size-cap splitting pass.
func BenchmarkSplitBySize(b *testing.B) {
	g, err := gen.SBM(10000, 100, 4, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := Louvain(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SplitBySize(8, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
