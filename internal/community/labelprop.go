package community

import (
	"imc/internal/graph"
	"imc/internal/xrand"
)

// LabelPropagation detects communities with the label-propagation
// method of Raghavan et al. (2007) on the undirected projection of g:
// every node repeatedly adopts the most frequent label among its
// neighbors until labels stabilize. It is near-linear — much faster
// than Louvain on large graphs — at the cost of coarser, less stable
// partitions; the experiment harness uses it as a fast alternative
// formation when sweeping very large analogs.
//
// maxRounds bounds the sweeps (0 defaults to 32); seed fixes the visit
// order and tie-breaking, making the output deterministic.
func LabelPropagation(g *graph.Graph, maxRounds int, seed uint64) (*Partition, error) {
	if maxRounds <= 0 {
		maxRounds = 32
	}
	n := g.NumNodes()
	label := make([]int32, n)
	for i := range label {
		label[i] = int32(i)
	}
	// Undirected view: count each arc from both endpoints.
	neighbors := make([][]graph.NodeID, n)
	for u := graph.NodeID(0); int(u) < n; u++ {
		tos, _ := g.OutNeighbors(u)
		froms, _, _ := g.InNeighbors(u)
		nb := make([]graph.NodeID, 0, len(tos)+len(froms))
		nb = append(nb, tos...)
		nb = append(nb, froms...)
		neighbors[u] = nb
	}
	rng := xrand.New(seed)
	order := rng.Perm(n)
	votes := make(map[int32]int, 16)
	for round := 0; round < maxRounds; round++ {
		changed := 0
		for _, ui := range order {
			u := graph.NodeID(ui)
			if len(neighbors[u]) == 0 {
				continue
			}
			clear(votes)
			for _, v := range neighbors[u] {
				votes[label[v]]++
			}
			best := label[u]
			bestCount := votes[best] // staying requires strictly more votes elsewhere
			for l, c := range votes {
				if c > bestCount || (c == bestCount && l < best) {
					best = l
					bestCount = c
				}
			}
			if best != label[u] {
				label[u] = best
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}
	return partitionFromMembership(n, label)
}
