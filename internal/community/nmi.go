package community

import (
	"math"

	"imc/internal/graph"
)

// NMI computes the normalized mutual information between two
// partitions of the same node universe — the standard measure for
// comparing community detections (1 = identical up to relabeling,
// 0 = independent). Unassigned nodes are skipped; the score is
// normalized by the arithmetic mean of the two entropies.
func NMI(a, b *Partition) float64 {
	if a.NumNodes() != b.NumNodes() {
		return 0
	}
	n := 0
	joint := make(map[[2]int32]int)
	countA := make(map[int32]int)
	countB := make(map[int32]int)
	for u := 0; u < a.NumNodes(); u++ {
		ca, cb := a.Of(graph.NodeID(u)), b.Of(graph.NodeID(u))
		if ca == Unassigned || cb == Unassigned {
			continue
		}
		n++
		joint[[2]int32{ca, cb}]++
		countA[ca]++
		countB[cb]++
	}
	if n == 0 {
		return 0
	}
	fn := float64(n)
	mi := 0.0
	for key, c := range joint {
		pxy := float64(c) / fn
		px := float64(countA[key[0]]) / fn
		py := float64(countB[key[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	entropy := func(counts map[int32]int) float64 {
		h := 0.0
		for _, c := range counts {
			p := float64(c) / fn
			h -= p * math.Log(p)
		}
		return h
	}
	ha, hb := entropy(countA), entropy(countB)
	if ha+hb == 0 {
		// Both partitions are a single community: identical by
		// definition.
		return 1
	}
	nmi := 2 * mi / (ha + hb)
	if nmi < 0 {
		nmi = 0
	}
	if nmi > 1 {
		nmi = 1
	}
	return nmi
}
