package community

import (
	"bytes"
	"strings"
	"testing"

	"imc/internal/graph"
)

func TestJSONRoundTrip(t *testing.T) {
	p := mustNew(t, 8, [][]graph.NodeID{{0, 1, 2}, {3, 4}, {6, 7}})
	p.SetBoundedThresholds(2)
	if err := p.SetBenefit(1, 9.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 8 || back.NumCommunities() != 3 {
		t.Fatalf("round trip shape: n=%d r=%d", back.NumNodes(), back.NumCommunities())
	}
	for i := 0; i < 3; i++ {
		a, b := p.Community(i), back.Community(i)
		if a.Threshold != b.Threshold || a.Benefit != b.Benefit {
			t.Fatalf("community %d: %+v vs %+v", i, a, b)
		}
		if len(a.Members) != len(b.Members) {
			t.Fatalf("community %d member count", i)
		}
		for j := range a.Members {
			if a.Members[j] != b.Members[j] {
				t.Fatalf("community %d member %d differs", i, j)
			}
		}
	}
	// Node 5 stays unassigned.
	if back.Of(5) != Unassigned {
		t.Fatal("unassigned node gained a community")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("want decode error")
	}
	// Overlapping members.
	bad := `{"numNodes":4,"communities":[{"members":[0,1],"threshold":1,"benefit":1},{"members":[1,2],"threshold":1,"benefit":1}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("want overlap error")
	}
	// Threshold exceeding population.
	bad2 := `{"numNodes":4,"communities":[{"members":[0,1],"threshold":5,"benefit":1}]}`
	if _, err := ReadJSON(strings.NewReader(bad2)); err == nil {
		t.Fatal("want threshold error")
	}
}

func TestReadJSONDefaults(t *testing.T) {
	// Omitted threshold/benefit fall back to New's defaults.
	in := `{"numNodes":3,"communities":[{"members":[0,1,2]}]}`
	p, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	c := p.Community(0)
	if c.Threshold != 1 || c.Benefit != 3 {
		t.Fatalf("defaults: %+v", c)
	}
}
