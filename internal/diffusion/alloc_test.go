package diffusion

import (
	"testing"

	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/xrand"
)

// TestSimulatorRunDoesNotAllocate locks in the //imc:hotpath contract
// of the forward simulator: with scratch at steady state, one cascade
// allocates nothing under either model. Each measured run replays one
// fixed PRNG stream, so the cascade — and the count — is deterministic.
func TestSimulatorRunDoesNotAllocate(t *testing.T) {
	g, err := gen.BarabasiAlbert(1000, 4, 19)
	if err != nil {
		t.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	seeds := []graph.NodeID{1, 57, 400, 801}
	for _, model := range []Model{IC, LT} {
		sim := NewSimulator(g, model)
		root := xrand.New(5)
		var rng xrand.RNG
		for i := 0; i < 200; i++ {
			root.SplitInto(uint64(i), &rng)
			sim.Run(seeds, &rng)
		}
		avg := testing.AllocsPerRun(100, func() {
			root.SplitInto(7, &rng)
			sim.Run(seeds, &rng)
		})
		if avg != 0 {
			t.Errorf("%v: Run allocates %.1f objects per run, want 0", model, avg)
		}
	}
}
