package diffusion

import (
	"testing"

	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/xrand"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.BarabasiAlbert(5000, 5, 1)
	if err != nil {
		b.Fatal(err)
	}
	return graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
}

// BenchmarkSimulateIC measures one forward IC cascade from 10 seeds.
func BenchmarkSimulateIC(b *testing.B) {
	g := benchGraph(b)
	sim := NewSimulator(g, IC)
	seeds := []graph.NodeID{0, 100, 200, 300, 400, 500, 600, 700, 800, 900}
	root := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(seeds, root.Split(uint64(i)))
	}
}

// BenchmarkSimulateLT measures one forward LT cascade from 10 seeds.
func BenchmarkSimulateLT(b *testing.B) {
	g := benchGraph(b)
	sim := NewSimulator(g, LT)
	seeds := []graph.NodeID{0, 100, 200, 300, 400, 500, 600, 700, 800, 900}
	root := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(seeds, root.Split(uint64(i)))
	}
}

// BenchmarkEstimateSpread1K measures a 1000-iteration Monte-Carlo
// spread estimate end to end.
func BenchmarkEstimateSpread1K(b *testing.B) {
	g := benchGraph(b)
	seeds := []graph.NodeID{0, 100, 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateSpread(g, seeds, MCOptions{Iterations: 1000, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
