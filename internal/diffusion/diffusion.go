// Package diffusion implements forward information-propagation models
// (Independent Cascade and Linear Threshold) and Monte-Carlo estimators
// for influence spread and community benefit.
//
// The forward simulators are the ground truth against which the RIC
// sampling machinery is validated, and they power the paper's Fig. 8
// ratio measurements, which estimate c(S) and ν(S) by Monte Carlo.
package diffusion

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"imc/internal/community"
	"imc/internal/graph"
	"imc/internal/xrand"
)

// ctxPollBatch is how many cascades a worker simulates between
// cooperative ctx.Err() polls. Batch-boundary polling keeps the
// cancellation check out of the per-cascade hot path while bounding
// cancellation latency to ~1k iterations per worker.
const ctxPollBatch = 1024

// Model selects the propagation model.
type Model int

const (
	// IC is the Independent Cascade model (the paper's primary model).
	IC Model = iota + 1
	// LT is the Linear Threshold model (the paper's noted extension).
	LT
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case IC:
		return "IC"
	case LT:
		return "LT"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Simulator runs forward cascades over one graph, reusing scratch
// buffers between runs. It is NOT safe for concurrent use; create one
// per goroutine.
type Simulator struct {
	g     *graph.Graph
	model Model

	active []bool
	queue  []graph.NodeID
	// LT scratch: accumulated incoming active weight and threshold draw.
	ltWeight []float64
	ltThresh []float64
}

// NewSimulator returns a simulator for g under the given model.
func NewSimulator(g *graph.Graph, model Model) *Simulator {
	n := g.NumNodes()
	s := &Simulator{
		g:      g,
		model:  model,
		active: make([]bool, n),
		queue:  make([]graph.NodeID, 0, n),
	}
	if model == LT {
		s.ltWeight = make([]float64, n)
		s.ltThresh = make([]float64, n)
	}
	return s
}

// Run simulates one cascade from seeds and returns the set of activated
// nodes as a reusable boolean slice (valid until the next Run) plus the
// activation count.
//
//imc:hotpath
func (s *Simulator) Run(seeds []graph.NodeID, rng *xrand.RNG) ([]bool, int) {
	switch s.model {
	case LT:
		return s.runLT(seeds, rng)
	default:
		return s.runIC(seeds, rng)
	}
}

//imc:hotpath
func (s *Simulator) runIC(seeds []graph.NodeID, rng *xrand.RNG) ([]bool, int) {
	// Hoist the scratch state into locals: the scan bound becomes a
	// local length (one bounds proof, no per-iteration field reload
	// through s), and the weights re-slice to the neighbor count so
	// ws[i] checks once per edge list, not per edge.
	active := s.active
	for i := range active {
		active[i] = false
	}
	queue := s.queue[:0]
	count := 0
	for _, u := range seeds {
		if u < 0 || int(u) >= s.g.NumNodes() || active[u] {
			continue
		}
		active[u] = true
		count++
		queue = append(queue, u)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		tos, ws := s.g.OutNeighbors(u)
		ws = ws[:len(tos)]
		for i, v := range tos {
			if active[v] {
				continue
			}
			if rng.Bernoulli(ws[i]) {
				active[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	s.queue = queue
	return active, count
}

//imc:hotpath
func (s *Simulator) runLT(seeds []graph.NodeID, rng *xrand.RNG) ([]bool, int) {
	n := s.g.NumNodes()
	// Re-slice the per-node state to the loop bound once: the reset scan
	// and every frontier update below then index with a single shared
	// bounds proof instead of three unrelated field loads per node.
	active := s.active[:n]
	ltWeight := s.ltWeight[:n]
	ltThresh := s.ltThresh[:n]
	for i := 0; i < n; i++ {
		active[i] = false
		ltWeight[i] = 0
		ltThresh[i] = rng.Float64()
	}
	queue := s.queue[:0]
	count := 0
	for _, u := range seeds {
		if u < 0 || int(u) >= n || active[u] {
			continue
		}
		active[u] = true
		count++
		queue = append(queue, u)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		tos, ws := s.g.OutNeighbors(u)
		ws = ws[:len(tos)]
		for i, v := range tos {
			if active[v] {
				continue
			}
			ltWeight[v] += ws[i]
			if ltWeight[v] >= ltThresh[v] {
				active[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	s.queue = queue
	return active, count
}

// TraceRound is one discrete round of a traced cascade.
type TraceRound struct {
	// Round numbers rounds from 0 (the seeding round).
	Round int
	// Activated lists the nodes newly activated this round, ascending.
	Activated []graph.NodeID
}

// Trace simulates one IC cascade and records which nodes activate in
// which round — the discrete-round semantics of the model made
// observable for debugging, teaching, and the examples' narrations.
func Trace(g *graph.Graph, seeds []graph.NodeID, rng *xrand.RNG) []TraceRound {
	n := g.NumNodes()
	active := make([]bool, n)
	var rounds []TraceRound
	frontier := make([]graph.NodeID, 0, len(seeds))
	for _, u := range seeds {
		if u >= 0 && int(u) < n && !active[u] {
			active[u] = true
			frontier = append(frontier, u)
		}
	}
	sortNodes(frontier)
	round := 0
	for len(frontier) > 0 {
		rounds = append(rounds, TraceRound{Round: round, Activated: append([]graph.NodeID(nil), frontier...)})
		// The next frontier is rarely larger than the current one, so
		// its length is the natural starting capacity.
		next := make([]graph.NodeID, 0, len(frontier))
		for _, u := range frontier {
			tos, ws := g.OutNeighbors(u)
			for i, v := range tos {
				if !active[v] && rng.Bernoulli(ws[i]) {
					active[v] = true
					next = append(next, v)
				}
			}
		}
		sortNodes(next)
		frontier = next
		round++
	}
	return rounds
}

func sortNodes(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// CommunityBenefit scores an activation outcome against a partition:
// the sum of b_i over communities with at least h_i active members.
//
//imc:hotpath
//imc:pure
func CommunityBenefit(p *community.Partition, active []bool) float64 {
	benefit := 0.0
	for i := 0; i < p.NumCommunities(); i++ {
		c := p.Community(i)
		hits := 0
		for _, u := range c.Members {
			if active[u] {
				hits++
				if hits >= c.Threshold {
					break
				}
			}
		}
		if hits >= c.Threshold {
			benefit += c.Benefit
		}
	}
	return benefit
}

// FractionalBenefit scores ν-style fractional credit: Σ b_i · min(
// active_i/h_i, 1). This is the Monte-Carlo estimator of the paper's
// ν(S) upper-bound function (eq. 6), used in Fig. 8.
//
//imc:hotpath
//imc:pure
func FractionalBenefit(p *community.Partition, active []bool) float64 {
	total := 0.0
	for i := 0; i < p.NumCommunities(); i++ {
		c := p.Community(i)
		hits := 0
		for _, u := range c.Members {
			if active[u] {
				hits++
			}
		}
		frac := float64(hits) / float64(c.Threshold)
		if frac > 1 {
			frac = 1
		}
		total += c.Benefit * frac
	}
	return total
}

// MCOptions configures Monte-Carlo estimation.
type MCOptions struct {
	// Iterations is the number of cascades to average. Must be ≥ 1.
	Iterations int
	// Seed drives the whole estimate deterministically.
	Seed uint64
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Model selects IC (default) or LT.
	Model Model
}

func (o MCOptions) normalized() (MCOptions, error) {
	if o.Iterations < 1 {
		return o, errors.New("diffusion: Iterations must be ≥ 1")
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Model == 0 {
		o.Model = IC
	}
	return o, nil
}

// EstimateSpread Monte-Carlo-estimates the expected number of activated
// nodes for the seed set.
func EstimateSpread(g *graph.Graph, seeds []graph.NodeID, opts MCOptions) (float64, error) {
	return EstimateSpreadCtx(context.Background(), g, seeds, opts)
}

// EstimateSpreadCtx is EstimateSpread with cooperative cancellation:
// workers poll ctx between iteration batches.
//
//imc:longrun
func EstimateSpreadCtx(ctx context.Context, g *graph.Graph, seeds []graph.NodeID, opts MCOptions) (float64, error) {
	return mcAverageCtx(ctx, g, seeds, opts, func(active []bool, count int) float64 {
		return float64(count)
	})
}

// EstimateBenefit Monte-Carlo-estimates c(S): the expected benefit of
// influenced communities.
func EstimateBenefit(g *graph.Graph, p *community.Partition, seeds []graph.NodeID, opts MCOptions) (float64, error) {
	return EstimateBenefitCtx(context.Background(), g, p, seeds, opts)
}

// EstimateBenefitCtx is EstimateBenefit with cooperative cancellation:
// workers poll ctx between iteration batches.
//
//imc:longrun
func EstimateBenefitCtx(ctx context.Context, g *graph.Graph, p *community.Partition, seeds []graph.NodeID, opts MCOptions) (float64, error) {
	return mcAverageCtx(ctx, g, seeds, opts, func(active []bool, count int) float64 {
		return CommunityBenefit(p, active)
	})
}

// EstimateFractionalBenefit Monte-Carlo-estimates ν(S) (eq. 6).
func EstimateFractionalBenefit(g *graph.Graph, p *community.Partition, seeds []graph.NodeID, opts MCOptions) (float64, error) {
	return EstimateFractionalBenefitCtx(context.Background(), g, p, seeds, opts)
}

// EstimateFractionalBenefitCtx is EstimateFractionalBenefit with
// cooperative cancellation: workers poll ctx between iteration batches.
//
//imc:longrun
func EstimateFractionalBenefitCtx(ctx context.Context, g *graph.Graph, p *community.Partition, seeds []graph.NodeID, opts MCOptions) (float64, error) {
	return mcAverageCtx(ctx, g, seeds, opts, func(active []bool, count int) float64 {
		return FractionalBenefit(p, active)
	})
}

// mcAverageCtx fans iterations out over a bounded worker pool. Stream i
// of the seed RNG drives iteration i, so results are independent of
// scheduling; the ctx polls never touch the PRNG, so a completed run is
// byte-identical with or without a live context. On cancellation the
// partial sums are discarded and the ctx error returned.
//
//imc:longrun
func mcAverageCtx(ctx context.Context, g *graph.Graph, seeds []graph.NodeID, opts MCOptions, score func(active []bool, count int) float64) (float64, error) {
	opts, err := opts.normalized()
	if err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	root := xrand.New(opts.Seed)
	workers := opts.Workers
	if workers > opts.Iterations {
		workers = opts.Iterations
	}
	partial := make([]mcPartial, workers)
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sim := NewSimulator(g, opts.Model)
			sum := 0.0
			var rng xrand.RNG
			ran := 0
			for it := w; it < opts.Iterations; it += workers {
				if ran&(ctxPollBatch-1) == 0 {
					if cerr := ctx.Err(); cerr != nil {
						errOnce.Do(func() { firstErr = cerr })
						return
					}
				}
				ran++
				root.SplitInto(uint64(it), &rng)
				active, count := sim.Run(seeds, &rng)
				sum += score(active, count)
			}
			partial[w].sum = sum
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	total := 0.0
	for _, s := range partial {
		total += s.sum
	}
	return total / float64(opts.Iterations), nil
}

// mcPartial is one worker's slot in the shared partial-sum array,
// padded out to a full cache line: adjacent float64 slots would share a
// line and every worker's final store would invalidate its neighbors'
// copies (the falseshare contract verifies the 64-byte size).
//
//imc:padded
type mcPartial struct {
	sum float64
	_   [56]byte
}

// StoppingRuleResult reports a Dagum–Karp–Luby–Ross estimate.
type StoppingRuleResult struct {
	// Mean is the estimated expectation of the sampled variable.
	Mean float64
	// Samples is the number of draws consumed.
	Samples int
	// Converged is false if MaxSamples was hit before the stopping
	// condition (the estimate is then the best effort running mean).
	Converged bool
}

// StoppingRule estimates the mean of a [0, 1]-valued random variable to
// within relative error eps with probability ≥ 1−delta using the
// Stopping Rule Algorithm of Dagum, Karp, Luby and Ross (SIAM J.
// Comput. 2000, §2.1) — the engine of the paper's Estimate procedure
// (Alg. 6). sample must return draws in [0, 1].
func StoppingRule(sample func(*xrand.RNG) float64, eps, delta float64, maxSamples int, rng *xrand.RNG) (StoppingRuleResult, error) {
	return StoppingRuleCtx(context.Background(), sample, eps, delta, maxSamples, rng)
}

// StoppingRuleCtx is StoppingRule with cooperative cancellation: the
// draw loop polls ctx every ctxPollBatch samples (never per draw, so
// the hot path stays allocation-free), returning the ctx error with a
// zero result on cancellation. A completed run is byte-identical to
// StoppingRule: the poll never touches the PRNG stream.
//
//imc:hotpath
//imc:longrun
func StoppingRuleCtx(ctx context.Context, sample func(*xrand.RNG) float64, eps, delta float64, maxSamples int, rng *xrand.RNG) (StoppingRuleResult, error) {
	if eps <= 0 || eps >= 1 {
		return StoppingRuleResult{}, fmt.Errorf("diffusion: eps %g out of (0, 1)", eps)
	}
	if delta <= 0 || delta >= 1 {
		return StoppingRuleResult{}, fmt.Errorf("diffusion: delta %g out of (0, 1)", delta)
	}
	if maxSamples < 1 {
		return StoppingRuleResult{}, errors.New("diffusion: maxSamples must be ≥ 1")
	}
	if err := ctx.Err(); err != nil {
		return StoppingRuleResult{}, err
	}
	// Υ = 1 + 4(e−2)·ln(2/δ)·(1+ε)/ε².
	upsilon := 1 + 4*(math.E-2)*math.Log(2/delta)*(1+eps)/(eps*eps)
	sum := 0.0
	for t := 1; t <= maxSamples; t++ {
		if t&(ctxPollBatch-1) == 0 {
			if err := ctx.Err(); err != nil {
				return StoppingRuleResult{}, err
			}
		}
		//lint:allow ifacedispatch: sample IS the estimator's abstraction point — every draw runs a full cascade behind it, so one indirect call per draw is amortized noise
		sum += sample(rng)
		if sum >= upsilon {
			return StoppingRuleResult{Mean: upsilon / float64(t), Samples: t, Converged: true}, nil
		}
	}
	mean := sum / float64(maxSamples)
	return StoppingRuleResult{Mean: mean, Samples: maxSamples, Converged: false}, nil
}
