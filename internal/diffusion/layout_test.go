//go:build amd64

package diffusion

import "unsafe"

// Compile-time layout pin (gc/amd64): mcPartial is //imc:padded to one
// 64-byte cache line — each Monte-Carlo worker owns one slot of the
// partial-sums slice, and a size drift would put two workers' running
// sums on one line. The constant index compiles only at exactly 64.
var _ = [1]struct{}{}[unsafe.Sizeof(mcPartial{})-64]
