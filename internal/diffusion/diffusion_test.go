package diffusion

import (
	"math"
	"testing"

	"imc/internal/community"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/xrand"
)

func pathGraph(t *testing.T, n int, w float64) *graph.Graph {
	t.Helper()
	g, err := gen.PathGraph(n, w)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestICDeterministicEdges(t *testing.T) {
	g := pathGraph(t, 5, 1) // weight-1 edges always fire
	sim := NewSimulator(g, IC)
	active, count := sim.Run([]graph.NodeID{0}, xrand.New(1))
	if count != 5 {
		t.Fatalf("weight-1 path activated %d/5", count)
	}
	for i := 0; i < 5; i++ {
		if !active[i] {
			t.Fatalf("node %d inactive", i)
		}
	}
}

func TestICZeroWeightNeverSpreads(t *testing.T) {
	g := pathGraph(t, 5, 0)
	sim := NewSimulator(g, IC)
	_, count := sim.Run([]graph.NodeID{0}, xrand.New(1))
	if count != 1 {
		t.Fatalf("zero-weight path activated %d, want 1", count)
	}
}

func TestICSpreadMatchesClosedForm(t *testing.T) {
	// On a 2-node path with weight p, E[spread({0})] = 1 + p.
	const p = 0.35
	g := pathGraph(t, 2, p)
	got, err := EstimateSpread(g, []graph.NodeID{0}, MCOptions{Iterations: 200000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(1+p)) > 0.01 {
		t.Fatalf("spread = %g, want %g", got, 1+p)
	}
}

func TestInvalidAndDuplicateSeeds(t *testing.T) {
	g := pathGraph(t, 3, 1)
	sim := NewSimulator(g, IC)
	_, count := sim.Run([]graph.NodeID{-1, 0, 0, 99}, xrand.New(1))
	if count != 3 {
		t.Fatalf("count = %d, want 3 (dups and out-of-range ignored)", count)
	}
}

func TestLTFullWeightChainActivates(t *testing.T) {
	// Each node's single in-edge has weight 1 ≥ any threshold draw, so
	// LT activates the whole path.
	g := pathGraph(t, 6, 1)
	sim := NewSimulator(g, LT)
	_, count := sim.Run([]graph.NodeID{0}, xrand.New(5))
	if count != 6 {
		t.Fatalf("LT weight-1 path activated %d/6", count)
	}
}

func TestLTSpreadBetweenICBounds(t *testing.T) {
	// Sanity: LT spread on a random graph lies in [k, n].
	g, err := gen.RandomDirected(30, 120, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimateSpread(g, []graph.NodeID{0, 1}, MCOptions{Iterations: 2000, Seed: 11, Model: LT})
	if err != nil {
		t.Fatal(err)
	}
	if got < 2 || got > 30 {
		t.Fatalf("LT spread %g out of [2, 30]", got)
	}
}

func TestCommunityBenefitScoring(t *testing.T) {
	part, err := community.New(6, [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	active := []bool{true, true, false, true, false, false}
	if got := CommunityBenefit(part, active); got != 3 {
		t.Fatalf("benefit = %g, want 3 (first community only)", got)
	}
	if got := FractionalBenefit(part, active); math.Abs(got-(3+3*0.5)) > 1e-12 {
		t.Fatalf("fractional benefit = %g, want 4.5", got)
	}
	// Fractional is capped at the full benefit.
	allActive := []bool{true, true, true, true, true, true}
	if got := FractionalBenefit(part, allActive); got != 6 {
		t.Fatalf("fractional benefit = %g, want 6", got)
	}
}

func TestEstimateBenefitSeededCommunity(t *testing.T) {
	// Seeding an entire community guarantees its benefit.
	g := pathGraph(t, 6, 0)
	part, err := community.New(6, [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	got, err := EstimateBenefit(g, part, []graph.NodeID{0, 1}, MCOptions{Iterations: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("benefit = %g, want exactly 3 (no diffusion, community 0 seeded)", got)
	}
}

func TestMCOptionsValidation(t *testing.T) {
	g := pathGraph(t, 3, 1)
	if _, err := EstimateSpread(g, []graph.NodeID{0}, MCOptions{Iterations: 0}); err == nil {
		t.Fatal("want iterations error")
	}
}

func TestMCDeterministicAcrossWorkers(t *testing.T) {
	g, err := gen.RandomDirected(40, 150, 0.4, 13)
	if err != nil {
		t.Fatal(err)
	}
	a, err := EstimateSpread(g, []graph.NodeID{0, 5}, MCOptions{Iterations: 999, Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateSpread(g, []graph.NodeID{0, 5}, MCOptions{Iterations: 999, Seed: 4, Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("MC estimate depends on worker count: %g vs %g", a, b)
	}
}

func TestStoppingRuleEstimatesBernoulli(t *testing.T) {
	const p = 0.3
	res, err := StoppingRule(func(r *xrand.RNG) float64 {
		if r.Bernoulli(p) {
			return 1
		}
		return 0
	}, 0.1, 0.1, 1_000_000, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("stopping rule did not converge")
	}
	if math.Abs(res.Mean-p) > 0.1*p {
		t.Fatalf("estimated mean %g, want within 10%% of %g", res.Mean, p)
	}
}

func TestStoppingRuleHitsCap(t *testing.T) {
	res, err := StoppingRule(func(*xrand.RNG) float64 { return 0 }, 0.2, 0.2, 100, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("all-zero stream cannot converge")
	}
	if res.Mean != 0 || res.Samples != 100 {
		t.Fatalf("res = %+v", res)
	}
}

func TestStoppingRuleValidation(t *testing.T) {
	sample := func(*xrand.RNG) float64 { return 1 }
	if _, err := StoppingRule(sample, 0, 0.1, 10, xrand.New(1)); err == nil {
		t.Fatal("want eps error")
	}
	if _, err := StoppingRule(sample, 0.1, 1.5, 10, xrand.New(1)); err == nil {
		t.Fatal("want delta error")
	}
	if _, err := StoppingRule(sample, 0.1, 0.1, 0, xrand.New(1)); err == nil {
		t.Fatal("want maxSamples error")
	}
}

func TestTraceDeterministicPath(t *testing.T) {
	g := pathGraph(t, 4, 1)
	rounds := Trace(g, []graph.NodeID{0}, xrand.New(1))
	if len(rounds) != 4 {
		t.Fatalf("rounds = %d, want 4 (one hop per round)", len(rounds))
	}
	for i, r := range rounds {
		if r.Round != i || len(r.Activated) != 1 || r.Activated[0] != graph.NodeID(i) {
			t.Fatalf("round %d malformed: %+v", i, r)
		}
	}
}

func TestTraceCountsMatchSimulator(t *testing.T) {
	g, err := gen.RandomDirected(40, 150, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []graph.NodeID{0, 7}
	rounds := Trace(g, seeds, xrand.New(9))
	traced := 0
	seen := make(map[graph.NodeID]bool)
	for _, r := range rounds {
		for _, v := range r.Activated {
			if seen[v] {
				t.Fatalf("node %d activated twice", v)
			}
			seen[v] = true
			traced++
		}
	}
	if traced < len(seeds) || traced > 40 {
		t.Fatalf("traced %d activations", traced)
	}
	// Round 0 is exactly the distinct seeds.
	if len(rounds) == 0 || len(rounds[0].Activated) != 2 {
		t.Fatalf("round 0 = %+v", rounds[0])
	}
}

func TestModelString(t *testing.T) {
	if IC.String() != "IC" || LT.String() != "LT" {
		t.Fatal("Model.String mismatch")
	}
	if Model(9).String() != "Model(9)" {
		t.Fatal("unknown model string")
	}
}
