package poolcache

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
	"imc/internal/ric"
)

func smallInstance(t testing.TB) (*graph.Graph, *community.Partition) {
	t.Helper()
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 0.4)
	b.AddEdge(1, 2, 0.6)
	b.AddEdge(0, 3, 0.5)
	b.AddEdge(3, 4, 0.7)
	b.AddEdge(4, 5, 0.3)
	b.AddEdge(2, 4, 0.2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(6, [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part
}

func newPool(t testing.TB, g *graph.Graph, part *community.Partition, seed uint64) *ric.Pool {
	t.Helper()
	p, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func openCache(t testing.TB, dir string, opts Options) *Cache {
	t.Helper()
	c, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func saveBytes(t testing.TB, p *ric.Pool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestKeyIdentity(t *testing.T) {
	g, part := smallInstance(t)
	base := KeyFor(g, part, diffusion.IC, 7)
	if KeyFor(g, part, diffusion.IC, 7) != base {
		t.Fatal("key is not deterministic")
	}
	if KeyFor(g, part, diffusion.IC, 8) == base {
		t.Fatal("seed not in key")
	}
	if KeyFor(g, part, diffusion.LT, 7) == base {
		t.Fatal("model not in key")
	}
	// Same content, rebuilt objects: keys must match (content address,
	// not pointer identity).
	g2, part2 := smallInstance(t)
	if KeyFor(g2, part2, diffusion.IC, 7) != base {
		t.Fatal("key depends on object identity, not content")
	}
	// One perturbed weight changes the key.
	b := graph.NewBuilder(6)
	for _, e := range g.Edges() {
		w := e.Weight
		if e.From == 0 && e.To == 1 {
			w += 0.125
		}
		b.AddEdge(e.From, e.To, w)
	}
	g3, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if KeyFor(g3, part, diffusion.IC, 7) == base {
		t.Fatal("weights not in key")
	}
	// A different threshold profile changes the key.
	part3, err := community.New(6, [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	part3.SetBoundedThresholds(1)
	part3.SetPopulationBenefits()
	if KeyFor(g, part3, diffusion.IC, 7) == base {
		t.Fatal("partition thresholds not in key")
	}
}

// TestSessionRoundTrip drives the full warm-path contract: a cold
// session generates and saves; a second session over the same identity
// hits, adopts the cached samples, and — the determinism pin — the pool
// it grows to 2Θ is byte-identical to one generated from scratch.
func TestSessionRoundTrip(t *testing.T) {
	g, part := smallInstance(t)
	dir := t.TempDir()
	ctx := context.Background()
	const theta, seed = 150, 5

	c := openCache(t, dir, Options{Logf: t.Logf})
	cold := c.Begin(g, part, diffusion.IC, seed)
	p1 := newPool(t, g, part, seed)
	if err := cold.Grow(ctx, p1, theta); err != nil {
		t.Fatal(err)
	}
	if err := cold.Save(p1); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Saves != 1 || st.Entries != 1 {
		t.Fatalf("after cold run: %+v", st)
	}

	// Fresh cache object over the same dir — read-on-boot.
	c2 := openCache(t, dir, Options{Logf: t.Logf})
	if got := c2.Stats().Entries; got != 1 {
		t.Fatalf("boot scan found %d entries, want 1", got)
	}
	warm := c2.Begin(g, part, diffusion.IC, seed)
	if warm.Key() != cold.Key() {
		t.Fatal("same identity produced different session keys")
	}
	if cached := warm.Cached(); cached == nil || cached.NumSamples() != theta {
		t.Fatalf("Cached() = %v, want %d-sample pool", cached, theta)
	}
	p2 := newPool(t, g, part, seed)
	if err := warm.Grow(ctx, p2, 2*theta); err != nil {
		t.Fatal(err)
	}
	st = c2.Stats()
	if st.Hits != 1 || st.Extends != 1 || st.AdoptedSamples != theta {
		t.Fatalf("after warm grow: %+v", st)
	}

	scratch := newPool(t, g, part, seed)
	if err := scratch.EnsureCtx(ctx, 2*theta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, scratch), saveBytes(t, p2)) {
		t.Fatal("cache-adopted pool diverged from scratch generation")
	}

	// Store-back of the grown pool replaces the snapshot in place.
	if err := warm.Save(p2); err != nil {
		t.Fatal(err)
	}
	st = c2.Stats()
	if st.Entries != 1 || st.Saves != 1 {
		t.Fatalf("grown save should replace the entry: %+v", st)
	}
	c3 := openCache(t, dir, Options{})
	again := c3.Begin(g, part, diffusion.IC, seed)
	if cached := again.Cached(); cached == nil || cached.NumSamples() != 2*theta {
		t.Fatalf("reloaded snapshot has %v samples, want %d", cached.NumSamples(), 2*theta)
	}
}

// TestSaveSkipsSmallerPool: a pool no larger than the cached snapshot
// must not overwrite it (a concurrent shorter solve would otherwise
// shrink the cache).
func TestSaveSkipsSmallerPool(t *testing.T) {
	g, part := smallInstance(t)
	c := openCache(t, t.TempDir(), Options{})
	ctx := context.Background()

	s := c.Begin(g, part, diffusion.IC, 3)
	big := newPool(t, g, part, 3)
	if err := s.Grow(ctx, big, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(big); err != nil {
		t.Fatal(err)
	}
	small := newPool(t, g, part, 3)
	if err := small.EnsureCtx(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(g, part, diffusion.IC, 3).Save(small); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Saves != 1 {
		t.Fatalf("smaller pool overwrote the snapshot: %+v", st)
	}
	s2 := c.Begin(g, part, diffusion.IC, 3)
	if cached := s2.Cached(); cached == nil || cached.NumSamples() != 100 {
		t.Fatal("cached snapshot shrank")
	}
}

func TestEvictionLRU(t *testing.T) {
	g, part := smallInstance(t)
	ctx := context.Background()
	dir := t.TempDir()

	// Learn the size of one snapshot, then budget for about two.
	probe := openCache(t, dir, Options{})
	p := newPool(t, g, part, 1)
	s := probe.Begin(g, part, diffusion.IC, 1)
	if err := s.Grow(ctx, p, 50); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(p); err != nil {
		t.Fatal(err)
	}
	one := probe.Stats().Bytes
	if one <= 0 {
		t.Fatal("no bytes recorded")
	}
	os.RemoveAll(dir)

	c := openCache(t, dir, Options{MaxBytes: 2*one + one/2, Logf: t.Logf})
	for seed := uint64(1); seed <= 3; seed++ {
		s := c.Begin(g, part, diffusion.IC, seed)
		pool := newPool(t, g, part, seed)
		if err := s.Grow(ctx, pool, 50); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(pool); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("want 2 entries after 1 eviction, got %+v", st)
	}
	// Seed 1 was least recently used; its session must now miss.
	if c.Begin(g, part, diffusion.IC, 1).Cached() != nil {
		t.Fatal("LRU entry survived eviction")
	}
	if c.Begin(g, part, diffusion.IC, 3).Cached() == nil {
		t.Fatal("most recent entry was evicted")
	}
	// Orphaned files are gone from disk too.
	dents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dents) != 2 {
		t.Fatalf("%d files on disk, want 2", len(dents))
	}
}

// TestEvictionNeverRemovesInsertedKey: a snapshot bigger than the whole
// budget still caches (evicting everything else) — eviction must not
// delete the entry being inserted.
func TestEvictionNeverRemovesInsertedKey(t *testing.T) {
	g, part := smallInstance(t)
	ctx := context.Background()
	c := openCache(t, t.TempDir(), Options{MaxBytes: 1, Logf: t.Logf}) // below any real snapshot

	s := c.Begin(g, part, diffusion.IC, 9)
	pool := newPool(t, g, part, 9)
	if err := s.Grow(ctx, pool, 40); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(pool); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("oversized insert must survive alone: %+v", st)
	}
	if c.Begin(g, part, diffusion.IC, 9).Cached() == nil {
		t.Fatal("inserted entry missing")
	}
}

func TestBootEvictsOverBudget(t *testing.T) {
	g, part := smallInstance(t)
	ctx := context.Background()
	dir := t.TempDir()

	c := openCache(t, dir, Options{})
	var one int64
	for seed := uint64(1); seed <= 3; seed++ {
		s := c.Begin(g, part, diffusion.IC, seed)
		pool := newPool(t, g, part, seed)
		if err := s.Grow(ctx, pool, 50); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(pool); err != nil {
			t.Fatal(err)
		}
		if seed == 1 {
			one = c.Stats().Bytes
		}
	}
	if c.Stats().Entries != 3 {
		t.Fatal("setup failed")
	}
	// Reopen with room for roughly one entry: boot eviction trims to fit.
	c2 := openCache(t, dir, Options{MaxBytes: one + one/2, Logf: t.Logf})
	st := c2.Stats()
	if st.Entries != 1 || st.Bytes > one+one/2 {
		t.Fatalf("boot eviction left %+v", st)
	}
}

func TestCorruptSnapshotDropped(t *testing.T) {
	g, part := smallInstance(t)
	ctx := context.Background()
	dir := t.TempDir()

	c := openCache(t, dir, Options{Logf: t.Logf})
	s := c.Begin(g, part, diffusion.IC, 4)
	pool := newPool(t, g, part, 4)
	if err := s.Grow(ctx, pool, 30); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(pool); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the pool body; the CRC frame catches it on load.
	path := filepath.Join(dir, s.Key().String()+fileSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := openCache(t, dir, Options{Logf: t.Logf})
	s2 := c2.Begin(g, part, diffusion.IC, 4)
	p2 := newPool(t, g, part, 4)
	if err := s2.Grow(ctx, p2, 30); err != nil {
		t.Fatal(err) // corrupt cache must degrade to generation, not fail
	}
	if p2.NumSamples() != 30 {
		t.Fatalf("pool has %d samples, want 30", p2.NumSamples())
	}
	st := c2.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.Errors == 0 {
		t.Fatalf("corrupt load should count a miss and an error: %+v", st)
	}
	if st.Entries != 0 {
		t.Fatal("corrupt entry not dropped")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file not unlinked")
	}
}

func TestBootIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, strings.Repeat("ab", 32)+".pool"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "leftover.tmp"), []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := openCache(t, dir, Options{Logf: t.Logf})
	st := c.Stats()
	if st.Entries != 0 {
		t.Fatalf("foreign files indexed: %+v", st)
	}
	if st.Errors == 0 {
		t.Fatal("unparseable .pool file should count an error")
	}
	if _, err := os.Stat(filepath.Join(dir, "leftover.tmp")); !os.IsNotExist(err) {
		t.Fatal("stale temp file not removed at boot")
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("boot scan must not delete unrelated files")
	}
}

// TestNilCache: the nil cache and nil session are fully functional
// no-ops — this is what every call site relies on when caching is off.
func TestNilCache(t *testing.T) {
	g, part := smallInstance(t)
	ctx := context.Background()
	var c *Cache
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	s := c.Begin(g, part, diffusion.IC, 1)
	if s != nil {
		t.Fatal("nil cache must return a nil session")
	}
	if s.Cached() != nil {
		t.Fatal("nil session returned a pool")
	}
	pool := newPool(t, g, part, 1)
	if err := s.Grow(ctx, pool, 25); err != nil {
		t.Fatal(err)
	}
	if pool.NumSamples() != 25 {
		t.Fatalf("nil session Grow generated %d samples, want 25", pool.NumSamples())
	}
	if err := s.Save(pool); err != nil {
		t.Fatal(err)
	}
	if s.Key() != (Key{}) {
		t.Fatal("nil session key should be zero")
	}
}

// TestSessionIsolation: sessions over different identities never see
// each other's snapshots.
func TestSessionIsolation(t *testing.T) {
	g, part := smallInstance(t)
	ctx := context.Background()
	c := openCache(t, t.TempDir(), Options{})

	s1 := c.Begin(g, part, diffusion.IC, 1)
	p1 := newPool(t, g, part, 1)
	if err := s1.Grow(ctx, p1, 40); err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(p1); err != nil {
		t.Fatal(err)
	}
	if c.Begin(g, part, diffusion.IC, 2).Cached() != nil {
		t.Fatal("different seed hit the cache")
	}
	if c.Begin(g, part, diffusion.LT, 1).Cached() != nil {
		t.Fatal("different model hit the cache")
	}
}
