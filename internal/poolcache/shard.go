package poolcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"imc/internal/atomicio"
	"imc/internal/ric"
)

// Shard entries: the distributed runtime's workers persist each
// generated sample range [lo, hi) as an IMCS export (ric.ExportRange)
// under a key derived from the instance's content address and the
// range. The container is the same CRC-framed cache file layout —
// magic, version, sample count, payload stream — so the boot scan,
// LRU eviction, and byte budget treat shard entries exactly like full
// snapshots; only the embedded stream differs (IMCS range vs IMCP
// prefix). A worker that restarts mid-job finds its finished ranges by
// key and serves them without regenerating — the exactly-once side of
// the shard protocol's at-least-once dispatch.

// KeyForShard derives the content address of one shard range from the
// instance key (KeyFor) and the global sample range [lo, hi). Equal
// keys guarantee byte-identical exports: the instance key pins the
// sample sequence, the range pins the slice.
func KeyForShard(base Key, lo, hi int) Key {
	h := sha256.New()
	io.WriteString(h, "imc poolcache shard v1\n")
	h.Write(base[:])
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(lo))
	binary.LittleEndian.PutUint64(buf[8:], uint64(hi))
	h.Write(buf[:])
	var k Key
	h.Sum(k[:0])
	return k
}

// SaveShard stores pool's global sample range [lo, hi) as a cache
// entry under KeyForShard(base, lo, hi). The range must lie inside the
// pool's generated span. Re-saving an existing range only touches its
// recency (same key ⇒ byte-identical payload, nothing to rewrite);
// a concurrent save of the same range makes this one a no-op. The
// write is atomic and CRC-framed, and the byte budget is enforced
// afterwards — evicting other entries, never this one. Safe on nil
// (no-op).
func (c *Cache) SaveShard(base Key, pool *ric.Pool, lo, hi int) error {
	if c == nil {
		return nil
	}
	key := KeyForShard(base, lo, hi)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.seq++
		e.seq = c.seq
		c.mu.Unlock()
		return nil
	}
	if c.saving[key] {
		c.mu.Unlock()
		return nil
	}
	c.saving[key] = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.saving, key)
		c.mu.Unlock()
	}()
	path := c.path(key)
	err := atomicio.WriteCRCStream(path, func(w io.Writer) error {
		var hdr [cacheHeaderSize]byte
		copy(hdr[:4], cacheMagic[:])
		binary.LittleEndian.PutUint32(hdr[4:8], cacheVersion)
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(hi-lo))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		return pool.ExportRange(w, lo, hi)
	})
	if err != nil {
		c.mu.Lock()
		c.stats.Errors++
		c.mu.Unlock()
		return fmt.Errorf("poolcache: save shard %s: %w", key, err)
	}
	info, err := os.Stat(path)
	if err != nil {
		c.mu.Lock()
		c.stats.Errors++
		c.mu.Unlock()
		return fmt.Errorf("poolcache: stat saved shard %s: %w", key, err)
	}
	c.mu.Lock()
	if old, ok := c.entries[key]; ok {
		c.bytes -= old.size
	}
	c.seq++
	c.entries[key] = &entry{size: info.Size(), samples: uint64(hi - lo), seq: c.seq}
	c.bytes += info.Size()
	c.stats.Saves++
	c.stats.ShardSaves++
	victims := c.evictLocked(key, true)
	c.mu.Unlock()
	c.removeFiles(victims)
	return nil
}

// LoadShard splices the cached shard range [lo, hi) for base into
// pool, whose next global sample index must equal lo (ImportRange's
// contiguity contract). Returns found=false when the range is not
// cached — the caller generates it instead. A cached file that fails
// the CRC, header, or IMCS validation is dropped, counts an error, and
// reports found=false: a corrupt shard degrades to regeneration, never
// to a wrong pool. Safe on nil (always a miss).
func (c *Cache) LoadShard(base Key, pool *ric.Pool, lo, hi int) (found bool, err error) {
	if c == nil {
		return false, nil
	}
	key := KeyForShard(base, lo, hi)
	if _, ok := c.lookup(key); !ok {
		c.mu.Lock()
		c.stats.ShardMisses++
		c.mu.Unlock()
		return false, nil
	}
	body, err := atomicio.ReadCRCFile(c.path(key))
	if err == nil && (len(body) < cacheHeaderSize || !bytes.Equal(body[:4], cacheMagic[:])) {
		err = fmt.Errorf("poolcache: shard entry header malformed")
	}
	if err == nil {
		if v := binary.LittleEndian.Uint32(body[4:8]); v != cacheVersion {
			err = fmt.Errorf("poolcache: unsupported cache version %d (want %d)", v, cacheVersion)
		}
	}
	var gotLo, gotHi int
	if err == nil {
		gotLo, gotHi, err = pool.ImportRange(bytes.NewReader(body[cacheHeaderSize:]))
	}
	if err == nil && (gotLo != lo || gotHi != hi) {
		// ImportRange succeeded, so the pool now holds the wrong range —
		// unreachable unless the key derivation itself is broken, and not
		// recoverable by regeneration; surface it as a hard error.
		return false, fmt.Errorf("poolcache: shard %s holds range [%d, %d), want [%d, %d)", key, gotLo, gotHi, lo, hi)
	}
	if err != nil {
		c.drop(key, err)
		c.mu.Lock()
		c.stats.ShardMisses++
		c.mu.Unlock()
		return false, nil
	}
	c.mu.Lock()
	c.stats.ShardHits++
	c.mu.Unlock()
	return true, nil
}
