package poolcache

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"imc/internal/atomicio"
	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
	"imc/internal/ric"
)

// Session is one request's view of the cache for a single pool
// identity. It lazily loads the cached snapshot (at most once) into a
// donor pool, satisfies Grow calls from the donor before generating,
// and writes grown pools back with Save. A nil *Session is valid and
// degrades to plain generation — callers wire the cache
// unconditionally and never branch.
//
// Sessions are not safe for concurrent use; create one per request.
// Different sessions over the same key are independent (each loads its
// own donor), so concurrent requests never share mutable pool state.
type Session struct {
	c     *Cache               //imc:guardedby immutable
	key   Key                  //imc:guardedby immutable
	g     *graph.Graph         //imc:guardedby immutable
	part  *community.Partition //imc:guardedby immutable
	model diffusion.Model      //imc:guardedby immutable
	seed  uint64               //imc:guardedby immutable

	once  sync.Once
	donor *ric.Donor // written once inside once.Do(load), read after
}

// Key returns the session's content address (zero for a nil session).
func (s *Session) Key() Key {
	if s == nil {
		return Key{}
	}
	return s.key
}

// load reads the cached snapshot (if any) into a donor pool, counting
// one hit or miss per session. A snapshot that fails to read or
// validate is dropped from the cache and counts an error and a miss —
// the request then simply generates everything, as if cold.
func (s *Session) load() {
	samples, ok := s.c.lookup(s.key)
	if !ok || samples == 0 {
		s.c.mu.Lock()
		s.c.stats.Misses++
		s.c.mu.Unlock()
		return
	}
	pool, err := s.readSnapshot()
	if err != nil {
		s.c.drop(s.key, err)
		s.c.mu.Lock()
		s.c.stats.Misses++
		s.c.mu.Unlock()
		return
	}
	s.donor = ric.NewDonor(pool)
	s.c.mu.Lock()
	s.c.stats.Hits++
	s.c.mu.Unlock()
}

// readSnapshot reads, CRC-checks, and decodes the cache file into a
// fresh pool over the session's instance. ric.Pool.ReadInto re-checks
// the identity header (seed, model, weight digest) — redundant with the
// content address, but it means a hand-renamed file fails closed.
func (s *Session) readSnapshot() (*ric.Pool, error) {
	body, err := atomicio.ReadCRCFile(s.c.path(s.key))
	if err != nil {
		return nil, err
	}
	if len(body) < cacheHeaderSize {
		return nil, fmt.Errorf("poolcache: %d bytes, shorter than the %d-byte header", len(body), cacheHeaderSize)
	}
	if !bytes.Equal(body[:4], cacheMagic[:]) {
		return nil, fmt.Errorf("poolcache: bad magic %q", body[:4])
	}
	if v := binary.LittleEndian.Uint32(body[4:8]); v != cacheVersion {
		return nil, fmt.Errorf("poolcache: unsupported cache version %d (want %d)", v, cacheVersion)
	}
	pool, err := ric.NewPool(s.g, s.part, ric.PoolOptions{Model: s.model, Seed: s.seed})
	if err != nil {
		return nil, err
	}
	if err := pool.ReadInto(bytes.NewReader(body[cacheHeaderSize:])); err != nil {
		return nil, err
	}
	return pool, nil
}

// Cached returns the loaded donor pool: the cache's frozen snapshot
// for this identity, or nil on a miss. Read-only — callers evaluate
// against it (ĉ_R of a seed set, say) but never mutate or grow it.
// Safe on nil (always a miss).
func (s *Session) Cached() *ric.Pool {
	if s == nil {
		return nil
	}
	s.once.Do(s.load)
	if s.donor == nil {
		return nil
	}
	return s.donor.Pool()
}

// Adopt splices cached samples into pool up to target without
// generating anything, and reports how many were adopted. This is the
// cache half of Grow, exposed separately so callers with their own
// generation strategy (the distributed shard coordinator, say) can
// compose adoption with it instead of pool.EnsureCtx. Safe on nil
// (adopts nothing).
func (s *Session) Adopt(pool *ric.Pool, target int) int {
	if s == nil {
		return 0
	}
	s.once.Do(s.load)
	if s.donor == nil || target <= pool.NumSamples() {
		return 0
	}
	adopted, err := s.donor.ExtendTo(pool, target)
	if err != nil {
		// An identity mismatch here means the session is being used
		// with a pool it was not begun for — a caller bug, not a bad
		// cache file. The snapshot stays; this session just stops
		// adopting and generates everything.
		s.c.log("poolcache: session %s cannot adopt: %v", s.key, err)
		s.c.mu.Lock()
		s.c.stats.Errors++
		s.c.mu.Unlock()
		s.donor = nil
		return 0
	}
	if adopted > 0 {
		s.c.mu.Lock()
		s.c.stats.Extends++
		s.c.stats.AdoptedSamples += uint64(adopted)
		s.c.mu.Unlock()
	}
	return adopted
}

// Grow brings pool up to at least target samples, adopting cached
// samples first and generating only the missing tail. Because sample i
// is always drawn from PRNG stream i, the result is byte-identical to
// growing the pool without a cache — Grow changes where samples come
// from, never what they are. The signature matches core.Options.Grow,
// so a session (or method value s.Grow) plugs straight into the
// solvers. Safe on nil (plain generation).
//
//imc:longrun
func (s *Session) Grow(ctx context.Context, pool *ric.Pool, target int) error {
	if s == nil {
		return pool.EnsureCtx(ctx, target)
	}
	s.Adopt(pool, target)
	return pool.EnsureCtx(ctx, target)
}

// Save writes pool's samples back to the cache when they extend past
// the cached snapshot (a pool no larger than what is stored is only
// touched for recency; a concurrent save of the same key makes this
// one a no-op). The write is atomic and CRC-framed, and the byte
// budget is enforced afterwards — evicting other entries, never this
// one. Errors are returned for logging but leave the cache consistent;
// callers treat Save as best-effort. Safe on nil (no-op).
func (s *Session) Save(pool *ric.Pool) error {
	if s == nil || pool.NumSamples() == 0 {
		return nil
	}
	n := uint64(pool.NumSamples())
	// Claim the key's write slot (and bail if the cached snapshot is
	// already at least this large) in one critical section, then do all
	// disk work unlocked — no other cache user ever waits on this write.
	s.c.mu.Lock()
	if e, ok := s.c.entries[s.key]; ok && e.samples >= n {
		s.c.seq++
		e.seq = s.c.seq
		s.c.mu.Unlock()
		return nil
	}
	if s.c.saving[s.key] {
		s.c.mu.Unlock()
		return nil
	}
	s.c.saving[s.key] = true
	s.c.mu.Unlock()
	defer func() {
		s.c.mu.Lock()
		delete(s.c.saving, s.key)
		s.c.mu.Unlock()
	}()
	path := s.c.path(s.key)
	err := atomicio.WriteCRCStream(path, func(w io.Writer) error {
		var hdr [cacheHeaderSize]byte
		copy(hdr[:4], cacheMagic[:])
		binary.LittleEndian.PutUint32(hdr[4:8], cacheVersion)
		binary.LittleEndian.PutUint64(hdr[8:16], n)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		return pool.Save(w)
	})
	if err != nil {
		s.c.mu.Lock()
		s.c.stats.Errors++
		s.c.mu.Unlock()
		return fmt.Errorf("poolcache: save %s: %w", s.key, err)
	}
	info, err := os.Stat(path)
	if err != nil {
		s.c.mu.Lock()
		s.c.stats.Errors++
		s.c.mu.Unlock()
		return fmt.Errorf("poolcache: stat saved %s: %w", s.key, err)
	}
	s.c.mu.Lock()
	if old, ok := s.c.entries[s.key]; ok {
		s.c.bytes -= old.size
	}
	s.c.seq++
	s.c.entries[s.key] = &entry{size: info.Size(), samples: n, seq: s.c.seq}
	s.c.bytes += info.Size()
	s.c.stats.Saves++
	victims := s.c.evictLocked(s.key, true)
	s.c.mu.Unlock()
	s.c.removeFiles(victims)
	return nil
}
