package poolcache

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"imc/internal/diffusion"
	"imc/internal/ric"
)

// shardPool generates global samples [lo, hi) in an offset pool.
func shardPool(t testing.TB, lo, hi int, seed uint64) *ric.Pool {
	t.Helper()
	g, part := smallInstance(t)
	p, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed, Offset: lo})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnsureCtx(context.Background(), hi-lo); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestKeyForShardDistinguishesRanges(t *testing.T) {
	g, part := smallInstance(t)
	base := KeyFor(g, part, diffusion.IC, 7)
	a := KeyForShard(base, 0, 100)
	if KeyForShard(base, 0, 100) != a {
		t.Fatal("shard key is not deterministic")
	}
	if KeyForShard(base, 0, 101) == a || KeyForShard(base, 1, 100) == a {
		t.Fatal("range bounds not in shard key")
	}
	other := KeyFor(g, part, diffusion.IC, 8)
	if KeyForShard(other, 0, 100) == a {
		t.Fatal("instance key not in shard key")
	}
	if a == base {
		t.Fatal("shard key aliases the instance key")
	}
}

// TestShardSaveLoadRoundTrip: a saved range loads back into a fresh
// shard pool, and the loaded pool serves the same exported bytes.
func TestShardSaveLoadRoundTrip(t *testing.T) {
	g, part := smallInstance(t)
	const lo, hi, seed = 30, 70, 11
	base := KeyFor(g, part, diffusion.IC, seed)
	c := openCache(t, t.TempDir(), Options{})

	src := shardPool(t, lo, hi, seed)
	if err := c.SaveShard(base, src, lo, hi); err != nil {
		t.Fatal(err)
	}

	dst, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed, Offset: lo})
	if err != nil {
		t.Fatal(err)
	}
	found, err := c.LoadShard(base, dst, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("saved shard not found")
	}
	var want, got bytes.Buffer
	if err := src.ExportRange(&want, lo, hi); err != nil {
		t.Fatal(err)
	}
	if err := dst.ExportRange(&got, lo, hi); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("loaded shard exports different bytes")
	}

	st := c.Stats()
	if st.ShardSaves != 1 || st.ShardHits != 1 {
		t.Fatalf("stats = %+v, want 1 shard save and 1 shard hit", st)
	}

	// A different range is a miss, not an error.
	miss, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed, Offset: hi})
	if err != nil {
		t.Fatal(err)
	}
	found, err = c.LoadShard(base, miss, hi, hi+10)
	if err != nil || found {
		t.Fatalf("uncached range: found=%v err=%v", found, err)
	}
	if st := c.Stats(); st.ShardMisses != 1 {
		t.Fatalf("stats = %+v, want 1 shard miss", st)
	}
}

// TestShardEntriesSurviveReboot: shard entries use the common cache
// container, so a reopened cache indexes them and serves them again —
// the restart half of the worker's exactly-once contract.
func TestShardEntriesSurviveReboot(t *testing.T) {
	g, part := smallInstance(t)
	const lo, hi, seed = 0, 40, 13
	base := KeyFor(g, part, diffusion.IC, seed)
	dir := t.TempDir()

	c := openCache(t, dir, Options{})
	if err := c.SaveShard(base, shardPool(t, lo, hi, seed), lo, hi); err != nil {
		t.Fatal(err)
	}

	re := openCache(t, dir, Options{})
	if st := re.Stats(); st.Entries != 1 {
		t.Fatalf("rebooted cache has %d entries, want 1", st.Entries)
	}
	dst, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed, Offset: lo})
	if err != nil {
		t.Fatal(err)
	}
	found, err := re.LoadShard(base, dst, lo, hi)
	if err != nil || !found {
		t.Fatalf("rebooted cache: found=%v err=%v", found, err)
	}
	if dst.NumSamples() != hi-lo {
		t.Fatalf("loaded %d samples, want %d", dst.NumSamples(), hi-lo)
	}
}

// TestShardLoadDropsCorruptEntry: a flipped byte fails the CRC frame;
// the entry is dropped and the load degrades to a miss so the worker
// regenerates instead of serving garbage.
func TestShardLoadDropsCorruptEntry(t *testing.T) {
	g, part := smallInstance(t)
	const lo, hi, seed = 10, 30, 17
	base := KeyFor(g, part, diffusion.IC, seed)
	dir := t.TempDir()
	c := openCache(t, dir, Options{})
	if err := c.SaveShard(base, shardPool(t, lo, hi, seed), lo, hi); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, KeyForShard(base, lo, hi).String()+fileSuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	dst, err := ric.NewPool(g, part, ric.PoolOptions{Seed: seed, Offset: lo})
	if err != nil {
		t.Fatal(err)
	}
	found, err := c.LoadShard(base, dst, lo, hi)
	if err != nil || found {
		t.Fatalf("corrupt shard: found=%v err=%v", found, err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Errors == 0 {
		t.Fatalf("corrupt entry not dropped: %+v", st)
	}
	if dst.NumSamples() != 0 {
		t.Fatalf("corrupt load left %d samples in the pool", dst.NumSamples())
	}
}

// TestSessionAdoptThenGenerate: Adopt alone splices the cached prefix
// without generating, so a caller can hand the tail to its own grow
// strategy; the composed pool still matches pure generation.
func TestSessionAdoptThenGenerate(t *testing.T) {
	g, part := smallInstance(t)
	const seed = 19
	c := openCache(t, t.TempDir(), Options{})

	warmup := newPool(t, g, part, seed)
	if err := warmup.EnsureCtx(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if err := c.Begin(g, part, diffusion.IC, seed).Save(warmup); err != nil {
		t.Fatal(err)
	}

	sess := c.Begin(g, part, diffusion.IC, seed)
	pool := newPool(t, g, part, seed)
	if adopted := sess.Adopt(pool, 80); adopted != 50 {
		t.Fatalf("adopted %d samples, want 50", adopted)
	}
	if pool.NumSamples() != 50 {
		t.Fatalf("Adopt generated: pool has %d samples", pool.NumSamples())
	}
	if err := pool.EnsureCtx(context.Background(), 80); err != nil {
		t.Fatal(err)
	}

	pure := newPool(t, g, part, seed)
	if err := pure.EnsureCtx(context.Background(), 80); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, pure), saveBytes(t, pool)) {
		t.Fatal("adopt-then-generate diverged from pure generation")
	}
}
