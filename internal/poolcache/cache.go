// Package poolcache is a content-addressed on-disk store of RIC pool
// snapshots shared across solve requests. The key (see Key) pins the
// full pool identity — weighted graph, partition, model, seed — so a
// cached snapshot is always a byte-exact prefix of the sample sequence
// any matching request would generate, and requests that need more
// samples than the cache holds adopt the cached prefix and generate
// only the missing tail ("incremental doubling"). Files are CRC-framed
// and published atomically via internal/atomicio; a byte budget is
// enforced with LRU eviction.
package poolcache

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
)

// Cache file layout (little endian), wrapped in an atomicio CRC frame:
//
//	magic    [4]byte  "IMCC"
//	version  uint32   (1)
//	samples  uint64   sample count of the embedded pool
//	pool     ric pool stream (Pool.Save, format v2)
//	crc32    uint32   IEEE checksum of everything before it
//
// The sample count is duplicated out of the pool header so the boot
// scan and the grow-or-skip decision read 16 bytes instead of parsing
// (or checksumming) the whole snapshot. The pool stream carries its own
// identity (seed, model, weight digest) which ric.Pool.ReadInto
// re-validates on load — the cache key should make a mismatch
// impossible, but a renamed or hand-copied file still fails closed.

var cacheMagic = [4]byte{'I', 'M', 'C', 'C'}

const (
	cacheVersion    = 1
	cacheHeaderSize = 4 + 4 + 8 // magic, version, samples
	fileSuffix      = ".pool"
)

// Options configures Open.
type Options struct {
	// MaxBytes caps the total size of cache files on disk; once
	// exceeded, least-recently-used entries are evicted. Zero or
	// negative means unlimited.
	MaxBytes int64
	// Logf, when non-nil, receives one line per operational event
	// (corrupt file dropped, eviction, save failure).
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of the cache's counters. The JSON
// tags are the field names the server's /metrics endpoint publishes.
type Stats struct {
	// Entries and Bytes describe the current on-disk population.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Hits counts sessions that found and loaded a usable snapshot;
	// Misses counts sessions that found none (including snapshots that
	// failed to load — those also count an Error).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Extends counts Grow calls that adopted at least one cached
	// sample instead of generating it; AdoptedSamples totals the
	// samples adopted across them.
	Extends        uint64 `json:"extends"`
	AdoptedSamples uint64 `json:"adoptedSamples"`
	// Saves counts snapshots written (or grown) on disk; Evictions
	// counts entries removed to respect MaxBytes; Errors counts load,
	// save, and scan failures.
	Saves     uint64 `json:"saves"`
	Evictions uint64 `json:"evictions"`
	Errors    uint64 `json:"errors"`
	// ShardSaves/ShardHits/ShardMisses count the shard-range entries the
	// distributed runtime stores and serves (SaveShard/LoadShard); shard
	// saves are also included in Saves.
	ShardSaves  uint64 `json:"shardSaves"`
	ShardHits   uint64 `json:"shardHits"`
	ShardMisses uint64 `json:"shardMisses"`
}

// entry is the in-memory record of one cache file.
type entry struct {
	size    int64
	samples uint64
	seq     uint64 // recency stamp; larger = used more recently
}

// Cache is the shared store. All methods are safe for concurrent use;
// a nil *Cache is a valid no-op cache (Begin returns a no-op session),
// so callers can wire it unconditionally.
type Cache struct {
	dir      string                           //imc:guardedby immutable
	maxBytes int64                            //imc:guardedby immutable
	logf     func(format string, args ...any) //imc:guardedby immutable

	mu      sync.Mutex
	entries map[Key]*entry //imc:guardedby mu
	bytes   int64          //imc:guardedby mu
	seq     uint64         //imc:guardedby mu
	stats   Stats          //imc:guardedby mu — counter fields only
	// saving marks keys with a snapshot write in flight: a concurrent
	// Save of the same key skips instead of racing on the shared
	// temp-file path (the cache is best-effort; the skipped pool will
	// be offered again at its next checkpoint boundary).
	saving map[Key]bool //imc:guardedby mu
}

// Open loads (or initializes) a cache rooted at dir. Existing cache
// files are scanned into the index (read-on-boot): stale temp files are
// removed, files that don't parse as cache entries are ignored, and if
// the population already exceeds the byte budget the oldest files are
// evicted immediately.
func Open(dir string, opts Options) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("poolcache: cache directory must be non-empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("poolcache: create cache dir: %w", err)
	}
	c := &Cache{
		dir:      dir,
		maxBytes: opts.MaxBytes,
		logf:     opts.Logf,
		entries:  make(map[Key]*entry),
		saving:   make(map[Key]bool),
	}
	if err := c.scan(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	victims := c.evictLocked(Key{}, false)
	c.mu.Unlock()
	c.removeFiles(victims)
	return c, nil
}

// scan builds the index from the files already in the cache directory,
// ordered oldest-first by modification time so the boot recency stamps
// approximate the previous process's usage order.
func (c *Cache) scan() error {
	dents, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("poolcache: scan cache dir: %w", err)
	}
	type found struct {
		key     Key
		size    int64
		samples uint64
		mod     int64
	}
	files := make([]found, 0, len(dents))
	for _, de := range dents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			// A crashed write; the published file (if any) is intact.
			os.Remove(filepath.Join(c.dir, name))
			continue
		}
		if !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		key, ok := parseKey(strings.TrimSuffix(name, fileSuffix))
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		samples, err := readHeader(filepath.Join(c.dir, name))
		if err != nil {
			c.log("poolcache: ignoring %s at boot: %v", name, err)
			c.mu.Lock()
			c.stats.Errors++
			c.mu.Unlock()
			continue
		}
		files = append(files, found{key: key, size: info.Size(), samples: samples, mod: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range files {
		c.seq++
		c.entries[f.key] = &entry{size: f.size, samples: f.samples, seq: c.seq}
		c.bytes += f.size
	}
	return nil
}

// readHeader reads and validates the 16-byte cache header of one file,
// returning the embedded sample count. The CRC frame is not verified —
// that happens on load, when the whole file is read anyway.
func readHeader(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [cacheHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("short header: %w", err)
	}
	if !bytes.Equal(hdr[:4], cacheMagic[:]) {
		return 0, fmt.Errorf("bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != cacheVersion {
		return 0, fmt.Errorf("unsupported cache version %d (want %d)", v, cacheVersion)
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}

func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, k.String()+fileSuffix)
}

func (c *Cache) log(format string, args ...any) {
	if c != nil && c.logf != nil {
		c.logf(format, args...)
	}
}

// Stats returns a snapshot of the cache counters. Safe on nil (all
// zeros).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	return s
}

// Begin opens a cache session for one pool identity; the same (g,
// part) pointers must be shared with the pools the session will grow
// (sample adoption splices masks, which is only sound against the
// identical instance objects). Safe on nil (returns a no-op session).
func (c *Cache) Begin(g *graph.Graph, part *community.Partition, model diffusion.Model, seed uint64) *Session {
	if c == nil {
		return nil
	}
	if model == 0 {
		model = diffusion.IC
	}
	return &Session{c: c, key: KeyFor(g, part, model, seed), g: g, part: part, model: model, seed: seed}
}

// lookup touches k and reports its cached sample count. Counts neither
// hits nor misses — load does, once per session.
func (c *Cache) lookup(k Key) (samples uint64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return 0, false
	}
	c.seq++
	e.seq = c.seq
	return e.samples, true
}

// drop removes k's entry and file — the response to a corrupt or
// mismatched snapshot. The file unlink happens after the lock is
// released (never block other cache users behind the disk).
func (c *Cache) drop(k Key, why error) {
	c.log("poolcache: dropping %s: %v", k, why)
	c.mu.Lock()
	c.stats.Errors++
	_, ok := c.entries[k]
	if ok {
		c.bytes -= c.entries[k].size
		delete(c.entries, k)
	}
	c.mu.Unlock()
	if ok {
		os.Remove(c.path(k))
	}
}

// evictLocked removes least-recently-used entries from the index until
// the byte budget holds, returning the evicted keys; the caller must
// unlink their files with removeFiles AFTER releasing mu — disk work
// never happens inside the critical section. keep (when keepSet) is
// never evicted: the entry being inserted must survive its own
// insertion even if it alone exceeds the budget (an oversized cache of
// one is better than write churn).
//
//imc:locked mu
func (c *Cache) evictLocked(keep Key, keepSet bool) []Key {
	if c.maxBytes <= 0 {
		return nil
	}
	var victims []Key
	for c.bytes > c.maxBytes {
		var (
			victim   Key
			oldest   uint64
			haveProm bool
		)
		for k, e := range c.entries {
			if keepSet && k == keep {
				continue
			}
			if !haveProm || e.seq < oldest {
				victim, oldest, haveProm = k, e.seq, true
			}
		}
		if !haveProm {
			return victims
		}
		e := c.entries[victim]
		delete(c.entries, victim)
		c.bytes -= e.size
		c.stats.Evictions++
		victims = append(victims, victim)
		c.log("poolcache: evicting %s (%d bytes, %d samples)", victim, e.size, e.samples)
	}
	return victims
}

// removeFiles unlinks evicted cache files. Call without holding mu.
func (c *Cache) removeFiles(victims []Key) {
	for _, k := range victims {
		os.Remove(c.path(k))
	}
}
