package poolcache

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
)

// Key is the content address of one pool identity: a SHA-256 digest
// over everything that determines the sample sequence — the weighted
// graph (topology and exact edge weights), the community partition
// (members, thresholds, benefits), the diffusion model, and the PRNG
// seed. Two requests with equal keys are guaranteed (modulo SHA-256
// collisions) to draw identical samples, so one cached pool serves
// both; anything that could change even one sample changes the key.
//
// Deliberately absent: solver parameters (k, eps, delta, algorithm).
// Those shape how many samples a run consumes, never what any sample
// contains, so pools cached under one configuration are reusable by
// every other — the whole point of the cache.
type Key [sha256.Size]byte

// String returns the key as lowercase hex — also the cache file stem.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// parseKey inverts String; ok is false for anything that is not
// exactly 64 lowercase-insensitive hex digits.
func parseKey(s string) (Key, bool) {
	var k Key
	if len(s) != 2*sha256.Size {
		return k, false
	}
	if _, err := hex.Decode(k[:], []byte(s)); err != nil {
		return k, false
	}
	return k, true
}

// KeyFor computes the content address of (g, part, model, seed). The
// serialization it hashes is canonical: CSR order for edges (the Graph
// representation is itself canonical — builders sort adjacency), member
// order for communities (Partition stores members ascending), raw IEEE
// bits for weights and benefits. A leading version tag keeps old cache
// files from aliasing new keys if the layout ever changes.
func KeyFor(g *graph.Graph, part *community.Partition, model diffusion.Model, seed uint64) Key {
	h := sha256.New()
	w := bufio.NewWriterSize(h, 1<<16)
	var scratch [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		w.Write(scratch[:4])
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		w.Write(scratch[:])
	}
	putF := func(v float64) { put64(math.Float64bits(v)) }

	io.WriteString(w, "imc poolcache key v1\n")
	put64(uint64(g.NumNodes()))
	put64(uint64(g.NumEdges()))
	for u := 0; u < g.NumNodes(); u++ {
		tos, ws := g.OutNeighbors(graph.NodeID(u))
		put32(uint32(len(tos)))
		for i, v := range tos {
			put32(uint32(v))
			putF(ws[i])
		}
	}
	put64(uint64(part.NumNodes()))
	put64(uint64(part.NumCommunities()))
	for c := 0; c < part.NumCommunities(); c++ {
		comm := part.Community(c)
		put64(uint64(len(comm.Members)))
		for _, u := range comm.Members {
			put32(uint32(u))
		}
		put64(uint64(comm.Threshold))
		putF(comm.Benefit)
	}
	put32(uint32(model))
	put64(seed)
	w.Flush()

	var k Key
	h.Sum(k[:0])
	return k
}
