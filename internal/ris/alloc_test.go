package ris

import (
	"testing"

	"imc/internal/diffusion"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/xrand"
)

// TestSampleHitsDoesNotAllocate locks in the //imc:hotpath contract of
// the RR sampler's streaming path: after the per-worker scratch has
// grown to steady state, drawing a sample and checking seed membership
// is allocation-free. Each measured run replays one fixed PRNG stream,
// so the walk — and the count — is deterministic.
func TestSampleHitsDoesNotAllocate(t *testing.T) {
	g, err := gen.BarabasiAlbert(1000, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	inSeed := make([]bool, g.NumNodes())
	for i := 0; i < 10; i++ {
		inSeed[i*53] = true
	}
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		s := newRRSampler(g, model)
		root := xrand.New(3)
		var rng xrand.RNG
		for i := 0; i < 500; i++ {
			root.SplitInto(uint64(i), &rng)
			s.sampleHits(&rng, inSeed)
		}
		avg := testing.AllocsPerRun(100, func() {
			root.SplitInto(9, &rng)
			s.sampleHits(&rng, inSeed)
		})
		if avg != 0 {
			t.Errorf("%v: sampleHits allocates %.1f objects per run, want 0", model, avg)
		}
	}
}
