// Package ris implements classic Reverse Influence Sampling for the
// plain influence-maximization problem — the "IM" baseline of the
// paper's evaluation.
//
// An RR (reverse-reachable) set is drawn by picking a uniform random
// node v and collecting every node that reaches v in a deterministic
// subgraph sampled edge-by-edge during a reverse BFS (Borgs et al.).
// The expected spread of any seed set S is n·Pr[S ∩ RR ≠ ∅], so greedy
// max coverage over a pool of RR sets approximates IM within 1−1/e−ε.
package ris

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"imc/internal/bitset"
	"imc/internal/clock"
	"imc/internal/diffusion"
	"imc/internal/graph"
	"imc/internal/xrand"
)

// ctxPollBatch is how many RR sets a worker draws between cooperative
// ctx.Err() polls — batch-boundary cancellation, matching ric.Pool.
const ctxPollBatch = 1024

// Options configures the IM solver.
type Options struct {
	// K is the seed budget.
	K int
	// Eps, Delta are the approximation slack and failure probability
	// (defaults 0.2 each).
	Eps, Delta float64
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds generation parallelism; 0 = GOMAXPROCS.
	Workers int
	// Model selects IC (default) or LT reverse sampling.
	Model diffusion.Model
	// MaxSamples caps the RR pool (default 1<<20).
	MaxSamples int
	// Clock supplies timestamps for the Elapsed report; nil means the
	// real wall clock. Only reporting reads it — never sampling.
	Clock clock.Func
}

// Solution is the solver outcome.
type Solution struct {
	// Seeds is the selected seed set.
	Seeds []graph.NodeID
	// SpreadEstimate is the pool-based estimate of E[spread(Seeds)].
	SpreadEstimate float64
	// Samples is the final RR-pool size.
	Samples int
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

// Solve picks k seeds approximately maximizing expected influence
// spread using a stop-and-stare doubling schedule: grow the RR pool,
// greedily cover it, and stop once an independent stopping-rule
// estimate confirms the pool estimate.
func Solve(g *graph.Graph, opts Options) (Solution, error) {
	return SolveCtx(context.Background(), g, opts)
}

// SolveCtx is Solve with cooperative cancellation: the doubling loop
// checks ctx per round and threads it into RR-set generation and the
// stopping-rule verification. A completed run is byte-identical to the
// ctx-free path.
//
//imc:longrun
func SolveCtx(ctx context.Context, g *graph.Graph, opts Options) (Solution, error) {
	if opts.K < 1 {
		return Solution{}, fmt.Errorf("ris: K=%d must be ≥ 1", opts.K)
	}
	if opts.K > g.NumNodes() {
		return Solution{}, fmt.Errorf("ris: K=%d exceeds node count %d", opts.K, g.NumNodes())
	}
	if opts.Eps == 0 {
		opts.Eps = 0.2
	}
	if opts.Delta == 0 {
		opts.Delta = 0.2
	}
	if opts.Eps <= 0 || opts.Eps >= 1 || opts.Delta <= 0 || opts.Delta >= 1 {
		return Solution{}, errors.New("ris: Eps and Delta must lie in (0, 1)")
	}
	if opts.Model == 0 {
		opts.Model = diffusion.IC
	}
	if opts.MaxSamples <= 0 {
		opts.MaxSamples = 1 << 20
	}
	now := clock.OrWall(opts.Clock)
	start := now()
	pool := newRRPool(g, opts)
	e3 := opts.Eps / 4
	lambda := (1 + opts.Eps/4) * (1 + opts.Eps/4) * 3 / (e3 * e3) * math.Log(3/(2*opts.Delta))
	if err := pool.generateCtx(ctx, int(math.Ceil(lambda))); err != nil {
		return Solution{}, err
	}
	var (
		seeds    []graph.NodeID
		coverage int
	)
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		seeds, coverage = pool.greedyMaxCover(opts.K)
		if float64(coverage) >= lambda {
			est, converged, err := pool.estimateSpread(ctx, seeds, opts.Eps/4, opts.Delta/3, 2*pool.size(), uint64(round))
			if err != nil {
				return Solution{}, err
			}
			poolEst := pool.spread(coverage)
			if converged && poolEst <= (1+opts.Eps/4)*est {
				break
			}
		}
		if pool.size()*2 > opts.MaxSamples {
			break
		}
		if err := pool.generateCtx(ctx, pool.size()); err != nil {
			return Solution{}, err
		}
	}
	return Solution{
		Seeds:          seeds,
		SpreadEstimate: pool.spread(coverage),
		Samples:        pool.size(),
		Elapsed:        now().Sub(start),
	}, nil
}

// rrPool is a pool of RR sets with an inverted node → sets index.
type rrPool struct {
	g       *graph.Graph
	opts    Options
	root    *xrand.RNG
	workers int
	sets    [][]graph.NodeID
	index   [][]int32

	// Greedy scratch, reused across doubling rounds. covered tracks RR
	// sets already hit and must be re-created when the pool outgrows it;
	// deg and chosen are node-sized and stable.
	deg     []int32
	covered *bitset.Set
	chosen  *bitset.Set
}

func newRRPool(g *graph.Graph, opts Options) *rrPool {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &rrPool{
		g:       g,
		opts:    opts,
		root:    xrand.New(opts.Seed),
		workers: workers,
		index:   make([][]int32, g.NumNodes()),
	}
}

func (p *rrPool) size() int { return len(p.sets) }

func (p *rrPool) spread(coverage int) float64 {
	if len(p.sets) == 0 {
		return 0
	}
	return float64(p.g.NumNodes()) * float64(coverage) / float64(len(p.sets))
}

// generateCtx draws count fresh RR sets, polling ctx between sample
// batches. On cancellation the pool is left untouched — no partial
// batch is folded in.
func (p *rrPool) generateCtx(ctx context.Context, count int) error {
	if count < 1 {
		return errors.New("ris: sample count must be positive")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	base := len(p.sets)
	out := make([][]graph.NodeID, count)
	workers := p.workers
	if workers > count {
		workers = count
	}
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := newRRSampler(p.g, p.opts.Model)
			var rng xrand.RNG
			drawn := 0
			for i := w; i < count; i += workers {
				if drawn&(ctxPollBatch-1) == 0 {
					if cerr := ctx.Err(); cerr != nil {
						errOnce.Do(func() { firstErr = cerr })
						return
					}
				}
				drawn++
				p.root.SplitInto(uint64(base+i), &rng)
				// Each slot is stored once per sample draw — multiple
				// microseconds of BFS apart — so line bouncing is noise
				// here, and padding the 24-byte headers to a cache line
				// would add 40 bytes per RR set at million-set scale.
				//lint:allow falseshare: one store per multi-microsecond draw; padding costs 40B per RR set at million-set scale
				out[i] = s.sample(&rng)
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for i, set := range out {
		id := int32(base + i)
		p.sets = append(p.sets, set)
		for _, v := range set {
			p.index[v] = append(p.index[v], id)
		}
	}
	return nil
}

// greedyMaxCover runs the standard degree-decrement greedy for max
// coverage over the current pool. Covered-set membership lives in a
// packed bitset: RR pools reach millions of sets, where the 8× memory
// saving over []bool keeps the greedy pass cache-resident.
//
//imc:hotpath
func (p *rrPool) greedyMaxCover(k int) ([]graph.NodeID, int) {
	n := p.g.NumNodes()
	if cap(p.deg) < n {
		p.deg = make([]int32, n)
	}
	deg := p.deg[:n]
	index := p.index[:n] // relate the cover index to the scan bound once
	for v := 0; v < n; v++ {
		deg[v] = int32(len(index[v]))
	}
	if p.covered == nil || p.covered.Len() < len(p.sets) {
		p.covered = bitset.New(len(p.sets))
	} else {
		p.covered.Reset()
	}
	covered := p.covered
	if p.chosen == nil || p.chosen.Len() < n {
		p.chosen = bitset.New(n)
	} else {
		p.chosen.Reset()
	}
	chosen := p.chosen
	seeds := make([]graph.NodeID, 0, k)
	total := 0
	for len(seeds) < k {
		best, bestDeg := -1, int32(-1)
		for v := 0; v < n; v++ {
			if !chosen.Test(v) && deg[v] > bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if best < 0 {
			break
		}
		chosen.Set(best)
		seeds = append(seeds, graph.NodeID(best))
		for _, setID := range index[best] {
			if covered.Test(int(setID)) {
				continue
			}
			covered.Set(int(setID))
			total++
			for _, u := range p.sets[setID] {
				deg[u]--
			}
		}
	}
	return seeds, total
}

// estimateSpread draws fresh RR sets until the Dagum stopping rule
// certifies an estimate of Pr[S ∩ RR ≠ ∅], returning n times it.
// Cancellation surfaces as a non-nil error; other stopping-rule errors
// keep their historical "not converged" treatment.
func (p *rrPool) estimateSpread(ctx context.Context, seeds []graph.NodeID, eps, delta float64, tmax int, salt uint64) (float64, bool, error) {
	inSeed := make([]bool, p.g.NumNodes())
	for _, s := range seeds {
		inSeed[s] = true
	}
	s := newRRSampler(p.g, p.opts.Model)
	root := xrand.New(p.opts.Seed ^ 0xa5a5a5a5a5a5a5a5 ^ salt<<40)
	res, err := diffusion.StoppingRuleCtx(ctx, func(rng *xrand.RNG) float64 {
		if s.sampleHits(rng, inSeed) {
			return 1
		}
		return 0
	}, eps, delta, tmax, root)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return 0, false, cerr
		}
		return 0, false, nil
	}
	return float64(p.g.NumNodes()) * res.Mean, res.Converged, nil
}

// rrSampler owns the reverse-BFS scratch for one worker.
type rrSampler struct {
	g     *graph.Graph
	model diffusion.Model
	epoch int32
	mark  []int32
	queue []graph.NodeID
}

func newRRSampler(g *graph.Graph, model diffusion.Model) *rrSampler {
	return &rrSampler{g: g, model: model, mark: make([]int32, g.NumNodes())}
}

// sample draws one RR set.
//
//imc:hotpath
func (s *rrSampler) sample(rng *xrand.RNG) []graph.NodeID {
	root := graph.NodeID(rng.Intn(s.g.NumNodes()))
	s.walk(root, rng, nil)
	return append([]graph.NodeID(nil), s.queue...)
}

// sampleHits draws one RR set, short-circuiting as soon as a seed node
// is reached.
//
//imc:hotpath
func (s *rrSampler) sampleHits(rng *xrand.RNG, inSeed []bool) bool {
	root := graph.NodeID(rng.Intn(s.g.NumNodes()))
	return s.walk(root, rng, inSeed)
}

// walk reverse-BFSes from root with on-the-fly edge sampling. When
// inSeed is non-nil it returns early on the first seed hit.
//
//imc:hotpath
func (s *rrSampler) walk(root graph.NodeID, rng *xrand.RNG, inSeed []bool) bool {
	s.epoch++
	// Hoist the scratch into locals: the BFS bound is then a local
	// length with one bounds proof, and the weight slices re-slice to
	// the neighbor count so ws[i] checks once per edge list.
	epoch := s.epoch
	mark := s.mark
	queue := s.queue[:0]
	queue = append(queue, root)
	mark[root] = epoch
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if inSeed != nil && inSeed[u] {
			s.queue = queue // keep the grown capacity for the next draw
			return true
		}
		switch s.model {
		case diffusion.LT:
			froms, ws, _ := s.g.InNeighbors(u)
			ws = ws[:len(froms)]
			total := 0.0
			for _, w := range ws {
				total += w
			}
			if total <= 0 {
				continue
			}
			draw := rng.Float64()
			if total > 1 {
				draw *= total
			}
			acc := 0.0
			for i, v := range froms {
				acc += ws[i]
				if draw < acc {
					if mark[v] != epoch {
						mark[v] = epoch
						queue = append(queue, v)
					}
					break
				}
			}
		default:
			froms, ws, _ := s.g.InNeighbors(u)
			ws = ws[:len(froms)]
			for i, v := range froms {
				if mark[v] != epoch && rng.Bernoulli(ws[i]) {
					mark[v] = epoch
					queue = append(queue, v)
				}
			}
		}
	}
	s.queue = queue
	return false
}
