package ris

import (
	"math"
	"testing"

	"imc/internal/diffusion"
	"imc/internal/gen"
	"imc/internal/graph"
)

func TestIMMValidation(t *testing.T) {
	g, err := gen.PathGraph(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveIMM(g, Options{K: 0}); err == nil {
		t.Fatal("want K error")
	}
	if _, err := SolveIMM(g, Options{K: 10}); err == nil {
		t.Fatal("want K > n error")
	}
	if _, err := SolveIMM(g, Options{K: 1, Delta: 7}); err == nil {
		t.Fatal("want delta error")
	}
}

func TestIMMPicksPathHead(t *testing.T) {
	g, err := gen.PathGraph(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveIMM(g, Options{K: 1, Seed: 5, MaxSamples: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) != 1 || sol.Seeds[0] != 0 {
		t.Fatalf("seeds = %v, want [0]", sol.Seeds)
	}
	if math.Abs(sol.SpreadEstimate-8) > 0.8 {
		t.Fatalf("spread estimate %g, want ≈8", sol.SpreadEstimate)
	}
}

func TestIMMMatchesSSAQuality(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	imm, err := SolveIMM(g, Options{K: 5, Seed: 23, MaxSamples: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	ssa, err := Solve(g, Options{K: 5, Seed: 23, MaxSamples: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	mc := diffusion.MCOptions{Iterations: 8000, Seed: 29}
	immSpread, err := diffusion.EstimateSpread(g, imm.Seeds, mc)
	if err != nil {
		t.Fatal(err)
	}
	ssaSpread, err := diffusion.EstimateSpread(g, ssa.Seeds, mc)
	if err != nil {
		t.Fatal(err)
	}
	// The two frameworks should land within 15% of each other.
	if math.Abs(immSpread-ssaSpread) > 0.15*math.Max(immSpread, ssaSpread) {
		t.Fatalf("IMM spread %g vs SSA spread %g diverge", immSpread, ssaSpread)
	}
}

func TestIMMDeterministic(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 31)
	if err != nil {
		t.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	a, err := SolveIMM(g, Options{K: 4, Seed: 37, MaxSamples: 1 << 15})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveIMM(g, Options{K: 4, Seed: 37, MaxSamples: 1 << 15, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seeds differ across worker counts: %v vs %v", a.Seeds, b.Seeds)
		}
	}
}
