package ris

import (
	"context"
	"errors"
	"fmt"
	"math"

	"imc/internal/clock"
	"imc/internal/diffusion"
	"imc/internal/graph"
)

// SolveIMM picks k seeds with the IMM algorithm (Tang, Xiao & Shi,
// SIGMOD 2014): phase 1 ("sampling") estimates a lower bound LB on the
// optimal spread by geometric search with a martingale-based test,
// phase 2 ("node selection") sizes the RR pool as θ = λ*/LB and runs
// greedy max coverage once. IMM is the second state-of-the-art IM
// framework the paper cites (alongside the SSA-style Solve); having
// both lets the harness cross-check the IM baseline.
//
// Guarantee: 1 − 1/e − ε with probability ≥ 1 − δ (ℓ is derived from
// Delta as ℓ = max(ln(1/δ)/ln n, 0.1)).
func SolveIMM(g *graph.Graph, opts Options) (Solution, error) {
	return SolveIMMCtx(context.Background(), g, opts)
}

// SolveIMMCtx is SolveIMM with cooperative cancellation threaded into
// both phases' RR-set generation and checked between geometric-search
// iterations.
//
//imc:longrun
func SolveIMMCtx(ctx context.Context, g *graph.Graph, opts Options) (Solution, error) {
	if opts.K < 1 {
		return Solution{}, fmt.Errorf("ris: K=%d must be ≥ 1", opts.K)
	}
	if opts.K > g.NumNodes() {
		return Solution{}, fmt.Errorf("ris: K=%d exceeds node count %d", opts.K, g.NumNodes())
	}
	if opts.Eps == 0 {
		opts.Eps = 0.2
	}
	if opts.Delta == 0 {
		opts.Delta = 0.2
	}
	if opts.Eps <= 0 || opts.Eps >= 1 || opts.Delta <= 0 || opts.Delta >= 1 {
		return Solution{}, errors.New("ris: Eps and Delta must lie in (0, 1)")
	}
	if opts.Model == 0 {
		opts.Model = diffusion.IC
	}
	if opts.MaxSamples <= 0 {
		opts.MaxSamples = 1 << 20
	}
	now := clock.OrWall(opts.Clock)
	start := now()

	var (
		n      = float64(g.NumNodes())
		k      = opts.K
		eps    = opts.Eps
		ell    = math.Max(math.Log(1/opts.Delta)/math.Log(n), 0.1)
		logNK  = lnChooseFloat(n, float64(k))
		log2N  = math.Log2(n)
		pool   = newRRPool(g, opts)
		lb     = 1.0
		epsP   = math.Sqrt2 * eps
		lambdP = (2 + 2*epsP/3) * (logNK + ell*math.Log(n) + math.Log(log2N)) * n / (epsP * epsP)
	)
	if log2N < 1 {
		log2N = 1
	}

	// Phase 1: geometric search for a lower bound on OPT.
	for i := 1; float64(i) <= log2N-1; i++ {
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		x := n / math.Pow(2, float64(i))
		thetaI := int(math.Ceil(lambdP / x))
		if thetaI > opts.MaxSamples {
			thetaI = opts.MaxSamples
		}
		if deficit := thetaI - pool.size(); deficit > 0 {
			if err := pool.generateCtx(ctx, deficit); err != nil {
				return Solution{}, err
			}
		}
		_, coverage := pool.greedyMaxCover(k)
		est := n * float64(coverage) / float64(pool.size())
		if est >= (1+epsP)*x {
			lb = est / (1 + epsP)
			break
		}
		if pool.size() >= opts.MaxSamples {
			break
		}
	}

	// Phase 2: final pool size θ = λ*/LB.
	alpha := math.Sqrt(ell*math.Log(n) + math.Log(2))
	beta := math.Sqrt((1 - 1/math.E) * (logNK + ell*math.Log(n) + math.Log(2)))
	lambdaStar := 2 * n * (((1-1/math.E)*alpha + beta) * ((1-1/math.E)*alpha + beta)) / (eps * eps)
	theta := int(math.Ceil(lambdaStar / lb))
	if theta > opts.MaxSamples {
		theta = opts.MaxSamples
	}
	if deficit := theta - pool.size(); deficit > 0 {
		if err := pool.generateCtx(ctx, deficit); err != nil {
			return Solution{}, err
		}
	}
	seeds, coverage := pool.greedyMaxCover(k)
	return Solution{
		Seeds:          seeds,
		SpreadEstimate: pool.spread(coverage),
		Samples:        pool.size(),
		Elapsed:        now().Sub(start),
	}, nil
}

// lnChooseFloat returns ln C(n, k) via log-gamma.
//
//imc:pure
func lnChooseFloat(n, k float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	return lgammaPlus1(n) - lgammaPlus1(k) - lgammaPlus1(n-k)
}

// lgammaPlus1 returns ln Γ(x+1) = ln x!.
//
//imc:pure
func lgammaPlus1(x float64) float64 {
	v, _ := math.Lgamma(x + 1)
	return v
}
