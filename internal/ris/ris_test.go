package ris

import (
	"math"
	"testing"

	"imc/internal/diffusion"
	"imc/internal/gen"
	"imc/internal/graph"
)

func TestSolveValidation(t *testing.T) {
	g, err := gen.PathGraph(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(g, Options{K: 0}); err == nil {
		t.Fatal("want K error")
	}
	if _, err := Solve(g, Options{K: 10}); err == nil {
		t.Fatal("want K > n error")
	}
	if _, err := Solve(g, Options{K: 1, Eps: 2}); err == nil {
		t.Fatal("want eps error")
	}
}

func TestSolvePicksPathHead(t *testing.T) {
	// On a weight-1 path, node 0 reaches everything: spread({0}) = n.
	g, err := gen.PathGraph(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(g, Options{K: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) != 1 || sol.Seeds[0] != 0 {
		t.Fatalf("seeds = %v, want [0]", sol.Seeds)
	}
	if math.Abs(sol.SpreadEstimate-8) > 0.5 {
		t.Fatalf("spread estimate %g, want ≈8", sol.SpreadEstimate)
	}
}

func TestSolveSpreadMatchesMonteCarlo(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	sol, err := Solve(g, Options{K: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) != 5 {
		t.Fatalf("got %d seeds", len(sol.Seeds))
	}
	mc, err := diffusion.EstimateSpread(g, sol.Seeds, diffusion.MCOptions{Iterations: 20000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.SpreadEstimate-mc) > 0.2*mc+1 {
		t.Fatalf("RIS estimate %g vs MC %g", sol.SpreadEstimate, mc)
	}
}

func TestSolveBeatsRandomSeeds(t *testing.T) {
	g, err := gen.BarabasiAlbert(300, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	sol, err := Solve(g, Options{K: 5, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	opt := diffusion.MCOptions{Iterations: 5000, Seed: 23}
	risSpread, err := diffusion.EstimateSpread(g, sol.Seeds, opt)
	if err != nil {
		t.Fatal(err)
	}
	randSpread, err := diffusion.EstimateSpread(g, []graph.NodeID{290, 291, 292, 293, 294}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if risSpread <= randSpread {
		t.Fatalf("RIS spread %g not above arbitrary-seed spread %g", risSpread, randSpread)
	}
}

func TestSolveLTModel(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 29)
	if err != nil {
		t.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	sol, err := Solve(g, Options{K: 3, Seed: 31, Model: diffusion.LT})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Seeds) != 3 {
		t.Fatalf("LT: got %d seeds", len(sol.Seeds))
	}
	if sol.SpreadEstimate < 3 {
		t.Fatalf("LT spread estimate %g below k", sol.SpreadEstimate)
	}
}

func TestSolveDeterministic(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	a, err := Solve(g, Options{K: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, Options{K: 4, Seed: 43, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seeds differ across worker counts: %v vs %v", a.Seeds, b.Seeds)
		}
	}
}
