package gen

import (
	"fmt"
	"sort"

	"imc/internal/graph"
)

// Dataset describes one synthetic analog of a SNAP dataset from the
// paper's Table I (see DESIGN.md §4 for the substitution rationale).
type Dataset struct {
	// Name is the registry key, e.g. "facebook".
	Name string
	// PaperNodes / PaperEdges are the statistics reported in Table I.
	PaperNodes int
	PaperEdges int
	// Directed records whether the original dataset is directed.
	Directed bool
	// Family is a short human-readable generator description.
	Family string
	// Build generates the analog at the given scale in (0, 1]: scale 1
	// targets the paper's size (subject to the generator's granularity),
	// smaller scales shrink the node count proportionally.
	Build func(scale float64, seed uint64) (*graph.Graph, error)
}

// Registry returns the five dataset analogs keyed by name. The builders
// are deterministic in (scale, seed).
func Registry() map[string]Dataset {
	ds := []Dataset{
		{
			Name:       "facebook",
			PaperNodes: 747, PaperEdges: 60050, Directed: false,
			Family: "dense preferential attachment (Barabási–Albert)",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				n := scaled(747, scale)
				// The ego network is extremely dense (~80 undirected
				// neighbors per node) AND heavily degree-skewed — hubs
				// matter for who is cheap to influence under the
				// weighted-cascade weights. Dense BA reproduces both;
				// a Watts–Strogatz analog matches density but its
				// degree homogeneity erases the diffusion signal.
				m := scaled(80, scale)
				if m < 3 {
					m = 3
				}
				return BarabasiAlbert(n, m, seed)
			},
		},
		{
			Name:       "wikivote",
			PaperNodes: 7100, PaperEdges: 103600, Directed: true,
			Family: "preferential attachment (Barabási–Albert)",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				n := scaled(7100, scale)
				return BarabasiAlbert(n, 7, seed)
			},
		},
		{
			Name:       "epinions",
			PaperNodes: 76000, PaperEdges: 508800, Directed: true,
			Family: "power-law configuration model",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				n := scaled(76000, scale)
				return PowerLawConfig(n, 6.7, 2.2, seed)
			},
		},
		{
			Name:       "dblp",
			PaperNodes: 317000, PaperEdges: 1050000, Directed: false,
			Family: "stochastic block model (strong clustering)",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				n := scaled(317000, scale)
				blocks := n / 12
				if blocks < 1 {
					blocks = 1
				}
				return SBM(n, blocks, 2.6, 0.7, seed)
			},
		},
		{
			Name:       "pokec",
			PaperNodes: 1600000, PaperEdges: 30600000, Directed: true,
			Family: "preferential attachment (Barabási–Albert)",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				n := scaled(1600000, scale)
				return BarabasiAlbert(n, 10, seed)
			},
		},
		{
			Name:       "karate",
			PaperNodes: 34, PaperEdges: 78, Directed: false,
			Family: "fixed graph (Zachary's karate club)",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				// Not an analog: the real 34-node club, byte-identical at
				// every scale and seed. Small enough for exact checks, so
				// it anchors CI smoke jobs (the distributed shard runtime
				// byte-compares multi-process and single-process solves on
				// it) and mirrors the repo-root testdata/karate.txt fixture.
				return Karate()
			},
		},
	}
	out := make(map[string]Dataset, len(ds))
	for _, d := range ds {
		out[d.Name] = d
	}
	return out
}

// karateEdges is Zachary's karate club (34 nodes, 78 undirected edges),
// identical to testdata/karate.txt.
var karateEdges = [78][2]int32{
	{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8},
	{0, 10}, {0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21},
	{0, 31}, {1, 2}, {1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21},
	{1, 30}, {2, 3}, {2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28},
	{2, 32}, {3, 7}, {3, 12}, {3, 13}, {4, 6}, {4, 10}, {5, 6}, {5, 10},
	{5, 16}, {6, 16}, {8, 30}, {8, 32}, {8, 33}, {9, 33}, {13, 33},
	{14, 32}, {14, 33}, {15, 32}, {15, 33}, {18, 32}, {18, 33}, {19, 33},
	{20, 32}, {20, 33}, {22, 32}, {22, 33}, {23, 25}, {23, 27}, {23, 29},
	{23, 32}, {23, 33}, {24, 25}, {24, 27}, {24, 31}, {25, 31}, {26, 29},
	{26, 33}, {27, 33}, {28, 31}, {28, 33}, {29, 32}, {29, 33}, {30, 32},
	{30, 33}, {31, 32}, {31, 33}, {32, 33},
}

// Karate builds Zachary's karate club as an arc-doubled graph with unit
// weights (reassign with ApplyWeights), matching
// ReadEdgeList(testdata/karate.txt, directed=false) exactly.
func Karate() (*graph.Graph, error) {
	b := graph.NewBuilder(34)
	for _, e := range karateEdges {
		b.AddUndirected(e[0], e[1], 1)
	}
	return b.Build()
}

// Names returns the registry keys in Table I order, plus the karate
// fixture.
func Names() []string {
	return []string{"facebook", "wikivote", "epinions", "dblp", "pokec", "karate"}
}

// BuildDataset generates the named analog or returns an error listing
// the valid names.
func BuildDataset(name string, scale float64, seed uint64) (*graph.Graph, error) {
	d, ok := Registry()[name]
	if !ok {
		valid := Names()
		sort.Strings(valid)
		return nil, fmt.Errorf("gen: unknown dataset %q (valid: %v)", name, valid)
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("gen: scale %g out of (0, 1]", scale)
	}
	return d.Build(scale, seed)
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 16 {
		v = 16
	}
	return v
}
