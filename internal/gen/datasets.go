package gen

import (
	"fmt"
	"sort"

	"imc/internal/graph"
)

// Dataset describes one synthetic analog of a SNAP dataset from the
// paper's Table I (see DESIGN.md §4 for the substitution rationale).
type Dataset struct {
	// Name is the registry key, e.g. "facebook".
	Name string
	// PaperNodes / PaperEdges are the statistics reported in Table I.
	PaperNodes int
	PaperEdges int
	// Directed records whether the original dataset is directed.
	Directed bool
	// Family is a short human-readable generator description.
	Family string
	// Build generates the analog at the given scale in (0, 1]: scale 1
	// targets the paper's size (subject to the generator's granularity),
	// smaller scales shrink the node count proportionally.
	Build func(scale float64, seed uint64) (*graph.Graph, error)
}

// Registry returns the five dataset analogs keyed by name. The builders
// are deterministic in (scale, seed).
func Registry() map[string]Dataset {
	ds := []Dataset{
		{
			Name:       "facebook",
			PaperNodes: 747, PaperEdges: 60050, Directed: false,
			Family: "dense preferential attachment (Barabási–Albert)",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				n := scaled(747, scale)
				// The ego network is extremely dense (~80 undirected
				// neighbors per node) AND heavily degree-skewed — hubs
				// matter for who is cheap to influence under the
				// weighted-cascade weights. Dense BA reproduces both;
				// a Watts–Strogatz analog matches density but its
				// degree homogeneity erases the diffusion signal.
				m := scaled(80, scale)
				if m < 3 {
					m = 3
				}
				return BarabasiAlbert(n, m, seed)
			},
		},
		{
			Name:       "wikivote",
			PaperNodes: 7100, PaperEdges: 103600, Directed: true,
			Family: "preferential attachment (Barabási–Albert)",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				n := scaled(7100, scale)
				return BarabasiAlbert(n, 7, seed)
			},
		},
		{
			Name:       "epinions",
			PaperNodes: 76000, PaperEdges: 508800, Directed: true,
			Family: "power-law configuration model",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				n := scaled(76000, scale)
				return PowerLawConfig(n, 6.7, 2.2, seed)
			},
		},
		{
			Name:       "dblp",
			PaperNodes: 317000, PaperEdges: 1050000, Directed: false,
			Family: "stochastic block model (strong clustering)",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				n := scaled(317000, scale)
				blocks := n / 12
				if blocks < 1 {
					blocks = 1
				}
				return SBM(n, blocks, 2.6, 0.7, seed)
			},
		},
		{
			Name:       "pokec",
			PaperNodes: 1600000, PaperEdges: 30600000, Directed: true,
			Family: "preferential attachment (Barabási–Albert)",
			Build: func(scale float64, seed uint64) (*graph.Graph, error) {
				n := scaled(1600000, scale)
				return BarabasiAlbert(n, 10, seed)
			},
		},
	}
	out := make(map[string]Dataset, len(ds))
	for _, d := range ds {
		out[d.Name] = d
	}
	return out
}

// Names returns the registry keys in Table I order.
func Names() []string {
	return []string{"facebook", "wikivote", "epinions", "dblp", "pokec"}
}

// BuildDataset generates the named analog or returns an error listing
// the valid names.
func BuildDataset(name string, scale float64, seed uint64) (*graph.Graph, error) {
	d, ok := Registry()[name]
	if !ok {
		valid := Names()
		sort.Strings(valid)
		return nil, fmt.Errorf("gen: unknown dataset %q (valid: %v)", name, valid)
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("gen: scale %g out of (0, 1]", scale)
	}
	return d.Build(scale, seed)
}

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 16 {
		v = 16
	}
	return v
}
