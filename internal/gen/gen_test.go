package gen

import (
	"testing"

	"imc/internal/graph"
)

func TestErdosRenyiShape(t *testing.T) {
	g, err := ErdosRenyi(500, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// Duplicates/self-loops shrink the count slightly; stay within 15%.
	if m := g.NumEdges(); m < 1700 || m > 2000 {
		t.Fatalf("m = %d, want ≈2000", m)
	}
}

func TestBarabasiAlbertPowerLaw(t *testing.T) {
	g, err := BarabasiAlbert(2000, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	st := g.ComputeStats()
	// Hub degrees should far exceed the mean in a preferential-
	// attachment graph.
	if float64(st.MaxOutDegree) < 5*st.AvgDegree {
		t.Fatalf("max degree %d vs avg %.1f: no heavy tail", st.MaxOutDegree, st.AvgDegree)
	}
	// Undirected emission: in-degree equals out-degree for every node.
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if g.OutDegree(u) != g.InDegree(u) {
			t.Fatalf("node %d: out %d != in %d", u, g.OutDegree(u), g.InDegree(u))
		}
	}
}

func TestWattsStrogatzShape(t *testing.T) {
	g, err := WattsStrogatz(300, 10, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := g.ComputeStats()
	if st.AvgDegree < 8 || st.AvgDegree > 11 {
		t.Fatalf("avg degree %.1f, want ≈10", st.AvgDegree)
	}
	// Odd k is rounded up.
	if _, err := WattsStrogatz(50, 3, 0.1, 3); err != nil {
		t.Fatal(err)
	}
}

func TestSBMShape(t *testing.T) {
	g, err := SBM(400, 8, 4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 400 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if g.NumEdges() == 0 {
		t.Fatal("SBM produced no edges")
	}
}

func TestPowerLawConfigShape(t *testing.T) {
	g, err := PowerLawConfig(1000, 5, 2.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	st := g.ComputeStats()
	if st.AvgDegree < 2 || st.AvgDegree > 8 {
		t.Fatalf("avg degree %.1f, want ≈5", st.AvgDegree)
	}
	if float64(st.MaxInDegree) < 4*st.AvgDegree {
		t.Fatalf("max in-degree %d: no heavy tail", st.MaxInDegree)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	build := func() []*graph.Graph {
		var gs []*graph.Graph
		for _, f := range []func() (*graph.Graph, error){
			func() (*graph.Graph, error) { return ErdosRenyi(100, 3, 9) },
			func() (*graph.Graph, error) { return BarabasiAlbert(100, 2, 9) },
			func() (*graph.Graph, error) { return WattsStrogatz(100, 4, 0.2, 9) },
			func() (*graph.Graph, error) { return SBM(100, 4, 3, 1, 9) },
			func() (*graph.Graph, error) { return PowerLawConfig(100, 4, 2.2, 9) },
			func() (*graph.Graph, error) { return RandomDirected(100, 200, 0.5, 9) },
		} {
			g, err := f()
			if err != nil {
				t.Fatal(err)
			}
			gs = append(gs, g)
		}
		return gs
	}
	a, b := build(), build()
	for i := range a {
		if a[i].NumEdges() != b[i].NumEdges() {
			t.Fatalf("generator %d nondeterministic: %d vs %d edges", i, a[i].NumEdges(), b[i].NumEdges())
		}
		ea, eb := a[i].Edges(), b[i].Edges()
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("generator %d: edge %d differs", i, j)
			}
		}
	}
}

func TestPathAndCompleteGraphs(t *testing.T) {
	p, err := PathGraph(5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumEdges() != 4 || !p.HasEdge(0, 1) || p.HasEdge(1, 0) {
		t.Fatal("path graph malformed")
	}
	c, err := CompleteGraph(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != 12 {
		t.Fatalf("complete graph has %d edges, want 12", c.NumEdges())
	}
}

func TestRandomDirectedExactEdgeCount(t *testing.T) {
	g, err := RandomDirected(20, 50, 0.8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 50 {
		t.Fatalf("m = %d, want exactly 50", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Weight <= 0 || e.Weight > 0.8 {
			t.Fatalf("weight %g out of (0, 0.8]", e.Weight)
		}
	}
	// Request beyond capacity clamps to n(n-1).
	g2, err := RandomDirected(5, 1000, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 20 {
		t.Fatalf("m = %d, want 20", g2.NumEdges())
	}
}

func TestRegistryAnalogsMatchPaperShapes(t *testing.T) {
	reg := Registry()
	if len(reg) != 6 {
		t.Fatalf("registry has %d datasets", len(reg))
	}
	for _, name := range Names() {
		if _, ok := reg[name]; !ok {
			t.Fatalf("registry missing %q", name)
		}
	}
	// Facebook analog at full scale: node count exact, undirected edge
	// count (directed arcs / 2) within 30% of the paper's 60 K.
	fb, err := BuildDataset("facebook", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fb.NumNodes() != 747 {
		t.Fatalf("facebook n = %d, want 747", fb.NumNodes())
	}
	if und := fb.NumEdges() / 2; und < 42000 || und > 78000 {
		t.Fatalf("facebook undirected edges = %d, want within 30%% of 60K", und)
	}
	// Wikivote analog at full scale.
	wv, err := BuildDataset("wikivote", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wv.NumNodes() != 7100 {
		t.Fatalf("wikivote n = %d", wv.NumNodes())
	}
}

func TestBuildDatasetErrors(t *testing.T) {
	if _, err := BuildDataset("nope", 1, 1); err == nil {
		t.Fatal("want unknown-dataset error")
	}
	if _, err := BuildDataset("facebook", 0, 1); err == nil {
		t.Fatal("want scale error")
	}
	if _, err := BuildDataset("facebook", 1.5, 1); err == nil {
		t.Fatal("want scale error")
	}
}

func TestScaledDatasets(t *testing.T) {
	small, err := BuildDataset("epinions", 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n := small.NumNodes(); n < 500 || n > 1000 {
		t.Fatalf("epinions at 1%% scale has %d nodes", n)
	}
}

// TestKarateFixtureShape: the registry's karate entry is the real club
// — fixed 34 nodes and 78 undirected edges (156 arcs) at every scale
// and seed, byte-identical across builds.
func TestKarateFixtureShape(t *testing.T) {
	a, err := BuildDataset("karate", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != 34 || a.NumEdges() != 156 {
		t.Fatalf("karate analog is %d nodes / %d arcs, want 34 / 156", a.NumNodes(), a.NumEdges())
	}
	b, err := BuildDataset("karate", 0.1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.WeightDigest() != b.WeightDigest() {
		t.Fatal("karate fixture varies with scale or seed")
	}
}
