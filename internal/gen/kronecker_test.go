package gen

import (
	"testing"
)

func TestRMATShapeAndSkew(t *testing.T) {
	a, b, c, d := Graph500()
	g, err := RMAT(12, 40000, a, b, c, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1<<12 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// Dedup and dropped self-loops shrink the edge count somewhat.
	if m := g.NumEdges(); m < 25000 || m > 40000 {
		t.Fatalf("m = %d, want near 40000", m)
	}
	st := g.ComputeStats()
	if float64(st.MaxOutDegree) < 8*st.AvgDegree {
		t.Fatalf("max degree %d vs avg %.1f: R-MAT should be heavy-tailed", st.MaxOutDegree, st.AvgDegree)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, b, c, d := Graph500()
	g1, err := RMAT(8, 2000, a, b, c, d, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RMAT(8, 2000, a, b, c, d, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("RMAT nondeterministic")
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestRMATValidation(t *testing.T) {
	if _, err := RMAT(0, 10, 0.25, 0.25, 0.25, 0.25, 1); err == nil {
		t.Fatal("want levels error")
	}
	if _, err := RMAT(31, 10, 0.25, 0.25, 0.25, 0.25, 1); err == nil {
		t.Fatal("want levels error")
	}
	if _, err := RMAT(4, 0, 0.25, 0.25, 0.25, 0.25, 1); err == nil {
		t.Fatal("want edge-count error")
	}
	if _, err := RMAT(4, 10, -1, 1, 1, 1, 1); err == nil {
		t.Fatal("want initiator error")
	}
	if _, err := RMAT(4, 10, 0, 0, 0, 0, 1); err == nil {
		t.Fatal("want zero-initiator error")
	}
}

func TestRMATUniformInitiatorIsUniform(t *testing.T) {
	// With a=b=c=d the model degenerates to uniform random pairs.
	g, err := RMAT(10, 5000, 0.25, 0.25, 0.25, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	st := g.ComputeStats()
	// Uniform model: max degree stays near the Poisson tail, no
	// massive hub.
	if float64(st.MaxOutDegree) > 8*st.AvgDegree {
		t.Fatalf("uniform initiator produced hub of degree %d (avg %.1f)", st.MaxOutDegree, st.AvgDegree)
	}
	// All endpoints within range.
	for _, e := range g.Edges() {
		if e.From < 0 || e.To < 0 || int(e.From) >= g.NumNodes() || int(e.To) >= g.NumNodes() {
			t.Fatalf("edge %v out of range", e)
		}
	}
}
