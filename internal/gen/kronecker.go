package gen

import (
	"fmt"

	"imc/internal/graph"
	"imc/internal/xrand"
)

// RMAT generates a stochastic Kronecker (R-MAT) graph with 2^levels
// nodes and approximately m directed edges, using the classic
// recursive-quadrant sampling with initiator probabilities
// (a, b, c, d), a+b+c+d = 1. R-MAT is the generative model SNAP
// itself fits to its social graphs, so it complements the analog
// catalog for ablations on degree skew and community mixing.
//
// Standard parameterization: a=0.57, b=0.19, c=0.19, d=0.05 (the
// "Graph500" initiator) yields heavy-tailed degrees with core-periphery
// structure.
func RMAT(levels, m int, a, b, c, d float64, seed uint64) (*graph.Graph, error) {
	if levels < 1 || levels > 30 {
		return nil, fmt.Errorf("gen: RMAT levels %d out of [1, 30]", levels)
	}
	if m < 1 {
		return nil, fmt.Errorf("gen: RMAT edge count %d must be positive", m)
	}
	total := a + b + c + d
	if total <= 0 || a < 0 || b < 0 || c < 0 || d < 0 {
		return nil, fmt.Errorf("gen: RMAT initiator (%g, %g, %g, %g) invalid", a, b, c, d)
	}
	a, b, c = a/total, b/total, c/total // d implied by the remainder
	n := 1 << levels
	rng := xrand.New(seed)
	builder := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		row, col := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			row <<= 1
			col <<= 1
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				col |= 1
			case r < a+b+c:
				row |= 1
			default:
				row |= 1
				col |= 1
			}
		}
		builder.AddEdge(graph.NodeID(row), graph.NodeID(col), 1)
	}
	return builder.Build()
}

// Graph500 returns the standard Graph500 R-MAT initiator.
func Graph500() (a, b, c, d float64) { return 0.57, 0.19, 0.19, 0.05 }
