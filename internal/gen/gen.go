// Package gen produces synthetic graphs used as stand-ins for the SNAP
// datasets of the paper's evaluation (the environment has no network
// access, see DESIGN.md §4).
//
// Each generator is deterministic in its seed and returns a directed
// graph (undirected families emit both arc directions, matching how the
// paper treats undirected datasets). Weights default to 1 and are meant
// to be reassigned with graph.ApplyWeights — the paper uses the
// weighted-cascade scheme.
package gen

import (
	"math"

	"imc/internal/graph"
	"imc/internal/xrand"
)

// ErdosRenyi generates G(n, m~): a directed graph with approximately
// avgOutDeg random out-edges per node.
func ErdosRenyi(n int, avgOutDeg float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, graph.ErrNoNodes
	}
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	target := int(avgOutDeg * float64(n))
	for i := 0; i < target; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		b.AddEdge(u, v, 1)
	}
	return b.Build()
}

// BarabasiAlbert generates an undirected preferential-attachment graph
// with n nodes, each new node attaching to m existing nodes, then emits
// both arc directions. Degree distribution is power-law, matching the
// heavy-tailed SNAP social graphs.
func BarabasiAlbert(n, m int, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, graph.ErrNoNodes
	}
	if m < 1 {
		m = 1
	}
	if m >= n {
		m = n - 1
	}
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	// targets holds one entry per edge endpoint: sampling uniformly from
	// it realizes preferential attachment.
	targets := make([]int32, 0, 2*m*n)
	// Seed clique over the first m+1 nodes.
	for i := 0; i <= m && i < n; i++ {
		for j := 0; j < i; j++ {
			b.AddUndirected(int32(i), int32(j), 1)
			targets = append(targets, int32(i), int32(j))
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[int32]struct{}, m)
		picks := make([]int32, 0, m)
		for len(picks) < m {
			var t int32
			if len(targets) == 0 {
				t = int32(rng.Intn(v))
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if int(t) == v {
				continue
			}
			if _, dup := chosen[t]; dup {
				continue
			}
			chosen[t] = struct{}{}
			picks = append(picks, t)
		}
		for _, t := range picks {
			b.AddUndirected(int32(v), t, 1)
			targets = append(targets, int32(v), t)
		}
	}
	return b.Build()
}

// WattsStrogatz generates an undirected small-world ring lattice with n
// nodes, k nearest neighbors per side... per node (k must be even), and
// rewiring probability beta, then emits both arc directions. High
// clustering mimics the dense Facebook ego-network.
func WattsStrogatz(n, k int, beta float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, graph.ErrNoNodes
	}
	if k < 2 {
		k = 2
	}
	if k%2 == 1 {
		k++
	}
	if k >= n {
		k = n - 1
		if k%2 == 1 {
			k--
		}
	}
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if rng.Bernoulli(beta) {
				// Rewire to a uniform random endpoint.
				v = rng.Intn(n)
				if v == u {
					v = (u + 1) % n
				}
			}
			b.AddUndirected(int32(u), int32(v), 1)
		}
	}
	return b.Build()
}

// SBM generates a planted-partition (stochastic block model) graph:
// blocks communities of near-equal size; each node gets approximately
// inDeg intra-block and outDeg inter-block undirected edges. This mimics
// collaboration networks such as DBLP with strong community structure.
func SBM(n, blocks int, inDeg, outDeg float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, graph.ErrNoNodes
	}
	if blocks < 1 {
		blocks = 1
	}
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	blockOf := make([]int, n)
	members := make([][]int32, blocks)
	for i := 0; i < n; i++ {
		blk := i % blocks
		blockOf[i] = blk
		members[blk] = append(members[blk], int32(i))
	}
	intra := int(inDeg * float64(n) / 2)
	inter := int(outDeg * float64(n) / 2)
	for i := 0; i < intra; i++ {
		u := rng.Intn(n)
		peers := members[blockOf[u]]
		v := peers[rng.Intn(len(peers))]
		b.AddUndirected(int32(u), v, 1)
	}
	for i := 0; i < inter; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if blockOf[u] == blockOf[v] {
			continue
		}
		b.AddUndirected(int32(u), int32(v), 1)
	}
	return b.Build()
}

// PowerLawConfig generates a directed graph via the configuration model
// with power-law out- and in-degree sequences of exponent gamma
// (typically 2.1–2.5), average degree avgDeg. Mimics trust networks such
// as Epinions.
func PowerLawConfig(n int, avgDeg, gamma float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, graph.ErrNoNodes
	}
	if gamma <= 1 {
		gamma = 2.2
	}
	rng := xrand.New(seed)
	degOut := powerLawDegrees(n, avgDeg, gamma, rng)
	degIn := powerLawDegrees(n, avgDeg, gamma, rng.Split(1))
	stubsOut := expandStubs(degOut)
	stubsIn := expandStubs(degIn)
	rng.ShuffleInts(stubsOut)
	rng.ShuffleInts(stubsIn)
	b := graph.NewBuilder(n)
	limit := len(stubsOut)
	if len(stubsIn) < limit {
		limit = len(stubsIn)
	}
	for i := 0; i < limit; i++ {
		b.AddEdge(int32(stubsOut[i]), int32(stubsIn[i]), 1)
	}
	return b.Build()
}

// powerLawDegrees draws n degrees from a discrete power law with the
// requested exponent, rescaled to hit the average degree.
func powerLawDegrees(n int, avgDeg, gamma float64, rng *xrand.RNG) []int {
	raw := make([]float64, n)
	total := 0.0
	for i := range raw {
		// Inverse-CDF sampling of a Pareto tail starting at 1.
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		raw[i] = math.Pow(u, -1.0/(gamma-1))
		total += raw[i]
	}
	scale := avgDeg * float64(n) / total
	deg := make([]int, n)
	for i, r := range raw {
		d := int(r*scale + 0.5)
		if d < 1 {
			d = 1
		}
		if d > n-1 {
			d = n - 1
		}
		deg[i] = d
	}
	return deg
}

func expandStubs(deg []int) []int {
	total := 0
	for _, d := range deg {
		total += d
	}
	stubs := make([]int, 0, total)
	for i, d := range deg {
		for j := 0; j < d; j++ {
			stubs = append(stubs, i)
		}
	}
	return stubs
}

// PathGraph builds a directed path 0->1->...->n-1 with constant edge
// weight w; handy for hand-checkable unit tests.
func PathGraph(n int, w float64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, graph.ErrNoNodes
	}
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1), w)
	}
	return b.Build()
}

// CompleteGraph builds a directed clique with constant edge weight w,
// used by property tests.
func CompleteGraph(n int, w float64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, graph.ErrNoNodes
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(int32(i), int32(j), w)
			}
		}
	}
	return b.Build()
}

// RandomDirected generates a uniformly random directed graph with
// exactly min(m, n*(n-1)) distinct edges and uniform random weights in
// (0, maxW]. Used heavily by property-based tests.
func RandomDirected(n, m int, maxW float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, graph.ErrNoNodes
	}
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	maxEdges := n * (n - 1)
	if m > maxEdges {
		m = maxEdges
	}
	seen := make(map[int64]struct{}, m)
	for len(seen) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		key := int64(u)*int64(n) + int64(v)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		w := rng.Float64() * maxW
		if w <= 0 {
			w = maxW / 2
		}
		b.AddEdge(int32(u), int32(v), w)
	}
	return b.Build()
}
