package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, "demo", []string{"k=5", "k=10", "k=20"}, []Series{
		{Name: "UBG", Y: []float64{10, 20, 30}},
		{Name: "KS", Y: []float64{5, 8, 12}},
	}, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "* UBG", "o KS", "k=5", "k=20", "30", "0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The top row must contain the max marker of the dominant series.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("max value not at top row:\n%s", out)
	}
}

func TestChartValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, "t", nil, []Series{{Name: "a", Y: nil}}, 10, 5); err == nil {
		t.Fatal("want empty-x error")
	}
	if err := Chart(&buf, "t", []string{"x"}, nil, 10, 5); err == nil {
		t.Fatal("want empty-series error")
	}
	if err := Chart(&buf, "t", []string{"x", "y"}, []Series{{Name: "a", Y: []float64{1}}}, 10, 5); err == nil {
		t.Fatal("want length-mismatch error")
	}
}

func TestChartHandlesNaNAndConstants(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, "flat", []string{"a", "b"}, []Series{
		{Name: "s", Y: []float64{math.NaN(), 5}},
		{Name: "t", Y: []float64{5, 5}},
	}, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "o t") {
		t.Fatal("legend missing")
	}
	// All-NaN series must not panic and bounds default sanely.
	buf.Reset()
	if err := Chart(&buf, "nan", []string{"a"}, []Series{{Name: "n", Y: []float64{math.NaN()}}}, 24, 5); err != nil {
		t.Fatal(err)
	}
}

func TestChartLargeValuesAxisLabels(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, "big", []string{"a", "b"}, []Series{
		{Name: "s", Y: []float64{1200, 45000}},
	}, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Large axis labels switch to compact %.3g form.
	if !strings.Contains(buf.String(), "4.5e+04") {
		t.Fatalf("compact label missing:\n%s", buf.String())
	}
}

func TestChartNegativeValues(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, "neg", []string{"a", "b"}, []Series{
		{Name: "s", Y: []float64{-5, 5}},
	}, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-5") {
		t.Fatalf("negative axis label missing:\n%s", buf.String())
	}
}

func TestChartSingleColumn(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, "one", []string{"k=1"}, []Series{{Name: "x", Y: []float64{3}}}, 10, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("marker missing for single point")
	}
}
