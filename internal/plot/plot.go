// Package plot renders small ASCII line charts. cmd/imcbench uses it to
// draw the paper's figures directly in the terminal (-format plot), so
// the qualitative shapes — orderings, trends, crossovers — are visible
// without exporting CSV to an external plotter.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of y-values over the shared x positions.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// Y holds one value per x position; NaN marks missing points.
	Y []float64
}

// markers distinguishes series in draw order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart draws the series as an ASCII chart of the given plot-area size
// (sensible minimums are enforced). The y-axis starts at zero unless
// values are negative.
func Chart(w io.Writer, title string, xLabels []string, series []Series, width, height int) error {
	if len(xLabels) == 0 || len(series) == 0 {
		return fmt.Errorf("plot: need at least one x position and one series")
	}
	for _, s := range series {
		if len(s.Y) != len(xLabels) {
			return fmt.Errorf("plot: series %q has %d points, want %d", s.Name, len(s.Y), len(xLabels))
		}
	}
	if width < 2*len(xLabels) {
		width = 2 * len(xLabels)
	}
	if width < 24 {
		width = 24
	}
	if height < 5 {
		height = 5
	}

	lo, hi := bounds(series)
	if lo > 0 {
		lo = 0
	}
	if hi <= lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	// Column of each x position, spread across the width.
	col := func(i int) int {
		if len(xLabels) == 1 {
			return width / 2
		}
		return i * (width - 1) / (len(xLabels) - 1)
	}
	row := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := height - 1 - int(math.Round(frac*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			grid[row(v)][col(i)] = m
		}
	}

	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	yw := len(axisLabel(hi))
	if l := len(axisLabel(lo)); l > yw {
		yw = l
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", yw)
		if r == 0 {
			label = pad(axisLabel(hi), yw)
		}
		if r == height-1 {
			label = pad(axisLabel(lo), yw)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", yw), strings.Repeat("-", width)); err != nil {
		return err
	}
	// X labels: first and last, centered-ish.
	first, last := xLabels[0], xLabels[len(xLabels)-1]
	gap := width - len(first) - len(last)
	if gap < 1 {
		gap = 1
	}
	if _, err := fmt.Fprintf(w, "%s  %s%s%s\n", strings.Repeat(" ", yw), first, strings.Repeat(" ", gap), last); err != nil {
		return err
	}
	// Legend.
	var legend strings.Builder
	for si, s := range series {
		if si > 0 {
			legend.WriteString("   ")
		}
		fmt.Fprintf(&legend, "%c %s", markers[si%len(markers)], s.Name)
	}
	_, err := fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", yw), legend.String())
	return err
}

func bounds(series []Series) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			if math.IsNaN(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	return lo, hi
}

func axisLabel(v float64) string {
	switch {
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v-math.Round(v)) < 1e-9:
		// Near-integers (within accumulated float drift) print without
		// decimals; this only picks the label format, never the value.
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}
