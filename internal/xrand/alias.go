package xrand

// Alias is a Walker alias-method sampler over a fixed discrete
// distribution: O(n) construction, O(1) per draw. RIC sampling uses it to
// pick a source community proportional to benefit on every sample, which
// is the hot path of the whole framework.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds a sampler over weights. Non-positive weights get zero
// probability. If every weight is non-positive the sampler degenerates to
// uniform over the full range.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	if n == 0 {
		return a
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	scaled := make([]float64, n)
	if total <= 0 {
		for i := range scaled {
			scaled[i] = 1
		}
	} else {
		for i, w := range weights {
			if w > 0 {
				scaled[i] = w * float64(n) / total
			}
		}
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Numerical leftovers: treat as full columns.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Len returns the support size.
func (a *Alias) Len() int { return len(a.prob) }

// Draw samples an index according to the distribution.
func (a *Alias) Draw(r *RNG) int {
	n := len(a.prob)
	if n == 0 {
		return 0
	}
	i := r.Intn(n)
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
