package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependentOfParentState(t *testing.T) {
	a := New(7)
	b := New(7)
	// Advancing the parent must not change what Split(i) yields.
	for i := 0; i < 50; i++ {
		a.Uint64()
	}
	sa := a.Split(3)
	sb := b.Split(3)
	for i := 0; i < 100; i++ {
		va, vb := sa.Uint64(), sb.Uint64()
		if va != vb {
			t.Fatalf("split streams depend on parent consumption (draw %d: %d vs %d)", i, va, vb)
		}
	}
}

func TestSplitStreamsDiffer(t *testing.T) {
	r := New(9)
	s0 := r.Split(0)
	s1 := r.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 collided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	r := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("Intn of non-positive bound should be 0")
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(17)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("value %d drawn %d times, want ≈%.0f", v, c, want)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(19)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %g", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleKDistinct(t *testing.T) {
	r := New(29)
	s := r.SampleK(50, 10)
	if len(s) != 10 {
		t.Fatalf("SampleK returned %d values", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("SampleK invalid: %v", s)
		}
		seen[v] = true
	}
	if got := len(r.SampleK(5, 10)); got != 5 {
		t.Fatalf("SampleK(5,10) returned %d values, want 5", got)
	}
}

// Property: Perm always yields a valid permutation for any seed/size.
func TestQuickPerm(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SampleK always returns k distinct in-range values.
func TestQuickSampleK(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw % 60)
		s := New(seed).SampleK(n, k)
		want := k
		if want > n {
			want = n
		}
		if len(s) != want {
			return false
		}
		seen := make(map[int]bool, len(s))
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 3, 0, 6}
	a := NewAlias(weights)
	r := New(31)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Draw(r)]++
	}
	total := 10.0
	for i, w := range weights {
		want := float64(draws) * w / total
		tol := 4*math.Sqrt(want) + 50
		if math.Abs(float64(counts[i])-want) > tol {
			t.Fatalf("index %d drawn %d times, want ≈%.0f", i, counts[i], want)
		}
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[2])
	}
}

func TestAliasDegenerate(t *testing.T) {
	// All-zero weights degrade to uniform.
	a := NewAlias([]float64{0, 0, 0})
	r := New(37)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[a.Draw(r)]++
	}
	for i, c := range counts {
		if c < 8000 {
			t.Fatalf("degenerate alias not uniform: index %d drawn %d", i, c)
		}
	}
	// Empty support returns 0 without panicking.
	if NewAlias(nil).Draw(r) != 0 {
		t.Fatal("empty alias should return 0")
	}
}

// Property: alias never returns an out-of-range or zero-weight index.
func TestQuickAliasSupport(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		anyPos := false
		for i, v := range raw {
			weights[i] = float64(v)
			if v > 0 {
				anyPos = true
			}
		}
		a := NewAlias(weights)
		r := New(seed)
		for i := 0; i < 50; i++ {
			idx := a.Draw(r)
			if idx < 0 || idx >= len(weights) {
				return false
			}
			if anyPos && weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIntoMatchesSplit(t *testing.T) {
	root := New(987654321)
	var reused RNG
	for stream := uint64(0); stream < 64; stream++ {
		want := root.Split(stream)
		root.SplitInto(stream, &reused)
		for i := 0; i < 16; i++ {
			if a, b := want.Uint64(), reused.Uint64(); a != b {
				t.Fatalf("stream %d draw %d: Split=%#x SplitInto=%#x", stream, i, a, b)
			}
		}
	}
}

func TestSplitIntoDoesNotAllocate(t *testing.T) {
	root := New(7)
	var child RNG
	var sink uint64
	allocs := testing.AllocsPerRun(100, func() {
		root.SplitInto(3, &child)
		sink += child.Uint64()
	})
	if allocs != 0 {
		t.Errorf("SplitInto allocates %.1f times per call, want 0", allocs)
	}
	_ = sink
}
