// Package xrand provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component in the library.
//
// Reproducibility is a hard requirement for the experiment harness: runs
// must produce identical results for a given seed regardless of how many
// worker goroutines participate. To that end the package offers
// SplitMix64-seeded xoshiro256** streams that can be split by index, so a
// parallel job assigns stream i to task i and the task order no longer
// matters.
package xrand

import "math/bits"

// RNG is a xoshiro256** generator. It is NOT safe for concurrent use;
// give each goroutine its own stream via Split.
type RNG struct {
	s  [4]uint64
	id uint64 // seed identity; Split derives children from it, not from s
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is the recommended seeder for xoshiro streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *RNG {
	var r RNG
	r.id = seed
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split returns an independent stream derived from r's seed identity
// and the stream index. The result depends only on the seed r was
// created with (not on how much r has been consumed), and calling Split
// does not advance r — the properties parallel generation relies on.
func (r *RNG) Split(stream uint64) *RNG {
	out := new(RNG)
	r.SplitInto(stream, out)
	return out
}

// SplitInto reseeds out in place with the stream Split(stream) would
// return, producing a byte-identical sequence without allocating. Hot
// sampling loops that draw one child stream per sample reuse a single
// RNG value this way instead of heap-allocating per iteration.
func (r *RNG) SplitInto(stream uint64, out *RNG) {
	st := r.id ^ bits.RotateLeft64(stream+1, 31)*0xd1342543de82ef95
	out.id = splitmix64(&st)
	for i := range out.s {
		out.s[i] = splitmix64(&st)
	}
	if out.s[0]|out.s[1]|out.s[2]|out.s[3] == 0 {
		out.s[0] = 1
	}
}

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, un)
		}
	}
	return int(hi)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place (Fisher–Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleK draws k distinct values from [0, n) uniformly (partial
// Fisher–Yates). If k >= n it returns a full permutation.
func (r *RNG) SampleK(n, k int) []int {
	if k > n {
		k = n
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k:k]
}
