package xrand

import "testing"

// The distributed shard runtime (internal/shard) partitions the global
// sample sequence [0, Θ) across workers, with every worker deriving
// stream i via SplitInto(i) from the same root seed. These tests pin
// the two PRNG properties that partition rides on: child streams are
// pairwise disjoint (no shared prefixes), and the union of streams
// drawn by any number of workers is the same sequence family — the
// split count never perturbs what any stream yields.

// TestSplitIntoStreamsDisjoint: the first outputs of a wide window of
// sibling streams are pairwise distinct, and no two streams share even
// a short prefix — overlapping streams would correlate shard samples
// that the estimator treats as independent.
func TestSplitIntoStreamsDisjoint(t *testing.T) {
	root := New(99)
	const streams, prefix = 4096, 4
	seen := make(map[[prefix]uint64]uint64, streams)
	var child RNG
	for i := uint64(0); i < streams; i++ {
		root.SplitInto(i, &child)
		var p [prefix]uint64
		for j := range p {
			p[j] = child.Uint64()
		}
		if prev, dup := seen[p]; dup {
			t.Fatalf("streams %d and %d share a %d-draw prefix", prev, i, prefix)
		}
		seen[p] = i
	}
}

// TestSplitWorkerCountIndependence: cutting [0, Θ) into N ∈ {1, 2, 4}
// contiguous ranges and having each "worker" (its own root RNG derived
// from the same seed) draw its range's streams yields exactly the union
// sequence a single process would draw — stream i's output depends only
// on (seed, i), never on which worker split it or what else that worker
// drew first.
func TestSplitWorkerCountIndependence(t *testing.T) {
	const seed, theta, draws = 12345, 256, 8
	want := make([][draws]uint64, theta)
	ref := New(seed)
	var child RNG
	for i := range want {
		ref.SplitInto(uint64(i), &child)
		for j := 0; j < draws; j++ {
			want[i][j] = child.Uint64()
		}
	}

	for _, n := range []int{1, 2, 4} {
		for w := 0; w < n; w++ {
			lo, hi := w*theta/n, (w+1)*theta/n
			worker := New(seed) // each process re-derives the root from the seed
			// Consuming the worker's root must not shift its children:
			// Split derives from seed identity, not from consumed state.
			for k := 0; k < w*7; k++ {
				worker.Uint64()
			}
			for i := lo; i < hi; i++ {
				worker.SplitInto(uint64(i), &child)
				for j := 0; j < draws; j++ {
					if got := child.Uint64(); got != want[i][j] {
						t.Fatalf("N=%d worker %d: stream %d draw %d = %#x, single-process drew %#x",
							n, w, i, j, got, want[i][j])
					}
				}
			}
		}
	}
}
