package xrand

import "testing"

// BenchmarkUint64 measures the raw generator throughput.
func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

// BenchmarkIntn measures bounded sampling (Lemire rejection).
func BenchmarkIntn(b *testing.B) {
	r := New(1)
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}

// BenchmarkSplit measures stream derivation (once per RIC sample).
func BenchmarkSplit(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Split(uint64(i))
	}
}

// BenchmarkAliasDraw measures community selection (the first step of
// every RIC sample).
func BenchmarkAliasDraw(b *testing.B) {
	weights := make([]float64, 10000)
	for i := range weights {
		weights[i] = float64(i%37) + 1
	}
	a := NewAlias(weights)
	r := New(1)
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += a.Draw(r)
	}
	_ = sink
}
