package ric

import "math/bits"

// Mask is a word-packed bitset over the members of one sample's source
// community. Member j of the community corresponds to bit j. Masks are
// deliberately bare slices: the pool stores millions of them, so every
// byte of header counts.
type Mask []uint64

const maskWordBits = 64

// newMask returns an all-zero mask able to hold n member bits.
func newMask(n int) Mask {
	return make(Mask, (n+maskWordBits-1)/maskWordBits)
}

// set turns on bit i.
func (m Mask) set(i int) { m[i/maskWordBits] |= 1 << uint(i%maskWordBits) }

// Test reports whether bit i is on.
//
//imc:pure
func (m Mask) Test(i int) bool {
	return m[i/maskWordBits]&(1<<uint(i%maskWordBits)) != 0
}

// OnesCount returns the number of set bits.
//
//imc:pure
func (m Mask) OnesCount() int {
	c := 0
	for _, w := range m {
		c += bits.OnesCount64(w)
	}
	return c
}

// OrInto sets dst |= m. Both masks must have equal length.
func (m Mask) OrInto(dst Mask) {
	for i, w := range m {
		dst[i] |= w
	}
}

// NewBitsOver returns the number of bits set in m but not in base — the
// marginal member coverage m adds on top of base.
//
//imc:pure
func (m Mask) NewBitsOver(base Mask) int {
	c := 0
	for i, w := range m {
		c += bits.OnesCount64(w &^ base[i])
	}
	return c
}

// UnionCount returns |m ∪ base| without mutating either mask.
//
//imc:pure
func (m Mask) UnionCount(base Mask) int {
	c := 0
	for i, w := range m {
		c += bits.OnesCount64(w | base[i])
	}
	return c
}

// Clone returns an independent copy of m.
func (m Mask) Clone() Mask {
	out := make(Mask, len(m))
	copy(out, m)
	return out
}

// AndNot returns a fresh mask m &^ other (bits of m with other's bits
// removed).
func (m Mask) AndNot(other Mask) Mask {
	out := make(Mask, len(m))
	for i, w := range m {
		out[i] = w &^ other[i]
	}
	return out
}
