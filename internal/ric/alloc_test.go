package ric

import (
	"testing"

	"imc/internal/diffusion"
	"imc/internal/xrand"
)

// These tests lock in the hot-path allocation burn-down (see the
// //imc:hotpath annotations): once the generator's scratch has grown to
// steady state, the streaming estimators allocate nothing and Generate
// allocates exactly its three retained slices (cover nodes, mask
// headers, bit slab).
//
// Each measured run replays one fixed PRNG stream via SplitInto, so the
// sample — and therefore the allocation count — is deterministic.

func warmGenerator(t *testing.T, model diffusion.Model) *Generator {
	t.Helper()
	g, part := benchInstance(t)
	gen, err := NewGenerator(g, part, model)
	if err != nil {
		t.Fatal(err)
	}
	root := xrand.New(7)
	var rng xrand.RNG
	for i := 0; i < 500; i++ {
		root.SplitInto(uint64(i), &rng)
		gen.Generate(&rng)
	}
	return gen
}

func TestInfluencedDoesNotAllocate(t *testing.T) {
	gen := warmGenerator(t, diffusion.IC)
	inSeed := make([]bool, gen.g.NumNodes())
	for i := 0; i < 20; i++ {
		inSeed[i*37] = true
	}
	root := xrand.New(7)
	var rng xrand.RNG
	avg := testing.AllocsPerRun(100, func() {
		root.SplitInto(3, &rng)
		gen.Influenced(&rng, inSeed)
	})
	if avg != 0 {
		t.Errorf("Influenced allocates %.1f objects per run, want 0", avg)
	}
}

func TestFractionalInfluenceDoesNotAllocate(t *testing.T) {
	gen := warmGenerator(t, diffusion.IC)
	inSeed := make([]bool, gen.g.NumNodes())
	for i := 0; i < 20; i++ {
		inSeed[i*37] = true
	}
	root := xrand.New(7)
	var rng xrand.RNG
	avg := testing.AllocsPerRun(100, func() {
		root.SplitInto(5, &rng)
		gen.FractionalInfluence(&rng, inSeed)
	})
	if avg != 0 {
		t.Errorf("FractionalInfluence allocates %.1f objects per run, want 0", avg)
	}
}

// TestGenerateAllocatesExactlyRetainedSlices pins Generate to its
// documented allocation contract: the three slices handed to the pool
// and nothing else.
func TestGenerateAllocatesExactlyRetainedSlices(t *testing.T) {
	for _, model := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		gen := warmGenerator(t, model)
		root := xrand.New(7)
		var rng xrand.RNG
		avg := testing.AllocsPerRun(100, func() {
			root.SplitInto(11, &rng)
			gen.Generate(&rng)
		})
		if avg != 3 {
			t.Errorf("%v: Generate allocates %.1f objects per run, want exactly 3 (coverNodes, coverBits, slab)", model, avg)
		}
	}
}
