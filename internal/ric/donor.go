package ric

import "fmt"

// Donor wraps a frozen pool so its samples can be spliced into a
// compatible growing pool without regenerating them — the mechanism
// behind the pool cache's incremental doubling. The per-sample cover
// view is materialized once at construction (O(pool)), so repeated
// ExtendTo calls during a stop-and-stare schedule pay only for the
// samples they adopt.
//
// Adoption is sound because generation is stream-indexed: sample i of
// any pool with the same (graph, weights, partition, model, seed) is
// identical no matter which process drew it, so copying samples
// [cur, target) from the donor yields byte-for-byte the pool that
// GenerateCtx would have produced. The donor's identity is validated on
// every call; masks are shared (both sides treat them as read-only
// after the single-writer phase), so adoption allocates only index
// entries.
type Donor struct {
	src    *Pool         //imc:guardedby immutable
	covers [][]NodeCover //imc:guardedby immutable
}

// NewDonor freezes pool as a sample donor. The pool must not be
// mutated afterwards (the cover view would go stale).
func NewDonor(pool *Pool) *Donor {
	return &Donor{src: pool, covers: pool.SampleCovers()}
}

// NumSamples returns how many samples the donor can supply.
func (d *Donor) NumSamples() int { return len(d.src.samples) }

// Pool returns the wrapped source pool (read-only).
func (d *Donor) Pool() *Pool { return d.src }

// ExtendTo appends donor samples to p until p holds min(target,
// donor size) samples, and reports how many were adopted. The target
// pool must be over the same graph and partition objects with the same
// seed and model — anything else would splice samples from a different
// stream family — and must not be ahead of the donor mid-stream in a
// way that breaks contiguity (p's next sample index is adopted first).
func (d *Donor) ExtendTo(p *Pool, target int) (int, error) {
	if p.g != d.src.g || p.part != d.src.part {
		return 0, fmt.Errorf("ric: donor and pool cover different graph or partition objects")
	}
	if p.seed != d.src.seed {
		return 0, fmt.Errorf("ric: donor seed %d does not match pool seed %d", d.src.seed, p.seed)
	}
	if p.model != d.src.model {
		return 0, fmt.Errorf("ric: donor model %v does not match pool model %v", d.src.model, p.model)
	}
	if p.offset != d.src.offset {
		return 0, fmt.Errorf("ric: donor stream offset %d does not match pool offset %d — local sample indexes would name different streams", d.src.offset, p.offset)
	}
	lo := len(p.samples)
	hi := target
	if hi > len(d.src.samples) {
		hi = len(d.src.samples)
	}
	if hi <= lo {
		return 0, nil
	}
	for i := lo; i < hi; i++ {
		id := int32(i)
		smp := d.src.samples[i]
		p.samples = append(p.samples, smp)
		p.commFreq[smp.Comm]++
		for _, nc := range d.covers[i] {
			p.index[nc.Node] = append(p.index[nc.Node], CoverEntry{Sample: id, Bits: nc.Bits})
		}
	}
	return hi - lo, nil
}
