package ric

import (
	"testing"
	"testing/quick"

	"imc/internal/community"
	"imc/internal/gen"
	"imc/internal/graph"
)

// quickPool generates a small random pool for property checks.
func quickPool(seed uint64) (*Pool, *community.Partition, error) {
	g, err := gen.RandomDirected(14, 40, 0.6, seed)
	if err != nil {
		return nil, nil, err
	}
	part, err := community.Random(14, 4, seed+1)
	if err != nil {
		return nil, nil, err
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	pool, err := NewPool(g, part, PoolOptions{Seed: seed + 2})
	if err != nil {
		return nil, nil, err
	}
	if err := pool.Generate(200); err != nil {
		return nil, nil, err
	}
	return pool, part, nil
}

// Property: structural invariants of every sample and index entry —
// thresholds within [1, members], cover bits within member range,
// touch counts consistent with the inverted index.
func TestQuickPoolStructuralInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		pool, part, err := quickPool(seed % 100)
		if err != nil {
			return false
		}
		// Per-sample sanity.
		perSampleTouch := make([]int32, pool.NumSamples())
		for i := 0; i < pool.NumSamples(); i++ {
			smp := pool.Sample(i)
			comm := part.Community(int(smp.Comm))
			if int(smp.NumMembers) != len(comm.Members) {
				return false
			}
			if smp.Threshold < 1 || int(smp.Threshold) > len(comm.Members) {
				return false
			}
			if smp.TouchCount < smp.NumMembers {
				// Every member covers itself, so touch ≥ members.
				return false
			}
		}
		// Index entries: bits within range, counted per sample.
		for v := graph.NodeID(0); int(v) < 14; v++ {
			for _, e := range pool.Entries(v) {
				smp := pool.Sample(int(e.Sample))
				if e.Bits.OnesCount() == 0 {
					return false // touching means covering ≥ 1 member
				}
				for _, bit := range onesOf(e.Bits) {
					if bit >= int(smp.NumMembers) {
						return false
					}
				}
				perSampleTouch[e.Sample]++
			}
		}
		for i := 0; i < pool.NumSamples(); i++ {
			if perSampleTouch[i] != pool.Sample(i).TouchCount {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: community frequencies sum to the pool size and only index
// real communities.
func TestQuickCommunityFrequencies(t *testing.T) {
	f := func(seed uint64) bool {
		pool, part, err := quickPool(seed % 100)
		if err != nil {
			return false
		}
		total := 0
		for c := 0; c < part.NumCommunities(); c++ {
			freq := pool.CommunityFrequency(c)
			if freq < 0 {
				return false
			}
			total += freq
		}
		return total == pool.NumSamples()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: CHat of the empty set is 0 and of all nodes is the total
// benefit.
func TestQuickCHatExtremes(t *testing.T) {
	f := func(seed uint64) bool {
		pool, part, err := quickPool(seed % 100)
		if err != nil {
			return false
		}
		if pool.CHat(nil) != 0 {
			return false
		}
		all := make([]graph.NodeID, 14)
		for i := range all {
			all[i] = graph.NodeID(i)
		}
		diff := pool.CHat(all) - part.TotalBenefit()
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func onesOf(m Mask) []int {
	var out []int
	for i := 0; i < len(m)*64; i++ {
		if m.Test(i) {
			out = append(out, i)
		}
	}
	return out
}
