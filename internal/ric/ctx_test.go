package ric

import (
	"context"
	"errors"
	"testing"
	"time"

	"imc/internal/community"
	"imc/internal/gen"
	"imc/internal/graph"
)

func ctxInstance(t testing.TB) (*graph.Graph, *community.Partition) {
	t.Helper()
	g, err := gen.BarabasiAlbert(400, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.Random(g.NumNodes(), 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	part.SetFractionThresholds(0.5)
	part.SetPopulationBenefits()
	return g, part
}

func TestGenerateCtxCanceledLeavesPoolUntouched(t *testing.T) {
	g, part := ctxInstance(t)
	pool, err := NewPool(g, part, PoolOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.GenerateCtx(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pool.GenerateCtx(ctx, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("GenerateCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
	if pool.NumSamples() != 100 {
		t.Fatalf("pool grew to %d samples after a canceled generate", pool.NumSamples())
	}
	if err := pool.DoubleCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("DoubleCtx on canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestGenerateCtxMidFlightCancellation(t *testing.T) {
	g, part := ctxInstance(t)
	pool, err := NewPool(g, part, PoolOptions{Seed: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- pool.GenerateCtx(ctx, 1<<21)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// A fast machine may legitimately finish the whole batch before
		// the cancel lands; anything else must be context.Canceled.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("GenerateCtx: err = %v, want nil or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("GenerateCtx did not return after cancellation")
	}
}

// TestGenerateCtxDeterminism is the tentpole invariant: a completed
// ctx-run folds byte-identical samples in byte-identical order — the
// cancellation polls never touch the PRNG streams.
func TestGenerateCtxDeterminism(t *testing.T) {
	g, part := ctxInstance(t)
	plain, err := NewPool(g, part, PoolOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Generate(600); err != nil {
		t.Fatal(err)
	}
	withCtx, err := NewPool(g, part, PoolOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := withCtx.GenerateCtx(ctx, 600); err != nil {
		t.Fatal(err)
	}
	if plain.NumSamples() != withCtx.NumSamples() {
		t.Fatalf("sample counts differ: %d vs %d", plain.NumSamples(), withCtx.NumSamples())
	}
	for i := 0; i < plain.NumSamples(); i++ {
		if plain.Sample(i) != withCtx.Sample(i) {
			t.Fatalf("sample %d differs: %+v vs %+v", i, plain.Sample(i), withCtx.Sample(i))
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		a, b := plain.Entries(graph.NodeID(v)), withCtx.Entries(graph.NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("node %d: entry counts differ: %d vs %d", v, len(a), len(b))
		}
		for j := range a {
			if a[j].Sample != b[j].Sample {
				t.Fatalf("node %d entry %d: sample %d vs %d", v, j, a[j].Sample, b[j].Sample)
			}
		}
	}
}
