package ric

import (
	"math"
	"testing"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
)

// TestNaiveSamplingIsBiased demonstrates why Alg. 1 shares edge states
// across a sample: on a bottleneck instance the correct estimator gives
// c({a}) = 0.5 while per-member independent worlds give ≈ 0.25.
//
// Topology: a --0.5--> b, b --1--> x1, b --1--> x2, community {x1, x2}
// with threshold 2. Reaching both members requires the SAME a→b edge,
// so their activations are perfectly correlated — which the naive
// sampler breaks.
func TestNaiveSamplingIsBiased(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 0.5) // a -> b (the shared bottleneck)
	b.AddEdge(1, 2, 1)   // b -> x1
	b.AddEdge(1, 3, 1)   // b -> x2
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(4, [][]graph.NodeID{{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetUniformBenefits(1)
	seeds := []graph.NodeID{0}

	// Correct estimator.
	pool, err := NewPool(g, part, PoolOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(40000); err != nil {
		t.Fatal(err)
	}
	correct := pool.CHat(seeds)
	if math.Abs(correct-0.5) > 0.02 {
		t.Fatalf("shared-state estimate %g, want ≈0.5", correct)
	}

	// Naive estimator.
	gen, err := NewGenerator(g, part, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	naive := NaiveCHat(g, gen, seeds, 40000, 7)
	if math.Abs(naive-0.25) > 0.02 {
		t.Fatalf("naive estimate %g, want ≈0.25 (the bias)", naive)
	}
	if naive >= correct-0.1 {
		t.Fatalf("naive %g not clearly below correct %g", naive, correct)
	}
}

// TestNaiveAgreesWhenNoSharing checks the two samplers coincide when no
// edge serves two members (each member has its own disjoint in-path).
func TestNaiveAgreesWhenNoSharing(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 2, 0.5) // a -> x1
	b.AddEdge(1, 3, 0.5) // c -> x2
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(4, [][]graph.NodeID{{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetUniformBenefits(1)
	seeds := []graph.NodeID{0, 1}

	pool, err := NewPool(g, part, PoolOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(40000); err != nil {
		t.Fatal(err)
	}
	correct := pool.CHat(seeds) // = 0.25 exactly in expectation
	gen, err := NewGenerator(g, part, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	naive := NaiveCHat(g, gen, seeds, 40000, 9)
	if math.Abs(correct-naive) > 0.02 {
		t.Fatalf("disjoint paths: shared %g vs naive %g should agree", correct, naive)
	}
}
