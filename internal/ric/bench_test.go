package ric

import (
	"testing"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/xrand"
)

func benchInstance(tb testing.TB) (*graph.Graph, *community.Partition) {
	tb.Helper()
	g, err := gen.BarabasiAlbert(2000, 5, 3)
	if err != nil {
		tb.Fatal(err)
	}
	g = graph.ApplyWeights(g, graph.WeightedCascade, 0, 0)
	part, err := community.Louvain(g, 3)
	if err != nil {
		tb.Fatal(err)
	}
	part, err = part.SplitBySize(8, 3)
	if err != nil {
		tb.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part
}

// BenchmarkGenerateIC measures single-sample RIC generation cost under
// Independent Cascade.
func BenchmarkGenerateIC(b *testing.B) {
	g, part := benchInstance(b)
	gen, err := NewGenerator(g, part, diffusion.IC)
	if err != nil {
		b.Fatal(err)
	}
	root := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Generate(root.Split(uint64(i)))
	}
}

// BenchmarkGenerateLT measures single-sample RIC generation under the
// Linear Threshold extension.
func BenchmarkGenerateLT(b *testing.B) {
	g, part := benchInstance(b)
	gen, err := NewGenerator(g, part, diffusion.LT)
	if err != nil {
		b.Fatal(err)
	}
	root := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Generate(root.Split(uint64(i)))
	}
}

// BenchmarkInfluencedStreaming measures the Estimate procedure's
// per-sample cost (generation + early-exit influence check).
func BenchmarkInfluencedStreaming(b *testing.B) {
	g, part := benchInstance(b)
	gen, err := NewGenerator(g, part, diffusion.IC)
	if err != nil {
		b.Fatal(err)
	}
	inSeed := make([]bool, g.NumNodes())
	for i := 0; i < 20; i++ {
		inSeed[i*37] = true
	}
	root := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Influenced(root.Split(uint64(i)), inSeed)
	}
}

// BenchmarkPoolGenerate1K measures bulk pool generation throughput.
func BenchmarkPoolGenerate1K(b *testing.B) {
	g, part := benchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool, err := NewPool(g, part, PoolOptions{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Generate(1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCHatEval measures seed-set evaluation over a 5K pool.
func BenchmarkCHatEval(b *testing.B) {
	g, part := benchInstance(b)
	pool, err := NewPool(g, part, PoolOptions{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	if err := pool.Generate(5000); err != nil {
		b.Fatal(err)
	}
	seeds := make([]graph.NodeID, 20)
	for i := range seeds {
		seeds[i] = graph.NodeID(i * 61)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.CHat(seeds)
	}
}

// BenchmarkNuHatEval measures the ν_R evaluation on the same pool.
func BenchmarkNuHatEval(b *testing.B) {
	g, part := benchInstance(b)
	pool, err := NewPool(g, part, PoolOptions{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	if err := pool.Generate(5000); err != nil {
		b.Fatal(err)
	}
	seeds := make([]graph.NodeID, 20)
	for i := range seeds {
		seeds[i] = graph.NodeID(i * 61)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.NuHat(seeds)
	}
}
