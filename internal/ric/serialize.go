package ric

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Pool serialization: RIC sampling dominates end-to-end runtime on
// large instances, so a pool is worth persisting when several solver
// configurations will be compared against the same sample set, and the
// pool cache shares snapshots across requests.
//
// Layout (little endian), format v2:
//
//	magic    [4]byte  "IMCP"
//	version  uint32   (2)
//	seed     uint64   the pool's PRNG seed (sample i ← stream i)
//	model    uint32   diffusion model tag (IC=1, LT=2)
//	wdigest  uint64   graph.WeightDigest of the sampled graph
//	n        uint64   node count (must match the pool's graph on load)
//	r        uint64   community count (must match the partition)
//	samples  uint64   sample count at save time
//	per sample: comm uint32, threshold uint32, numMembers uint32,
//	            covers uint32, then per cover:
//	            node uint32, words uint32, words×uint64 mask
//
// v2 exists because v1 carried no identity: a v1 snapshot saved under a
// different seed or model passed every shape check on a same-shaped
// graph, and a subsequent DoubleCtx drew extension samples from the
// *pool's* seed — silently mixing PRNG streams. The v2 header pins
// seed, model, and the exact weighted graph, so a loaded snapshot is
// guaranteed to extend the sample sequence it claims to be a prefix of.
// v1 streams are rejected outright: they cannot be trusted.
//
// The per-sample record body is shared with the IMCS shard-range export
// (shardio.go) via poolEncoder/poolDecoder, so the two formats cannot
// drift apart.
//
// The inverted index and community frequencies are rebuilt on load.

var poolMagic = [4]byte{'I', 'M', 'C', 'P'}

const (
	poolVersion = 2
	// poolHeaderSize is the fixed v2 header length: magic, version,
	// seed, model, wdigest, n, r, samples.
	poolHeaderSize = 4 + 4 + 8 + 4 + 8 + 8 + 8 + 8
)

// poolEncoder writes the little-endian primitives and per-sample
// records shared by the IMCP (full pool) and IMCS (shard range)
// formats.
type poolEncoder struct {
	bw      *bufio.Writer
	scratch [8]byte
}

func (e *poolEncoder) put32(v uint32) error {
	binary.LittleEndian.PutUint32(e.scratch[:4], v)
	_, err := e.bw.Write(e.scratch[:4])
	return err
}

func (e *poolEncoder) put64(v uint64) error {
	binary.LittleEndian.PutUint64(e.scratch[:], v)
	_, err := e.bw.Write(e.scratch[:])
	return err
}

// encodeSample writes one sample record: comm, threshold, numMembers,
// cover count, then each cover's node, mask width, and mask words.
func (e *poolEncoder) encodeSample(smp Sample, covers []NodeCover) error {
	if err := e.put32(uint32(smp.Comm)); err != nil {
		return err
	}
	if err := e.put32(uint32(smp.Threshold)); err != nil {
		return err
	}
	if err := e.put32(uint32(smp.NumMembers)); err != nil {
		return err
	}
	if err := e.put32(uint32(len(covers))); err != nil {
		return err
	}
	for _, nc := range covers {
		if err := e.put32(uint32(nc.Node)); err != nil {
			return err
		}
		if err := e.put32(uint32(len(nc.Bits))); err != nil {
			return err
		}
		for _, word := range nc.Bits {
			if err := e.put64(word); err != nil {
				return err
			}
		}
	}
	return nil
}

// Save serializes the pool's samples and cover index in format v2. The
// header carries the pool's identity (seed, model, weight digest), so
// ReadInto can refuse a snapshot that would fork the PRNG streams.
//
// Only offset-0 pools can be saved: the IMCP header has no range field,
// so a shard pool's samples would silently be misread as the sequence
// prefix on load. Shards persist through ExportRange instead.
func (p *Pool) Save(w io.Writer) error {
	if p.offset != 0 {
		return fmt.Errorf("ric: Save requires an offset-0 pool, this shard starts at stream %d (use ExportRange)", p.offset)
	}
	enc := &poolEncoder{bw: bufio.NewWriterSize(w, 1<<20)}
	if _, err := enc.bw.Write(poolMagic[:]); err != nil {
		return fmt.Errorf("ric: write magic: %w", err)
	}
	if err := enc.put32(poolVersion); err != nil {
		return err
	}
	if err := p.encodeIdentity(enc); err != nil {
		return err
	}
	if err := enc.put64(uint64(len(p.samples))); err != nil {
		return err
	}
	// Rebuild the per-sample cover lists from the inverted index.
	covers := p.SampleCovers()
	for i, smp := range p.samples {
		if err := enc.encodeSample(smp, covers[i]); err != nil {
			return err
		}
	}
	if err := enc.bw.Flush(); err != nil {
		return fmt.Errorf("ric: flush pool: %w", err)
	}
	return nil
}

// encodeIdentity writes the shared identity block: seed, model tag,
// weight digest, node count, community count.
func (p *Pool) encodeIdentity(enc *poolEncoder) error {
	if err := enc.put64(p.seed); err != nil {
		return err
	}
	if err := enc.put32(uint32(p.model)); err != nil {
		return err
	}
	if err := enc.put64(p.g.WeightDigest()); err != nil {
		return err
	}
	if err := enc.put64(uint64(p.g.NumNodes())); err != nil {
		return err
	}
	return enc.put64(uint64(p.part.NumCommunities()))
}

// countingReader tracks how many bytes have been consumed so decode
// errors can name the exact offset of the problem.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// poolDecoder reads the primitives and per-sample records shared by the
// IMCP and IMCS formats. kind names the stream ("pool snapshot" or
// "shard export") in error messages.
type poolDecoder struct {
	cr      *countingReader
	kind    string
	scratch [8]byte
}

func newPoolDecoder(r io.Reader, kind string) *poolDecoder {
	return &poolDecoder{cr: &countingReader{r: bufio.NewReaderSize(r, 1<<20)}, kind: kind}
}

func (d *poolDecoder) get32(field string) (uint32, error) {
	if _, err := io.ReadFull(d.cr, d.scratch[:4]); err != nil {
		return 0, fmt.Errorf("ric: %s truncated reading %s: %w", d.kind, field, noEOF(err))
	}
	return binary.LittleEndian.Uint32(d.scratch[:4]), nil
}

func (d *poolDecoder) get64(field string) (uint64, error) {
	if _, err := io.ReadFull(d.cr, d.scratch[:]); err != nil {
		return 0, fmt.Errorf("ric: %s truncated reading %s: %w", d.kind, field, noEOF(err))
	}
	return binary.LittleEndian.Uint64(d.scratch[:]), nil
}

// end verifies the stream finishes exactly where the declared records
// do: a truncated-then-concatenated or otherwise corrupt file that
// still parses as a prefix would previously be accepted silently.
func (d *poolDecoder) end() error {
	if _, err := io.ReadFull(d.cr, d.scratch[:1]); err == nil {
		return fmt.Errorf("ric: %s has trailing bytes after the last sample at offset %d", d.kind, d.cr.n-1)
	} else if err != io.EOF {
		return fmt.Errorf("ric: %s read after last sample at offset %d: %w", d.kind, d.cr.n, err)
	}
	return nil
}

// checkIdentity reads the shared identity block and validates it
// against the pool: seed, model tag, and weight digest must match
// exactly — a stream taken under a different seed or diffusion model,
// or over a different weighted graph of the same shape, is rejected
// instead of silently forking the PRNG streams on the next Double.
func (p *Pool) checkIdentity(d *poolDecoder) error {
	seed, err := d.get64("seed")
	if err != nil {
		return err
	}
	if seed != p.seed {
		return fmt.Errorf("ric: %s was sampled with seed %d, pool has seed %d — loading would mix PRNG streams", d.kind, seed, p.seed)
	}
	model, err := d.get32("model")
	if err != nil {
		return err
	}
	if model != uint32(p.model) {
		return fmt.Errorf("ric: %s was sampled under model %d, pool uses model %d", d.kind, model, uint32(p.model))
	}
	wdigest, err := d.get64("weight digest")
	if err != nil {
		return err
	}
	if want := p.g.WeightDigest(); wdigest != want {
		return fmt.Errorf("ric: %s weight digest %016x does not match graph digest %016x — different edges or weights", d.kind, wdigest, want)
	}
	n, err := d.get64("node count")
	if err != nil {
		return err
	}
	if int(n) != p.g.NumNodes() {
		return fmt.Errorf("ric: %s was sampled over %d nodes, graph has %d", d.kind, n, p.g.NumNodes())
	}
	r64, err := d.get64("community count")
	if err != nil {
		return err
	}
	if int(r64) != p.part.NumCommunities() {
		return fmt.Errorf("ric: %s has %d communities, partition has %d", d.kind, r64, p.part.NumCommunities())
	}
	return nil
}

// decodeSample reads, validates, and appends one sample record. i names
// the record in error messages. Every count is validated against the
// pool's graph and partition (community range, member counts,
// thresholds, exact mask widths), so truncated or corrupt input
// surfaces as a descriptive error naming the field being read — never
// a panic.
func (p *Pool) decodeSample(d *poolDecoder, i uint64) error {
	comm, err := d.get32(fmt.Sprintf("sample %d community", i))
	if err != nil {
		return err
	}
	if int(comm) >= p.part.NumCommunities() {
		return fmt.Errorf("ric: sample %d: community %d out of range [0, %d)", i, comm, p.part.NumCommunities())
	}
	threshold, err := d.get32(fmt.Sprintf("sample %d threshold", i))
	if err != nil {
		return err
	}
	numMembers, err := d.get32(fmt.Sprintf("sample %d member count", i))
	if err != nil {
		return err
	}
	// A sample's member count is the size of its source community and
	// its threshold sits in [1, members]; the encoder can emit nothing
	// else, so anything different is corruption, not a format variant.
	if want := len(p.part.Community(int(comm)).Members); int(numMembers) != want {
		return fmt.Errorf("ric: sample %d: %d members recorded but community %d has %d", i, numMembers, comm, want)
	}
	if threshold < 1 || threshold > numMembers {
		return fmt.Errorf("ric: sample %d: threshold %d out of [1, %d members]", i, threshold, numMembers)
	}
	coverCount, err := d.get32(fmt.Sprintf("sample %d cover count", i))
	if err != nil {
		return err
	}
	if int(coverCount) > p.g.NumNodes() {
		return fmt.Errorf("ric: sample %d: %d covers exceed node count %d", i, coverCount, p.g.NumNodes())
	}
	id := int32(len(p.samples))
	p.samples = append(p.samples, Sample{
		Comm:       int32(comm),
		Threshold:  int32(threshold),
		NumMembers: int32(numMembers),
		TouchCount: int32(coverCount),
	})
	p.commFreq[comm]++
	wantWords := (uint32(numMembers) + maskWordBits - 1) / maskWordBits
	for c := uint32(0); c < coverCount; c++ {
		node, err := d.get32(fmt.Sprintf("sample %d cover %d node", i, c))
		if err != nil {
			return err
		}
		if int(node) >= p.g.NumNodes() {
			return fmt.Errorf("ric: sample %d: cover node %d out of range [0, %d)", i, node, p.g.NumNodes())
		}
		words, err := d.get32(fmt.Sprintf("sample %d cover %d mask width", i, c))
		if err != nil {
			return err
		}
		// Masks carry one bit per member, so the width is fully
		// determined; a short mask would later index out of range in
		// the solvers, a long one would corrupt union counts.
		if words != wantWords {
			return fmt.Errorf("ric: sample %d: mask of %d words for %d members (want %d)", i, words, numMembers, wantWords)
		}
		mask := make(Mask, words)
		for wi := range mask {
			word, err := d.get64(fmt.Sprintf("sample %d cover %d mask word %d", i, c, wi))
			if err != nil {
				return err
			}
			mask[wi] = word
		}
		p.index[node] = append(p.index[node], CoverEntry{Sample: id, Bits: mask})
	}
	return nil
}

// ReadInto deserializes samples written by Save into the pool, which
// must be freshly created over the same graph and partition with the
// same seed and model, and still empty. Decoding is defensive on two
// axes:
//
// Identity: the v2 header's seed, model tag, and weight digest must
// match the pool's exactly — a snapshot taken under a different seed or
// diffusion model, or over a different weighted graph of the same
// shape, is rejected instead of silently forking the PRNG streams on
// the next Double. v1 streams are rejected with an upgrade error: they
// carry no identity and cannot be trusted.
//
// Shape: every count is validated against the pool's graph and
// partition (community range, member counts, thresholds, exact mask
// widths), the stream must end exactly at the last declared sample
// (trailing bytes are corruption, not slack), and truncated or corrupt
// input surfaces as a descriptive error naming the field being read —
// never a panic.
//
// Only offset-0 pools can load a snapshot: IMCP records the sequence
// prefix [0, samples), which is not the slice a shard pool holds.
func (p *Pool) ReadInto(r io.Reader) error {
	if p.offset != 0 {
		return fmt.Errorf("ric: ReadInto requires an offset-0 pool, this shard starts at stream %d (use ImportRange)", p.offset)
	}
	if len(p.samples) != 0 {
		return fmt.Errorf("ric: ReadInto requires an empty pool, have %d samples", len(p.samples))
	}
	d := newPoolDecoder(r, "pool snapshot")
	var magic [4]byte
	if _, err := io.ReadFull(d.cr, magic[:]); err != nil {
		return fmt.Errorf("ric: pool snapshot truncated reading magic: %w", err)
	}
	if magic != poolMagic {
		return fmt.Errorf("ric: bad pool magic %q", magic)
	}
	version, err := d.get32("version")
	if err != nil {
		return err
	}
	if version == 1 {
		return fmt.Errorf("ric: pool snapshot is format v1, which carries no identity (seed/model/weights) and cannot be validated; regenerate the pool and re-save as v%d", poolVersion)
	}
	if version != poolVersion {
		return fmt.Errorf("ric: unsupported pool version %d (want %d)", version, poolVersion)
	}
	if err := p.checkIdentity(d); err != nil {
		return err
	}
	count, err := d.get64("sample count")
	if err != nil {
		return err
	}
	if count >= 1<<31 {
		return fmt.Errorf("ric: sample count %d out of range", count)
	}
	for i := uint64(0); i < count; i++ {
		if err := p.decodeSample(d, i); err != nil {
			return err
		}
	}
	return d.end()
}

// noEOF normalizes a bare io.EOF from a partial ReadFull into
// io.ErrUnexpectedEOF: inside a declared record, running out of bytes
// is always truncation, never a clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
