package ric

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Pool serialization: RIC sampling dominates end-to-end runtime on
// large instances, so a pool is worth persisting when several solver
// configurations will be compared against the same sample set, and the
// pool cache shares snapshots across requests.
//
// Layout (little endian), format v2:
//
//	magic    [4]byte  "IMCP"
//	version  uint32   (2)
//	seed     uint64   the pool's PRNG seed (sample i ← stream i)
//	model    uint32   diffusion model tag (IC=1, LT=2)
//	wdigest  uint64   graph.WeightDigest of the sampled graph
//	n        uint64   node count (must match the pool's graph on load)
//	r        uint64   community count (must match the partition)
//	samples  uint64   sample count at save time
//	per sample: comm uint32, threshold uint32, numMembers uint32,
//	            covers uint32, then per cover:
//	            node uint32, words uint32, words×uint64 mask
//
// v2 exists because v1 carried no identity: a v1 snapshot saved under a
// different seed or model passed every shape check on a same-shaped
// graph, and a subsequent DoubleCtx drew extension samples from the
// *pool's* seed — silently mixing PRNG streams. The v2 header pins
// seed, model, and the exact weighted graph, so a loaded snapshot is
// guaranteed to extend the sample sequence it claims to be a prefix of.
// v1 streams are rejected outright: they cannot be trusted.
//
// The inverted index and community frequencies are rebuilt on load.

var poolMagic = [4]byte{'I', 'M', 'C', 'P'}

const (
	poolVersion = 2
	// poolHeaderSize is the fixed v2 header length: magic, version,
	// seed, model, wdigest, n, r, samples.
	poolHeaderSize = 4 + 4 + 8 + 4 + 8 + 8 + 8 + 8
)

// Save serializes the pool's samples and cover index in format v2. The
// header carries the pool's identity (seed, model, weight digest), so
// ReadInto can refuse a snapshot that would fork the PRNG streams.
func (p *Pool) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(poolMagic[:]); err != nil {
		return fmt.Errorf("ric: write magic: %w", err)
	}
	var scratch [8]byte
	put32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	put64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := put32(poolVersion); err != nil {
		return err
	}
	if err := put64(p.seed); err != nil {
		return err
	}
	if err := put32(uint32(p.model)); err != nil {
		return err
	}
	if err := put64(p.g.WeightDigest()); err != nil {
		return err
	}
	if err := put64(uint64(p.g.NumNodes())); err != nil {
		return err
	}
	if err := put64(uint64(p.part.NumCommunities())); err != nil {
		return err
	}
	if err := put64(uint64(len(p.samples))); err != nil {
		return err
	}
	// Rebuild the per-sample cover lists from the inverted index.
	covers := p.SampleCovers()
	for i, smp := range p.samples {
		if err := put32(uint32(smp.Comm)); err != nil {
			return err
		}
		if err := put32(uint32(smp.Threshold)); err != nil {
			return err
		}
		if err := put32(uint32(smp.NumMembers)); err != nil {
			return err
		}
		if err := put32(uint32(len(covers[i]))); err != nil {
			return err
		}
		for _, nc := range covers[i] {
			if err := put32(uint32(nc.Node)); err != nil {
				return err
			}
			if err := put32(uint32(len(nc.Bits))); err != nil {
				return err
			}
			for _, word := range nc.Bits {
				if err := put64(word); err != nil {
					return err
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ric: flush pool: %w", err)
	}
	return nil
}

// countingReader tracks how many bytes have been consumed so decode
// errors can name the exact offset of the problem.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ReadInto deserializes samples written by Save into the pool, which
// must be freshly created over the same graph and partition with the
// same seed and model, and still empty. Decoding is defensive on two
// axes:
//
// Identity: the v2 header's seed, model tag, and weight digest must
// match the pool's exactly — a snapshot taken under a different seed or
// diffusion model, or over a different weighted graph of the same
// shape, is rejected instead of silently forking the PRNG streams on
// the next Double. v1 streams are rejected with an upgrade error: they
// carry no identity and cannot be trusted.
//
// Shape: every count is validated against the pool's graph and
// partition (community range, member counts, thresholds, exact mask
// widths), the stream must end exactly at the last declared sample
// (trailing bytes are corruption, not slack), and truncated or corrupt
// input surfaces as a descriptive error naming the field being read —
// never a panic.
func (p *Pool) ReadInto(r io.Reader) error {
	if len(p.samples) != 0 {
		return fmt.Errorf("ric: ReadInto requires an empty pool, have %d samples", len(p.samples))
	}
	cr := &countingReader{r: bufio.NewReaderSize(r, 1<<20)}
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return fmt.Errorf("ric: pool snapshot truncated reading magic: %w", err)
	}
	if magic != poolMagic {
		return fmt.Errorf("ric: bad pool magic %q", magic)
	}
	var scratch [8]byte
	get32 := func(field string) (uint32, error) {
		if _, err := io.ReadFull(cr, scratch[:4]); err != nil {
			return 0, fmt.Errorf("ric: pool snapshot truncated reading %s: %w", field, noEOF(err))
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	get64 := func(field string) (uint64, error) {
		if _, err := io.ReadFull(cr, scratch[:]); err != nil {
			return 0, fmt.Errorf("ric: pool snapshot truncated reading %s: %w", field, noEOF(err))
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	version, err := get32("version")
	if err != nil {
		return err
	}
	if version == 1 {
		return fmt.Errorf("ric: pool snapshot is format v1, which carries no identity (seed/model/weights) and cannot be validated; regenerate the pool and re-save as v%d", poolVersion)
	}
	if version != poolVersion {
		return fmt.Errorf("ric: unsupported pool version %d (want %d)", version, poolVersion)
	}
	seed, err := get64("seed")
	if err != nil {
		return err
	}
	if seed != p.seed {
		return fmt.Errorf("ric: pool snapshot was sampled with seed %d, pool has seed %d — loading would mix PRNG streams", seed, p.seed)
	}
	model, err := get32("model")
	if err != nil {
		return err
	}
	if model != uint32(p.model) {
		return fmt.Errorf("ric: pool snapshot was sampled under model %d, pool uses model %d", model, uint32(p.model))
	}
	wdigest, err := get64("weight digest")
	if err != nil {
		return err
	}
	if want := p.g.WeightDigest(); wdigest != want {
		return fmt.Errorf("ric: pool snapshot weight digest %016x does not match graph digest %016x — different edges or weights", wdigest, want)
	}
	n, err := get64("node count")
	if err != nil {
		return err
	}
	if int(n) != p.g.NumNodes() {
		return fmt.Errorf("ric: pool was sampled over %d nodes, graph has %d", n, p.g.NumNodes())
	}
	r64, err := get64("community count")
	if err != nil {
		return err
	}
	if int(r64) != p.part.NumCommunities() {
		return fmt.Errorf("ric: pool has %d communities, partition has %d", r64, p.part.NumCommunities())
	}
	count, err := get64("sample count")
	if err != nil {
		return err
	}
	if count >= 1<<31 {
		return fmt.Errorf("ric: sample count %d out of range", count)
	}
	for i := uint64(0); i < count; i++ {
		comm, err := get32(fmt.Sprintf("sample %d community", i))
		if err != nil {
			return err
		}
		if int(comm) >= p.part.NumCommunities() {
			return fmt.Errorf("ric: sample %d: community %d out of range [0, %d)", i, comm, p.part.NumCommunities())
		}
		threshold, err := get32(fmt.Sprintf("sample %d threshold", i))
		if err != nil {
			return err
		}
		numMembers, err := get32(fmt.Sprintf("sample %d member count", i))
		if err != nil {
			return err
		}
		// A sample's member count is the size of its source community and
		// its threshold sits in [1, members]; Save can emit nothing else,
		// so anything different is corruption, not a format variant.
		if want := len(p.part.Community(int(comm)).Members); int(numMembers) != want {
			return fmt.Errorf("ric: sample %d: %d members recorded but community %d has %d", i, numMembers, comm, want)
		}
		if threshold < 1 || threshold > numMembers {
			return fmt.Errorf("ric: sample %d: threshold %d out of [1, %d members]", i, threshold, numMembers)
		}
		coverCount, err := get32(fmt.Sprintf("sample %d cover count", i))
		if err != nil {
			return err
		}
		if int(coverCount) > p.g.NumNodes() {
			return fmt.Errorf("ric: sample %d: %d covers exceed node count %d", i, coverCount, p.g.NumNodes())
		}
		id := int32(len(p.samples))
		p.samples = append(p.samples, Sample{
			Comm:       int32(comm),
			Threshold:  int32(threshold),
			NumMembers: int32(numMembers),
			TouchCount: int32(coverCount),
		})
		p.commFreq[comm]++
		wantWords := (uint32(numMembers) + maskWordBits - 1) / maskWordBits
		for c := uint32(0); c < coverCount; c++ {
			node, err := get32(fmt.Sprintf("sample %d cover %d node", i, c))
			if err != nil {
				return err
			}
			if int(node) >= p.g.NumNodes() {
				return fmt.Errorf("ric: sample %d: cover node %d out of range [0, %d)", i, node, p.g.NumNodes())
			}
			words, err := get32(fmt.Sprintf("sample %d cover %d mask width", i, c))
			if err != nil {
				return err
			}
			// Masks carry one bit per member, so the width is fully
			// determined; a short mask would later index out of range in
			// the solvers, a long one would corrupt union counts.
			if words != wantWords {
				return fmt.Errorf("ric: sample %d: mask of %d words for %d members (want %d)", i, words, numMembers, wantWords)
			}
			mask := make(Mask, words)
			for wi := range mask {
				word, err := get64(fmt.Sprintf("sample %d cover %d mask word %d", i, c, wi))
				if err != nil {
					return err
				}
				mask[wi] = word
			}
			p.index[node] = append(p.index[node], CoverEntry{Sample: id, Bits: mask})
		}
	}
	// The stream must end exactly where the declared samples do: a
	// truncated-then-concatenated or otherwise corrupt file that still
	// parses as a prefix would previously be accepted silently.
	if _, err := io.ReadFull(cr, scratch[:1]); err == nil {
		return fmt.Errorf("ric: pool snapshot has trailing bytes after the last sample at offset %d", cr.n-1)
	} else if err != io.EOF {
		return fmt.Errorf("ric: pool snapshot read after last sample at offset %d: %w", cr.n, err)
	}
	return nil
}

// noEOF normalizes a bare io.EOF from a partial ReadFull into
// io.ErrUnexpectedEOF: inside a declared record, running out of bytes
// is always truncation, never a clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
