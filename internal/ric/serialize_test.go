package ric

import (
	"bytes"
	"strings"
	"testing"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
)

func TestPoolSerializationRoundTrip(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 3000, 11)

	var buf bytes.Buffer
	if err := pool.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The receiving pool must carry the snapshot's identity: same seed
	// (and default model) over the same graph.
	back, err := NewPool(g, part, PoolOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := back.ReadInto(&buf); err != nil {
		t.Fatal(err)
	}
	if back.NumSamples() != pool.NumSamples() {
		t.Fatalf("sample count %d -> %d", pool.NumSamples(), back.NumSamples())
	}
	for i := 0; i < pool.NumSamples(); i++ {
		if pool.Sample(i) != back.Sample(i) {
			t.Fatalf("sample %d mangled: %+v vs %+v", i, pool.Sample(i), back.Sample(i))
		}
	}
	for c := 0; c < part.NumCommunities(); c++ {
		if pool.CommunityFrequency(c) != back.CommunityFrequency(c) {
			t.Fatalf("community %d frequency changed", c)
		}
	}
	// Every evaluation must agree exactly.
	for _, seeds := range [][]graph.NodeID{{0}, {1, 3}, {0, 2, 4}, {5}} {
		if pool.CHat(seeds) != back.CHat(seeds) {
			t.Fatalf("ĉ differs for %v", seeds)
		}
		if pool.NuHat(seeds) != back.NuHat(seeds) {
			t.Fatalf("ν̂ differs for %v", seeds)
		}
	}
	// The reloaded pool keeps growing correctly — and because it has the
	// snapshot's seed, the extension continues the same sample sequence.
	if err := back.Generate(100); err != nil {
		t.Fatal(err)
	}
	if back.NumSamples() != pool.NumSamples()+100 {
		t.Fatal("post-load generation broken")
	}
}

// TestReadIntoRejectsIdentityMismatch is the v2 point: a snapshot only
// loads into a pool with the exact same sampling identity. Loading
// under a different seed or model used to succeed silently and then
// fork the PRNG streams on the next doubling.
func TestReadIntoRejectsIdentityMismatch(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 50, 11)
	var buf bytes.Buffer
	if err := pool.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("wrong seed", func(t *testing.T) {
		p, err := NewPool(g, part, PoolOptions{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		err = p.ReadInto(bytes.NewReader(good))
		if err == nil || !strings.Contains(err.Error(), "mix PRNG streams") {
			t.Fatalf("want seed-mismatch error, got %v", err)
		}
	})
	t.Run("wrong model", func(t *testing.T) {
		p, err := NewPool(g, part, PoolOptions{Seed: 11, Model: diffusion.LT})
		if err != nil {
			t.Fatal(err)
		}
		err = p.ReadInto(bytes.NewReader(good))
		if err == nil || !strings.Contains(err.Error(), "sampled under model") {
			t.Fatalf("want model-mismatch error, got %v", err)
		}
	})
	t.Run("different weights", func(t *testing.T) {
		// Same topology, one perturbed weight: shape checks all pass,
		// only the weight digest can catch it.
		b := graph.NewBuilder(6)
		for _, e := range g.Edges() {
			w := e.Weight
			if e.From == 0 && e.To == 1 {
				w += 0.125
			}
			b.AddEdge(e.From, e.To, w)
		}
		g2, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPool(g2, part, PoolOptions{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		err = p.ReadInto(bytes.NewReader(good))
		if err == nil || !strings.Contains(err.Error(), "weight digest") {
			t.Fatalf("want digest-mismatch error, got %v", err)
		}
	})
	t.Run("v1 stream", func(t *testing.T) {
		v1 := append([]byte(nil), good...)
		v1[4], v1[5], v1[6], v1[7] = 1, 0, 0, 0
		p, err := NewPool(g, part, PoolOptions{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		err = p.ReadInto(bytes.NewReader(v1))
		if err == nil || !strings.Contains(err.Error(), "format v1") {
			t.Fatalf("want v1-upgrade error, got %v", err)
		}
		if !strings.Contains(err.Error(), "re-save as v2") {
			t.Fatalf("v1 error should tell the operator what to do, got %v", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		withTail := append(append([]byte(nil), good...), 0xAB)
		p, err := NewPool(g, part, PoolOptions{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		err = p.ReadInto(bytes.NewReader(withTail))
		if err == nil || !strings.Contains(err.Error(), "trailing bytes") {
			t.Fatalf("want trailing-bytes error, got %v", err)
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Fatalf("trailing-bytes error should carry the offset, got %v", err)
		}
	})
}

func TestPoolReadIntoValidation(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 100, 3)
	var buf bytes.Buffer
	if err := pool.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Non-empty pool rejected.
	if err := pool.ReadInto(bytes.NewReader(good)); err == nil {
		t.Fatal("want non-empty error")
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	empty, err := NewPool(g, part, PoolOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.ReadInto(bytes.NewReader(bad)); err == nil {
		t.Fatal("want magic error")
	}
	// Mismatched partition (different community count).
	otherPart, err := community.New(6, [][]graph.NodeID{{0, 1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	otherPool, err := NewPool(g, otherPart, PoolOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := otherPool.ReadInto(bytes.NewReader(good)); err == nil {
		t.Fatal("want community-count error")
	}
	// Truncation.
	fresh, err := NewPool(g, part, PoolOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.ReadInto(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("want truncation error")
	}
}

// TestReadIntoRejectsCorrupt corrupts one field at a time in a valid
// encoding and asserts the decoder names the problem instead of
// accepting garbage or panicking. Offsets follow the documented v2
// layout: 52-byte header (magic 0, version 4, seed 8, model 16,
// wdigest 20, n 28, r 36, count 44), then per sample
// comm/threshold/members/covers at +0/+4/+8/+12 and the first cover's
// node/words at +16/+20.
func TestReadIntoRejectsCorrupt(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 20, 5)
	var buf bytes.Buffer
	if err := pool.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	put32 := func(b []byte, off int, v uint32) {
		b[off], b[off+1], b[off+2], b[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}

	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantSub string
	}{
		{"truncated header", func(b []byte) []byte { return b[:40] }, "truncated reading community count"},
		{"truncated mid-sample", func(b []byte) []byte { return b[:54] }, "truncated reading sample 0 community"},
		{"truncated mid-mask", func(b []byte) []byte { return b[:len(b)-3] }, "truncated"},
		{"bad version", func(b []byte) []byte { put32(b, 4, 99); return b }, "unsupported pool version 99"},
		{"v1 version", func(b []byte) []byte { put32(b, 4, 1); return b }, "format v1"},
		{"flipped seed", func(b []byte) []byte { b[8] ^= 0xff; return b }, "mix PRNG streams"},
		{"flipped model", func(b []byte) []byte { put32(b, 16, 2); return b }, "sampled under model"},
		{"flipped digest", func(b []byte) []byte { b[20] ^= 0xff; return b }, "weight digest"},
		{"community out of range", func(b []byte) []byte { put32(b, 52, 1<<30); return b }, "out of range"},
		{"zero threshold", func(b []byte) []byte { put32(b, 56, 0); return b }, "threshold 0 out of [1, 3 members]"},
		{"threshold above members", func(b []byte) []byte { put32(b, 56, 9); return b }, "threshold 9 out of [1, 3 members]"},
		{"member count mismatch", func(b []byte) []byte { put32(b, 60, 4); return b }, "members recorded but community"},
		{"cover count overflow", func(b []byte) []byte { put32(b, 64, 1<<27); return b }, "covers exceed node count"},
		{"mask width mismatch", func(b []byte) []byte { put32(b, 72, 7); return b }, "mask of 7 words for 3 members (want 1)"},
		{"absurd sample count", func(b []byte) []byte { put32(b, 44, 1<<31); put32(b, 48, 0); return b }, "sample count 2147483648 out of range"},
		{"declared samples missing", func(b []byte) []byte { put32(b, 44, 1<<20); return b }, "truncated"},
		{"trailing byte", func(b []byte) []byte { return append(b, 0) }, "trailing bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPool(g, part, PoolOptions{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			data := tc.mutate(append([]byte(nil), good...))
			err = p.ReadInto(bytes.NewReader(data))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// Exhaustive no-panic sweep: every truncation point and a bit flip
	// at every offset must decode to an error or a valid pool — never a
	// panic or a hang.
	for cut := 0; cut < len(good); cut++ {
		p, err := NewPool(g, part, PoolOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.ReadInto(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(good))
		}
	}
	for off := 0; off < len(good); off++ {
		flipped := append([]byte(nil), good...)
		flipped[off] ^= 0x10
		p, err := NewPool(g, part, PoolOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		_ = p.ReadInto(bytes.NewReader(flipped)) // error or not: just must not panic
	}
}
