package ric

import (
	"bytes"
	"testing"

	"imc/internal/community"
	"imc/internal/graph"
)

func TestPoolSerializationRoundTrip(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 3000, 11)

	var buf bytes.Buffer
	if err := pool.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := NewPool(g, part, PoolOptions{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := back.ReadInto(&buf); err != nil {
		t.Fatal(err)
	}
	if back.NumSamples() != pool.NumSamples() {
		t.Fatalf("sample count %d -> %d", pool.NumSamples(), back.NumSamples())
	}
	for i := 0; i < pool.NumSamples(); i++ {
		if pool.Sample(i) != back.Sample(i) {
			t.Fatalf("sample %d mangled: %+v vs %+v", i, pool.Sample(i), back.Sample(i))
		}
	}
	for c := 0; c < part.NumCommunities(); c++ {
		if pool.CommunityFrequency(c) != back.CommunityFrequency(c) {
			t.Fatalf("community %d frequency changed", c)
		}
	}
	// Every evaluation must agree exactly.
	for _, seeds := range [][]graph.NodeID{{0}, {1, 3}, {0, 2, 4}, {5}} {
		if pool.CHat(seeds) != back.CHat(seeds) {
			t.Fatalf("ĉ differs for %v", seeds)
		}
		if pool.NuHat(seeds) != back.NuHat(seeds) {
			t.Fatalf("ν̂ differs for %v", seeds)
		}
	}
	// The reloaded pool keeps growing correctly.
	if err := back.Generate(100); err != nil {
		t.Fatal(err)
	}
	if back.NumSamples() != pool.NumSamples()+100 {
		t.Fatal("post-load generation broken")
	}
}

func TestPoolReadIntoValidation(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 100, 3)
	var buf bytes.Buffer
	if err := pool.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Non-empty pool rejected.
	if err := pool.ReadInto(bytes.NewReader(good)); err == nil {
		t.Fatal("want non-empty error")
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	empty, err := NewPool(g, part, PoolOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.ReadInto(bytes.NewReader(bad)); err == nil {
		t.Fatal("want magic error")
	}
	// Mismatched partition (different community count).
	otherPart, err := community.New(6, [][]graph.NodeID{{0, 1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	otherPool, err := NewPool(g, otherPart, PoolOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := otherPool.ReadInto(bytes.NewReader(good)); err == nil {
		t.Fatal("want community-count error")
	}
	// Truncation.
	fresh, err := NewPool(g, part, PoolOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.ReadInto(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("want truncation error")
	}
}
