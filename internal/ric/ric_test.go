package ric

import (
	"math"
	"testing"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/xrand"
)

// exactBenefit computes c(S) exactly by enumerating all 2^m edge
// subsets — the ground truth the RIC estimator must match.
func exactBenefit(g *graph.Graph, part *community.Partition, seeds []graph.NodeID) float64 {
	edges := g.Edges()
	m := len(edges)
	if m > 20 {
		panic("exactBenefit: graph too large for enumeration")
	}
	n := g.NumNodes()
	total := 0.0
	for mask := 0; mask < 1<<m; mask++ {
		pr := 1.0
		adj := make([][]graph.NodeID, n)
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				pr *= e.Weight
				adj[e.From] = append(adj[e.From], e.To)
			} else {
				pr *= 1 - e.Weight
			}
		}
		if pr == 0 {
			continue
		}
		active := make([]bool, n)
		queue := make([]graph.NodeID, 0, n)
		for _, s := range seeds {
			if !active[s] {
				active[s] = true
				queue = append(queue, s)
			}
		}
		for head := 0; head < len(queue); head++ {
			for _, v := range adj[queue[head]] {
				if !active[v] {
					active[v] = true
					queue = append(queue, v)
				}
			}
		}
		total += pr * diffusion.CommunityBenefit(part, active)
	}
	return total
}

func buildPool(t testing.TB, g *graph.Graph, part *community.Partition, count int, seed uint64) *Pool {
	t.Helper()
	pool, err := NewPool(g, part, PoolOptions{Seed: seed})
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	if err := pool.Generate(count); err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return pool
}

// smallInstance builds a 6-node graph with two 3-node communities and
// moderate weights; every edge subset is enumerable.
func smallInstance(t testing.TB) (*graph.Graph, *community.Partition) {
	t.Helper()
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 0.4)
	b.AddEdge(1, 2, 0.6)
	b.AddEdge(0, 3, 0.5)
	b.AddEdge(3, 4, 0.7)
	b.AddEdge(4, 5, 0.3)
	b.AddEdge(2, 4, 0.2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	part, err := community.New(6, [][]graph.NodeID{{0, 1, 2}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part
}

func TestCHatMatchesExactBenefit(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 60000, 7)
	for _, seeds := range [][]graph.NodeID{{0}, {0, 3}, {1, 4}, {0, 1, 3}, {5}} {
		want := exactBenefit(g, part, seeds)
		got := pool.CHat(seeds)
		if math.Abs(got-want) > 0.06+0.05*want {
			t.Errorf("seeds %v: ĉ_R = %.4f, exact c = %.4f", seeds, got, want)
		}
	}
}

func TestSeedingWholeCommunityAlwaysInfluences(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 5000, 11)
	// Seeding every node influences every sample regardless of edges.
	all := []graph.NodeID{0, 1, 2, 3, 4, 5}
	if got := pool.CoverageCount(all); got != pool.NumSamples() {
		t.Fatalf("full seed set influenced %d/%d samples", got, pool.NumSamples())
	}
	if math.Abs(pool.CHat(all)-part.TotalBenefit()) > 1e-9 {
		t.Fatalf("ĉ_R(V) = %g, want total benefit %g", pool.CHat(all), part.TotalBenefit())
	}
}

func TestNuUpperBoundsCHat(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 20; trial++ {
		g, err := gen.RandomDirected(12, 30, 0.8, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		part, err := community.Random(12, 3, uint64(trial)+100)
		if err != nil {
			t.Fatal(err)
		}
		part.SetFractionThresholds(0.5)
		part.SetPopulationBenefits()
		pool := buildPool(t, g, part, 500, uint64(trial)+7)
		for s := 0; s < 5; s++ {
			k := rng.Intn(4) + 1
			seeds := make([]graph.NodeID, 0, k)
			for _, v := range rng.SampleK(12, k) {
				seeds = append(seeds, graph.NodeID(v))
			}
			chat, nu := pool.CHat(seeds), pool.NuHat(seeds)
			if chat > nu+1e-9 {
				t.Fatalf("trial %d seeds %v: ĉ_R = %g > ν_R = %g", trial, seeds, chat, nu)
			}
		}
	}
}

func TestLemma4ThresholdOneMeansEquality(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		g, err := gen.RandomDirected(10, 25, 0.7, uint64(trial)+50)
		if err != nil {
			t.Fatal(err)
		}
		part, err := community.Random(10, 4, uint64(trial)+60)
		if err != nil {
			t.Fatal(err)
		}
		part.SetBoundedThresholds(1)
		pool := buildPool(t, g, part, 300, uint64(trial))
		rng := xrand.New(uint64(trial))
		for s := 0; s < 5; s++ {
			seeds := []graph.NodeID{graph.NodeID(rng.Intn(10)), graph.NodeID(rng.Intn(10))}
			chat, nu := pool.CHat(seeds), pool.NuHat(seeds)
			if math.Abs(chat-nu) > 1e-9 {
				t.Fatalf("h=1 but ĉ_R=%g ≠ ν_R=%g", chat, nu)
			}
		}
	}
}

func TestStateIncrementalMatchesBatch(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 2000, 13)
	seeds := []graph.NodeID{0, 4, 2}
	st := pool.NewState()
	for _, s := range seeds {
		st.Add(s)
	}
	if got, want := pool.Scale()*float64(st.InfluencedCount()), pool.CHat(seeds); math.Abs(got-want) > 1e-12 {
		t.Fatalf("incremental %g vs batch %g", got, want)
	}
	if got, want := pool.Scale()*st.FractionalSum(), pool.NuHat(seeds); math.Abs(got-want) > 1e-9 {
		t.Fatalf("incremental ν %g vs batch %g", got, want)
	}
	// Cached counts must equal mask popcounts.
	for i := 0; i < pool.NumSamples(); i++ {
		if m := st.Covered(int32(i)); m != nil {
			if int32(m.OnesCount()) != st.CoverCount(int32(i)) {
				t.Fatalf("sample %d: cached count %d != popcount %d", i, st.CoverCount(int32(i)), m.OnesCount())
			}
		} else if st.CoverCount(int32(i)) != 0 {
			t.Fatalf("sample %d: nil cover but count %d", i, st.CoverCount(int32(i)))
		}
	}
}

func TestPoolDeterministicAcrossWorkers(t *testing.T) {
	g, part := smallInstance(t)
	p1, err := NewPool(g, part, PoolOptions{Seed: 21, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p4, err := NewPool(g, part, PoolOptions{Seed: 21, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Generate(500); err != nil {
		t.Fatal(err)
	}
	if err := p4.Generate(500); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		a, b := p1.Sample(i), p4.Sample(i)
		if a != b {
			t.Fatalf("sample %d differs across worker counts: %+v vs %+v", i, a, b)
		}
	}
	for _, seeds := range [][]graph.NodeID{{0}, {1, 3}, {2, 4, 5}} {
		if p1.CHat(seeds) != p4.CHat(seeds) {
			t.Fatalf("ĉ_R differs across worker counts for seeds %v", seeds)
		}
	}
}

func TestInfluencedMatchesPoolDistribution(t *testing.T) {
	g, part := smallInstance(t)
	seeds := []graph.NodeID{0, 3}
	pool := buildPool(t, g, part, 40000, 5)
	fromPool := pool.CHat(seeds)

	genr, err := NewGenerator(g, part, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	inSeed := make([]bool, 6)
	for _, s := range seeds {
		inSeed[s] = true
	}
	root := xrand.New(77)
	hits := 0
	const draws = 40000
	for i := 0; i < draws; i++ {
		if genr.Influenced(root.Split(uint64(i)), inSeed) {
			hits++
		}
	}
	fromStream := part.TotalBenefit() * float64(hits) / draws
	if math.Abs(fromPool-fromStream) > 0.08+0.05*fromPool {
		t.Fatalf("pool estimate %g vs streaming estimate %g", fromPool, fromStream)
	}
}

func TestFractionalInfluenceBounds(t *testing.T) {
	g, part := smallInstance(t)
	genr, err := NewGenerator(g, part, diffusion.IC)
	if err != nil {
		t.Fatal(err)
	}
	inSeed := make([]bool, 6)
	inSeed[0] = true
	root := xrand.New(3)
	for i := 0; i < 1000; i++ {
		f := genr.FractionalInfluence(root.Split(uint64(i)), inSeed)
		if f < 0 || f > 1 {
			t.Fatalf("fractional influence out of [0,1]: %g", f)
		}
	}
}

func TestGeneratorRejectsMismatchedPartition(t *testing.T) {
	g, _ := smallInstance(t)
	part, err := community.New(4, [][]graph.NodeID{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGenerator(g, part, diffusion.IC); err == nil {
		t.Fatal("want error for node-count mismatch")
	}
	if _, err := NewPool(g, part, PoolOptions{}); err == nil {
		t.Fatal("want error for node-count mismatch")
	}
}

func TestSampleCoversInvertsIndex(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 200, 9)
	covers := pool.SampleCovers()
	// Rebuild node→sample pairs from the by-sample view and compare
	// with the inverted index.
	type pair struct {
		node graph.NodeID
		s    int32
	}
	fromCovers := make(map[pair]bool)
	for sID, ncs := range covers {
		for _, nc := range ncs {
			fromCovers[pair{nc.Node, int32(sID)}] = true
		}
	}
	count := 0
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, e := range pool.Entries(v) {
			count++
			if !fromCovers[pair{v, e.Sample}] {
				t.Fatalf("entry (node %d, sample %d) missing from SampleCovers", v, e.Sample)
			}
		}
	}
	if count != len(fromCovers) {
		t.Fatalf("index has %d entries, SampleCovers has %d", count, len(fromCovers))
	}
}

func TestMembersAlwaysCoverThemselves(t *testing.T) {
	g, part := smallInstance(t)
	pool := buildPool(t, g, part, 1000, 15)
	for i := 0; i < pool.NumSamples(); i++ {
		smp := pool.Sample(i)
		members := part.Community(int(smp.Comm)).Members
		for j, m := range members {
			found := false
			for _, e := range pool.Entries(m) {
				if e.Sample == int32(i) && e.Bits.Test(j) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("sample %d: member %d does not cover itself", i, m)
			}
		}
	}
}

// TestLTCHatMatchesForwardMonteCarlo validates the LT reverse sampler
// against forward Linear Threshold simulation: both must estimate the
// same c(S).
func TestLTCHatMatchesForwardMonteCarlo(t *testing.T) {
	g, part := smallInstance(t)
	seeds := []graph.NodeID{0, 3}
	pool, err := NewPool(g, part, PoolOptions{Model: diffusion.LT, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(40000); err != nil {
		t.Fatal(err)
	}
	fromPool := pool.CHat(seeds)
	fromMC, err := diffusion.EstimateBenefit(g, part, seeds, diffusion.MCOptions{
		Iterations: 40000, Seed: 19, Model: diffusion.LT,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fromPool-fromMC) > 0.08+0.05*fromMC {
		t.Fatalf("LT: pool estimate %g vs forward MC %g", fromPool, fromMC)
	}
}

func TestLTPoolGenerates(t *testing.T) {
	g, part := smallInstance(t)
	pool, err := NewPool(g, part, PoolOptions{Model: diffusion.LT, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(500); err != nil {
		t.Fatal(err)
	}
	all := []graph.NodeID{0, 1, 2, 3, 4, 5}
	if pool.CoverageCount(all) != pool.NumSamples() {
		t.Fatal("LT: full seed set must influence every sample")
	}
	if chat := pool.CHat([]graph.NodeID{0}); chat < 0 || chat > part.TotalBenefit() {
		t.Fatalf("LT ĉ_R out of range: %g", chat)
	}
}
