//go:build amd64

package ric

import "unsafe"

// Compile-time layout pins for the structs the structlayout and
// falseshare analyzers hold to a contract. A constant index into a
// one-element array compiles only when the expression is zero, so any
// field addition or reorder that changes a pinned size breaks the
// build here — with this file naming the contract — instead of
// silently regressing sample-pool memory traffic. Sizes are the
// gc/amd64 model (the canonical layout model in internal/lint), hence
// the build tag.
var (
	// Sample is //imc:compact: root id + an offset pair into the
	// shared cover arena, 16 bytes so a million-sample pool stays in
	// 16 MB before cover storage.
	_ = [1]struct{}{}[unsafe.Sizeof(Sample{})-16]

	// CoverEntry is //imc:compact: 32 bytes, two entries per cache
	// line during cover scans.
	_ = [1]struct{}{}[unsafe.Sizeof(CoverEntry{})-32]

	// rawSample is //imc:padded to exactly one 64-byte cache line:
	// workers write interleaved slots at stride |workers|, so any size
	// drift would put two workers' slots on one line.
	_ = [1]struct{}{}[unsafe.Sizeof(rawSample{})-64]

	// Generator packs pointers first, the two int32 epoch counters
	// adjacent, then the slice headers: 184 bytes, down from 192
	// before the v6 reorder.
	_ = [1]struct{}{}[unsafe.Sizeof(Generator{})-184]
)
