package ric

import (
	"fmt"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
	"imc/internal/xrand"
)

// Generator produces RIC samples for one (graph, partition, model)
// triple. It owns per-sample scratch buffers and is therefore NOT safe
// for concurrent use — the pool creates one generator per worker.
//
//imc:compact
type Generator struct {
	g     *graph.Graph
	part  *community.Partition
	model diffusion.Model
	alias *xrand.Alias

	// Epoch counters let us "clear" the per-node markers in O(1)
	// between samples: epoch versions the collective reverse-BFS
	// markers, coverGen is bumped once per Generate so cover slots stay
	// valid across all member BFS passes of the same sample. The two
	// int32s sit adjacent so they pack into one word — splitting them
	// between the 8-byte-aligned slice headers costs a padded word each
	// (the structlayout analyzer pins the minimal layout).
	epoch    int32
	coverGen int32

	// Collective reverse-BFS scratch.
	nodeEpoch []int32
	queue     []graph.NodeID
	// liveIn[u] holds the in-neighbors of u whose edge was sampled live
	// in the current sample's deterministic subgraph. Entries are reset
	// lazily via resetNodes.
	liveIn     [][]graph.NodeID
	resetNodes []graph.NodeID

	// Per-member BFS scratch (cover-slot assignment).
	coverEpoch []int32
	coverSlot  []int32
}

// NewGenerator builds a generator. Community selection follows the
// paper's ρ distribution: Pr[C_i] = b_i / b.
func NewGenerator(g *graph.Graph, part *community.Partition, model diffusion.Model) (*Generator, error) {
	if g.NumNodes() != part.NumNodes() {
		return nil, fmt.Errorf("ric: graph has %d nodes but partition covers %d", g.NumNodes(), part.NumNodes())
	}
	if model == 0 {
		model = diffusion.IC
	}
	weights := make([]float64, part.NumCommunities())
	for i := range weights {
		weights[i] = part.Community(i).Benefit
	}
	n := g.NumNodes()
	return &Generator{
		g:          g,
		part:       part,
		model:      model,
		alias:      xrand.NewAlias(weights),
		nodeEpoch:  make([]int32, n),
		liveIn:     make([][]graph.NodeID, n),
		coverEpoch: make([]int32, n),
		coverSlot:  make([]int32, n),
	}, nil
}

// Generate draws one RIC sample (paper Alg. 1): select a source
// community, reverse-BFS a deterministic subgraph, and record each
// touching node's member coverage.
//
// Allocation contract: every node the collective BFS explores reaches
// at least one member (the BFS walks reverse live edges starting FROM
// the members), so the sample's cover set is exactly gen.resetNodes.
// That makes the footprint exact — one node slice, one mask-header
// slice, and one bit slab carved into per-node masks: three
// allocations per sample, all retained by the pool, none wasted.
//
//imc:hotpath
func (gen *Generator) Generate(rng *xrand.RNG) rawSample {
	commIdx, members := gen.collectiveBFS(rng)
	comm := gen.part.Community(commIdx)
	gen.coverGen++

	numMembers := len(members)
	touch := len(gen.resetNodes)
	words := (numMembers + maskWordBits - 1) / maskWordBits
	slab := make([]uint64, touch*words)
	coverNodes := make([]graph.NodeID, 0, touch)
	coverBits := make([]Mask, 0, touch)
	// Hoist the scratch state out of the pointer: the BFS bound becomes
	// a local length (one bounds proof per scan, no per-iteration field
	// reload through gen) and the epoch tables index without re-reading
	// the headers.
	queue := gen.queue
	nodeEpoch := gen.nodeEpoch
	coverEpoch := gen.coverEpoch
	coverSlot := gen.coverSlot
	liveIn := gen.liveIn
	coverGen := gen.coverGen
	for j, m := range members {
		gen.epoch++
		epoch := gen.epoch
		queue = queue[:0]
		queue = append(queue, m)
		nodeEpoch[m] = epoch
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			slot := coverSlot[v]
			if coverEpoch[v] != coverGen {
				slot = int32(len(coverNodes))
				coverNodes = append(coverNodes, v)
				coverBits = append(coverBits, Mask(slab[:words:words]))
				slab = slab[words:]
				coverEpoch[v] = coverGen
				coverSlot[v] = slot
			}
			coverBits[slot].set(j)
			for _, w := range liveIn[v] {
				if nodeEpoch[w] != epoch {
					nodeEpoch[w] = epoch
					queue = append(queue, w)
				}
			}
		}
	}
	gen.queue = queue
	gen.release()
	return rawSample{
		comm:       int32(commIdx),
		threshold:  int32(comm.Threshold),
		numMembers: int32(numMembers),
		coverNodes: coverNodes,
		coverBits:  coverBits,
	}
}

// Influenced draws one RIC sample and reports whether the seed set
// (given as an n-length membership slice) influences it, without
// materializing the cover index. This is the hot path of the Estimate
// procedure (paper Alg. 6).
//
//imc:hotpath
func (gen *Generator) Influenced(rng *xrand.RNG, inSeed []bool) bool {
	commIdx, members := gen.collectiveBFS(rng)
	comm := gen.part.Community(commIdx)
	need := comm.Threshold
	hit := 0
	for _, m := range members {
		if gen.memberReachedBy(m, inSeed) {
			hit++
			if hit >= need {
				gen.release()
				return true
			}
		}
	}
	gen.release()
	return false
}

// FractionalInfluence draws one RIC sample and returns
// min(|I_g(S)|/h_g, 1) — the fractional statistic whose expectation is
// ν(S)/b (paper eq. 6). Used by the ν-guided stop rule.
//
//imc:hotpath
func (gen *Generator) FractionalInfluence(rng *xrand.RNG, inSeed []bool) float64 {
	commIdx, members := gen.collectiveBFS(rng)
	comm := gen.part.Community(commIdx)
	hit := 0
	for _, m := range members {
		if gen.memberReachedBy(m, inSeed) {
			hit++
			if hit >= comm.Threshold {
				break
			}
		}
	}
	gen.release()
	frac := float64(hit) / float64(comm.Threshold)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// memberReachedBy BFSes backwards from one member over the live
// subgraph, reporting whether any seed node reaches the member.
//
//imc:hotpath
func (gen *Generator) memberReachedBy(m graph.NodeID, inSeed []bool) bool {
	gen.epoch++
	epoch := gen.epoch
	nodeEpoch := gen.nodeEpoch
	liveIn := gen.liveIn
	queue := gen.queue[:0]
	queue = append(queue, m)
	nodeEpoch[m] = epoch
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if inSeed[v] {
			gen.queue = queue // keep the grown capacity for the next draw
			return true
		}
		for _, w := range liveIn[v] {
			if nodeEpoch[w] != epoch {
				nodeEpoch[w] = epoch
				queue = append(queue, w)
			}
		}
	}
	gen.queue = queue
	return false
}

// collectiveBFS performs Alg. 1's shared backward BFS: pick the source
// community, then explore every path that could activate any member,
// deciding each edge's live state exactly once. On return gen.liveIn
// holds the sampled deterministic subgraph restricted to the explored
// region, and gen.resetNodes lists the nodes to clean up.
//
//imc:hotpath
func (gen *Generator) collectiveBFS(rng *xrand.RNG) (int, []graph.NodeID) {
	commIdx := gen.alias.Draw(rng)
	members := gen.part.Community(commIdx).Members

	gen.epoch++
	epoch := gen.epoch
	nodeEpoch := gen.nodeEpoch
	liveIn := gen.liveIn
	queue := gen.queue[:0]
	resetNodes := gen.resetNodes[:0]
	for _, m := range members {
		if nodeEpoch[m] != epoch {
			nodeEpoch[m] = epoch
			queue = append(queue, m)
		}
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		resetNodes = append(resetNodes, u)
		switch gen.model {
		case diffusion.LT:
			gen.sampleInEdgesLT(u, rng)
		default:
			gen.sampleInEdgesIC(u, rng)
		}
		for _, v := range liveIn[u] {
			if nodeEpoch[v] != epoch {
				nodeEpoch[v] = epoch
				queue = append(queue, v)
			}
		}
	}
	gen.queue = queue
	gen.resetNodes = resetNodes
	return commIdx, members
}

// sampleInEdgesIC decides each incoming edge of u independently with its
// own probability (Independent Cascade).
//
//imc:hotpath
func (gen *Generator) sampleInEdgesIC(u graph.NodeID, rng *xrand.RNG) {
	froms, ws, _ := gen.g.InNeighbors(u)
	ws = ws[:len(froms)] // one shared bounds proof for the parallel scan
	live := gen.liveIn[u][:0]
	for i, v := range froms {
		if rng.Bernoulli(ws[i]) {
			live = append(live, v)
		}
	}
	gen.liveIn[u] = live
}

// sampleInEdgesLT picks at most one live in-edge for u, chosen with
// probability proportional to edge weight and total probability
// min(Σw, 1) — the standard reverse construction for the Linear
// Threshold model.
//
//imc:hotpath
func (gen *Generator) sampleInEdgesLT(u graph.NodeID, rng *xrand.RNG) {
	froms, ws, _ := gen.g.InNeighbors(u)
	ws = ws[:len(froms)] // one shared bounds proof for the parallel scan
	live := gen.liveIn[u][:0]
	total := 0.0
	for _, w := range ws {
		total += w
	}
	if total > 0 {
		draw := rng.Float64()
		if total > 1 {
			draw *= total
		}
		acc := 0.0
		for i, v := range froms {
			acc += ws[i]
			if draw < acc {
				live = append(live, v)
				break
			}
		}
	}
	gen.liveIn[u] = live
}

// release clears the live adjacency lists touched by the last sample.
func (gen *Generator) release() {
	for _, u := range gen.resetNodes {
		gen.liveIn[u] = gen.liveIn[u][:0]
	}
	gen.resetNodes = gen.resetNodes[:0]
}
