package ric

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// buildShard generates global samples [lo, hi) in an offset pool — the
// worker side of the distributed runtime.
func buildShard(t testing.TB, lo, hi int, seed uint64) *Pool {
	t.Helper()
	g, part := smallInstance(t)
	p, err := NewPool(g, part, PoolOptions{Seed: seed, Offset: lo})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnsureCtx(context.Background(), hi-lo); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestOffsetPoolMatchesFullPoolSlice is the shard determinism pin:
// an offset pool generating global samples [lo, hi) must hold exactly
// the [lo, hi) slice of a full pool's sequence, because local sample j
// is drawn from PRNG stream offset+j.
func TestOffsetPoolMatchesFullPoolSlice(t *testing.T) {
	const theta, seed = 120, 17
	g, part := smallInstance(t)
	full := buildPool(t, g, part, theta, seed)
	fullCovers := full.SampleCovers()

	for _, rng := range [][2]int{{0, 40}, {40, 90}, {90, theta}, {37, 38}} {
		lo, hi := rng[0], rng[1]
		shard := buildShard(t, lo, hi, seed)
		if shard.NumSamples() != hi-lo {
			t.Fatalf("[%d,%d): shard has %d samples", lo, hi, shard.NumSamples())
		}
		shardCovers := shard.SampleCovers()
		for j := 0; j < hi-lo; j++ {
			want, got := full.Sample(lo+j), shard.Sample(j)
			if want != got {
				t.Fatalf("[%d,%d): sample %d differs: full %+v shard %+v", lo, hi, lo+j, want, got)
			}
			wc, gc := fullCovers[lo+j], shardCovers[j]
			if len(wc) != len(gc) {
				t.Fatalf("[%d,%d): sample %d cover count differs: %d vs %d", lo, hi, lo+j, len(wc), len(gc))
			}
			for k := range wc {
				if wc[k].Node != gc[k].Node || !bytes.Equal(maskBytes(wc[k].Bits), maskBytes(gc[k].Bits)) {
					t.Fatalf("[%d,%d): sample %d cover %d differs", lo, hi, lo+j, k)
				}
			}
		}
	}
}

func maskBytes(m Mask) []byte {
	out := make([]byte, 0, len(m)*8)
	for _, w := range m {
		for s := 0; s < 64; s += 8 {
			out = append(out, byte(w>>s))
		}
	}
	return out
}

// TestSpliceShardsMatchesFullGeneration is the worker-count
// independence pin at the pool layer: exporting disjoint ranges from
// N ∈ {1, 2, 4} offset pools and splicing them in order into one
// offset-0 pool yields Save bytes identical to single-process
// generation, regardless of N.
func TestSpliceShardsMatchesFullGeneration(t *testing.T) {
	const theta, seed = 160, 23
	g, part := smallInstance(t)
	full := buildPool(t, g, part, theta, seed)
	var want bytes.Buffer
	if err := full.Save(&want); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2, 4} {
		spliced, err := NewPool(g, part, PoolOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < n; w++ {
			lo := w * theta / n
			hi := (w + 1) * theta / n
			shard := buildShard(t, lo, hi, seed)
			var buf bytes.Buffer
			if err := shard.ExportRange(&buf, lo, hi); err != nil {
				t.Fatalf("N=%d worker %d: ExportRange: %v", n, w, err)
			}
			gotLo, gotHi, err := spliced.ImportRange(&buf)
			if err != nil {
				t.Fatalf("N=%d worker %d: ImportRange: %v", n, w, err)
			}
			if gotLo != lo || gotHi != hi {
				t.Fatalf("N=%d worker %d: imported [%d,%d), want [%d,%d)", n, w, gotLo, gotHi, lo, hi)
			}
		}
		var got bytes.Buffer
		if err := spliced.Save(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("N=%d: spliced pool serializes differently from single-process generation", n)
		}
	}
}

// TestImportRangeRejectsGapsAndOverlap: ranges must splice contiguously
// — a gap or overlap means the coordinator mis-assigned or double-
// applied a shard, and accepting it would silently corrupt estimates.
func TestImportRangeRejectsGapsAndOverlap(t *testing.T) {
	const seed = 31
	g, part := smallInstance(t)
	dst, err := NewPool(g, part, PoolOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	shard := buildShard(t, 0, 30, seed)
	var first bytes.Buffer
	if err := shard.ExportRange(&first, 0, 30); err != nil {
		t.Fatal(err)
	}
	firstBytes := first.Bytes()
	if _, _, err := dst.ImportRange(bytes.NewReader(firstBytes)); err != nil {
		t.Fatal(err)
	}

	// Re-applying the same range overlaps.
	if _, _, err := dst.ImportRange(bytes.NewReader(firstBytes)); err == nil ||
		!strings.Contains(err.Error(), "gap-free") {
		t.Fatalf("overlapping range accepted: %v", err)
	}

	// Skipping ahead leaves a gap.
	later := buildShard(t, 60, 90, seed)
	var gap bytes.Buffer
	if err := later.ExportRange(&gap, 60, 90); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dst.ImportRange(&gap); err == nil ||
		!strings.Contains(err.Error(), "gap-free") {
		t.Fatalf("gapped range accepted: %v", err)
	}
}

// TestImportRangeRejectsIdentityMismatch: a shard export sampled under
// a different seed must be refused, exactly like IMCP snapshots.
func TestImportRangeRejectsIdentityMismatch(t *testing.T) {
	g, part := smallInstance(t)
	shard := buildShard(t, 0, 10, 5)
	var buf bytes.Buffer
	if err := shard.ExportRange(&buf, 0, 10); err != nil {
		t.Fatal(err)
	}
	other, err := NewPool(g, part, PoolOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := other.ImportRange(&buf); err == nil ||
		!strings.Contains(err.Error(), "mix PRNG streams") {
		t.Fatalf("cross-seed shard accepted: %v", err)
	}
}

// TestImportRangeRejectsCorruption: truncation and trailing bytes
// surface as descriptive errors, never panics.
func TestImportRangeRejectsCorruption(t *testing.T) {
	g, part := smallInstance(t)
	shard := buildShard(t, 0, 20, 3)
	var buf bytes.Buffer
	if err := shard.ExportRange(&buf, 0, 20); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	fresh := func() *Pool {
		p, err := NewPool(g, part, PoolOptions{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, _, err := fresh().ImportRange(bytes.NewReader(good[:len(good)-3])); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated export accepted: %v", err)
	}
	if _, _, err := fresh().ImportRange(bytes.NewReader(append(append([]byte{}, good...), 0))); err == nil ||
		!strings.Contains(err.Error(), "trailing bytes") {
		t.Fatalf("trailing byte accepted: %v", err)
	}
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, _, err := fresh().ImportRange(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "shard magic") {
		t.Fatalf("bad magic accepted: %v", err)
	}
}

// TestShardPoolRefusesPrefixFormats: IMCP Save/ReadInto carry no range,
// so a shard pool must refuse them rather than masquerade as a prefix.
func TestShardPoolRefusesPrefixFormats(t *testing.T) {
	shard := buildShard(t, 10, 20, 7)
	var buf bytes.Buffer
	if err := shard.Save(&buf); err == nil || !strings.Contains(err.Error(), "ExportRange") {
		t.Fatalf("shard pool Save accepted: %v", err)
	}
	g, part := smallInstance(t)
	empty, err := NewPool(g, part, PoolOptions{Seed: 7, Offset: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.ReadInto(bytes.NewReader(nil)); err == nil || !strings.Contains(err.Error(), "ImportRange") {
		t.Fatalf("shard pool ReadInto accepted: %v", err)
	}
	if _, err := NewPool(g, part, PoolOptions{Seed: 7, Offset: -1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}
