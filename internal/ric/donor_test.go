package ric

import (
	"bytes"
	"context"
	"testing"

	"imc/internal/diffusion"
	"imc/internal/graph"
)

// TestDonorExtendMatchesGeneration is the determinism pin behind the
// pool cache: over the same (graph, weights, partition, model, seed),
// generating 2Θ samples from scratch and loading a cached Θ-sample
// snapshot then doubling must produce byte-identical pools. Sample i is
// always drawn from PRNG stream i, so where a sample comes from (donor
// adoption vs generation) can never change what it is.
func TestDonorExtendMatchesGeneration(t *testing.T) {
	g, part := smallInstance(t)
	const theta, seed = 200, 21
	cold := buildPool(t, g, part, 2*theta, seed)

	// The "cache": a Θ-sample snapshot round-tripped through Save/ReadInto,
	// exactly as poolcache stores and reloads it.
	half := buildPool(t, g, part, theta, seed)
	var snap bytes.Buffer
	if err := half.Save(&snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewPool(g, part, PoolOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.ReadInto(&snap); err != nil {
		t.Fatal(err)
	}
	donor := NewDonor(loaded)

	// The warm path: adopt the cached Θ, generate the second Θ.
	warm, err := NewPool(g, part, PoolOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := donor.ExtendTo(warm, 2*theta)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != theta {
		t.Fatalf("adopted %d samples, want %d", adopted, theta)
	}
	if err := warm.EnsureCtx(context.Background(), 2*theta); err != nil {
		t.Fatal(err)
	}

	var coldBytes, warmBytes bytes.Buffer
	if err := cold.Save(&coldBytes); err != nil {
		t.Fatal(err)
	}
	if err := warm.Save(&warmBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBytes.Bytes(), warmBytes.Bytes()) {
		t.Fatal("cold 2Θ pool and cached-Θ-then-doubled pool serialize differently")
	}
	for _, seeds := range [][]graph.NodeID{{0}, {1, 4}, {0, 2, 5}} {
		if cold.CHat(seeds) != warm.CHat(seeds) {
			t.Fatalf("ĉ differs for %v", seeds)
		}
		if cold.NuHat(seeds) != warm.NuHat(seeds) {
			t.Fatalf("ν̂ differs for %v", seeds)
		}
	}
}

// TestDonorExtendPartial: a donor smaller than the target supplies what
// it has; EnsureCtx generates the rest; repeated ExtendTo calls during
// a doubling schedule are no-ops once the donor is exhausted.
func TestDonorExtendPartial(t *testing.T) {
	g, part := smallInstance(t)
	donor := NewDonor(buildPool(t, g, part, 30, 9))
	p, err := NewPool(g, part, PoolOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := donor.ExtendTo(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 30 {
		t.Fatalf("adopted %d, want 30", adopted)
	}
	if err := p.EnsureCtx(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if p.NumSamples() != 100 {
		t.Fatalf("pool has %d samples, want 100", p.NumSamples())
	}
	adopted, err = donor.ExtendTo(p, 200)
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 0 {
		t.Fatalf("exhausted donor adopted %d samples", adopted)
	}
	// The mixed pool still matches pure generation.
	pure := buildPool(t, g, part, 100, 9)
	var a, b bytes.Buffer
	if err := pure.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("donor-fed pool diverged from pure generation")
	}
}

// TestDonorRejectsMismatchedIdentity: adoption across seed, model, or
// instance boundaries is refused — splicing samples from a different
// stream family would silently corrupt estimates.
func TestDonorRejectsMismatchedIdentity(t *testing.T) {
	g, part := smallInstance(t)
	donor := NewDonor(buildPool(t, g, part, 10, 9))

	wrongSeed, err := NewPool(g, part, PoolOptions{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.ExtendTo(wrongSeed, 10); err == nil {
		t.Fatal("donor fed a pool with a different seed")
	}

	wrongModel, err := NewPool(g, part, PoolOptions{Seed: 9, Model: diffusion.LT})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.ExtendTo(wrongModel, 10); err == nil {
		t.Fatal("donor fed a pool with a different model")
	}

	g2, part2 := smallInstance(t) // equal content, distinct objects
	other, err := NewPool(g2, part2, PoolOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.ExtendTo(other, 10); err == nil {
		t.Fatal("donor fed a pool over different instance objects")
	}
}
