package ric

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/graph"
	"imc/internal/xrand"
)

// ctxPollBatch is how many samples a worker draws between cooperative
// ctx.Err() polls. Polling per batch — never per node — keeps the
// cancellation check off the sampling hot path; a poll costs one atomic
// load, so a batch of 1024 makes the overhead unmeasurable while still
// bounding cancellation latency to ~1k samples per worker.
const ctxPollBatch = 1024

// Pool is a growing collection R of RIC samples together with the
// inverted cover index (node → samples it touches, with member masks)
// that every MAXR solver consumes.
//
// Generation is deterministic in the pool's seed: sample i is always
// drawn from PRNG stream i, no matter how many workers participate, so
// doubling the pool extends — never reshuffles — the sample sequence.
type Pool struct {
	g       *graph.Graph         //imc:guardedby immutable
	part    *community.Partition //imc:guardedby immutable
	model   diffusion.Model      //imc:guardedby immutable
	root    *xrand.RNG           //imc:guardedby immutable
	seed    uint64               //imc:guardedby immutable
	workers int                  //imc:guardedby immutable

	// The sample state is single-writer by contract — GenerateCtx and
	// ReadInto own it exclusively, then readers share it frozen (the
	// sharemut analyzer polices that boundary) — so it carries no guard
	// annotation.
	samples  []Sample
	index    [][]CoverEntry
	commFreq []int // samples per source community
}

// PoolOptions configures pool construction.
type PoolOptions struct {
	// Model selects IC (default) or LT reverse sampling.
	Model diffusion.Model
	// Seed drives all sample randomness.
	Seed uint64
	// Workers bounds generation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// NewPool creates an empty pool over (g, part).
func NewPool(g *graph.Graph, part *community.Partition, opts PoolOptions) (*Pool, error) {
	if g.NumNodes() != part.NumNodes() {
		return nil, fmt.Errorf("ric: graph has %d nodes but partition covers %d", g.NumNodes(), part.NumNodes())
	}
	if opts.Model == 0 {
		opts.Model = diffusion.IC
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		g:        g,
		part:     part,
		model:    opts.Model,
		root:     xrand.New(opts.Seed),
		seed:     opts.Seed,
		workers:  workers,
		index:    make([][]CoverEntry, g.NumNodes()),
		commFreq: make([]int, part.NumCommunities()),
	}, nil
}

// Generate draws count additional samples and folds them into the pool.
func (p *Pool) Generate(count int) error {
	return p.GenerateCtx(context.Background(), count)
}

// GenerateCtx draws count additional samples and folds them into the
// pool, polling ctx between sample batches. On cancellation the pool is
// left exactly as it was — no partial batch is folded in — so a
// completed call is byte-identical to the ctx-free path: the check
// never touches the PRNG streams.
//
//imc:longrun
func (p *Pool) GenerateCtx(ctx context.Context, count int) error {
	if count <= 0 {
		return errors.New("ric: sample count must be positive")
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	base := len(p.samples)
	raws := make([]rawSample, count)
	workers := p.workers
	if workers > count {
		workers = count
	}
	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
		// abort is the shared fast-fail flag: the first worker to hit an
		// error (or observe cancellation) raises it, and every other
		// worker checks it at the same batch boundary as the ctx poll, so
		// one failure stops the whole generation within ~ctxPollBatch
		// samples per worker instead of letting the survivors sample the
		// full count to completion. A completed (error-free) run never
		// observes the flag, so its output stays byte-identical.
		abort atomic.Bool
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		abort.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen, err := NewGenerator(p.g, p.part, p.model)
			if err != nil {
				fail(err)
				return
			}
			var rng xrand.RNG
			drawn := 0
			for i := w; i < count; i += workers {
				if drawn&(ctxPollBatch-1) == 0 {
					if abort.Load() {
						return
					}
					if cerr := ctx.Err(); cerr != nil {
						fail(cerr)
						return
					}
				}
				drawn++
				p.root.SplitInto(uint64(base+i), &rng)
				raws[i] = gen.Generate(&rng)
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Pre-grow the sample store to its exact post-fold length: the fold
	// appends once per raw, so growing up front pays one reallocation
	// instead of log2(count) doubling copies (presize contract).
	if free := cap(p.samples) - base; free < count {
		grown := make([]Sample, base, base+count)
		copy(grown, p.samples)
		p.samples = grown
	}
	for i, raw := range raws {
		id := int32(base + i)
		p.samples = append(p.samples, Sample{
			Comm:       raw.comm,
			Threshold:  raw.threshold,
			NumMembers: raw.numMembers,
			TouchCount: int32(len(raw.coverNodes)),
		})
		p.commFreq[raw.comm]++
		for j, v := range raw.coverNodes {
			p.index[v] = append(p.index[v], CoverEntry{Sample: id, Bits: raw.coverBits[j]})
		}
	}
	return nil
}

// Double doubles the pool size (the IMCAF stop-and-stare schedule).
func (p *Pool) Double() error {
	return p.DoubleCtx(context.Background())
}

// DoubleCtx doubles the pool size, polling ctx between sample batches.
//
//imc:longrun
func (p *Pool) DoubleCtx(ctx context.Context) error {
	n := len(p.samples)
	if n == 0 {
		return errors.New("ric: cannot double an empty pool")
	}
	return p.GenerateCtx(ctx, n)
}

// EnsureCtx grows the pool to at least target samples, generating only
// the missing tail. A pool already at or past target is left untouched.
// Because sample i is always drawn from PRNG stream i, the resulting
// pool is byte-identical to one generated in any other step pattern —
// EnsureCtx is how cache-warmed pools and cold pools converge on the
// same sample sequence.
//
//imc:longrun
func (p *Pool) EnsureCtx(ctx context.Context, target int) error {
	if target <= len(p.samples) {
		return ctx.Err()
	}
	return p.GenerateCtx(ctx, target-len(p.samples))
}

// NumSamples returns |R|.
func (p *Pool) NumSamples() int { return len(p.samples) }

// Sample returns sample i's metadata.
func (p *Pool) Sample(i int) Sample { return p.samples[i] }

// Entries returns the cover entries of node v (samples v touches). The
// slice aliases pool storage; treat it as read-only.
func (p *Pool) Entries(v graph.NodeID) []CoverEntry { return p.index[v] }

// TouchCount returns the number of samples node v touches — MAF's
// node-frequency statistic.
func (p *Pool) TouchCount(v graph.NodeID) int { return len(p.index[v]) }

// CommunityFrequency returns how many samples were sourced from
// community c — MAF's community-frequency statistic.
func (p *Pool) CommunityFrequency(c int) int { return p.commFreq[c] }

// Partition returns the community partition the pool samples against.
func (p *Pool) Partition() *community.Partition { return p.part }

// Graph returns the underlying social graph.
func (p *Pool) Graph() *graph.Graph { return p.g }

// Model returns the propagation model used for sampling.
func (p *Pool) Model() diffusion.Model { return p.model }

// Seed returns the seed the pool's PRNG streams derive from. Sample i
// is always drawn from stream i of this seed, so two pools with equal
// seeds over the same instance generate identical sample sequences —
// the property checkpoint/resume relies on to validate that a restored
// pool will extend, not fork, an interrupted run.
func (p *Pool) Seed() uint64 { return p.seed }

// State carries incremental coverage bookkeeping for one seed set over
// one pool: the union member-mask per touched sample. It is the shared
// substrate of every evaluator and greedy solver.
type State struct {
	pool    *Pool
	cover   []Mask  // per sample, nil until touched
	count   []int32 // cached popcount of cover, valid where cover != nil
	touched []int32 // samples with non-nil cover
	seeds   []graph.NodeID
	arena   []uint64 // chunked backing store cover masks are carved from
}

// arenaChunkWords sizes each arena chunk (8 KiB). Masks are a handful of
// words each, so one chunk serves hundreds of newly touched samples
// before the next allocation.
const arenaChunkWords = 1024

// carve returns a zeroed w-word mask backed by the state's arena,
// allocating a fresh chunk only when the current one runs dry. Carved
// masks live as long as the State; the arena is never reclaimed. The
// chunk make below is the arena's whole point — one allocation
// amortized over the hundreds of masks carved from it — and it sits at
// depth 0 of this function, which the hot-path contract permits; the
// annotation makes carve a checked boundary instead of an exception.
//
//imc:hotpath
func (s *State) carve(w int) Mask {
	if len(s.arena) < w {
		chunk := arenaChunkWords
		if chunk < w {
			chunk = w
		}
		s.arena = make([]uint64, chunk)
	}
	m := Mask(s.arena[:w:w])
	s.arena = s.arena[w:]
	return m
}

// NewState returns an empty coverage state for the pool. touched gets
// its exact final capacity up front: a sample index is appended at most
// once (the append is guarded by cover[i] == nil, which flips non-nil
// in the same branch), so the accumulator can never outgrow one entry
// per sample and Add never reallocates it.
func (p *Pool) NewState() *State {
	return &State{
		pool:    p,
		cover:   make([]Mask, len(p.samples)),
		count:   make([]int32, len(p.samples)),
		touched: make([]int32, 0, len(p.samples)),
	}
}

// Add incorporates seed v into the state. Newly touched samples get
// their mask carved from the state's arena instead of a per-sample
// Clone — one chunk allocation amortized over hundreds of samples.
//
//imc:hotpath
func (s *State) Add(v graph.NodeID) {
	s.seeds = append(s.seeds, v)
	for _, e := range s.pool.index[v] {
		if s.cover[e.Sample] == nil {
			m := s.carve(len(e.Bits))
			copy(m, e.Bits)
			s.cover[e.Sample] = m
			s.count[e.Sample] = int32(e.Bits.OnesCount())
			s.touched = append(s.touched, e.Sample)
			continue
		}
		e.Bits.OrInto(s.cover[e.Sample])
		s.count[e.Sample] = int32(s.cover[e.Sample].OnesCount())
	}
}

// CoverCount returns |I_g(S)| for sample i under the current seed set.
func (s *State) CoverCount(i int32) int32 {
	if s.cover[i] == nil {
		return 0
	}
	return s.count[i]
}

// Seeds returns the seeds added so far (shared slice; read-only).
func (s *State) Seeds() []graph.NodeID { return s.seeds }

// Covered returns the current member mask for sample i (nil if the seed
// set touches no member of that sample).
func (s *State) Covered(i int32) Mask { return s.cover[i] }

// InfluencedCount returns the number of pool samples the current seed
// set influences (|I_g(S)| ≥ h_g).
func (s *State) InfluencedCount() int {
	count := 0
	for _, i := range s.touched {
		if s.count[i] >= s.pool.samples[i].Threshold {
			count++
		}
	}
	return count
}

// FractionalSum returns Σ_g min(|I_g(S)|/h_g, 1) over the pool.
func (s *State) FractionalSum() float64 {
	total := 0.0
	for _, i := range s.touched {
		frac := float64(s.count[i]) / float64(s.pool.samples[i].Threshold)
		if frac > 1 {
			frac = 1
		}
		total += frac
	}
	return total
}

// NodeCover pairs a node with its member-coverage mask in one sample —
// the per-sample view of the inverted index, consumed by the BT solver.
type NodeCover struct {
	Node graph.NodeID
	Bits Mask
}

// SampleCovers materializes the sample → covering-nodes view of the
// inverted index (masks are shared with the index, treat as read-only).
// The view reflects the pool at call time; regenerate after Generate.
func (p *Pool) SampleCovers() [][]NodeCover {
	out := make([][]NodeCover, len(p.samples))
	for i := range p.samples {
		out[i] = make([]NodeCover, 0, 4)
	}
	for v := range p.index {
		for _, e := range p.index[v] {
			out[e.Sample] = append(out[e.Sample], NodeCover{Node: graph.NodeID(v), Bits: e.Bits})
		}
	}
	return out
}

// CHat evaluates the paper's ĉ_R(S) = (b/|R|)·Σ X_g(S) for an explicit
// seed set.
func (p *Pool) CHat(seeds []graph.NodeID) float64 {
	if len(p.samples) == 0 {
		return 0
	}
	st := p.NewState()
	for _, v := range seeds {
		st.Add(v)
	}
	return p.scale() * float64(st.InfluencedCount())
}

// NuHat evaluates the submodular upper bound ν_R(S) (paper eq. 7).
func (p *Pool) NuHat(seeds []graph.NodeID) float64 {
	if len(p.samples) == 0 {
		return 0
	}
	st := p.NewState()
	for _, v := range seeds {
		st.Add(v)
	}
	return p.scale() * st.FractionalSum()
}

// CoverageCount returns the raw number of samples influenced by seeds.
func (p *Pool) CoverageCount(seeds []graph.NodeID) int {
	st := p.NewState()
	for _, v := range seeds {
		st.Add(v)
	}
	return st.InfluencedCount()
}

// scale is b/|R|: one influenced sample's contribution to ĉ_R.
//
//imc:pure
func (p *Pool) scale() float64 {
	return p.part.TotalBenefit() / float64(len(p.samples))
}

// Scale exposes b/|R| for solvers that report benefits.
func (p *Pool) Scale() float64 { return p.scale() }
