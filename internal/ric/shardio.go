package ric

import (
	"bufio"
	"fmt"
	"io"
)

// Shard-range serialization: the distributed runtime (internal/shard)
// partitions the global sample sequence [0, Θ) into disjoint ranges,
// has each worker generate its range in an offset pool, and ships the
// ranges back to the coordinator, which splices them in order into one
// offset-0 pool. Because sample i is always drawn from PRNG stream i,
// the spliced pool is byte-identical to in-process generation no matter
// how the ranges were cut.
//
// Layout (little endian), format IMCS v1:
//
//	magic    [4]byte  "IMCS"
//	version  uint32   (1)
//	seed     uint64   ┐
//	model    uint32   │ identity block, same as IMCP v2
//	wdigest  uint64   │ (seed, model, weight digest, n, r)
//	n        uint64   │
//	r        uint64   ┘
//	lo       uint64   first global sample index in the range
//	hi       uint64   one past the last global sample index
//	per sample (hi-lo records): same body as IMCP v2
//
// The identity block and per-sample codec are shared with serialize.go,
// so the formats cannot drift; the only difference is the [lo, hi)
// range replacing IMCP's implicit [0, samples) prefix.

var shardMagic = [4]byte{'I', 'M', 'C', 'S'}

const shardVersion = 1

// ExportRange serializes global samples [lo, hi) of the pool in IMCS
// v1. The range must lie inside the pool's generated span
// [Offset(), Offset()+NumSamples()); lo == hi writes a valid empty
// range (a worker acknowledging a zero-width assignment).
func (p *Pool) ExportRange(w io.Writer, lo, hi int) error {
	if lo > hi {
		return fmt.Errorf("ric: ExportRange bounds inverted: [%d, %d)", lo, hi)
	}
	if lo < p.offset || hi > p.offset+len(p.samples) {
		return fmt.Errorf("ric: ExportRange [%d, %d) outside the pool's generated span [%d, %d)",
			lo, hi, p.offset, p.offset+len(p.samples))
	}
	enc := &poolEncoder{bw: bufio.NewWriterSize(w, 1<<20)}
	if _, err := enc.bw.Write(shardMagic[:]); err != nil {
		return fmt.Errorf("ric: write shard magic: %w", err)
	}
	if err := enc.put32(shardVersion); err != nil {
		return err
	}
	if err := p.encodeIdentity(enc); err != nil {
		return err
	}
	if err := enc.put64(uint64(lo)); err != nil {
		return err
	}
	if err := enc.put64(uint64(hi)); err != nil {
		return err
	}
	covers := p.SampleCovers()
	for i := lo - p.offset; i < hi-p.offset; i++ {
		if err := enc.encodeSample(p.samples[i], covers[i]); err != nil {
			return err
		}
	}
	if err := enc.bw.Flush(); err != nil {
		return fmt.Errorf("ric: flush shard export: %w", err)
	}
	return nil
}

// ImportRange appends a shard export to the pool and returns the
// [lo, hi) global range it covered. The export's identity block must
// match the pool (same seed, model, weighted graph, partition shape),
// and its lo must equal the pool's next global sample index
// Offset()+NumSamples() — ranges splice in order, gap-free, so the
// resulting sample sequence is exactly what GenerateCtx would have
// produced. Decoding is as defensive as ReadInto: every count is
// validated, and the stream must end exactly at the last declared
// sample.
func (p *Pool) ImportRange(r io.Reader) (lo, hi int, err error) {
	d := newPoolDecoder(r, "shard export")
	var magic [4]byte
	if _, err := io.ReadFull(d.cr, magic[:]); err != nil {
		return 0, 0, fmt.Errorf("ric: shard export truncated reading magic: %w", err)
	}
	if magic != shardMagic {
		return 0, 0, fmt.Errorf("ric: bad shard magic %q", magic)
	}
	version, err := d.get32("version")
	if err != nil {
		return 0, 0, err
	}
	if version != shardVersion {
		return 0, 0, fmt.Errorf("ric: unsupported shard export version %d (want %d)", version, shardVersion)
	}
	if err := p.checkIdentity(d); err != nil {
		return 0, 0, err
	}
	lo64, err := d.get64("range lo")
	if err != nil {
		return 0, 0, err
	}
	hi64, err := d.get64("range hi")
	if err != nil {
		return 0, 0, err
	}
	if lo64 > hi64 || hi64 >= 1<<31 {
		return 0, 0, fmt.Errorf("ric: shard export range [%d, %d) invalid", lo64, hi64)
	}
	lo, hi = int(lo64), int(hi64)
	if next := p.offset + len(p.samples); lo != next {
		return 0, 0, fmt.Errorf("ric: shard export starts at sample %d but the pool's next sample is %d — ranges must splice in order, gap-free", lo, next)
	}
	for i := lo64; i < hi64; i++ {
		if err := p.decodeSample(d, i); err != nil {
			return 0, 0, err
		}
	}
	if err := d.end(); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}
