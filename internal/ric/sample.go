// Package ric implements Reverse Influenceable Community sampling — the
// paper's Section III — and the sample-pool machinery every IMC
// algorithm is built on.
//
// A RIC sample g is drawn by (1) picking a source community C_g with
// probability proportional to its benefit, (2) sampling a deterministic
// subgraph G_g of the social graph by a single shared reverse
// breadth-first search from all of C_g's members (each edge's live/
// blocked state is decided at most once per sample — paper Alg. 1's
// st[] array), and (3) recording, for every node v, which members of
// C_g v can reach inside G_g. A seed set S "influences" g iff it reaches
// at least h_g distinct members.
//
// Lemma 1 of the paper: c(S) = b · E[X_g(S)], so the fraction of pooled
// samples a seed set influences is an unbiased estimator of its expected
// community benefit.
package ric

import (
	"imc/internal/graph"
)

// Sample is one RIC sample. Nodes' member-coverage lives in the pool's
// inverted index; the sample itself carries only the source community
// metadata. The pool holds one per sample — millions at scale — so
// the layout is pinned waste-free (four int32s, 16 bytes).
//
//imc:compact
type Sample struct {
	// Comm is the source community's index within the partition.
	Comm int32
	// Threshold is h_g: the number of distinct members a seed set must
	// reach to influence the sample.
	Threshold int32
	// NumMembers is |C_g|; member bit j corresponds to
	// partition.Community(Comm).Members[j].
	NumMembers int32
	// TouchCount is the number of distinct nodes that touch the sample
	// (size of its cover set); used by MAF's node-frequency heuristic.
	TouchCount int32
}

// CoverEntry records that one node covers a set of members in one
// sample. Entries live in the pool's inverted index (node → entries) —
// the dominant term of the pool's working set, so the layout is
// pinned waste-free (32 bytes: the mask header absorbs the int32's
// alignment pad in either order).
//
//imc:compact
type CoverEntry struct {
	// Sample indexes into the pool's samples.
	Sample int32
	// Bits is the member-coverage mask of the node in that sample.
	Bits Mask
}

// rawSample is a fully materialized sample as produced by the generator
// before it is folded into a pool's inverted index. GenerateCtx's
// workers store into raws[i] with a stride-|workers| interleave, so
// neighboring slots belong to different goroutines: at exactly one
// 64-byte cache line per slot (3×int32 + pad + two slice headers) no
// two workers ever share a line (the falseshare contract verifies
// the size).
//
//imc:padded
type rawSample struct {
	comm       int32
	threshold  int32
	numMembers int32
	// coverNodes and coverBits are parallel: node coverNodes[i] covers
	// members coverBits[i].
	coverNodes []graph.NodeID
	coverBits  []Mask
}
