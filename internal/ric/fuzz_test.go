package ric

import (
	"bytes"
	"testing"
)

// FuzzPoolRoundTrip feeds arbitrary bytes to the pool deserializer.
// Invariants under fuzzing:
//
//  1. ReadInto never panics — malformed input must surface as an error.
//  2. Any input ReadInto accepts re-serializes, and Save∘ReadInto is a
//     fixpoint: saving the loaded pool and loading THAT must produce
//     byte-identical output and equal sample metadata. (v2 streams are
//     strict: trailing garbage after the declared sample count is an
//     error, and the identity header must match the receiving pool, so
//     accepted inputs always carry the fuzz pool's seed and model.)
func FuzzPoolRoundTrip(f *testing.F) {
	g, part := smallInstance(f)
	seedPool := buildPool(f, g, part, 50, 7)
	var seed bytes.Buffer
	if err := seedPool.Save(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:len(seed.Bytes())/2])
	corrupt := append([]byte(nil), seed.Bytes()...)
	corrupt[12] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte("IMCP"))
	f.Add([]byte{})
	// Mutations of a valid encoding: truncate at every header boundary
	// and deep into the sample records, and flip bits marching through
	// the whole stream, so the fuzzer starts from inputs that are wrong
	// in exactly one field — the shapes hand-written corruption checks
	// tend to miss.
	valid := seed.Bytes()
	for _, cut := range []int{3, 4, 7, 8, 15, 16, 19, 20, 27, 28, 35, 36, 43, 44, 51, 52, len(valid) - 7, len(valid) - 1} {
		if cut >= 0 && cut <= len(valid) {
			f.Add(append([]byte(nil), valid[:cut]...))
		}
	}
	for off := 0; off < len(valid); off += 53 {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x41
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		p1, err := NewPool(g, part, PoolOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := p1.ReadInto(bytes.NewReader(data)); err != nil {
			return // rejected input is fine; panics are the bug
		}
		var save1 bytes.Buffer
		if err := p1.Save(&save1); err != nil {
			t.Fatalf("accepted input failed to re-serialize: %v", err)
		}
		p2, err := NewPool(g, part, PoolOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := p2.ReadInto(bytes.NewReader(save1.Bytes())); err != nil {
			t.Fatalf("own Save output rejected: %v", err)
		}
		if p1.NumSamples() != p2.NumSamples() {
			t.Fatalf("sample count drifted: %d -> %d", p1.NumSamples(), p2.NumSamples())
		}
		for i := 0; i < p1.NumSamples(); i++ {
			if p1.Sample(i) != p2.Sample(i) {
				t.Fatalf("sample %d drifted: %+v vs %+v", i, p1.Sample(i), p2.Sample(i))
			}
		}
		var save2 bytes.Buffer
		if err := p2.Save(&save2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(save1.Bytes(), save2.Bytes()) {
			t.Fatal("Save∘ReadInto is not a fixpoint: second save differs from first")
		}
	})
}
