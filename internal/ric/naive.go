package ric

import (
	"imc/internal/diffusion"
	"imc/internal/graph"
	"imc/internal/xrand"
)

// GenerateNaive draws a sample the WRONG way — each member of the
// source community runs its own reverse BFS with independently
// re-sampled edge states, instead of sharing one deterministic
// subgraph as Alg. 1's st[] array mandates.
//
// The result is intentionally biased: whenever one edge lies on the
// influence paths of multiple members, the naive sampler treats the
// members' activations as independent and underestimates the
// probability of jointly reaching the threshold. It exists solely for
// the ablation test and benchmark that quantify what the paper's
// shared-state construction buys; never use it for estimation.
func (gen *Generator) GenerateNaive(rng *xrand.RNG) rawSample {
	commIdx := gen.alias.Draw(rng)
	comm := gen.part.Community(commIdx)
	members := comm.Members
	gen.coverGen++

	raw := rawSample{
		comm:       int32(commIdx),
		threshold:  int32(comm.Threshold),
		numMembers: int32(len(members)),
	}
	for j, m := range members {
		// Fresh edge world per member: reverse BFS re-sampling every
		// edge it touches.
		gen.epoch++
		gen.queue = gen.queue[:0]
		gen.queue = append(gen.queue, m)
		gen.nodeEpoch[m] = gen.epoch
		for head := 0; head < len(gen.queue); head++ {
			v := gen.queue[head]
			slot := gen.coverSlot[v]
			if gen.coverEpoch[v] != gen.coverGen {
				slot = int32(len(raw.coverNodes))
				raw.coverNodes = append(raw.coverNodes, v)
				raw.coverBits = append(raw.coverBits, newMask(len(members)))
				gen.coverEpoch[v] = gen.coverGen
				gen.coverSlot[v] = slot
			}
			raw.coverBits[slot].set(j)
			froms, ws, _ := gen.g.InNeighbors(v)
			for i, w := range froms {
				if gen.nodeEpoch[w] == gen.epoch {
					continue
				}
				live := false
				switch gen.model {
				case diffusion.LT:
					// Naive LT: sample each in-edge independently too.
					live = rng.Bernoulli(ws[i])
				default:
					live = rng.Bernoulli(ws[i])
				}
				if live {
					gen.nodeEpoch[w] = gen.epoch
					gen.queue = append(gen.queue, w)
				}
			}
		}
	}
	return raw
}

// NaiveCHat estimates ĉ over count naive samples for a seed set — the
// biased estimator the ablation compares against.
func NaiveCHat(g *graph.Graph, gen *Generator, seeds []graph.NodeID, count int, seed uint64) float64 {
	inSeed := make(map[graph.NodeID]struct{}, len(seeds))
	for _, s := range seeds {
		inSeed[s] = struct{}{}
	}
	root := xrand.New(seed)
	hits := 0
	for i := 0; i < count; i++ {
		raw := gen.GenerateNaive(root.Split(uint64(i)))
		covered := newMask(int(raw.numMembers))
		for j, v := range raw.coverNodes {
			if _, ok := inSeed[v]; ok {
				raw.coverBits[j].OrInto(covered)
			}
		}
		if int32(covered.OnesCount()) >= raw.threshold {
			hits++
		}
	}
	return gen.part.TotalBenefit() * float64(hits) / float64(count)
}
