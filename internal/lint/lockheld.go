package lint

import (
	"fmt"
)

// The lockheld analyzer flags operations that can block indefinitely
// while a mutex is held: direct channel sends/receives outside a
// select-with-default, selects without a default clause, and calls —
// external (file Sync/Write, network IO, time.Sleep, WaitGroup.Wait;
// see the blocking-op table in summary.go) or in-program (any callee
// whose summary carries EffBlock) — made inside a critical section.
// A blocked holder stalls every other goroutine contending for the
// lock; the canonical repo case was the job journal's fsync inside
// Store.mu, which serialized all job-state reads behind disk latency.
//
// The walk is the same must-held dataflow lockorder uses (locks.go):
// intersection meet, so conditionally-held locks don't flag, and
// go/defer/closure subtrees excluded. Acquiring a NESTED lock is
// deliberately not a lockheld finding — waiting on a lock is
// lockorder's domain, and double-reporting every nested critical
// section would bury the real stalls. Dynamic calls are also quiet
// (EffDynamic, not EffBlock): a documented gap that keeps clock-func
// fields and injected builders from flagging every caller.

// LockHeld is the blocking-under-mutex analyzer.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "flag operations that may block indefinitely while a mutex is held",
	Kind: KindInterprocedural,
	Run:  runLockHeld,
}

func runLockHeld(pkg *Package, r *Reporter) {
	prog := pkg.Prog
	if prog == nil || prog.Graph == nil {
		return
	}
	prog.locks() // summaries already computed; force the lock view for consistency
	for _, node := range prog.Graph.Nodes {
		if node.Pkg != pkg {
			continue
		}
		w := newHeldWalker(node)
		if w == nil {
			continue
		}
		w.walk(func(held map[lockID]heldLock, op lockOp) {
			if len(held) == 0 {
				return
			}
			ids := sortedLockIDs(held)
			hid := ids[0]
			acq := shortPos(pkg.Fset.Position(held[hid].pos))
			switch op.kind {
			case opBlock:
				r.Reportf("lockheld", op.pos,
					"blocks on %s while holding %s (locked at %s); release the lock before blocking",
					op.desc, hid, acq)
			case opCall:
				e := op.edge
				if e.Callee != nil {
					if e.Callee.Summary == nil || e.Callee.Summary.Effects&EffBlock == 0 {
						return
					}
					names, local := e.Callee.Chain(EffBlock)
					if local == nil {
						return
					}
					chain := append([]string{e.Callee.Name()}, names...)
					r.Reportf("lockheld", op.pos,
						"call to %s may block while holding %s (locked at %s): %s %s at %s",
						e.Callee.Name(), hid, acq,
						formatChain(chain), local.Desc, shortPos(e.Callee.Pkg.Fset.Position(local.Pos)))
					return
				}
				if !externalBlocks(e.ExtPkg, e.ExtRecv, e.ExtName) {
					return
				}
				name := e.ExtPkg + "." + e.ExtName
				if e.ExtRecv != "" {
					name = fmt.Sprintf("%s.(%s).%s", e.ExtPkg, e.ExtRecv, e.ExtName)
				}
				r.Reportf("lockheld", op.pos,
					"call to %s may block while holding %s (locked at %s); release the lock before blocking",
					name, hid, acq)
			}
		})
	}
}
