package lint

import (
	"go/ast"
	"go/types"
)

// FalseShare finds the classic parallel-kernel performance bug the race
// detector cannot see: distinct goroutines writing bytes that never
// overlap but live in the same 64-byte cache line, so every write
// invalidates the other workers' copies and the "parallel" scan
// serializes on line ownership. It reuses sharemut's goroutine-spawn
// view of the function — `go func(...){…}` literals and the variables
// they capture — and the canonical layout model from layout.go.
//
// Two shapes fire:
//
//  1. Per-worker slots in one slice: a spawned literal writes s[i]
//     (or s[i].f, s[i]++) where s is a slice declared OUTSIDE the
//     literal and the element size is not a multiple of the cache
//     line. The spawn must be plural — the go statement sits in a loop
//     with a worker-varying index, or at least two distinct go
//     statements write the same slice. The `partial[w] = sum`
//     per-worker-accumulator pattern is the target.
//
//  2. Sibling fields: two distinct go statements write different
//     fields of one shared struct whose offsets land in the same
//     64-byte line.
//
// The sanctioned fix is to pad the per-worker element type to the line
// size and annotate it `//imc:padded` — which this analyzer then
// verifies: an annotated struct whose size is not a line multiple gets
// its own finding, so the padding cannot silently rot as fields are
// added. Elements that are already line-multiples (padded or naturally
// large) are clean, as is accumulating into goroutine-local state and
// publishing once after the join.
var FalseShare = &Analyzer{
	Name: "falseshare",
	Doc:  "flag per-worker writes from distinct goroutines that share a 64-byte cache line (unpadded per-worker slices, sibling struct fields); verify //imc:padded types",
	Kind: KindFlowSensitive,
	Run:  runFalseShare,
}

func runFalseShare(pkg *Package, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	padded := paddedTypeNames(pkg, r)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFalseShare(pkg, fd, padded, r)
		}
	}
}

// paddedTypeNames collects the package's //imc:padded struct types and
// verifies each one really is a cache-line multiple — the annotation is
// a checked contract, not a comment.
func paddedTypeNames(pkg *Package, r *Reporter) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	dirs := typeDirectives(pkg)
	for ts, set := range dirs {
		if !set[directivePadded] {
			continue
		}
		obj, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
		if obj == nil {
			continue
		}
		st, isStruct := obj.Type().Underlying().(*types.Struct)
		if !isStruct {
			continue // structlayout reports the misplaced directive
		}
		out[obj] = true
		if sz := sizeOf(st); sz >= 0 && sz%cacheLineBytes != 0 {
			r.Reportf("falseshare", ts.Pos(),
				"//imc:padded struct %s is %d bytes — not a multiple of the %d-byte cache line, so adjacent elements still share lines; grow the pad (e.g. _ [%d]byte) to the next line boundary",
				ts.Name.Name, sz, cacheLineBytes, cacheLineBytes-sz%cacheLineBytes)
		}
	}
	return out
}

// goSpawn is one `go func(...){…}` site of the function under check.
type goSpawn struct {
	stmt *ast.GoStmt
	lit  *ast.FuncLit
	// inLoop records whether the spawn itself sits inside a loop — the
	// worker fan-out shape, where one site stands for many goroutines.
	inLoop bool
}

// elemWrite is one element write to a shared slice from a spawned
// goroutine.
type elemWrite struct {
	spawn    *goSpawn
	base     types.Object
	elem     types.Type
	elemSize int64
	constIdx bool
	pos      ast.Node
}

// fieldWrite is one field write to a shared struct value from a spawned
// goroutine.
type fieldWrite struct {
	spawn *goSpawn
	root  types.Object
	field *types.Var
	off   int64
	pos   ast.Node
}

func checkFalseShare(pkg *Package, fd *ast.FuncDecl, padded map[*types.TypeName]bool, r *Reporter) {
	var spawns []*goSpawn
	walkStack(fd.Body, func(stack []ast.Node) bool {
		g, ok := stack[len(stack)-1].(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		inLoop := false
		for _, anc := range stack[:len(stack)-1] {
			switch anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			}
		}
		spawns = append(spawns, &goSpawn{stmt: g, lit: lit, inLoop: inLoop})
		return true
	})
	if len(spawns) == 0 {
		return
	}

	var elems []elemWrite
	var fields []fieldWrite
	for _, sp := range spawns {
		collectSpawnWrites(pkg, sp, &elems, &fields)
	}
	reportElemSharing(pkg, elems, padded, r)
	reportFieldSharing(pkg, fields, r)
}

// collectSpawnWrites gathers the writes sp's goroutine performs against
// state declared outside its literal.
func collectSpawnWrites(pkg *Package, sp *goSpawn, elems *[]elemWrite, fields *[]fieldWrite) {
	record := func(lhs ast.Expr, at ast.Node) {
		// Unwrap field/deref chains down to the indexed or rooted form:
		// s[i], s[i].f, st.f, (*p).f.
		e := lhs
		for {
			switch x := e.(type) {
			case *ast.SelectorExpr:
				if idx, fv, off := selectorFieldOffset(pkg, x); idx == nil && fv != nil {
					// Pure field chain (no index): a struct-field write.
					if root := outerRootObject(pkg, sp.lit, x); root != nil {
						*fields = append(*fields, fieldWrite{spawn: sp, root: root, field: fv, off: off, pos: at})
					}
					return
				}
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.IndexExpr:
				recordIndexWrite(pkg, sp, x, at, elems)
				return
			default:
				return
			}
		}
	}
	ast.Inspect(sp.lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				record(lhs, s)
			}
		case *ast.IncDecStmt:
			record(s.X, s)
		}
		return true
	})
}

// recordIndexWrite files s[i]-shaped writes whose base slice is
// declared outside the spawned literal.
func recordIndexWrite(pkg *Package, sp *goSpawn, idx *ast.IndexExpr, at ast.Node, elems *[]elemWrite) {
	tv, ok := pkg.Info.Types[idx.X]
	if !ok || tv.Type == nil {
		return
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return
	}
	base := sliceBaseObject(pkg, idx.X)
	if base == nil || !declaredOutside(sp.lit, base) {
		return
	}
	itv := pkg.Info.Types[idx.Index]
	*elems = append(*elems, elemWrite{
		spawn:    sp,
		base:     base,
		elem:     slice.Elem(),
		elemSize: sizeOf(slice.Elem()),
		constIdx: itv.Value != nil,
		pos:      at,
	})
}

// selectorFieldOffset resolves sel as a (possibly nested) field chain:
// it returns the innermost IndexExpr if the chain crosses one (the
// write is then an element write, handled elsewhere), or the selected
// field and its byte offset from the chain's root struct.
func selectorFieldOffset(pkg *Package, sel *ast.SelectorExpr) (*ast.IndexExpr, *types.Var, int64) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil, 0
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, nil, 0
	}
	// Reject chains that pass through an index — that is slice-element
	// territory.
	for e := sel.X; ; {
		switch x := e.(type) {
		case *ast.IndexExpr:
			return x, nil, 0
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			// Root reached. Offset of the full embedding path from the
			// root's struct type.
			rt := derefType(exprType(pkg, e))
			if rt == nil {
				return nil, nil, 0
			}
			st, ok := rt.Underlying().(*types.Struct)
			if !ok || !sizeableType(st) {
				return nil, nil, 0
			}
			off, ok := pathOffset(st, s.Index())
			if !ok {
				return nil, nil, 0
			}
			return nil, fv, off
		}
	}
}

// pathOffset walks a selection index path from st, accumulating field
// offsets. It stops (not ok) if the path crosses a pointer — the target
// then lives in its own allocation, not inside st's bytes.
func pathOffset(st *types.Struct, path []int) (int64, bool) {
	var off int64
	cur := st
	for step, i := range path {
		if i >= cur.NumFields() {
			return 0, false
		}
		f := cur.Field(i)
		vars := make([]*types.Var, cur.NumFields())
		for j := range vars {
			vars[j] = cur.Field(j)
		}
		off += layoutSizes.Offsetsof(vars)[i]
		if step == len(path)-1 {
			break
		}
		if _, isPtr := f.Type().Underlying().(*types.Pointer); isPtr {
			return 0, false
		}
		next, ok := f.Type().Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		cur = next
	}
	return off, true
}

// exprType returns expr's type (named form preserved), nil when unknown.
func exprType(pkg *Package, expr ast.Expr) types.Type {
	tv, ok := pkg.Info.Types[expr]
	if !ok {
		return nil
	}
	return tv.Type
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// outerRootObject resolves the root identifier of a selector chain to
// its object when that object is declared outside lit (shared with the
// spawning function, hence with every sibling goroutine).
func outerRootObject(pkg *Package, lit *ast.FuncLit, sel *ast.SelectorExpr) types.Object {
	e := ast.Expr(sel)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := pkg.Info.Uses[x]
			if obj == nil {
				obj = pkg.Info.Defs[x]
			}
			if obj == nil || !declaredOutside(lit, obj) {
				return nil
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return nil
			}
			return obj
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside lit —
// a free variable of the goroutine, shared with its siblings.
func declaredOutside(lit *ast.FuncLit, obj types.Object) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// elemTypeName resolves t to its named type's TypeName, nil for
// unnamed types.
func elemTypeName(t types.Type) *types.TypeName {
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// reportElemSharing groups the element writes by slice and fires when
// the spawn is plural and the element is not line-padded.
func reportElemSharing(pkg *Package, writes []elemWrite, padded map[*types.TypeName]bool, r *Reporter) {
	reported := make(map[types.Object]bool)
	spawnsOf := make(map[types.Object]map[*goSpawn]bool)
	for _, w := range writes {
		if spawnsOf[w.base] == nil {
			spawnsOf[w.base] = make(map[*goSpawn]bool)
		}
		spawnsOf[w.base][w.spawn] = true
	}
	for _, w := range writes {
		if reported[w.base] {
			continue
		}
		if w.elemSize <= 0 || w.elemSize%cacheLineBytes == 0 {
			continue // unknown, zero-size, or already line-aligned
		}
		if tn := elemTypeName(w.elem); tn != nil && padded[tn] {
			continue // annotated; size drift is reported at the type
		}
		plural := (w.spawn.inLoop && !w.constIdx) || len(spawnsOf[w.base]) >= 2
		if !plural {
			continue
		}
		reported[w.base] = true
		perLine := cacheLineBytes / w.elemSize
		if perLine < 2 {
			perLine = 2 // straddling: one element spans lines it shares
		}
		r.Reportf("falseshare", w.pos.Pos(),
			"distinct goroutines write elements of %s (%d-byte %s, %d per %d-byte cache line): neighboring writers invalidate each other's lines and the parallel scan serializes on line ownership; pad the element type to the line size and annotate it //imc:padded, or accumulate per worker and store once after the join",
			w.base.Name(), w.elemSize, w.elem.String(), perLine, cacheLineBytes)
	}
}

// reportFieldSharing fires when two distinct spawn sites write
// different fields of the same shared struct inside one cache line.
func reportFieldSharing(pkg *Package, writes []fieldWrite, r *Reporter) {
	reportedRoot := make(map[types.Object]bool)
	for i, a := range writes {
		if reportedRoot[a.root] {
			continue
		}
		for _, b := range writes[i+1:] {
			if b.root != a.root || b.spawn == a.spawn || b.field == a.field {
				continue
			}
			if a.off/cacheLineBytes != b.off/cacheLineBytes {
				continue
			}
			reportedRoot[a.root] = true
			gap := b.off - a.off
			if gap < 0 {
				gap = -gap
			}
			r.Reportf("falseshare", a.pos.Pos(),
				"goroutines spawned at lines %d and %d write fields %s and %s of shared %s, %d bytes apart in the same %d-byte cache line; insulate the hot fields with padding or give each goroutine its own copy",
				pkg.Fset.Position(a.spawn.stmt.Pos()).Line, pkg.Fset.Position(b.spawn.stmt.Pos()).Line,
				a.field.Name(), b.field.Name(), a.root.Name(), gap, cacheLineBytes)
			break
		}
	}
}
