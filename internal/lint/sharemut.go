package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShareMut guards the repository's share-then-freeze convention for
// slice-backed values (RIC masks, bitsets, RR sets, cover entries):
// once a slice has been handed to another goroutine or stored into a
// long-lived container (a pool's inverted index, a sample's cover
// list), its backing array is shared, and mutating it afterwards is a
// data race or a silent corruption of pooled state.
//
// The analyzer runs a forward dataflow over each function's CFG. A
// slice variable becomes *shared* when it is:
//
//   - referenced inside a `go` statement (free variable or argument);
//   - sent on a channel;
//   - stored into a non-local container (an element or field write
//     whose root is not a function-local variable, or an append whose
//     result lands in such a place).
//
// After the share, the analyzer reports:
//
//   - element writes (`v[i] = x`, `v[i] += x`, `v[i]++`);
//   - growth that can write the shared backing array
//     (`v = append(v, …)`, including through `v = v[:0]` reslicing,
//     which keeps the array);
//   - use as the destination of copy().
//
// Flow-sensitivity is what makes the check usable: mutations BEFORE
// the share are fine, shares on one branch only taint that branch, a
// wholesale reassignment from a fresh make() clears the taint, and —
// the one happens-before edge the analyzer understands —
// sync.WaitGroup.Wait() clears goroutine-shares (the repo's fan-out
// idiom joins all workers before touching their results).
var ShareMut = &Analyzer{
	Name: "sharemut",
	Doc:  "flag mutation of slice values after they were shared with a goroutine or stored into a pool/index",
	Kind: KindFlowSensitive,
	Run:  runShareMut,
}

// shareOrigin says how a variable became shared.
type shareOrigin struct {
	pos token.Pos
	// viaGoroutine distinguishes goroutine-shares (released by
	// WaitGroup.Wait) from container-stores (never released).
	viaGoroutine bool
}

// shareFact maps each shared slice object to its share origin.
type shareFact map[types.Object]shareOrigin

type shareMutProblem struct {
	pkg *Package
	// sigVars is the set of variables declared in function signatures
	// (receivers, params, results), precomputed once per package.
	sigVars map[types.Object]bool
}

func (p *shareMutProblem) Entry() any { return shareFact{} }

func (p *shareMutProblem) Merge(a, b any) any {
	fa, fb := a.(shareFact), b.(shareFact)
	out := make(shareFact, len(fa)+len(fb))
	for k, v := range fa {
		out[k] = v
	}
	for k, v := range fb {
		if old, ok := out[k]; !ok || v.pos < old.pos {
			out[k] = v
		}
	}
	return out
}

func (p *shareMutProblem) Equal(a, b any) bool {
	fa, fb := a.(shareFact), b.(shareFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if w, ok := fb[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func (p *shareMutProblem) Transfer(fact any, n ast.Node) any {
	f := fact.(shareFact)
	out := make(shareFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	if rb, ok := n.(rangeBind); ok {
		n = rb.Range
	}
	switch s := n.(type) {
	case *ast.GoStmt:
		for obj := range sliceObjectsIn(p.pkg, s.Call) {
			out[obj] = shareOrigin{pos: s.Pos(), viaGoroutine: true}
		}
	case *ast.SendStmt:
		for obj := range sliceObjectsIn(p.pkg, s.Value) {
			out[obj] = shareOrigin{pos: s.Pos(), viaGoroutine: true}
		}
	case *ast.AssignStmt:
		p.transferAssign(out, s)
	case *ast.ExprStmt:
		if isWaitCall(p.pkg, s.X) {
			for obj, origin := range out {
				if origin.viaGoroutine {
					delete(out, obj)
				}
			}
		}
	}
	return out
}

// transferAssign handles taint introduction and clearing on one
// assignment.
func (p *shareMutProblem) transferAssign(out shareFact, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Lhs) == len(as.Rhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0]
		}
		if storesIntoNonLocal(p.pkg, p.sigVars, lhs) && rhs != nil {
			// Storing into a container: every BODY-LOCAL slice mentioned
			// on the right is now aliased by long-lived state. Struct
			// fields and parameters mentioned there are already
			// long-lived (s.index[v] = append(s.index[v], …) is the
			// container growing itself, not a fresh handoff) — only a
			// local buffer changes ownership at this store.
			for obj := range sliceObjectsIn(p.pkg, rhs) {
				if isBodyLocalVar(p.sigVars, obj) {
					out[obj] = shareOrigin{pos: as.Pos()}
				}
			}
			continue
		}
		// Plain reassignment of a tracked variable from an expression
		// that does not alias it clears the taint (fresh buffer).
		if id, ok := lhs.(*ast.Ident); ok && rhs != nil {
			obj := identObject(p.pkg, id)
			if obj == nil {
				continue
			}
			if _, tracked := out[obj]; tracked && !exprMentions(p.pkg, rhs, obj) {
				delete(out, obj)
			}
		}
	}
}

func runShareMut(pkg *Package, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	sigVars := signatureVars(pkg)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShareMut(pkg, fd.Body, sigVars, r)
		}
	}
}

func checkShareMut(pkg *Package, body *ast.BlockStmt, sigVars map[types.Object]bool, r *Reporter) {
	cfg := BuildCFG(body)
	prob := &shareMutProblem{pkg: pkg, sigVars: sigVars}
	in := Forward(cfg, prob)
	ReplayBlocks(cfg, prob, in, func(fact any, n ast.Node) {
		f := fact.(shareFact)
		if rb, ok := n.(rangeBind); ok {
			n = rb.Range
		}
		reportSharedMutations(pkg, n, f, r)
	})
}

// reportSharedMutations flags mutations of currently-shared objects in
// one statement. It does not descend into nested function literals —
// their bodies run under their own schedule and their own CFG facts
// would be needed; the share event itself already covers the handoff.
func reportSharedMutations(pkg *Package, n ast.Node, f shareFact, r *Reporter) {
	if len(f) == 0 {
		return
	}
	describe := func(origin shareOrigin) string {
		how := "stored into shared state"
		if origin.viaGoroutine {
			how = "shared with a goroutine"
		}
		return how
	}
	switch s := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			// Element write through a shared slice.
			if idx, ok := lhs.(*ast.IndexExpr); ok {
				if obj := sliceBaseObject(pkg, idx.X); obj != nil {
					if origin, shared := f[obj]; shared {
						r.Reportf("sharemut", lhs.Pos(),
							"writes element of %s, which was %s at line %d; mutation after sharing is a race — clone before sharing or stop mutating",
							obj.Name(), describe(origin), pkg.Fset.Position(origin.pos).Line)
					}
				}
			}
			// Growth: v = append(v, …) or v = v[:0] on a shared v.
			if id, ok := lhs.(*ast.Ident); ok && len(s.Lhs) == len(s.Rhs) {
				obj := identObject(pkg, id)
				if obj == nil {
					continue
				}
				origin, shared := f[obj]
				if !shared {
					continue
				}
				if exprMentions(pkg, s.Rhs[i], obj) {
					r.Reportf("sharemut", s.Pos(),
						"grows or reslices %s in place, but it was %s at line %d and still owns that backing array; allocate a fresh buffer instead",
						obj.Name(), describe(origin), pkg.Fset.Position(origin.pos).Line)
				}
			}
		}
	case *ast.IncDecStmt:
		if idx, ok := s.X.(*ast.IndexExpr); ok {
			if obj := sliceBaseObject(pkg, idx.X); obj != nil {
				if origin, shared := f[obj]; shared {
					r.Reportf("sharemut", s.Pos(),
						"mutates element of %s, which was %s at line %d",
						obj.Name(), describe(origin), pkg.Fset.Position(origin.pos).Line)
				}
			}
		}
	case *ast.ExprStmt:
		// copy(shared, …) overwrites the shared backing array.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "copy" && isBuiltin(pkg, id) && len(call.Args) == 2 {
				if obj := sliceBaseObject(pkg, call.Args[0]); obj != nil {
					if origin, shared := f[obj]; shared {
						r.Reportf("sharemut", call.Pos(),
							"copies into %s, which was %s at line %d",
							obj.Name(), describe(origin), pkg.Fset.Position(origin.pos).Line)
					}
				}
			}
		}
	}
}

// sliceObjectsIn collects every slice-typed local identifier referenced
// in expr (including inside nested function literals — a goroutine
// closure's free variables).
func sliceObjectsIn(pkg *Package, expr ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || obj.Type() == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
			out[obj] = true
		}
		return true
	})
	return out
}

// storesIntoNonLocal reports whether lhs writes an element or field of
// something that outlives the function: its root is a selector chain
// into a receiver/parameter, a package-level variable, or an index into
// any of those. A plain local identifier (or blank) is local.
func storesIntoNonLocal(pkg *Package, sigVars map[types.Object]bool, lhs ast.Expr) bool {
	switch lhs.(type) {
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
	default:
		return false
	}
	root := storeRoot(lhs)
	id, ok := root.(*ast.Ident)
	if !ok {
		return true
	}
	obj := identObject(pkg, id)
	if obj == nil {
		return true
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return true
	}
	// Package-level variable: non-local. Parameters/receivers: writes
	// through them reach caller-owned or pool-owned state — non-local
	// when the write path goes through a field/index (which it does,
	// or we would not be here). Body-declared locals of value kind:
	// local — the container stores we care about (p.index[v],
	// s.cover[i]) all root at receivers.
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return true // package scope
	}
	return sigVars[v]
}

// signatureVars collects every variable declared in a function
// signature (receiver, parameter, result) of the package — computed
// once so the dataflow transfer function stays cheap.
func signatureVars(pkg *Package) map[types.Object]bool {
	out := make(map[types.Object]bool)
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				addList(fn.Recv)
				addList(fn.Type.Params)
				addList(fn.Type.Results)
			case *ast.FuncLit:
				addList(fn.Type.Params)
				addList(fn.Type.Results)
			}
			return true
		})
	}
	return out
}

// isBodyLocalVar reports whether obj is a slice variable declared in a
// function body: not a struct field, not a signature variable
// (receiver/param/result), not package-level. Only such variables can
// change ownership at a container store — everything else was already
// long-lived or caller-owned.
func isBodyLocalVar(sigVars map[types.Object]bool, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() || sigVars[v] {
		return false
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return false // package scope
	}
	return true
}

// exprMentions reports whether expr references obj.
func exprMentions(pkg *Package, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isWaitCall matches a call to sync.WaitGroup.Wait.
func isWaitCall(pkg *Package, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	name := tv.Type.String()
	return name == "sync.WaitGroup" || name == "*sync.WaitGroup"
}
