// Package lint is a small static-analysis framework, built only on the
// standard library's go/parser, go/ast, and go/types, that machine-checks
// the invariants the rest of this repository merely documents:
//
//   - determinism — library code must draw randomness from
//     internal/xrand and time from internal/clock, because the RIC
//     sampling guarantees (and every number in EXPERIMENTS.md) are only
//     reproducible seed-for-seed if no code path touches math/rand or
//     the wall clock;
//   - floatcompare — benefit/threshold math must not use exact ==/!= on
//     floats;
//   - goroutineleak — worker fan-out must follow the repo's
//     leak-free patterns (WaitGroup.Add before go, no naked unbuffered
//     sends inside spawned goroutines);
//   - printer — internal packages return values, they do not print;
//   - seedplumb — exported APIs that spawn workers must be seedable;
//   - ctxfirst — context.Context comes first.
//
// Violations that are intentional carry a
// `//lint:allow <check>: <reason>` comment on the offending line (or
// the line above). The justification after the colon is mandatory, and
// the suite polices its own escape hatch: an allow comment that names
// an unknown check, omits the reason, or no longer suppresses anything
// (stale — the violation it excused was fixed or moved) is itself
// reported under the pseudo-check "suppression".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerKind classifies how deep an analyzer's reasoning goes —
// shown by `imclint -list` so readers know what evidence a finding
// rests on.
type AnalyzerKind string

const (
	// KindSyntactic: single-file AST (plus local type info) pattern
	// matching.
	KindSyntactic AnalyzerKind = "syntactic"
	// KindFlowSensitive: per-function CFG / dataflow reasoning.
	KindFlowSensitive AnalyzerKind = "flow-sensitive"
	// KindInterprocedural: whole-program call graph and summaries.
	KindInterprocedural AnalyzerKind = "interprocedural"
)

// Analyzer is one named check. Run inspects a loaded package and files
// diagnostics through the Reporter. Analyzers are stateless; the driver
// decides which analyzers apply to which packages (see AnalyzersFor).
type Analyzer struct {
	// Name is the check identifier used in output and in
	// `//lint:allow <name>` comments.
	Name string
	// Doc is a one-line description shown by `imclint -list`.
	Doc string
	// Kind classifies the analysis depth (syntactic / flow-sensitive /
	// interprocedural).
	Kind AnalyzerKind
	// Run executes the check.
	Run func(pkg *Package, r *Reporter)
}

// Diagnostic is one finding, positioned for file:line:col output.
type Diagnostic struct {
	// Check is the reporting analyzer's name.
	Check string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation and the approved idiom.
	Message string
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// allowComment is one parsed `//lint:allow` escape hatch, tracked so
// the suite can police its own suppressions.
type allowComment struct {
	// checks are the check names the comment suppresses ("all" matches
	// every check).
	checks []string
	// reason is the mandatory justification after the colon.
	reason string
	// pos locates the comment for hygiene diagnostics.
	pos token.Pos
	// legacy records that the comment used the pre-v2 em-dash/double-
	// dash separator instead of the colon. It shares a word with used —
	// the flag bytes sit after the aligned fields so neither pads.
	legacy bool
	// used flips when the comment suppresses at least one diagnostic
	// in the current run.
	used bool
}

// suppresses reports whether the comment silences the named check.
func (ac *allowComment) suppresses(check string) bool {
	for _, c := range ac.checks {
		if c == check || c == "all" {
			return true
		}
	}
	return false
}

// Reporter collects diagnostics for one package and applies
// `//lint:allow` suppression.
type Reporter struct {
	pkg   *Package
	diags []Diagnostic
	// allow maps filename → line → the allow comments on that line. A
	// diagnostic is suppressed when its line, or the line directly
	// above it, carries an allow comment naming its check (or "all").
	allow map[string]map[int][]*allowComment
	// allows lists every allow comment in the package, for the
	// suppression hygiene pass.
	allows []*allowComment
}

// NewReporter builds a reporter over pkg, indexing its allow comments.
func NewReporter(pkg *Package) *Reporter {
	r := &Reporter{pkg: pkg, allow: make(map[string]map[int][]*allowComment)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks, reason, legacy, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				ac := &allowComment{checks: checks, reason: reason, legacy: legacy, pos: c.Pos()}
				r.allows = append(r.allows, ac)
				pos := pkg.Fset.Position(c.Pos())
				byLine := r.allow[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allowComment)
					r.allow[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], ac)
			}
		}
	}
	return r
}

// parseAllow parses a `//lint:allow check1 check2: reason` comment into
// its check names and justification. The pre-v2 separators ("—", "--")
// are still recognized so old comments keep suppressing, but they are
// flagged as legacy by the hygiene pass.
func parseAllow(text string) (checks []string, reason string, legacy, ok bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	const prefix = "lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, "", false, false
	}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false, false
	}
	if i := strings.Index(rest, ":"); i >= 0 {
		reason = strings.TrimSpace(rest[i+1:])
		rest = rest[:i]
	} else {
		for _, sep := range []string{"—", "--"} {
			if i := strings.Index(rest, sep); i >= 0 {
				reason = strings.TrimSpace(rest[i+len(sep):])
				rest = rest[:i]
				legacy = true
				break
			}
		}
		if !legacy {
			// A nested "//" starts a trailing remark, not check names.
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
		}
	}
	checks = strings.Fields(rest)
	return checks, reason, legacy, len(checks) > 0
}

// Reportf files a diagnostic at pos unless an allow comment suppresses
// it; a suppressing comment is marked used for the hygiene pass.
func (r *Reporter) Reportf(check string, pos token.Pos, format string, args ...any) {
	p := r.pkg.Fset.Position(pos)
	if byLine := r.allow[p.Filename]; byLine != nil {
		for _, line := range [2]int{p.Line, p.Line - 1} {
			for _, ac := range byLine[line] {
				if ac.suppresses(check) {
					ac.used = true
					return
				}
			}
		}
	}
	r.diags = append(r.diags, Diagnostic{
		Check:   check,
		Pos:     p,
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportAt files a diagnostic at an already-resolved position. Used by
// analyzers whose findings are not anchored to an AST node of the
// package (snapshot diffs, contract-file errors). Allow-comment
// suppression still applies when the position falls inside the package.
func (r *Reporter) ReportAt(check string, pos token.Position, format string, args ...any) {
	if byLine := r.allow[pos.Filename]; byLine != nil {
		for _, line := range [2]int{pos.Line, pos.Line - 1} {
			for _, ac := range byLine[line] {
				if ac.suppresses(check) {
					ac.used = true
					return
				}
			}
		}
	}
	r.diags = append(r.diags, Diagnostic{
		Check:   check,
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
	})
}

// suppressionCheck is the pseudo-check name for allow-comment hygiene
// findings. It is not an Analyzer: it needs the post-run used state.
const suppressionCheck = "suppression"

// suppressionFindings polices the escape hatch after a run: unknown
// check names, missing justifications, legacy separators, and — when
// every check an allow names was actually part of this run — stale
// comments that suppressed nothing.
func (r *Reporter) suppressionFindings(active []*Analyzer) []Diagnostic {
	known := map[string]bool{"all": true}
	for _, a := range All {
		known[a.Name] = true
	}
	activeSet := make(map[string]bool, len(active))
	for _, a := range active {
		activeSet[a.Name] = true
	}
	var out []Diagnostic
	report := func(ac *allowComment, format string, args ...any) {
		out = append(out, Diagnostic{
			Check:   suppressionCheck,
			Pos:     r.pkg.Fset.Position(ac.pos),
			Message: fmt.Sprintf(format, args...),
		})
	}
	for _, ac := range r.allows {
		if ac.legacy {
			report(ac, "legacy allow syntax; write //lint:allow %s: <reason>", strings.Join(ac.checks, " "))
		}
		if ac.reason == "" {
			report(ac, "allow comment without a justification; write //lint:allow %s: <reason>", strings.Join(ac.checks, " "))
		}
		covered := true
		for _, c := range ac.checks {
			if !known[c] {
				report(ac, "allow comment names unknown check %q", c)
				covered = false
				continue
			}
			if c != "all" && !activeSet[c] {
				covered = false
			}
		}
		if c := len(ac.checks); c == 1 && ac.checks[0] == "all" && len(active) == 0 {
			covered = false
		}
		if covered && !ac.used {
			report(ac, "stale suppression: this comment no longer suppresses any %s diagnostic; delete it", strings.Join(ac.checks, "/"))
		}
	}
	return out
}

// Diagnostics returns the collected findings sorted by position.
func (r *Reporter) Diagnostics() []Diagnostic {
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i].Pos, r.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return r.diags[i].Check < r.diags[j].Check
	})
	return r.diags
}

// Run applies every analyzer in the list to pkg and returns the merged,
// sorted diagnostics — including the suppression hygiene findings for
// the package's allow comments.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	r := NewReporter(pkg)
	for _, a := range analyzers {
		a.Run(pkg, r)
	}
	r.diags = append(r.diags, r.suppressionFindings(analyzers)...)
	return r.Diagnostics()
}

// --- shared AST helpers -------------------------------------------------

// walkStack is a depth-first traversal that hands the visitor the full
// ancestor stack (outermost first, node last). Returning false prunes
// the subtree.
func walkStack(root ast.Node, visit func(stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !visit(stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// importedPkgName reports whether expr is an identifier naming an
// imported package with the given import path (e.g. "time"). It prefers
// type information and falls back to matching the file's import table.
func (p *Package) importedPkgName(file *ast.File, expr ast.Expr) (string, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return "", false
	}
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path(), true
			}
			return "", false
		}
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else {
			if i := strings.LastIndex(path, "/"); i >= 0 {
				name = path[i+1:]
			} else {
				name = path
			}
		}
		if name == id.Name {
			return path, true
		}
	}
	return "", false
}

// selectorCall matches expr as a call to pkgpath.fn and returns the
// selector for positioning.
func (p *Package) selectorCall(file *ast.File, call *ast.CallExpr, pkgPath string, names ...string) (*ast.SelectorExpr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	path, ok := p.importedPkgName(file, sel.X)
	if !ok || path != pkgPath {
		return nil, false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return sel, true
		}
	}
	return nil, false
}
