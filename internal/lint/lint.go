// Package lint is a small static-analysis framework, built only on the
// standard library's go/parser, go/ast, and go/types, that machine-checks
// the invariants the rest of this repository merely documents:
//
//   - determinism — library code must draw randomness from
//     internal/xrand and time from internal/clock, because the RIC
//     sampling guarantees (and every number in EXPERIMENTS.md) are only
//     reproducible seed-for-seed if no code path touches math/rand or
//     the wall clock;
//   - floatcompare — benefit/threshold math must not use exact ==/!= on
//     floats;
//   - goroutineleak — worker fan-out must follow the repo's
//     leak-free patterns (WaitGroup.Add before go, no naked unbuffered
//     sends inside spawned goroutines);
//   - printer — internal packages return values, they do not print;
//   - seedplumb — exported APIs that spawn workers must be seedable;
//   - ctxfirst — context.Context comes first.
//
// Violations that are intentional carry a `//lint:allow <check>` comment
// on the offending line (or the line above) with a justification.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a loaded package and files
// diagnostics through the Reporter. Analyzers are stateless; the driver
// decides which analyzers apply to which packages (see AnalyzersFor).
type Analyzer struct {
	// Name is the check identifier used in output and in
	// `//lint:allow <name>` comments.
	Name string
	// Doc is a one-line description shown by `imclint -list`.
	Doc string
	// Run executes the check.
	Run func(pkg *Package, r *Reporter)
}

// Diagnostic is one finding, positioned for file:line:col output.
type Diagnostic struct {
	// Check is the reporting analyzer's name.
	Check string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation and the approved idiom.
	Message string
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Reporter collects diagnostics for one package and applies
// `//lint:allow` suppression.
type Reporter struct {
	pkg   *Package
	diags []Diagnostic
	// allow maps filename → line → set of allowed check names. A
	// diagnostic is suppressed when its line, or the line directly
	// above it, carries an allow comment naming its check (or "all").
	allow map[string]map[int]map[string]bool
}

// NewReporter builds a reporter over pkg, indexing its allow comments.
func NewReporter(pkg *Package) *Reporter {
	r := &Reporter{pkg: pkg, allow: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := r.allow[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					r.allow[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					byLine[pos.Line] = set
				}
				for _, name := range checks {
					set[name] = true
				}
			}
		}
	}
	return r
}

// parseAllow extracts check names from a `//lint:allow a b — reason`
// comment. The em-dash (or "--") and everything after it is the
// human-readable justification.
func parseAllow(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	const prefix = "lint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := text[len(prefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false
	}
	for _, sep := range []string{"—", "--"} {
		if i := strings.Index(rest, sep); i >= 0 {
			rest = rest[:i]
		}
	}
	checks := strings.Fields(rest)
	return checks, len(checks) > 0
}

// Reportf files a diagnostic at pos unless an allow comment suppresses
// it.
func (r *Reporter) Reportf(check string, pos token.Pos, format string, args ...any) {
	p := r.pkg.Fset.Position(pos)
	if byLine := r.allow[p.Filename]; byLine != nil {
		for _, line := range [2]int{p.Line, p.Line - 1} {
			if set := byLine[line]; set != nil && (set[check] || set["all"]) {
				return
			}
		}
	}
	r.diags = append(r.diags, Diagnostic{
		Check:   check,
		Pos:     p,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the collected findings sorted by position.
func (r *Reporter) Diagnostics() []Diagnostic {
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i].Pos, r.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return r.diags[i].Check < r.diags[j].Check
	})
	return r.diags
}

// Run applies every analyzer in the list to pkg and returns the merged,
// sorted diagnostics.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	r := NewReporter(pkg)
	for _, a := range analyzers {
		a.Run(pkg, r)
	}
	return r.Diagnostics()
}

// --- shared AST helpers -------------------------------------------------

// walkStack is a depth-first traversal that hands the visitor the full
// ancestor stack (outermost first, node last). Returning false prunes
// the subtree.
func walkStack(root ast.Node, visit func(stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !visit(stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// importedPkgName reports whether expr is an identifier naming an
// imported package with the given import path (e.g. "time"). It prefers
// type information and falls back to matching the file's import table.
func (p *Package) importedPkgName(file *ast.File, expr ast.Expr) (string, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return "", false
	}
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path(), true
			}
			return "", false
		}
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		} else {
			if i := strings.LastIndex(path, "/"); i >= 0 {
				name = path[i+1:]
			} else {
				name = path
			}
		}
		if name == id.Name {
			return path, true
		}
	}
	return "", false
}

// selectorCall matches expr as a call to pkgpath.fn and returns the
// selector for positioning.
func (p *Package) selectorCall(file *ast.File, call *ast.CallExpr, pkgPath string, names ...string) (*ast.SelectorExpr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	path, ok := p.importedPkgName(file, sel.X)
	if !ok || path != pkgPath {
		return nil, false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return sel, true
		}
	}
	return nil, false
}
