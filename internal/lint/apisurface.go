package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// The apisurface analyzer freezes the module's exported API in a golden
// snapshot (internal/lint/testdata/api.snap) and fails the build on any
// drift: removals and signature changes are breaking, additions are
// merely unapproved — either way the diff must be blessed by
// regenerating the snapshot with `imclint -update-api`, which puts the
// API change in the PR where reviewers see it.
//
// The snapshot is line-oriented, one section per library package:
//
//	package internal/graph
//	const Trivalency: WeightScheme = 2
//	func Load: func(string, WeightScheme) (*Graph, error)
//	type Graph: struct{...}
//	method (*Graph).NumNodes: func() int
//
// Signatures are rendered without parameter names, so renaming a
// parameter does not churn the snapshot; types from other packages are
// rendered with their full import path, so the strings are stable
// regardless of which package they appear in. Only exported identifiers
// (and, inside structs and interfaces, exported fields and methods)
// participate — unexported plumbing can change freely.

// APISurface diffs each package's exported API against the snapshot.
var APISurface = &Analyzer{
	Name: "apisurface",
	Doc:  "exported API must match the golden snapshot; approve changes with imclint -update-api",
	Kind: KindInterprocedural,
	Run:  checkAPISurface,
}

func checkAPISurface(pkg *Package, r *Reporter) {
	prog := pkg.Prog
	// A partial load cannot distinguish "package removed" from "package
	// not requested", so the gate only runs on full-module programs.
	if prog == nil || !prog.FullModule || pkg.Types == nil {
		return
	}
	if !isLibraryPackage(prog.ModulePath, pkg.Path) {
		return
	}
	snap, err := prog.apiSnapshot()
	if err != nil {
		if !prog.apiChecked {
			prog.apiChecked = true
			r.ReportAt("apisurface", token.Position{Filename: prog.APISnapPath, Line: 1},
				"cannot load API snapshot: %v (regenerate with imclint -update-api)", err)
		}
		return
	}
	rel, ok := prog.relPath(pkg.Path)
	if !ok {
		return
	}
	// Once per program, before any per-package early return: sections
	// whose package vanished entirely.
	if !prog.apiChecked {
		prog.apiChecked = true
		live := make(map[string]bool)
		for _, p := range prog.Packages {
			if pr, ok := prog.relPath(p.Path); ok {
				live[pr] = true
			}
		}
		gone := make([]string, 0, len(snap))
		for section := range snap {
			if !live[section] {
				gone = append(gone, section)
			}
		}
		sort.Strings(gone)
		for _, section := range gone {
			r.ReportAt("apisurface", token.Position{Filename: prog.APISnapPath, Line: 1},
				"package %s in the API snapshot no longer exists; approve with imclint -update-api", section)
		}
	}
	current, positions := apiEntries(pkg)
	want := snap[rel]
	if want == nil {
		r.ReportAt("apisurface", pkg.Fset.Position(firstFilePos(pkg)),
			"package %s has no section in the API snapshot; approve with imclint -update-api", rel)
		return
	}
	keys := make([]string, 0, len(current))
	for k := range current {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		got := current[k]
		pos := pkg.Fset.Position(positions[k])
		old, known := want[k]
		switch {
		case !known:
			r.ReportAt("apisurface", pos,
				"new exported API %q; approve with imclint -update-api", k)
		case old != got:
			r.ReportAt("apisurface", pos,
				"exported API changed: %q was %q, now %q; approve with imclint -update-api", k, old, got)
		}
	}
	removed := make([]string, 0, len(want))
	for k := range want {
		if _, ok := current[k]; !ok {
			removed = append(removed, k)
		}
	}
	sort.Strings(removed)
	for _, k := range removed {
		r.ReportAt("apisurface", pkg.Fset.Position(firstFilePos(pkg)),
			"exported API removed: %q (was %q); approve with imclint -update-api", k, want[k])
	}
}

// apiSnapshot parses APISnapPath once per program.
func (p *Program) apiSnapshot() (map[string]map[string]string, error) {
	if !p.apiSet {
		p.apiSet = true
		p.apiSnap, p.apiErr = parseAPISnapshot(p.APISnapPath)
	}
	return p.apiSnap, p.apiErr
}

// parseAPISnapshot reads the snapshot into section → key → value.
func parseAPISnapshot(path string) (map[string]map[string]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]string)
	var section map[string]string
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, " \t")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rel, ok := strings.CutPrefix(line, "package "); ok {
			rel = strings.TrimSpace(rel)
			if _, dup := out[rel]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate section %q", path, ln+1, rel)
			}
			section = make(map[string]string)
			out[rel] = section
			continue
		}
		if section == nil {
			return nil, fmt.Errorf("%s:%d: entry before any package section", path, ln+1)
		}
		key, value, ok := strings.Cut(line, ": ")
		if !ok {
			return nil, fmt.Errorf("%s:%d: malformed entry %q", path, ln+1, line)
		}
		if _, dup := section[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate key %q", path, ln+1, key)
		}
		section[key] = value
	}
	return out, nil
}

// WriteAPISnapshot renders the program's current exported API in
// snapshot form — what `imclint -update-api` writes.
func WriteAPISnapshot(prog *Program) []byte {
	var b strings.Builder
	b.WriteString("# API surface snapshot — one section per library package, one line per\n")
	b.WriteString("# exported identifier. Checked by the apisurface analyzer; regenerate\n")
	b.WriteString("# with: go run ./cmd/imclint -update-api\n")
	type sec struct {
		rel string
		pkg *Package
	}
	secs := make([]sec, 0, len(prog.Packages))
	for _, pkg := range prog.Packages {
		if pkg.Types == nil || !isLibraryPackage(prog.ModulePath, pkg.Path) {
			continue
		}
		if rel, ok := prog.relPath(pkg.Path); ok {
			secs = append(secs, sec{rel, pkg})
		}
	}
	sort.Slice(secs, func(i, j int) bool { return secs[i].rel < secs[j].rel })
	for _, s := range secs {
		entries, _ := apiEntries(s.pkg)
		keys := make([]string, 0, len(entries))
		for k := range entries {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("\npackage ")
		b.WriteString(s.rel)
		b.WriteString("\n")
		for _, k := range keys {
			b.WriteString(k)
			b.WriteString(": ")
			b.WriteString(entries[k])
			b.WriteString("\n")
		}
	}
	return []byte(b.String())
}

// apiEntries renders one package's exported API as key → value lines
// plus a position per key for diagnostics.
func apiEntries(pkg *Package) (map[string]string, map[string]token.Pos) {
	entries := make(map[string]string)
	positions := make(map[string]token.Pos)
	scope := pkg.Types.Scope()
	qual := apiQualifier(pkg.Types)
	for _, name := range scope.Names() {
		if !ast.IsExported(name) {
			continue
		}
		obj := scope.Lookup(name)
		add := func(key, value string, pos token.Pos) {
			entries[key] = value
			positions[key] = pos
		}
		switch obj := obj.(type) {
		case *types.Const:
			add("const "+name, apiType(obj.Type(), qual)+" = "+obj.Val().ExactString(), obj.Pos())
		case *types.Var:
			add("var "+name, apiType(obj.Type(), qual), obj.Pos())
		case *types.Func:
			add("func "+name, apiType(obj.Type(), qual), obj.Pos())
		case *types.TypeName:
			if obj.IsAlias() {
				add("type "+name, "= "+apiType(obj.Type(), qual), obj.Pos())
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			add("type "+name, apiTypeDecl(named, qual), obj.Pos())
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				if !m.Exported() {
					continue
				}
				recv := "(" + name + ")"
				if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil {
					if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
						recv = "(*" + name + ")"
					}
				}
				add("method "+recv+"."+m.Name(), apiType(m.Type(), qual), m.Pos())
			}
		}
	}
	return entries, positions
}

// apiQualifier renders same-package types bare and foreign types with
// their full import path — position-independent and collision-free.
func apiQualifier(self *types.Package) types.Qualifier {
	return func(p *types.Package) string {
		if p == self {
			return ""
		}
		return p.Path()
	}
}

// apiTypeDecl renders a named type's API-relevant shape: exported
// fields for structs, exported methods for interfaces, the underlying
// type otherwise. Type parameters are included for generics.
func apiTypeDecl(named *types.Named, qual types.Qualifier) string {
	prefix := apiTypeParams(named.TypeParams(), qual)
	switch u := named.Underlying().(type) {
	case *types.Struct:
		var fields []string
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			fields = append(fields, f.Name()+" "+apiType(f.Type(), qual))
		}
		return prefix + "struct{" + strings.Join(fields, "; ") + "}"
	case *types.Interface:
		var methods []string
		for i := 0; i < u.NumMethods(); i++ {
			m := u.Method(i)
			if !m.Exported() {
				continue
			}
			sig := apiType(m.Type(), qual)
			methods = append(methods, m.Name()+strings.TrimPrefix(sig, "func"))
		}
		sort.Strings(methods)
		return prefix + "interface{" + strings.Join(methods, "; ") + "}"
	default:
		return prefix + apiType(u, qual)
	}
}

// apiTypeParams renders "[T constraint, ...] " or "".
func apiTypeParams(tps *types.TypeParamList, qual types.Qualifier) string {
	if tps == nil || tps.Len() == 0 {
		return ""
	}
	var parts []string
	for i := 0; i < tps.Len(); i++ {
		tp := tps.At(i)
		parts = append(parts, tp.Obj().Name()+" "+types.TypeString(tp.Constraint(), qual))
	}
	return "[" + strings.Join(parts, ", ") + "] "
}

// apiType renders a type without parameter names: signatures get a
// custom tuple renderer (types.TypeString would embed declared names,
// churning the snapshot on renames); everything else recurses through
// the obvious constructors and falls back to types.TypeString for
// named/basic leaves.
func apiType(t types.Type, qual types.Qualifier) string {
	switch t := t.(type) {
	case *types.Signature:
		s := "func(" + apiTuple(t.Params(), t.Variadic(), qual) + ")"
		switch r := t.Results(); r.Len() {
		case 0:
		case 1:
			s += " " + apiType(r.At(0).Type(), qual)
		default:
			s += " (" + apiTuple(r, false, qual) + ")"
		}
		return s
	case *types.Pointer:
		return "*" + apiType(t.Elem(), qual)
	case *types.Slice:
		return "[]" + apiType(t.Elem(), qual)
	case *types.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), apiType(t.Elem(), qual))
	case *types.Map:
		return "map[" + apiType(t.Key(), qual) + "]" + apiType(t.Elem(), qual)
	case *types.Chan:
		switch t.Dir() {
		case types.SendOnly:
			return "chan<- " + apiType(t.Elem(), qual)
		case types.RecvOnly:
			return "<-chan " + apiType(t.Elem(), qual)
		default:
			return "chan " + apiType(t.Elem(), qual)
		}
	default:
		return types.TypeString(t, qual)
	}
}

// apiTuple renders a parameter/result tuple, types only.
func apiTuple(tu *types.Tuple, variadic bool, qual types.Qualifier) string {
	var parts []string
	for i := 0; i < tu.Len(); i++ {
		s := apiType(tu.At(i).Type(), qual)
		if variadic && i == tu.Len()-1 {
			if elem, ok := tu.At(i).Type().(*types.Slice); ok {
				s = "..." + apiType(elem.Elem(), qual)
			}
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ", ")
}
