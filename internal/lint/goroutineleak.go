package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroutineLeak documents and enforces the repository's worker fan-out
// contract. Two patterns it forbids inside `go func` literals:
//
//  1. sync.WaitGroup.Add called by the spawned goroutine itself — the
//     classic race where Wait can return before the scheduler ever runs
//     the goroutine's Add. Add must happen on the spawning side, before
//     the go statement.
//  2. A send on an unbuffered channel created in the enclosing function
//     with no selectable escape path (no surrounding select with a
//     default or alternative case). If the receiver bails out — an
//     error return, an early break — the goroutine blocks forever and
//     leaks. Buffer the channel for the number of senders, or wrap the
//     send in a select with a cancellation case.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "flag WaitGroup.Add inside spawned goroutines and naked unbuffered sends with no escape path",
	Kind: KindSyntactic,
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pkg *Package, r *Reporter) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			unbuffered := unbufferedChans(pkg, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				checkGoroutineBody(pkg, lit, unbuffered, r)
				return true
			})
		}
	}
}

// unbufferedChans collects identifiers assigned from a capacity-less
// make(chan T) inside body.
func unbufferedChans(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if pkg.Info == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "make" {
				continue
			}
			if _, isChan := typeOf(pkg, call.Args[0]).(*types.Chan); !isChan {
				// make's first argument is a type expression; Info.Types
				// records it with the channel type itself.
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					out[obj] = true
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// typeOf returns the underlying type of expr, or nil.
func typeOf(pkg *Package, expr ast.Expr) types.Type {
	if pkg.Info == nil {
		return nil
	}
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

// checkGoroutineBody inspects one spawned function literal.
func checkGoroutineBody(pkg *Package, lit *ast.FuncLit, unbuffered map[types.Object]bool, r *Reporter) {
	walkStack(lit.Body, func(stack []ast.Node) bool {
		switch n := stack[len(stack)-1].(type) {
		case *ast.FuncLit:
			return false // nested literal: its go statements are checked at their own site
		case *ast.CallExpr:
			if isWaitGroupAdd(pkg, n) {
				r.Reportf("goroutineleak", n.Pos(),
					"WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement")
			}
		case *ast.SendStmt:
			obj := chanObject(pkg, n.Chan)
			if obj == nil || !unbuffered[obj] {
				return true
			}
			if !hasEscapePath(stack) {
				r.Reportf("goroutineleak", n.Pos(),
					"send on unbuffered channel inside goroutine has no escape path and leaks if the receiver gives up; buffer the channel or select with a cancellation case")
			}
		}
		return true
	})
}

// isWaitGroupAdd matches wg.Add(...) where wg has type sync.WaitGroup
// (by type info when available, by receiver-name convention otherwise).
func isWaitGroupAdd(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[sel.X]; ok && tv.Type != nil {
			return strings.TrimPrefix(tv.Type.String(), "*") == "sync.WaitGroup"
		}
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && strings.Contains(strings.ToLower(id.Name), "wg")
}

// chanObject resolves the sent-on channel expression to its object.
func chanObject(pkg *Package, expr ast.Expr) types.Object {
	if pkg.Info == nil {
		return nil
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	return pkg.Info.Uses[id]
}

// hasEscapePath reports whether the innermost enclosing select of the
// statement at the top of stack offers an alternative to blocking: a
// default clause or at least one other communication case.
func hasEscapePath(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		sel, ok := stack[i].(*ast.SelectStmt)
		if !ok {
			continue
		}
		clauses := 0
		hasDefault := false
		for _, s := range sel.Body.List {
			cc, ok := s.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				hasDefault = true
			} else {
				clauses++
			}
		}
		return hasDefault || clauses >= 2
	}
	return false
}
