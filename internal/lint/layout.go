package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// layout.go holds the byte-level model shared by the v6 memory-layout
// analyzers (structlayout, falseshare, valuecopy, presize): field
// offsets, sizes, and alignments as the gc compiler lays them out.
//
// The model is pinned to gc/amd64 on purpose. Findings must be
// deterministic across the machines that run the suite (fixture goldens,
// CI, developer laptops), and every 64-bit platform the repo targets
// (amd64, arm64) shares this layout — 8-byte words, 8-byte max
// alignment, 64-byte cache lines. The kernels' own unsafe.Sizeof pins
// assert the same numbers at compile time.

// layoutSizes is the canonical layout model for all v6 measurements.
var layoutSizes = types.SizesFor("gc", "amd64")

// cacheLineBytes is the coherence granularity the falseshare contract is
// written against: two writers inside one 64-byte line contend on line
// ownership even when their bytes never overlap.
const cacheLineBytes = 64

// sizeableType reports whether t can be measured by layoutSizes: the
// loader type-checks best-effort, so invalid or incomplete types show up
// inside structs and must be treated as "unknown", never measured.
func sizeableType(t types.Type) bool {
	return sizeableTypeRec(t, make(map[types.Type]bool))
}

func sizeableTypeRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return t != nil
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.Invalid
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !sizeableTypeRec(u.Field(i).Type(), seen) {
				return false
			}
		}
		return true
	case *types.Array:
		return sizeableTypeRec(u.Elem(), seen)
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		// Reference shapes: fixed size regardless of what they point at.
		return true
	}
	return false
}

// sizeOf returns t's size in bytes under the canonical model, or -1
// when t cannot be measured.
func sizeOf(t types.Type) int64 {
	if !sizeableType(t) {
		return -1
	}
	return layoutSizes.Sizeof(t)
}

// fieldLayout is one field's place in a struct: offset and size under
// the canonical model.
type fieldLayout struct {
	name  string
	off   int64
	size  int64
	align int64
}

// structLayout computes the per-field layout and total size of st.
// ok is false when any field cannot be measured.
func structLayout(st *types.Struct) (fields []fieldLayout, size int64, ok bool) {
	if !sizeableType(st) {
		return nil, 0, false
	}
	vars := make([]*types.Var, st.NumFields())
	for i := range vars {
		vars[i] = st.Field(i)
	}
	offsets := layoutSizes.Offsetsof(vars)
	fields = make([]fieldLayout, len(vars))
	for i, v := range vars {
		fields[i] = fieldLayout{
			name:  v.Name(),
			off:   offsets[i],
			size:  layoutSizes.Sizeof(v.Type()),
			align: layoutSizes.Alignof(v.Type()),
		}
	}
	return fields, layoutSizes.Sizeof(st), true
}

// minimalReorder returns a padding-minimal field permutation of st (as
// field indices) and the struct size that order achieves, computed by
// re-laying the reordered struct under the same model. The order is the
// classic packing sort — alignment descending, then size descending,
// ties broken by original position so the result is deterministic and
// disturbs the source as little as possible.
func minimalReorder(st *types.Struct) (order []int, size int64) {
	n := st.NumFields()
	order = make([]int, n)
	for i := range order {
		order[i] = i
	}
	al := make([]int64, n)
	sz := make([]int64, n)
	for i := 0; i < n; i++ {
		al[i] = layoutSizes.Alignof(st.Field(i).Type())
		sz[i] = layoutSizes.Sizeof(st.Field(i).Type())
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if al[ia] != al[ib] {
			return al[ia] > al[ib]
		}
		if sz[ia] != sz[ib] {
			return sz[ia] > sz[ib]
		}
		return ia < ib
	})
	vars := make([]*types.Var, n)
	for i, idx := range order {
		f := st.Field(idx)
		vars[i] = types.NewField(f.Pos(), f.Pkg(), f.Name(), f.Type(), f.Embedded())
	}
	return order, layoutSizes.Sizeof(types.NewStruct(vars, nil))
}

// renderLayout prints a field layout the way the findings quote it:
// "name@offset:size" per field, space-separated.
func renderLayout(fields []fieldLayout) string {
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = fmt.Sprintf("%s@%d:%d", f.name, f.off, f.size)
	}
	return strings.Join(parts, " ")
}

// renderOrder prints a field permutation as the reordered name list.
func renderOrder(st *types.Struct, order []int) string {
	parts := make([]string, len(order))
	for i, idx := range order {
		parts[i] = st.Field(idx).Name()
	}
	return strings.Join(parts, ", ")
}
