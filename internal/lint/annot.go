package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// annot.go parses the `//imc:` directive comments that opt functions
// into the flow-sensitive contracts:
//
//	//imc:hotpath   — the function is on the sampling hot path; the
//	                  allocfree analyzer forbids per-iteration
//	                  allocation inside its loops.
//	//imc:pure      — the function is an estimator/comparator; the
//	                  purity analyzer forbids writes to package state,
//	                  impure callees, and retention of argument slices.
//	//imc:longrun   — the function is a long-running compute entry
//	                  point; the ctxplumb analyzer requires it to take
//	                  context.Context first and to forward that context
//	                  to any longrun callee.
//	//imc:guardedby <mutex|immutable>
//	                — a STRUCT FIELD directive: every access to the
//	                  field must sit on a path dominated by
//	                  <receiver>.<mutex>.Lock() (RLock suffices for
//	                  reads); "immutable" instead forbids writes outside
//	                  construction. Enforced by the guardedby analyzer.
//	//imc:locked <mutex>
//	                — the function must only be called with the named
//	                  receiver mutex already held (the *Locked helper
//	                  idiom); its body is checked as if the guard were
//	                  held, and its callers are checked to hold it.
//	//imc:prepublish
//	                — the function runs before its receiver is
//	                  published to other goroutines (construction or
//	                  replay); guardedby skips it.
//	//imc:compact   — a STRUCT TYPE directive: the struct's field order
//	                  must be padding-minimal; the structlayout analyzer
//	                  reports ANY reorderable padding waste on it.
//	//imc:padded    — a STRUCT TYPE directive: the struct is a
//	                  per-worker slot deliberately padded to the 64-byte
//	                  cache line; the falseshare analyzer verifies its
//	                  size is a line multiple and exempts slices of it
//	                  from false-sharing findings; structlayout skips it
//	                  (the padding is the point).
//
// Grammar: the directive must be its own comment line, attached to the
// function declaration (in its doc comment or on the line of / above
// the func keyword) — or, for guardedby, to a struct field (doc or
// trailing line comment), or, for compact/padded, to a type
// declaration's doc comment — exactly `//imc:<name>` with an optional
// argument and trailing prose after a space. Like `//go:` directives
// there is no space after the slashes.

const (
	directiveHotPath    = "hotpath"
	directivePure       = "pure"
	directiveLongRun    = "longrun"
	directiveGuardedBy  = "guardedby"
	directiveLocked     = "locked"
	directivePrepublish = "prepublish"
	directiveCompact    = "compact"
	directivePadded     = "padded"
)

// parseDirective extracts the name of an `//imc:` directive comment
// ("hotpath" from "//imc:hotpath — inner sampling loop").
func parseDirective(text string) (string, bool) {
	rest, ok := strings.CutPrefix(text, "//imc:")
	if !ok {
		return "", false
	}
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// funcDirectives returns the set of //imc: directives attached to each
// function declaration of the package, plus the position of every
// directive that is NOT attached to any function (misplaced directives
// silently doing nothing are their own bug class; the annotation
// analyzers report them).
func funcDirectives(pkg *Package) map[*ast.FuncDecl]map[string]bool {
	out := make(map[*ast.FuncDecl]map[string]bool)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if name, ok := parseDirective(c.Text); ok {
					set := out[fd]
					if set == nil {
						set = make(map[string]bool)
						out[fd] = set
					}
					set[name] = true
				}
			}
		}
	}
	return out
}

// hasDirective reports whether fd carries //imc:<name>.
func hasDirective(dirs map[*ast.FuncDecl]map[string]bool, fd *ast.FuncDecl, name string) bool {
	return dirs[fd][name]
}

// typeDirectives returns the set of //imc: directives attached to each
// type declaration of the package. A directive counts when it sits in
// the TypeSpec's own doc comment or — for the common unparenthesized
// `type Foo struct{…}` form — in the enclosing GenDecl's doc comment.
func typeDirectives(pkg *Package) map[*ast.TypeSpec]map[string]bool {
	out := make(map[*ast.TypeSpec]map[string]bool)
	add := func(ts *ast.TypeSpec, doc *ast.CommentGroup) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			if name, ok := parseDirective(c.Text); ok {
				set := out[ts]
				if set == nil {
					set = make(map[string]bool)
					out[ts] = set
				}
				set[name] = true
			}
		}
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if len(gd.Specs) == 1 {
					add(ts, gd.Doc)
				}
				add(ts, ts.Doc)
			}
		}
	}
	return out
}
