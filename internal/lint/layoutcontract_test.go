package lint

import (
	"go/types"
	"strings"
	"testing"
)

// TestStructLayoutRendering pins the fix-in-the-message contract: a
// structlayout finding must print the current layout (name@offset:size
// per field) and the minimal reordering with its achieved size.
func TestStructLayoutRendering(t *testing.T) {
	t.Parallel()
	pkg := loadFixture(t, "structlayout")
	diags := Run(pkg, []*Analyzer{StructLayout})
	found := false
	for _, d := range diags {
		if !strings.Contains(d.Message, "wasteful") {
			continue
		}
		found = true
		for _, frag := range []string{
			"wasteful is 32 bytes",
			"[a@0:1 b@8:8 c@16:1 d@24:8]",
			"reordering fields to [b, d, a, c]",
			"packs it to 24 bytes (8 saved per value)",
		} {
			if !strings.Contains(d.Message, frag) {
				t.Errorf("layout finding missing %q: %s", frag, d.Message)
			}
		}
	}
	if !found {
		t.Fatal("no finding for the wasteful struct")
	}
}

// TestMinimalReorderModel exercises the layout model directly: the
// reorder must be minimal, stable for equal-rank fields, and re-laid
// under the same gc/amd64 sizes the findings quote.
func TestMinimalReorderModel(t *testing.T) {
	t.Parallel()
	mk := func(name string, t types.Type) *types.Var {
		return types.NewField(0, nil, name, t, false)
	}
	b := types.Typ[types.Bool]
	f64 := types.Typ[types.Float64]
	i32 := types.Typ[types.Int32]

	st := types.NewStruct([]*types.Var{mk("a", b), mk("b", f64), mk("c", b), mk("d", f64)}, nil)
	if sz := layoutSizes.Sizeof(st); sz != 32 {
		t.Fatalf("baseline size = %d, want 32", sz)
	}
	order, minSize := minimalReorder(st)
	if minSize != 24 {
		t.Errorf("minimal size = %d, want 24", minSize)
	}
	// Stable sort: align desc, size desc, then declaration order — the
	// two float64s keep their relative order, as do the two bools.
	if got, want := renderOrder(st, order), "b, d, a, c"; got != want {
		t.Errorf("reorder = %q, want %q", got, want)
	}

	// A struct already at its minimum reorders to itself, saving zero.
	tight := types.NewStruct([]*types.Var{mk("x", f64), mk("y", i32), mk("z", i32)}, nil)
	if _, min := minimalReorder(tight); min != layoutSizes.Sizeof(tight) {
		t.Errorf("tight struct: minimal %d != current %d", min, layoutSizes.Sizeof(tight))
	}
}

// TestFalseShareRendering pins the evidence in the sibling-field
// finding: both spawn lines, both field names, and the byte gap.
func TestFalseShareRendering(t *testing.T) {
	t.Parallel()
	pkg := loadFixture(t, "falseshare")
	diags := Run(pkg, []*Analyzer{FalseShare})
	var fieldFinding, elemFinding, padFinding bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "fields hits and misses"):
			fieldFinding = true
			for _, frag := range []string{"goroutines spawned at lines", "8 bytes apart", "64-byte cache line"} {
				if !strings.Contains(d.Message, frag) {
					t.Errorf("field finding missing %q: %s", frag, d.Message)
				}
			}
		case strings.Contains(d.Message, "elements of partial"):
			elemFinding = true
			if !strings.Contains(d.Message, "8-byte float64, 8 per 64-byte cache line") {
				t.Errorf("element finding does not quote size and density: %s", d.Message)
			}
			if !strings.Contains(d.Message, "//imc:padded") {
				t.Errorf("element finding does not name the sanctioned fix: %s", d.Message)
			}
		case strings.Contains(d.Message, "//imc:padded struct drifted"):
			padFinding = true
			if !strings.Contains(d.Message, "72 bytes") || !strings.Contains(d.Message, "_ [56]byte") {
				t.Errorf("pad-verification finding does not quote size and fix: %s", d.Message)
			}
		}
	}
	if !fieldFinding || !elemFinding || !padFinding {
		t.Errorf("missing findings: field=%v elem=%v pad=%v", fieldFinding, elemFinding, padFinding)
	}
}

// TestValueCopyRendering pins the byte size and loop depth every
// valuecopy finding must carry.
func TestValueCopyRendering(t *testing.T) {
	t.Parallel()
	pkg := loadFixture(t, "valuecopy")
	diags := Run(pkg, []*Analyzer{ValueCopy})
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "64-byte") {
			t.Errorf("finding does not carry the byte size: %s", d.Message)
		}
		if !strings.Contains(d.Message, "loop depth 1") {
			t.Errorf("finding does not carry the loop depth: %s", d.Message)
		}
	}
}

// TestPresizeRendering pins the derived bound and the birth line in the
// presize message — the finding must hand the fix over, not just point.
func TestPresizeRendering(t *testing.T) {
	t.Parallel()
	pkg := loadFixture(t, "presize")
	diags := Run(pkg, []*Analyzer{Presize})
	wantBounds := map[string]bool{"len(s)": false, "n": false, "k": false}
	for _, d := range diags {
		if !strings.Contains(d.Message, "was born without capacity at line") {
			t.Errorf("finding does not locate the birth: %s", d.Message)
		}
		if !strings.Contains(d.Message, "make(…, 0, ") || !strings.Contains(d.Message, "[:0]") {
			t.Errorf("finding does not offer both sanctioned fixes: %s", d.Message)
		}
		for bound := range wantBounds {
			if strings.Contains(d.Message, "bounded by "+bound+" ") {
				wantBounds[bound] = true
			}
		}
	}
	for bound, seen := range wantBounds {
		if !seen {
			t.Errorf("no finding derived bound %q", bound)
		}
	}
}

// TestLayoutContractDeterminism loads each memory-layout fixture twice,
// independently, and requires byte-identical diagnostic streams.
func TestLayoutContractDeterminism(t *testing.T) {
	t.Parallel()
	render := func(diags []Diagnostic) string {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	checks := map[string]*Analyzer{
		"structlayout": StructLayout,
		"falseshare":   FalseShare,
		"valuecopy":    ValueCopy,
		"presize":      Presize,
	}
	for name, a := range checks {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			one := render(Run(loadFixture(t, name), []*Analyzer{a}))
			two := render(Run(loadFixture(t, name), []*Analyzer{a}))
			if one != two {
				t.Errorf("diagnostics differ across independent loads:\n--- first\n%s--- second\n%s", one, two)
			}
			if one == "" {
				t.Error("no diagnostics produced; determinism check is vacuous")
			}
		})
	}
}
