package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and (best-effort) type-checked
// package, ready for analysis.
type Package struct {
	// Path is the import path ("imc/internal/ric").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package (possibly incomplete).
	Types *types.Package
	// Info carries expression types; entries may be missing where
	// type checking could not recover. Analyzers must treat absent or
	// invalid types as "unknown", never as proof.
	Info *types.Info
	// TypeErrors collects the (tolerated) type-check errors.
	TypeErrors []error
	// Prog back-links the whole-program view when the package was loaded
	// as part of one (NewProgram). Nil for bare fixture loads, in which
	// case the interprocedural analyzers degrade to intra-procedural
	// behavior or skip.
	Prog *Program
}

// Loader discovers, parses, and type-checks the module's packages. Type
// checking is best-effort: the loader resolves module-internal imports
// and standard-library imports from source and tolerates anything it
// cannot resolve, because the analyzers only need types locally (e.g.
// "is this operand a float64"), not a fully closed program.
type Loader struct {
	// ModuleDir is the directory containing go.mod.
	ModuleDir string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset     *token.FileSet
	buildCtx build.Context
	imported map[string]*types.Package
	loading  map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir
// (searching upward for go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		modDir = parent
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", modDir)
	}
	ctx := build.Default
	// Pure-Go variants of std packages (net, os/user, ...) type-check
	// from source without a C toolchain; cgo variants do not.
	ctx.CgoEnabled = false
	return &Loader{
		ModuleDir:  modDir,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		buildCtx:   ctx,
		imported:   make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}, nil
}

// Load resolves patterns into packages. Supported patterns: "./..."
// (every package under the module, skipping testdata, vendor, and
// hidden directories) and directory paths relative to the module root
// (e.g. "./internal/ric"). Test files (_test.go) are never loaded: the
// suite lints production code.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	addDir := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walkPackageDirs(l.ModuleDir, addDir); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModuleDir, strings.TrimSuffix(pat, "/..."))
			if err := l.walkPackageDirs(root, addDir); err != nil {
				return nil, err
			}
		default:
			dir := pat
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(l.ModuleDir, pat)
			}
			addDir(filepath.Clean(dir))
		}
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: load %s: %w", dir, err)
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// walkPackageDirs calls add for every directory under root holding at
// least one non-test .go file.
func (l *Loader) walkPackageDirs(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				add(path)
				break
			}
		}
		return nil
	})
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir. Returns nil when
// the directory holds no buildable non-test Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	files, err := l.parseDir(dir, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check never hard-fails here: with an Error handler installed it
	// returns a partial package, which is all the analyzers need.
	pkg.Types, _ = conf.Check(path, l.fset, files, pkg.Info)
	return pkg, nil
}

// parseDir parses the build-constrained non-test Go files of dir.
func (l *Loader) parseDir(dir string, mode parser.Mode) ([]*ast.File, error) {
	bp, err := l.buildCtx.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Import implements types.Importer by recursively type-checking the
// imported package from source: module-internal paths resolve under
// ModuleDir, everything else under GOROOT/src (with the std vendor
// directory as fallback). Failures return an error, which the tolerant
// type-checker surfaces as a per-file error rather than aborting.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.imported[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import failed for %q", path)
		}
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	dir, err := l.resolveDir(path)
	if err != nil {
		l.imported[path] = nil
		return nil, err
	}
	files, err := l.parseDir(dir, 0)
	if err != nil || len(files) == 0 {
		l.imported[path] = nil
		if err == nil {
			err = fmt.Errorf("lint: no Go files in %s", dir)
		}
		return nil, err
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(error) {}, // tolerate; dependents see what resolved
	}
	pkg, _ := conf.Check(path, l.fset, files, nil)
	if pkg == nil {
		l.imported[path] = nil
		return nil, fmt.Errorf("lint: type-check failed for %q", path)
	}
	// Mark complete even when partially checked so go/types accepts it.
	pkg.MarkComplete()
	l.imported[path] = pkg
	return pkg, nil
}

// resolveDir maps an import path to a source directory.
func (l *Loader) resolveDir(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	goroot := runtime.GOROOT()
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("lint: cannot resolve import %q (module-external, not in GOROOT)", path)
}
