package lint

import "go/ast"

// dataflow.go is the small forward-dataflow framework the flow-
// sensitive analyzers (errflow, sharemut) share. A FlowProblem supplies
// the lattice (Merge/Equal), the transfer function over one block
// statement, and the entry fact; Forward iterates to a fixed point over
// the CFG in reverse postorder and returns the fact at entry to every
// block. Analyzers then make exactly one reporting pass, replaying the
// transfer function over each block from its stable entry fact — that
// split (silent fixed point, then a single replay) is what keeps
// diagnostics from duplicating across worklist iterations.
//
// Facts are opaque `any` values. Transfer must treat its input as
// immutable and return a fresh (or identical) fact; Merge likewise.
// Lattices here are tiny maps keyed by types.Object, so the copying
// cost is irrelevant next to parsing.

// FlowProblem defines one forward dataflow analysis.
type FlowProblem interface {
	// Entry returns the fact holding at function entry.
	Entry() any
	// Transfer pushes fact through one block node (a statement or a
	// compound statement's header expression — see Block.Stmts).
	Transfer(fact any, n ast.Node) any
	// Merge joins the facts of two incoming edges.
	Merge(a, b any) any
	// Equal reports whether two facts are equal (fixed-point test).
	Equal(a, b any) bool
}

// Forward runs the problem to a fixed point and returns the entry fact
// of every block, indexed like cfg.Blocks. Unreachable blocks keep a
// nil fact.
func Forward(cfg *CFG, p FlowProblem) []any {
	n := len(cfg.Blocks)
	in := make([]any, n)
	out := make([]any, n)
	rpo := cfg.reversePostorder()
	in[cfg.Entry.Index] = p.Entry()
	// Seed every reachable block's out with its transfer of the current
	// in; iterate until stable. Reverse postorder makes acyclic regions
	// converge in one pass and loops in a handful.
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			var fact any
			if blk == cfg.Entry {
				fact = in[blk.Index]
			} else {
				first := true
				for _, pred := range blk.Preds {
					po := out[pred.Index]
					if po == nil {
						continue
					}
					if first {
						fact, first = po, false
					} else {
						fact = p.Merge(fact, po)
					}
				}
				if first {
					continue // no reachable predecessor yet
				}
				if in[blk.Index] == nil || !p.Equal(in[blk.Index], fact) {
					in[blk.Index] = fact
				}
			}
			next := transferBlock(p, fact, blk)
			if out[blk.Index] == nil || !p.Equal(out[blk.Index], next) {
				out[blk.Index] = next
				changed = true
			}
		}
	}
	return in
}

// transferBlock pushes a fact through every node of one block.
func transferBlock(p FlowProblem, fact any, blk *Block) any {
	for _, n := range blk.Stmts {
		fact = p.Transfer(fact, n)
	}
	return fact
}

// ReplayBlocks calls visit(fact, node) for every node of every
// reachable block, with fact being the dataflow state just before the
// node — the single reporting pass analyzers run after Forward.
func ReplayBlocks(cfg *CFG, p FlowProblem, in []any, visit func(fact any, n ast.Node)) {
	for _, blk := range cfg.Blocks {
		fact := in[blk.Index]
		if fact == nil {
			continue
		}
		for _, n := range blk.Stmts {
			visit(fact, n)
			fact = p.Transfer(fact, n)
		}
	}
}
