package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The exhaustive analyzer checks dispatch switches against the enum
// registry built by the summary infrastructure (enumGroups): a switch
// whose cases name members of a registered constant group — a named
// type's package-level constants, or an untyped-string const block like
// the algorithm-name set in internal/expt — must either cover every
// member or carry a default. Without it, registering a ninth algorithm
// compiles clean and silently falls through the dispatch in every
// switch that forgot the new case.

// Exhaustive flags non-exhaustive switches over registered const sets.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over registered const sets (algorithm names, weight schemes) must cover every member or have a default",
	Kind: KindInterprocedural,
	Run:  checkExhaustive,
}

func checkExhaustive(pkg *Package, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	local := enumGroups(pkg)
	// foreign caches other packages' registries (serve switches over
	// expt's constants), resolvable only inside a whole-program load.
	// The lookup is by package path and constant name, not object
	// identity: the loader type-checks each package in its own universe,
	// so the analyzed package's const objects are distinct from every
	// importer's view of them (see CallGraph.byName).
	foreign := make(map[string]map[string]*EnumGroup)
	groupFor := func(obj types.Object) *EnumGroup {
		if g, ok := local[obj]; ok {
			return g
		}
		if pkg.Prog == nil || obj.Pkg() == nil || obj.Pkg() == pkg.Types {
			return nil
		}
		path := obj.Pkg().Path()
		idx, cached := foreign[path]
		if !cached {
			for _, other := range pkg.Prog.Packages {
				if other.Path != path {
					continue
				}
				idx = make(map[string]*EnumGroup)
				for o, g := range enumGroups(other) {
					idx[o.Name()] = g
				}
				break
			}
			foreign[path] = idx // nil when the package is outside the program
		}
		if idx == nil {
			return nil
		}
		return idx[obj.Name()]
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			var (
				group      *EnumGroup
				hasDefault bool
				covered    = make(map[string]bool)
			)
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, expr := range cc.List {
					id := caseIdent(expr)
					if id == nil {
						continue
					}
					obj := identObject(pkg, id)
					c, ok := obj.(*types.Const)
					if !ok {
						continue
					}
					g := groupFor(c)
					if g == nil {
						continue
					}
					if group == nil {
						group = g
					}
					if g == group {
						// By name, not Members[c]: for a foreign group
						// c is this package's view of the constant, not
						// the defining universe's object that keys
						// Members. The declared name is the same in
						// both.
						covered[c.Name()] = true
					}
				}
			}
			if group == nil || hasDefault {
				return true
			}
			var missing []string
			seen := make(map[string]bool)
			for _, name := range group.Order {
				if !covered[name] && !seen[name] {
					seen[name] = true
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				r.Reportf("exhaustive", sw.Pos(),
					"switch over %s is not exhaustive: missing %s (add the cases or a default)",
					group.Name, strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// caseIdent unwraps a case expression to the identifier naming a
// constant: bare `AlgUBG` or qualified `expt.AlgUBG`.
func caseIdent(expr ast.Expr) *ast.Ident {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}
