package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the concurrency substrate of the v4 analyzers: lock
// identities, per-function acquired-lock facts propagated bottom-up
// over the call graph, a CFG-accurate "which locks are must-held here"
// walker, and the global lock-order graph with its cycle detection.
// lockorder and lockheld are thin consumers; the substrate is computed
// once per Program and cached (same lazy pattern as the layering
// contract and the API snapshot).
//
// Lock identity is TYPE-level, not instance-level: `s.mu` on any
// *Store resolves to "imc/internal/job.Store.mu". Two instances of the
// same struct are indistinguishable, which over-approximates (locking
// a.mu then b.mu of two different Stores reports a self-edge) but is
// exactly the granularity a lock-ORDER discipline is stated at — "take
// Pool.mu before Store.mu" is a rule about types. Package-level mutex
// variables resolve to "pkgpath.varname"; local mutexes are skipped
// (they cannot participate in a cross-function ordering). Embedded
// mutexes (method promotion through an anonymous field) are not
// resolved — a documented gap, the repo convention is named fields.
//
// Must-held tracking is a forward dataflow over the function's CFG
// with set-intersection meet: a lock counts as held at a point only if
// it is held on EVERY path reaching it, so a branch that conditionally
// locks never poisons the merge. Three subtree classes are excluded
// from the walk:
//
//   - `go` statements: the spawned call runs on another goroutine,
//     under a schedule where the caller's locks are not held;
//   - function literals: a closure executes under its invoker's
//     schedule, not at its creation point (each literal body is a
//     candidate for its own walk, not part of the encloser's);
//   - `defer` statements: deferred work runs at return. In the
//     dominant `defer mu.Unlock()` idiom the lock is simply held to
//     the end of the function, which the walker models by never seeing
//     the release.

// lockID identifies a mutex at type granularity:
// "pkgpath.TypeName.field" for struct-field mutexes,
// "pkgpath.varname" for package-level mutex variables.
type lockID string

// lockAcq is one entry of a function's acquired-lock summary: the
// site where the lock is (transitively) acquired, and the callee the
// fact arrived through (nil for a direct Lock call).
type lockAcq struct {
	pos token.Pos
	via *FuncNode
}

// lockEdgeInfo is one lock-order edge witness: fn acquires `to`
// (directly at pos, or via the callee called at pos) while holding
// `from` (locked at fromPos).
type lockEdgeInfo struct {
	from, to lockID
	fn       *FuncNode
	fromPos  token.Pos
	pos      token.Pos
	via      *FuncNode
}

// lockInfo is the program-wide lock view.
type lockInfo struct {
	// acquires maps each function to the locks it may acquire
	// synchronously on the caller's goroutine (transitively closed).
	acquires map[*FuncNode]map[lockID]lockAcq
	// edges keeps the first witness per ordered lock pair; edgeList
	// preserves discovery order (deterministic: graph node order, then
	// reverse postorder within a function).
	edges    map[[2]lockID]*lockEdgeInfo
	edgeList []*lockEdgeInfo
	// ids lists every distinct lock identity observed, sorted.
	ids []lockID
	// cycles lists the strongly connected components of the lock graph
	// with ≥ 2 locks (or a self-edge), members sorted — each one a
	// potential deadlock.
	cycles [][]lockID
}

// locks returns the program's lock view, computing it on first use.
func (p *Program) locks() *lockInfo {
	if p.lockinfo == nil {
		p.lockinfo = computeLockInfo(p)
	}
	return p.lockinfo
}

// LockGraphStats summarizes the lock-order graph for -graph and the
// JSON findings artifact.
type LockGraphStats struct {
	Locks  int `json:"locks"`
	Edges  int `json:"edges"`
	Cycles int `json:"cycles"`
}

// LockStats returns the lock-graph counts.
func (p *Program) LockStats() LockGraphStats {
	li := p.locks()
	return LockGraphStats{Locks: len(li.ids), Edges: len(li.edgeList), Cycles: len(li.cycles)}
}

// DumpLocks renders the lock-order graph for `imclint -graph`: a stats
// header, one line per ordered edge with its witness, then any cycles.
// Deterministic.
func (p *Program) DumpLocks(w *strings.Builder) {
	li := p.locks()
	w.WriteString("lockgraph: locks=")
	writeInt(w, len(li.ids))
	w.WriteString(" edges=")
	writeInt(w, len(li.edgeList))
	w.WriteString(" cycles=")
	writeInt(w, len(li.cycles))
	w.WriteString("\n")
	edges := append([]*lockEdgeInfo(nil), li.edgeList...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		w.WriteString(string(e.from))
		w.WriteString(" -> ")
		w.WriteString(string(e.to))
		w.WriteString(" (")
		w.WriteString(e.fn.Name())
		w.WriteString(" at ")
		w.WriteString(shortPos(e.fn.Pkg.Fset.Position(e.pos)))
		w.WriteString(")\n")
	}
	for _, cyc := range li.cycles {
		w.WriteString("cycle: ")
		for i, id := range cyc {
			if i > 0 {
				w.WriteString(" ⇄ ")
			}
			w.WriteString(string(id))
		}
		w.WriteString("\n")
	}
}

// --- lock identity ------------------------------------------------------

// mutexMethodCall matches `x.Lock()` / `x.Unlock()` / `x.RLock()` /
// `x.RUnlock()` where x is a sync.Mutex or sync.RWMutex (possibly
// through a pointer), returning the receiver expression and the method
// name. TryLock/TryRLock are deliberately unmatched: a try may fail,
// so the lock is not must-held after it.
func mutexMethodCall(pkg *Package, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || pkg.Info == nil {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil || !isSyncMutexType(tv.Type) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// isSyncMutexType reports whether t is sync.Mutex or sync.RWMutex
// (pointer dereferenced).
func isSyncMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockIdent resolves a mutex receiver expression to its type-level
// identity. Struct fields resolve through go/types selections to the
// owning named type; package-level variables to their package path.
// Locals return false.
func lockIdent(pkg *Package, expr ast.Expr) (lockID, bool) {
	if pkg.Info == nil {
		return "", false
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return "", false
			}
			tn := named.Obj()
			return lockID(tn.Pkg().Path() + "." + tn.Name() + "." + sel.Obj().Name()), true
		}
		// Qualified package-level variable: pkg.Mu.
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil {
			return lockID(v.Pkg().Path() + "." + v.Name()), true
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok && !v.IsField() && v.Pkg() != nil {
			if v.Parent() == v.Pkg().Scope() {
				return lockID(v.Pkg().Path() + "." + v.Name()), true
			}
		}
	}
	return "", false
}

// --- subtree exclusion --------------------------------------------------

// goSubtrees marks every node lexically under a `go` statement's call.
func goSubtrees(body ast.Node) map[ast.Node]bool {
	skip := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			markSubtree(skip, g.Call)
		}
		return true
	})
	return skip
}

// markSubtree adds root and everything under it to set.
func markSubtree(set map[ast.Node]bool, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n != nil {
			set[n] = true
		}
		return true
	})
}

// --- acquired-lock facts ------------------------------------------------

// computeLockInfo builds the program's lock view: local acquired-lock
// sets, transitive closure over the call-graph SCC condensation, then
// one must-held walk per function to record lock-order edges, and
// finally cycle detection over the resulting lock graph.
func computeLockInfo(prog *Program) *lockInfo {
	li := &lockInfo{
		acquires: make(map[*FuncNode]map[lockID]lockAcq),
		edges:    make(map[[2]lockID]*lockEdgeInfo),
	}
	if prog.Graph == nil {
		return li
	}
	// Per-node goroutine-subtree exclusion, shared by the local pass and
	// the edge propagation below; transient, dropped when we return.
	skips := make(map[*FuncNode]map[ast.Node]bool, len(prog.Graph.Nodes))

	// 1. Local acquisitions. Function literals and defers are included
	// here (consistent with effect folding: the closure MAY run on this
	// goroutine); go-spawned subtrees are not.
	for _, node := range prog.Graph.Nodes {
		if node.Decl.Body == nil {
			continue
		}
		skip := goSubtrees(node.Decl.Body)
		skips[node] = skip
		acq := make(map[lockID]lockAcq)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if skip[n] {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := mutexMethodCall(node.Pkg, call)
			if !ok || (method != "Lock" && method != "RLock") {
				return true
			}
			if id, ok := lockIdent(node.Pkg, recv); ok {
				if _, seen := acq[id]; !seen {
					acq[id] = lockAcq{pos: call.Pos()}
				}
			}
			return true
		})
		li.acquires[node] = acq
	}

	// 2. Transitive closure, callees-first over the SCC condensation
	// (Tarjan emits SCCs in reverse topological order), iterating each
	// SCC to a fixed point for recursion cycles.
	for _, scc := range tarjanSCC(prog.Graph) {
		for changed := true; changed; {
			changed = false
			for _, node := range scc {
				acq := li.acquires[node]
				if acq == nil {
					continue
				}
				skip := skips[node]
				for i := range node.Calls {
					edge := &node.Calls[i]
					if edge.Callee == nil || skip[edge.Site] {
						continue
					}
					for id := range li.acquires[edge.Callee] {
						if _, seen := acq[id]; !seen {
							acq[id] = lockAcq{pos: edge.Site.Pos(), via: edge.Callee}
							changed = true
						}
					}
				}
			}
		}
	}

	// 3. Lock-order edges: one must-held walk per function. The first
	// witness per ordered pair wins; node order (package path, source
	// position) and the walker's reverse-postorder replay make that
	// first witness deterministic.
	for _, node := range prog.Graph.Nodes {
		w := newHeldWalker(node)
		if w == nil {
			continue
		}
		w.walk(func(held map[lockID]heldLock, op lockOp) {
			if len(held) == 0 {
				return
			}
			switch op.kind {
			case opAcquire:
				for _, from := range sortedLockIDs(held) {
					li.addEdge(from, op.id, node, held[from].pos, op.pos, nil)
				}
			case opCall:
				if op.edge.Callee == nil {
					return
				}
				callee := op.edge.Callee
				tos := make([]lockID, 0, len(li.acquires[callee]))
				for to := range li.acquires[callee] {
					tos = append(tos, to)
				}
				sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
				for _, to := range tos {
					for _, from := range sortedLockIDs(held) {
						li.addEdge(from, to, node, held[from].pos, op.pos, callee)
					}
				}
			}
		})
	}

	// 4. Distinct identities (from acquisitions, so a lock never held
	// concurrently with another still counts toward the stats).
	idSet := make(map[lockID]bool)
	for _, acq := range li.acquires {
		for id := range acq {
			idSet[id] = true
		}
	}
	for id := range idSet {
		li.ids = append(li.ids, id)
	}
	sort.Slice(li.ids, func(i, j int) bool { return li.ids[i] < li.ids[j] })

	li.cycles = lockCycles(li)
	return li
}

// addEdge records the first witness of an ordered lock pair.
func (li *lockInfo) addEdge(from, to lockID, fn *FuncNode, fromPos, pos token.Pos, via *FuncNode) {
	key := [2]lockID{from, to}
	if li.edges[key] != nil {
		return
	}
	e := &lockEdgeInfo{from: from, to: to, fn: fn, fromPos: fromPos, pos: pos, via: via}
	li.edges[key] = e
	li.edgeList = append(li.edgeList, e)
}

// sortedLockIDs returns held's keys in sorted order (map iteration
// would make witness selection nondeterministic).
func sortedLockIDs(held map[lockID]heldLock) []lockID {
	out := make([]lockID, 0, len(held))
	for id := range held {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lockCycles finds the strongly connected components of the lock graph
// with ≥ 2 members or a self-edge — the potential deadlocks. The lock
// graph is tiny (a handful of identities), so a recursive Tarjan is
// fine here.
func lockCycles(li *lockInfo) [][]lockID {
	adj := make(map[lockID][]lockID)
	nodes := make(map[lockID]bool)
	self := make(map[lockID]bool)
	for _, e := range li.edgeList {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
		if e.from == e.to {
			self[e.from] = true
		}
	}
	order := make([]lockID, 0, len(nodes))
	for id := range nodes {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, succs := range adj {
		sort.Slice(succs, func(i, j int) bool { return succs[i] < succs[j] })
	}

	index := make(map[lockID]int)
	lowlink := make(map[lockID]int)
	onStack := make(map[lockID]bool)
	var stack []lockID
	var cycles [][]lockID
	counter := 0
	var strongconnect func(v lockID)
	strongconnect = func(v lockID) {
		index[v] = counter
		lowlink[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var comp []lockID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 || self[comp[0]] {
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				cycles = append(cycles, comp)
			}
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i][0] < cycles[j][0] })
	return cycles
}

// cycleEdges returns the witness edges internal to one cycle's member
// set, sorted by (from, to) — for a two-lock inversion, exactly the
// two witness chains.
func (li *lockInfo) cycleEdges(cyc []lockID) []*lockEdgeInfo {
	in := make(map[lockID]bool, len(cyc))
	for _, id := range cyc {
		in[id] = true
	}
	out := make([]*lockEdgeInfo, 0, len(cyc))
	for _, e := range li.edgeList {
		if in[e.from] && in[e.to] {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

// witness renders one lock-order edge as a human-readable chain:
// either "fn locks B at pos while holding A (locked at pos)" or, for
// an inherited acquisition, the full call chain down to the Lock call.
func (li *lockInfo) witness(e *lockEdgeInfo) string {
	fset := e.fn.Pkg.Fset
	hold := fmt.Sprintf("while holding %s (locked at %s)", e.from, shortPos(fset.Position(e.fromPos)))
	if e.via == nil {
		return fmt.Sprintf("%s locks %s at %s %s", e.fn.Name(), e.to, shortPos(fset.Position(e.pos)), hold)
	}
	chain := []string{e.fn.Name(), e.via.Name()}
	cur := e.via
	terminal := e.pos
	terminalPkg := e.fn.Pkg
	seen := make(map[*FuncNode]bool)
	for cur != nil && !seen[cur] {
		seen[cur] = true
		a, ok := li.acquires[cur][e.to]
		if !ok {
			break
		}
		if a.via == nil {
			terminal = a.pos
			terminalPkg = cur.Pkg
			break
		}
		chain = append(chain, a.via.Name())
		cur = a.via
	}
	return fmt.Sprintf("%s locks %s at %s %s", formatChain(chain), e.to, shortPos(terminalPkg.Fset.Position(terminal)), hold)
}

// --- must-held walker ---------------------------------------------------

// heldLock records where a must-held lock was acquired in the current
// function and whether in read mode.
type heldLock struct {
	pos  token.Pos
	read bool
}

// lockOpKind classifies events the walker reports.
type lockOpKind int

const (
	// opAcquire: a Lock/RLock call; the emitted held set is the state
	// BEFORE the acquisition.
	opAcquire lockOpKind = iota
	// opRelease: an Unlock/RUnlock call (internal, never emitted).
	opRelease
	// opCall: a resolved call edge (in-program or external).
	opCall
	// opBlock: a directly blocking channel operation or no-default
	// select.
	opBlock
)

// lockOp is one event in a function's held walk.
type lockOp struct {
	kind lockOpKind
	pos  token.Pos
	id   lockID    // opAcquire / opRelease
	read bool      // opAcquire / opRelease: RLock/RUnlock
	edge *CallEdge // opCall
	desc string    // opBlock
}

// heldWalker runs the must-held dataflow over one function and replays
// it, firing a callback per event with the lock set held at that
// point. Shared by the lock-order edge pass and the lockheld analyzer.
type heldWalker struct {
	node *FuncNode
	cfg  *CFG
	ops  map[ast.Node][]lockOp // per placed block node, in source order
}

// newHeldWalker prepares the walk for node (nil when it has no body).
func newHeldWalker(node *FuncNode) *heldWalker {
	if node.Decl.Body == nil || node.Pkg.Info == nil {
		return nil
	}
	body := node.Decl.Body
	pkg := node.Pkg
	skip := goSubtrees(body)
	comms := selectCommOps(body)

	// Map each placed select communication statement back to its select,
	// so a no-default select is reported once (at the select keyword) no
	// matter which clause block the replay visits first.
	commOwner := make(map[ast.Node]*ast.SelectStmt)
	noDefault := make(map[*ast.SelectStmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		noDefault[sel] = !selectHasDefault(sel)
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
				commOwner[cc.Comm] = sel
			}
		}
		return true
	})

	siteEdge := make(map[*ast.CallExpr]*CallEdge, len(node.Calls))
	for i := range node.Calls {
		siteEdge[node.Calls[i].Site] = &node.Calls[i]
	}

	w := &heldWalker{node: node, cfg: BuildCFG(body), ops: make(map[ast.Node][]lockOp)}
	reportedSel := make(map[*ast.SelectStmt]bool)
	scan := func(stmt ast.Node) []lockOp {
		var ops []lockOp
		if sel := commOwner[stmt]; sel != nil && noDefault[sel] && !reportedSel[sel] {
			reportedSel[sel] = true
			ops = append(ops, lockOp{kind: opBlock, pos: sel.Pos(), desc: "a select without a default case"})
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			if n == nil || skip[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if recv, method, ok := mutexMethodCall(pkg, n); ok {
					if id, ok := lockIdent(pkg, recv); ok {
						op := lockOp{pos: n.Pos(), id: id}
						switch method {
						case "Lock":
							op.kind = opAcquire
						case "RLock":
							op.kind, op.read = opAcquire, true
						case "Unlock":
							op.kind = opRelease
						case "RUnlock":
							op.kind, op.read = opRelease, true
						}
						ops = append(ops, op)
					}
					return true
				}
				if e := siteEdge[n]; e != nil {
					ops = append(ops, lockOp{kind: opCall, pos: n.Pos(), edge: e})
				}
			case *ast.SendStmt:
				if !comms[n] {
					ops = append(ops, lockOp{kind: opBlock, pos: n.Pos(), desc: "a channel send"})
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !comms[n] {
					ops = append(ops, lockOp{kind: opBlock, pos: n.Pos(), desc: "a channel receive"})
				}
			}
			return true
		})
		return ops
	}
	for _, blk := range w.cfg.Blocks {
		for _, stmt := range blk.Stmts {
			if _, ok := stmt.(rangeBind); ok {
				continue // key/value binds carry no lock events
			}
			if ops := scan(stmt); len(ops) > 0 {
				w.ops[stmt] = ops
			}
		}
	}
	return w
}

// walk runs the must-held fixed point (intersection meet over reverse
// postorder), then replays every reachable block firing emit per
// acquire/call/block event with the held set at that point. For
// opAcquire the emitted set is the state before the new lock lands.
func (w *heldWalker) walk(emit func(held map[lockID]heldLock, op lockOp)) {
	n := len(w.cfg.Blocks)
	in := make([]map[lockID]heldLock, n)
	out := make([]map[lockID]heldLock, n)
	rpo := w.cfg.reversePostorder()
	in[w.cfg.Entry.Index] = map[lockID]heldLock{}
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			if blk != w.cfg.Entry {
				merged := meetPreds(blk, out)
				if merged == nil {
					continue // no computed predecessor yet
				}
				if !heldEqual(in[blk.Index], merged) {
					in[blk.Index] = merged
					changed = true
				}
			}
			next := w.apply(in[blk.Index], blk, nil)
			if !heldEqual(out[blk.Index], next) {
				out[blk.Index] = next
				changed = true
			}
		}
	}
	for _, blk := range rpo {
		if in[blk.Index] == nil {
			continue
		}
		w.apply(in[blk.Index], blk, emit)
	}
}

// apply runs blk's events over a copy of held, optionally emitting.
func (w *heldWalker) apply(held map[lockID]heldLock, blk *Block, emit func(map[lockID]heldLock, lockOp)) map[lockID]heldLock {
	cur := make(map[lockID]heldLock, len(held))
	for id, h := range held {
		cur[id] = h
	}
	for _, stmt := range blk.Stmts {
		for _, op := range w.ops[stmt] {
			switch op.kind {
			case opAcquire:
				if emit != nil {
					emit(cur, op)
				}
				if _, ok := cur[op.id]; !ok {
					cur[op.id] = heldLock{pos: op.pos, read: op.read}
				}
			case opRelease:
				delete(cur, op.id)
			case opCall, opBlock:
				if emit != nil {
					emit(cur, op)
				}
			}
		}
	}
	return cur
}

// meetPreds intersects the out-sets of blk's computed predecessors
// (must-analysis: held only if held on every incoming path). Returns
// nil when no predecessor has been computed yet.
func meetPreds(blk *Block, out []map[lockID]heldLock) map[lockID]heldLock {
	var merged map[lockID]heldLock
	first := true
	for _, p := range blk.Preds {
		po := out[p.Index]
		if po == nil {
			continue
		}
		if first {
			first = false
			merged = make(map[lockID]heldLock, len(po))
			for id, h := range po {
				merged[id] = h
			}
			continue
		}
		for id, h := range merged {
			oh, ok := po[id]
			if !ok {
				delete(merged, id)
				continue
			}
			// Keep the earlier acquisition site for determinism; a lock
			// read-locked on any path counts as possibly-read-mode.
			if oh.pos < h.pos {
				h.pos = oh.pos
			}
			h.read = h.read || oh.read
			merged[id] = h
		}
	}
	if first {
		return nil
	}
	return merged
}

// heldEqual compares two held sets.
func heldEqual(a, b map[lockID]heldLock) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for id, h := range a {
		if bh, ok := b[id]; !ok || bh != h {
			return false
		}
	}
	return true
}
