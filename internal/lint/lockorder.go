package lint

import (
	"strings"
)

// The lockorder analyzer reports cycles in the program's lock-order
// graph as potential deadlocks. An edge A → B means some function
// acquires B (directly, or through a callee) while holding A; a cycle
// means two goroutines can each hold one lock of the cycle while
// waiting for another — the classic inverted-pair deadlock — and a
// self-edge means a goroutine can re-acquire a mutex it already holds
// (Go mutexes are not reentrant: guaranteed self-deadlock).
//
// The graph is program-global (see locks.go), so each cycle is
// reported exactly once: at the first witness edge's position, in the
// package that owns it — which is also where a `//lint:allow
// lockorder: reason` suppression must live. The message prints every
// witness chain internal to the cycle, so a two-lock inversion shows
// both call chains.

// LockOrder is the lock-order cycle analyzer.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report cycles in the global lock-order graph as potential deadlocks",
	Kind: KindInterprocedural,
	Run:  runLockOrder,
}

func runLockOrder(pkg *Package, r *Reporter) {
	prog := pkg.Prog
	if prog == nil || prog.Graph == nil {
		return
	}
	li := prog.locks()
	for _, cyc := range li.cycles {
		edges := li.cycleEdges(cyc)
		if len(edges) == 0 {
			continue
		}
		first := edges[0]
		if first.fn.Pkg != pkg {
			continue // reported in the witness's own package
		}
		witnesses := make([]string, len(edges))
		for i, e := range edges {
			witnesses[i] = li.witness(e)
		}
		var msg string
		if len(cyc) == 1 {
			msg = "potential deadlock: " + string(cyc[0]) +
				" acquired while already held (mutexes are not reentrant): " +
				strings.Join(witnesses, "; ")
		} else {
			ids := make([]string, len(cyc))
			for i, id := range cyc {
				ids[i] = string(id)
			}
			msg = "potential deadlock: lock-order cycle between " + strings.Join(ids, " and ") +
				": " + strings.Join(witnesses, "; ")
		}
		r.Reportf("lockorder", first.pos, "%s", msg)
	}
}
