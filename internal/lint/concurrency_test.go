package lint

import (
	"strings"
	"testing"
)

// TestLockOrderFixture runs the deadlock analyzer over its golden
// fixture and pins the part a substring want cannot: the inverted-pair
// cycle must print BOTH witness call chains, so the report alone tells
// the reader which two stacks to break apart.
func TestLockOrderFixture(t *testing.T) {
	t.Parallel()
	prog := loadProgram(t, false, "lockorder")
	pkg := progPkg(t, prog, "lockorder")
	diags := Run(pkg, []*Analyzer{LockOrder})
	matchWants(t, wantsIn(t, pkg), diags)

	var cycleMsg string
	for _, d := range diags {
		if strings.Contains(d.Message, "lock-order cycle") {
			cycleMsg = d.Message
		}
	}
	if cycleMsg == "" {
		t.Fatal("no lock-order cycle reported")
	}
	for _, frag := range []string{"TakeAB", "lockB", "TakeBA", "lockA"} {
		if !strings.Contains(cycleMsg, frag) {
			t.Errorf("cycle message missing witness fragment %q:\n%s", frag, cycleMsg)
		}
	}
}

// TestLockHeldFixture runs the blocking-under-mutex analyzer over its
// golden fixture.
func TestLockHeldFixture(t *testing.T) {
	t.Parallel()
	prog := loadProgram(t, false, "lockheld")
	pkg := progPkg(t, prog, "lockheld")
	diags := Run(pkg, []*Analyzer{LockHeld})
	matchWants(t, wantsIn(t, pkg), diags)

	// The transitive finding must name the callee chain and the local
	// blocking evidence, not just the call site.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "lockheld.(*Logger).sync") {
			found = true
			if !strings.Contains(d.Message, "Sync") {
				t.Errorf("transitive finding does not name the blocking evidence: %s", d.Message)
			}
		}
	}
	if !found {
		t.Error("no transitive finding through (*Logger).sync")
	}
}

// TestLockGraphStats pins the fixture's lock-order graph: three locks,
// three witness edges (the duplicate muA → muB from TakeABDirect folds
// into the first witness), and two cycles — the inversion and the
// self-edge.
func TestLockGraphStats(t *testing.T) {
	t.Parallel()
	prog := loadProgram(t, false, "lockorder")
	want := LockGraphStats{Locks: 3, Edges: 3, Cycles: 2}
	if got := prog.LockStats(); got != want {
		t.Errorf("LockStats = %+v, want %+v", got, want)
	}
}

// TestDumpLocksDeterministic builds the program twice and requires
// byte-identical lock-graph dumps: map-ordered iteration anywhere in
// the pipeline would flake CI diffs.
func TestDumpLocksDeterministic(t *testing.T) {
	t.Parallel()
	render := func() string {
		var sb strings.Builder
		loadProgram(t, false, "lockorder").DumpLocks(&sb)
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("lock dump not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "lockgraph: locks=3 edges=3 cycles=2") {
		t.Errorf("lock dump missing header:\n%s", a)
	}
}
