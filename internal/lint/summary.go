package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file computes bottom-up function summaries over the call graph:
// for every declared function, a conservative "may" lattice of effects
// (allocates, does IO, locks, touches package-level state, channel ops,
// spawns goroutines, calls through dynamic dispatch) closed under the
// transitive-callee relation. The computation condenses the graph into
// strongly connected components (iterative Tarjan) and propagates in
// reverse topological order, iterating each SCC to a fixed point —
// effects only ever grow, so convergence is immediate for acyclic
// regions and takes at most |SCC| rounds inside recursion cycles.
//
// Each inherited effect remembers the call edge it arrived through, so
// enforcement findings can print the offending call chain
// ("Add → helper → make([]T, n) at file:line") instead of a bare
// "callee is dirty" verdict.

// Effect is one bit of a function's may-effect summary.
type Effect uint32

const (
	// EffAlloc: the function may allocate (make/new, slice or map
	// literals, closures, string concatenation, interface boxing, or
	// append to a slice that is not recognized amortized scratch).
	EffAlloc Effect = 1 << iota
	// EffIO: the function may perform IO or a syscall (os, io, net,
	// syscall, fmt printing, …).
	EffIO
	// EffLock: the function may take a lock (calls into sync).
	EffLock
	// EffGlobalWrite: the function may write package-level state.
	EffGlobalWrite
	// EffGlobalRead: the function may read package-level mutable state.
	EffGlobalRead
	// EffParamWrite: the function may write through a parameter or
	// receiver (an effect its caller observes).
	EffParamWrite
	// EffChan: the function may perform a channel operation.
	EffChan
	// EffGo: the function may spawn a goroutine.
	EffGo
	// EffDynamic: the function makes a call the graph cannot resolve
	// (interface dispatch or a function value) — its true effect set is
	// unknown past that point.
	EffDynamic
	// EffBlock: the function may block indefinitely — a channel send or
	// receive outside a select-with-default, a select without a default
	// clause, file/network IO that can stall on the kernel, or
	// time.Sleep. Lock ACQUISITION is deliberately not EffBlock (that is
	// lockorder's domain), and neither are dynamic calls (EffDynamic
	// already marks the unknown; treating it as blocking would flag
	// every clock-function field call). The lockheld analyzer consumes
	// this bit.
	EffBlock
)

// effectNames order the String rendering.
var effectNames = []struct {
	bit  Effect
	name string
}{
	{EffAlloc, "alloc"},
	{EffIO, "io"},
	{EffLock, "lock"},
	{EffGlobalWrite, "gwrite"},
	{EffGlobalRead, "gread"},
	{EffParamWrite, "pwrite"},
	{EffChan, "chan"},
	{EffGo, "go"},
	{EffDynamic, "dynamic"},
	{EffBlock, "block"},
}

// String renders the set as "alloc|io|…".
func (e Effect) String() string {
	if e == 0 {
		return "none"
	}
	parts := make([]string, 0, len(effectNames))
	for _, n := range effectNames {
		if e&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, "|")
}

// Evidence explains why one effect bit is set: either a local construct
// (Via == nil; Pos/Desc point at it) or an inherited effect (Via is the
// callee it came through; Pos is the call site in THIS function).
type Evidence struct {
	Pos  token.Pos
	Desc string
	Via  *FuncNode
}

// Summary is one function's effect summary.
type Summary struct {
	// Effects is the transitive may-effect set.
	Effects Effect
	// Local is the subset of Effects with in-body evidence (before
	// callee propagation).
	Local Effect
	// evidence records, per effect bit, the first explanation found.
	evidence map[Effect]*Evidence
}

// EvidenceFor returns the stored explanation for one effect bit.
func (s *Summary) EvidenceFor(e Effect) *Evidence {
	if s == nil {
		return nil
	}
	return s.evidence[e]
}

// Chain reconstructs the call chain behind an inherited effect: the
// sequence of function names from (but excluding) the starting node
// down to the local evidence, plus that evidence. A cycle guard caps
// traversal inside recursive SCCs.
func (n *FuncNode) Chain(e Effect) (names []string, local *Evidence) {
	seen := make(map[*FuncNode]bool)
	cur := n
	for cur != nil && !seen[cur] {
		seen[cur] = true
		ev := cur.Summary.EvidenceFor(e)
		if ev == nil {
			return names, nil
		}
		if ev.Via == nil {
			return names, ev
		}
		names = append(names, ev.Via.Name())
		cur = ev.Via
	}
	return names, nil
}

// computeSummaries fills node.Summary for every graph node: local
// effects first, then SCC-condensed bottom-up propagation.
func computeSummaries(g *CallGraph) {
	scratchByPkg := make(map[*Package]map[types.Object]bool)
	for _, node := range g.Nodes {
		scratch := scratchByPkg[node.Pkg]
		if scratch == nil {
			scratch = packageScratchFields(node.Pkg)
			scratchByPkg[node.Pkg] = scratch
		}
		node.Summary = localSummary(node, scratch)
	}
	sccs := tarjanSCC(g)
	g.NumSCCs = len(sccs)
	for _, scc := range sccs {
		if len(scc) > g.LargestSCC {
			g.LargestSCC = len(scc)
		}
	}
	// Tarjan emits SCCs callees-first (reverse topological order of the
	// condensation), so a single in-order pass with an inner fixed
	// point settles everything.
	for _, scc := range sccs {
		for changed := true; changed; {
			changed = false
			for _, node := range scc {
				for i := range node.Calls {
					edge := &node.Calls[i]
					var inherited Effect
					var calleeName string
					if edge.Callee != nil {
						inherited = edge.Callee.Summary.Effects
						calleeName = edge.Callee.Name()
					} else {
						inherited, calleeName = externalEffects(edge.ExtPkg, edge.ExtRecv, edge.ExtName)
					}
					newBits := inherited &^ node.Summary.Effects
					if newBits == 0 {
						continue
					}
					node.Summary.Effects |= newBits
					changed = true
					for _, en := range effectNames {
						if newBits&en.bit == 0 {
							continue
						}
						ev := &Evidence{Pos: edge.Site.Pos(), Via: edge.Callee}
						if edge.Callee == nil {
							ev.Desc = "calls " + calleeName
						}
						node.Summary.evidence[en.bit] = ev
					}
				}
			}
		}
	}
}

// --- external (out-of-program) callee classification -------------------

// cleanStdlib lists import paths whose entire API is, for our purposes,
// allocation-free and side-effect-free. Kept deliberately tiny: adding
// a package here is a policy decision, not a convenience.
var cleanStdlib = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// ioStdlib lists import paths whose calls count as IO/syscall.
var ioStdlib = map[string]bool{
	"os":       true,
	"os/exec":  true,
	"io":       true,
	"io/fs":    true,
	"bufio":    true,
	"net":      true,
	"net/http": true,
	"syscall":  true,
	"log":      true,
	"log/slog": true,
	"time":     true, // clock reads are environment reads
}

// externalEffects classifies a call into a package outside the loaded
// program. Unknown packages default to "may allocate" — the safe
// assumption for hot-path enforcement — but not to IO or global writes,
// which would drown purity findings in noise. recv is the callee's
// receiver type name ("WaitGroup" for (*sync.WaitGroup).Wait), empty
// for package-level functions.
func externalEffects(pkgPath, recv, name string) (Effect, string) {
	display := pkgPath + "." + name
	var block Effect
	if externalBlocks(pkgPath, recv, name) {
		block = EffBlock
	}
	switch {
	case cleanStdlib[pkgPath]:
		return 0, display
	case pkgPath == "sync" || pkgPath == "sync/atomic":
		return EffLock | block, display
	case pkgPath == "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Scan") || strings.HasPrefix(name, "Fscan") {
			return EffAlloc | EffIO, display
		}
		return EffAlloc, display
	case ioStdlib[pkgPath]:
		return EffAlloc | EffIO | block, display
	default:
		return EffAlloc | block, display
	}
}

// externalBlocks is the blocking-op table for out-of-program callees:
// which stdlib calls can stall the calling goroutine indefinitely (or
// long enough to matter under a held mutex). Curated, not exhaustive —
// the policy mirrors externalEffects: network and syscall packages
// wholesale, file operations by name, the sleep/flush/copy helpers that
// hide IO. Deliberate exclusions, each a policy decision:
//
//   - sync.Mutex.Lock and friends: waiting on a LOCK is lockorder's
//     domain; flagging every nested acquisition as "blocking" would
//     duplicate the lock-order graph as noise.
//   - sync.Cond.Wait: the sanctioned wait-under-mutex idiom — Wait
//     atomically releases the mutex while parked, so "blocks while
//     holding" is exactly wrong. WaitGroup.Wait, by contrast, parks
//     while genuinely holding whatever the caller holds.
//   - encoding/json and other pure-compute packages: CPU under a lock
//     is a throughput question, not a liveness one.
func externalBlocks(pkgPath, recv, name string) bool {
	switch pkgPath {
	case "net", "net/http", "syscall":
		return true
	case "time":
		return name == "Sleep"
	case "os":
		switch name {
		case "Sync", "Write", "WriteString", "WriteAt", "Read", "ReadAt", "ReadFrom",
			"Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile",
			"Rename", "Remove", "RemoveAll", "Truncate", "Mkdir", "MkdirAll",
			"MkdirTemp", "Stat", "Lstat", "ReadDir", "Close", "Seek":
			return true
		}
		return false
	case "io":
		switch name {
		case "Copy", "CopyN", "CopyBuffer", "ReadAll", "ReadFull", "ReadAtLeast", "WriteString":
			return true
		}
		return false
	case "bufio":
		switch name {
		case "Flush", "Write", "WriteString", "WriteByte", "WriteRune",
			"Read", "ReadByte", "ReadBytes", "ReadString", "ReadLine", "ReadSlice", "ReadRune":
			return true
		}
		return false
	case "log", "log/slog":
		// Every emit path ends in a serialized write to the sink.
		return true
	case "sync":
		return name == "Wait" && recv != "Cond"
	}
	return false
}

// --- local effect detection --------------------------------------------

// localSummary scans one function body (nested literals included) for
// directly-evidenced effects. scratch is the package-wide sanctioned
// scratch-field set; function-local scratch slices are unioned in.
func localSummary(node *FuncNode, scratch map[types.Object]bool) *Summary {
	s := &Summary{evidence: make(map[Effect]*Evidence)}
	if node.Decl.Body == nil {
		// Unanalyzable body (assembly): assume the worst.
		s.add(EffAlloc|EffIO|EffGlobalWrite|EffDynamic, node.Decl.Pos(), "has no analyzable body")
		s.Local = s.Effects
		return s
	}
	pkg := node.Pkg
	local := scratchSlices(pkg, node.Decl.Body)
	isScratch := func(obj types.Object) bool {
		return obj != nil && (local[obj] || scratch[obj])
	}
	params := paramObjects(pkg, node.Decl)
	comms := selectCommOps(node.Decl.Body)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.add(EffAlloc, n.Pos(), "allocates a closure")
			return true // fold the literal's body in
		case *ast.CallExpr:
			localCallEffects(pkg, n, s, isScratch)
		case *ast.CompositeLit:
			if pkg.Info != nil {
				if tv, ok := pkg.Info.Types[n]; ok && tv.Type != nil {
					switch tv.Type.Underlying().(type) {
					case *types.Slice:
						s.add(EffAlloc, n.Pos(), "allocates a slice literal")
					case *types.Map:
						s.add(EffAlloc, n.Pos(), "allocates a map literal")
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pkg, n.X) {
				s.add(EffAlloc, n.OpPos, "concatenates strings")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pkg, n.Lhs[0]) {
				s.add(EffAlloc, n.TokPos, "concatenates strings (+=)")
			}
			for _, lhs := range n.Lhs {
				classifyStore(pkg, lhs, params, s)
			}
		case *ast.IncDecStmt:
			classifyStore(pkg, n.X, params, s)
		case *ast.SendStmt:
			s.add(EffChan, n.Pos(), "performs a channel send")
			if !comms[n] {
				s.add(EffBlock, n.Pos(), "blocks on a channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.add(EffChan, n.Pos(), "performs a channel receive")
				if !comms[n] {
					s.add(EffBlock, n.Pos(), "blocks on a channel receive")
				}
			}
		case *ast.SelectStmt:
			s.add(EffChan, n.Pos(), "executes a select")
			if !selectHasDefault(n) {
				s.add(EffBlock, n.Pos(), "blocks in a select without a default case")
			}
		case *ast.GoStmt:
			s.add(EffGo, n.Pos(), "spawns a goroutine")
		case *ast.Ident:
			if obj := packageLevelVar(pkg, n); obj != nil {
				s.add(EffGlobalRead, n.Pos(), "reads package-level state "+n.Name)
			}
		}
		return true
	})
	s.Local = s.Effects
	return s
}

// selectCommOps collects the channel-operation nodes (SendStmt, ARROW
// receives) that appear as the communication clause of a select inside
// body. A comm op only fires when its select picks it, and a select
// with a default never blocks — so these nodes are excluded from the
// per-op EffBlock evidence (the SelectStmt itself carries the blocking
// verdict).
func selectCommOps(body ast.Node) map[ast.Node]bool {
	comms := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				comms[comm] = true
			case *ast.ExprStmt:
				if ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					comms[ue] = true
				}
			case *ast.AssignStmt:
				for _, rhs := range comm.Rhs {
					if ue, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
						comms[ue] = true
					}
				}
			}
		}
		return true
	})
	return comms
}

// selectHasDefault reports whether sel carries a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// add records an effect with local evidence (first occurrence wins, so
// chains point at the earliest construct in source order).
func (s *Summary) add(e Effect, pos token.Pos, desc string) {
	for _, en := range effectNames {
		if e&en.bit == 0 {
			continue
		}
		if s.Effects&en.bit == 0 {
			s.Effects |= en.bit
			s.evidence[en.bit] = &Evidence{Pos: pos, Desc: desc}
		}
	}
}

// localCallEffects classifies one call expression's direct effects:
// allocating builtins, boxing at the call boundary, channel close, and
// dynamic dispatch. Static in-program callees contribute nothing here —
// their effects arrive through propagation.
func localCallEffects(pkg *Package, call *ast.CallExpr, s *Summary, isScratch func(types.Object) bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(pkg, id) {
		switch id.Name {
		case "make":
			s.add(EffAlloc, call.Pos(), "calls make")
		case "new":
			s.add(EffAlloc, call.Pos(), "calls new")
		case "append":
			if len(call.Args) > 0 && !isScratch(sliceBaseObject(pkg, call.Args[0])) {
				s.add(EffAlloc, call.Pos(), "appends to a non-scratch slice")
			}
		case "close":
			s.add(EffChan, call.Pos(), "closes a channel")
		}
		return
	}
	for _, arg := range boxedArgs(pkg, call) {
		if tv, ok := pkg.Info.Types[arg]; ok && tv.Type != nil {
			s.add(EffAlloc, arg.Pos(), fmt.Sprintf("boxes a %s into an interface", tv.Type))
		}
	}
	if res := resolveCall(pkg, call); res.kind == callDynamic {
		s.add(EffDynamic, call.Pos(), "makes a dynamic call (function value or interface method)")
	}
}

// classifyStore records the summary effect of one assignment target:
// EffGlobalWrite for package-level variables, EffParamWrite for writes
// THROUGH a parameter or receiver (plain reassignment of the parameter
// variable itself is a local effect). Blank and local targets are free.
func classifyStore(pkg *Package, lhs ast.Expr, params map[types.Object]bool, s *Summary) {
	root := storeRoot(lhs)
	id, ok := root.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if obj := packageLevelVar(pkg, id); obj != nil {
		s.add(EffGlobalWrite, lhs.Pos(), "writes package-level state "+id.Name)
		return
	}
	if obj := identObject(pkg, id); obj != nil && params[obj] {
		if _, plain := lhs.(*ast.Ident); !plain {
			s.add(EffParamWrite, lhs.Pos(), "writes through parameter "+id.Name)
		}
	}
}

// paramObjects collects fd's receiver, parameter, and result objects.
func paramObjects(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if pkg.Info == nil {
		return out
	}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	collect(fd.Type.Results)
	return out
}

// packageLevelVar resolves id to a package-scope *types.Var of the
// analyzed package, or nil.
func packageLevelVar(pkg *Package, id *ast.Ident) types.Object {
	if pkg.Info == nil || pkg.Types == nil {
		return nil
	}
	obj, ok := pkg.Info.Uses[id]
	if !ok {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() != pkg.Types.Scope() {
		return nil
	}
	return v
}

// boxedArgs returns the call arguments whose concrete non-pointer types
// are converted to interface parameters — each such pass copies the
// value to the heap. Shared by the intra allocfree pass and summaries.
func boxedArgs(pkg *Package, call *ast.CallExpr) []ast.Expr {
	if pkg.Info == nil {
		return nil
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	out := make([]ast.Expr, 0, len(call.Args))
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if boxingAllocates(at.Type) {
			out = append(out, arg)
		}
	}
	return out
}

// packageScratchFields collects the struct-field objects sanctioned as
// amortized scratch anywhere in the package: fields reset with
// `x.f = x.f[:0]`, fields assigned a 3-argument make, and fields
// initialized with a 3-argument make (or a [:0] reslice) inside a
// composite literal. A field sanctioned in one function (typically the
// constructor, which sizes it) is trusted in every other — growth of a
// capacity-bounded or epoch-reset buffer amortizes to zero allocations
// regardless of which method appends to it.
func packageScratchFields(pkg *Package) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if pkg.Info == nil {
		return out
	}
	sanctionedRHS := func(rhs ast.Expr) bool {
		if se, ok := rhs.(*ast.SliceExpr); ok && isZeroLenReslice(se) {
			return true
		}
		if call, ok := rhs.(*ast.CallExpr); ok && len(call.Args) == 3 {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && isBuiltin(pkg, id) {
				return true
			}
		}
		return false
	}
	fieldObj := func(obj types.Object) types.Object {
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if !sanctionedRHS(rhs) {
						continue
					}
					if obj := fieldObj(sliceBaseObject(pkg, n.Lhs[i])); obj != nil {
						out[obj] = true
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok || !sanctionedRHS(kv.Value) {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok {
						if obj := fieldObj(identObject(pkg, key)); obj != nil {
							out[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// --- SCC condensation --------------------------------------------------

// tarjanSCC computes strongly connected components of the call graph
// (in-program edges only) with an iterative Tarjan, returning them in
// emission order — callees before callers.
func tarjanSCC(g *CallGraph) [][]*FuncNode {
	n := len(g.Nodes)
	index := make([]int, n)
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	idx := make(map[*FuncNode]int, n)
	for i, node := range g.Nodes {
		idx[node] = i
		node.scc = -1
	}
	var (
		counter int
		numSCCs int
		stack   []int
		sccs    [][]*FuncNode
	)
	type frame struct {
		v    int
		edge int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{v: start}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.edge == 0 {
				index[v] = counter
				lowlink[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			calls := g.Nodes[v].Calls
			for f.edge < len(calls) {
				e := calls[f.edge]
				f.edge++
				if e.Callee == nil {
					continue
				}
				w := idx[e.Callee]
				if index[w] == -1 {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if lowlink[v] == index[v] {
				var comp []*FuncNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.Nodes[w].scc = numSCCs
					comp = append(comp, g.Nodes[w])
					if w == v {
						break
					}
				}
				numSCCs++
				sccs = append(sccs, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
		}
	}
	return sccs
}

// --- transitive contract traversal -------------------------------------

// contractViolation is one transitive contract breach found by
// walkContract: the direct call edge that starts the chain, the interior
// functions, and the local evidence at the end.
type contractViolation struct {
	// Edge is the call edge in the annotated function.
	Edge *CallEdge
	// Chain names the interior call path (excluding the direct callee
	// when the violation is the callee's own, including it otherwise).
	Chain []string
	// Evidence is the terminal local fact ("calls make", …) with its
	// position, or a synthesized fact for external callees.
	Desc string
	Pos  token.Position
}

// walkContract checks every resolved call edge in edges against the
// banned effect set, traversing through unannotated in-program callees
// and stopping at callees that carry boundary (they are enforced at
// their own declaration). One violation is reported per offending edge:
// the first banned effect's chain.
func walkContract(pkg *Package, edges []*CallEdge, banned Effect, boundary string) []contractViolation {
	out := make([]contractViolation, 0, len(edges))
	for _, edge := range edges {
		if edge.Callee != nil {
			if edge.Callee.Directives[boundary] {
				continue // enforced at its own annotation
			}
			hit := edge.Callee.Summary.Effects & banned
			if hit == 0 {
				continue
			}
			bit := firstEffect(hit)
			names, local := chainThrough(edge.Callee, bit, boundary)
			if local == nil {
				continue // the only paths run through annotated boundaries
			}
			v := contractViolation{
				Edge:  edge,
				Chain: append([]string{edge.Callee.Name()}, names...),
				Desc:  local.Desc,
			}
			evPkg := edge.Callee.Pkg
			v.Pos = evPkg.Fset.Position(local.Pos)
			out = append(out, v)
			continue
		}
		eff, name := externalEffects(edge.ExtPkg, edge.ExtRecv, edge.ExtName)
		if eff&banned == 0 {
			continue
		}
		out = append(out, contractViolation{
			Edge:  edge,
			Chain: []string{name},
			Desc:  effectDesc(firstEffect(eff & banned)),
			Pos:   pkg.Fset.Position(edge.Site.Pos()),
		})
	}
	return out
}

// chainThrough walks evidence links from start for one effect bit,
// refusing chains that pass through a boundary-annotated function (the
// effect is that function's own business) and returning the terminal
// local evidence. Returns nil evidence when no boundary-free chain
// exists.
func chainThrough(start *FuncNode, bit Effect, boundary string) (names []string, local *Evidence) {
	seen := make(map[*FuncNode]bool)
	cur := start
	for cur != nil && !seen[cur] {
		seen[cur] = true
		ev := cur.Summary.EvidenceFor(bit)
		if ev == nil {
			return names, nil
		}
		if ev.Via == nil {
			return names, ev
		}
		if ev.Via.Directives[boundary] {
			// The stored chain routes through an enforced boundary.
			// A cleaner path may exist, but hunting for it would make
			// reporting order-dependent; treat as covered.
			return names, nil
		}
		names = append(names, ev.Via.Name())
		cur = ev.Via
	}
	return names, nil
}

// firstEffect returns the lowest set bit as an Effect.
func firstEffect(e Effect) Effect {
	return e & (-e)
}

// effectDesc renders a one-word reason for an external-callee effect.
func effectDesc(e Effect) string {
	switch e {
	case EffAlloc:
		return "may allocate"
	case EffIO:
		return "performs IO"
	case EffLock:
		return "takes a lock"
	case EffGlobalWrite:
		return "writes package-level state"
	case EffGlobalRead:
		return "reads package-level state"
	case EffParamWrite:
		return "writes through its parameters"
	case EffChan:
		return "performs channel operations"
	case EffGo:
		return "spawns goroutines"
	case EffDynamic:
		return "makes a dynamic call"
	case EffBlock:
		return "may block"
	default:
		return e.String()
	}
}

// formatChain renders "a → b → c" for findings.
func formatChain(chain []string) string {
	return strings.Join(chain, " → ")
}

// shortPos renders evidence positions as "file.go:12" (base name only)
// so messages stay stable under checkout moves.
func shortPos(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// --- enum registry -----------------------------------------------------

// EnumGroup is one registered enumeration: either all package-level
// constants of a shared named type, or a block of same-typed untyped
// constants declared in one const declaration. The exhaustive analyzer
// checks switch statements against these groups.
type EnumGroup struct {
	// Name labels the group in findings: the named type's display name,
	// or "<file:line> const block" for untyped blocks.
	Name string
	// Members maps each constant object to its declared name.
	Members map[types.Object]string
	// Order lists member names in declaration order.
	Order []string
}

// enumGroups builds the package's enum registry: named-type groups
// keyed by the type object, plus per-const-block groups for untyped
// string constants (the dispatch-table idiom: AlgUBG, AlgMAF, …).
func enumGroups(pkg *Package) map[types.Object]*EnumGroup {
	byConst := make(map[types.Object]*EnumGroup)
	if pkg.Info == nil || pkg.Types == nil {
		return byConst
	}
	named := make(map[*types.TypeName]*EnumGroup)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			var block *EnumGroup
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok || obj.Parent() != pkg.Types.Scope() {
						continue
					}
					if tn := namedTypeOf(obj.Type()); tn != nil {
						grp := named[tn]
						if grp == nil {
							grp = &EnumGroup{Name: tn.Name(), Members: make(map[types.Object]string)}
							named[tn] = grp
						}
						grp.Members[obj] = name.Name
						grp.Order = append(grp.Order, name.Name)
						byConst[obj] = grp
						continue
					}
					if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if block == nil {
							pos := pkg.Fset.Position(gd.Pos())
							block = &EnumGroup{
								Name:    fmt.Sprintf("const block at %s", shortPos(pos)),
								Members: make(map[types.Object]string),
							}
						}
						block.Members[obj] = name.Name
						block.Order = append(block.Order, name.Name)
						byConst[obj] = block
					}
				}
			}
		}
	}
	return byConst
}

// namedTypeOf returns the defining TypeName when t is a named
// non-basic-alias type declared at package scope, else nil.
func namedTypeOf(t types.Type) *types.TypeName {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return nil // predeclared (error, …)
	}
	return tn
}
