package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadProgram loads fixture packages through one loader and assembles
// the interprocedural Program over them — what the driver does for real
// runs, scaled down to testdata.
func loadProgram(t *testing.T, fullModule bool, names ...string) *Program {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	patterns := make([]string, len(names))
	for i, n := range names {
		patterns[i] = filepath.Join("internal", "lint", "testdata", "src", n)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatalf("Load(%v): %v", names, err)
	}
	if len(pkgs) != len(names) {
		t.Fatalf("Load(%v): got %d packages, want %d", names, len(pkgs), len(names))
	}
	return NewProgram(loader.ModulePath, loader.ModuleDir, pkgs, fullModule)
}

// progPkg finds a loaded package by path suffix.
func progPkg(t *testing.T, prog *Program, suffix string) *Package {
	t.Helper()
	for _, pkg := range prog.Packages {
		if strings.HasSuffix(pkg.Path, suffix) {
			return pkg
		}
	}
	t.Fatalf("no loaded package with suffix %q", suffix)
	return nil
}

// nodeNamed finds a call-graph node by display-name suffix.
func nodeNamed(t *testing.T, prog *Program, suffix string) *FuncNode {
	t.Helper()
	for _, n := range prog.Graph.Nodes {
		if strings.HasSuffix(n.Name(), suffix) {
			return n
		}
	}
	t.Fatalf("no call-graph node with suffix %q", suffix)
	return nil
}

// matchWants compares diagnostics against `// want "substr"` lines.
func matchWants(t *testing.T, wants map[string][]string, diags []Diagnostic) {
	t.Helper()
	matched := make(map[string]int)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		subs, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		found := false
		for _, sub := range subs {
			if strings.Contains(d.Message, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("diagnostic at %s does not match any want %q: %s", key, subs, d.Message)
		}
		matched[key]++
	}
	for key, subs := range wants {
		if matched[key] != len(subs) {
			t.Errorf("%s: want %d diagnostic(s) matching %q, got %d", key, len(subs), subs, matched[key])
		}
	}
}

// TestCallGraphTransitiveFixture pins the graph the transitive fixture
// produces: node and edge counts, cross-package resolution, summary
// effects, and byte-identical dumps across independent builds.
func TestCallGraphTransitiveFixture(t *testing.T) {
	prog := loadProgram(t, false, "transitive", "transitive/dep")
	stats := prog.Graph.Stats()
	want := CallGraphStats{Nodes: 11, Edges: 8, DynamicSites: 0, SCCs: 11, LargestSCC: 1}
	if stats != want {
		t.Errorf("stats = %+v, want %+v", stats, want)
	}

	// Cross-package edges resolve despite each package type-checking in
	// its own universe (the byName keying).
	hot := nodeNamed(t, prog, "transitive.Hot")
	foundLevel1 := false
	for _, e := range hot.Calls {
		if e.Callee != nil && strings.HasSuffix(e.Callee.Name(), "dep.Level1") {
			foundLevel1 = true
		}
	}
	if !foundLevel1 {
		t.Error("Hot has no resolved edge to dep.Level1")
	}

	// Summary lattice: level2 allocates locally, Level1 only inherits.
	level1 := nodeNamed(t, prog, "dep.Level1")
	if level1.Summary.Effects&EffAlloc == 0 {
		t.Error("dep.Level1 should inherit EffAlloc from level2")
	}
	if level1.Summary.Local&EffAlloc != 0 {
		t.Error("dep.Level1 has no local allocation; Local must not contain EffAlloc")
	}
	level2 := nodeNamed(t, prog, "dep.level2")
	if level2.Summary.Local&EffAlloc == 0 {
		t.Error("dep.level2 calls make; Local must contain EffAlloc")
	}
	bump := nodeNamed(t, prog, "dep.Bump")
	if bump.Summary.Effects&EffGlobalWrite == 0 {
		t.Error("dep.Bump should inherit EffGlobalWrite from bump2")
	}
	if sum := nodeNamed(t, prog, "dep.Sum"); sum.Summary.Effects != 0 {
		t.Errorf("dep.Sum effects = %v, want none", sum.Summary.Effects)
	}

	var a, b strings.Builder
	prog.Graph.Dump(&a)
	loadProgram(t, false, "transitive", "transitive/dep").Graph.Dump(&b)
	if a.String() != b.String() {
		t.Error("call-graph dump differs across independent builds")
	}
}

// TestTransitiveEnforcement is the acceptance fixture: an //imc:hotpath
// function calling an unannotated helper that allocates two frames down
// must be flagged with the full call chain; boundaries and clean chains
// must not fire.
func TestTransitiveEnforcement(t *testing.T) {
	prog := loadProgram(t, false, "transitive", "transitive/dep")
	pkg := progPkg(t, prog, "src/transitive")
	diags := Run(pkg, []*Analyzer{AllocFree, Purity})
	matchWants(t, wantsIn(t, pkg), diags)

	chain := false
	for _, d := range diags {
		if strings.Contains(d.Message, "Hot → ") &&
			strings.Contains(d.Message, "dep.Level1 → ") &&
			strings.Contains(d.Message, "(calls make at dep.go:") {
			chain = true
		}
	}
	if !chain {
		t.Error("no finding prints the full Hot → Level1 → level2 chain")
	}

	dep := progPkg(t, prog, "transitive/dep")
	if depDiags := Run(dep, []*Analyzer{AllocFree, Purity}); len(depDiags) != 0 {
		t.Errorf("dep package should be clean, got %v", depDiags)
	}
}

// TestLayeringFixture checks the three finding shapes — upward import,
// import of an uncovered package, and an uncovered package itself — and
// that a contract-respecting package stays silent.
func TestLayeringFixture(t *testing.T) {
	prog := loadProgram(t, false, "layercheck/a", "layercheck/b", "layercheck/c", "layercheck/d")
	prog.LayersPath = filepath.Join(prog.ModuleDir,
		"internal", "lint", "testdata", "src", "layercheck", "layers.txt")
	for _, pkg := range prog.Packages {
		matchWants(t, wantsIn(t, pkg), Run(pkg, []*Analyzer{Layering}))
	}
}

// TestLayeringMissingContract: an unreadable contract is itself a
// finding, not a silent pass.
func TestLayeringMissingContract(t *testing.T) {
	prog := loadProgram(t, false, "layercheck/d")
	prog.LayersPath = filepath.Join(t.TempDir(), "absent.txt")
	diags := Run(prog.Packages[0], []*Analyzer{Layering})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "cannot load layering contract") {
		t.Errorf("diags = %v, want one cannot-load finding", diags)
	}
}

// TestParseLayers covers the contract grammar: globs, the root package,
// comments, and the rejected shapes.
func TestParseLayers(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	lc, err := parseLayers(write("ok.txt",
		"# comment\nlayer internal/bitset .\nlayer internal/graph\nlayer cmd/* examples/*\n"))
	if err != nil {
		t.Fatalf("parseLayers: %v", err)
	}
	for _, c := range []struct {
		rel   string
		layer int
		ok    bool
	}{
		{"internal/bitset", 0, true},
		{".", 0, true},
		{"internal/graph", 1, true},
		{"cmd/imcrun", 2, true},      // glob: immediate child
		{"cmd/imcrun/sub", 0, false}, // glob does not reach grandchildren
		{"internal/ric", 0, false},
	} {
		layer, ok := lc.layerOf(c.rel)
		if ok != c.ok || (ok && layer != c.layer) {
			t.Errorf("layerOf(%q) = %d,%v want %d,%v", c.rel, layer, ok, c.layer, c.ok)
		}
	}

	for name, content := range map[string]string{
		"empty.txt":   "# nothing but comments\n",
		"badline.txt": "internal/graph\n",
		"dup.txt":     "layer internal/graph internal/graph\n",
		"dupglob.txt": "layer cmd/*\nlayer cmd/*\n",
		"bare.txt":    "layer\n",
	} {
		if _, err := parseLayers(write(name, content)); err == nil {
			t.Errorf("parseLayers(%s) accepted malformed contract", name)
		}
	}
}

// TestAPISurfaceRoundTrip: a snapshot freshly written by
// WriteAPISnapshot must verify clean against the same program, and its
// rendering must drop parameter names and unexported members.
func TestAPISurfaceRoundTrip(t *testing.T) {
	prog := loadProgram(t, true, "apicheck")
	data := WriteAPISnapshot(prog)
	for _, want := range []string{
		"package internal/lint/testdata/src/apicheck\n",
		"func Clamp: func(float64, float64, float64) float64\n",
		"method (*Counter).Add: func(int)\n",
		"method (Weight).Scale: func(float64) Weight\n",
		"type Counter: struct{N int}\n",
		"type Weight: float64\n",
		"var Version: string\n",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("snapshot missing %q\n%s", want, data)
		}
	}
	for _, reject := range []string{"value", "hidden", "internal()"} {
		if strings.Contains(string(data), reject) {
			t.Errorf("snapshot leaks %q (parameter name or unexported member)", reject)
		}
	}

	path := filepath.Join(t.TempDir(), "api.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	prog.APISnapPath = path
	if diags := Run(progPkg(t, prog, "apicheck"), []*Analyzer{APISurface}); len(diags) != 0 {
		t.Errorf("round-trip produced findings: %v", diags)
	}
}

// TestAPISurfaceDrift mutates a clean snapshot four ways — signature
// change, unapproved addition, removal, vanished package — and expects
// each to be reported.
func TestAPISurfaceDrift(t *testing.T) {
	prog := loadProgram(t, true, "apicheck")
	data := string(WriteAPISnapshot(prog))

	mutated := strings.Replace(data,
		"func Clamp: func(float64, float64, float64) float64",
		"func Clamp: func(float64) float64", 1)
	mutated = strings.Replace(mutated, "var Version: string\n", "", 1)
	mutated += "func Gone: func()\n"
	mutated += "\npackage internal/vanished\nfunc X: func()\n"
	path := filepath.Join(t.TempDir(), "api.snap")
	if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	prog.APISnapPath = path

	diags := Run(progPkg(t, prog, "apicheck"), []*Analyzer{APISurface})
	for _, want := range []string{
		`exported API changed: "func Clamp" was "func(float64) float64", now "func(float64, float64, float64) float64"`,
		`new exported API "var Version"`,
		`exported API removed: "func Gone"`,
		`package internal/vanished in the API snapshot no longer exists`,
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no finding matches %q; got %v", want, diags)
		}
	}
	if len(diags) != 4 {
		t.Errorf("got %d findings, want 4: %v", len(diags), diags)
	}
}

// TestAPISurfaceMissingSection: a package with no snapshot section is
// one finding, and the stale section surfaces once per program.
func TestAPISurfaceMissingSection(t *testing.T) {
	prog := loadProgram(t, true, "apicheck")
	data := strings.Replace(string(WriteAPISnapshot(prog)),
		"package internal/lint/testdata/src/apicheck",
		"package internal/lint/testdata/src/renamed", 1)
	path := filepath.Join(t.TempDir(), "api.snap")
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	prog.APISnapPath = path

	diags := Run(progPkg(t, prog, "apicheck"), []*Analyzer{APISurface})
	var noSection, vanished bool
	for _, d := range diags {
		if strings.Contains(d.Message, "has no section in the API snapshot") {
			noSection = true
		}
		if strings.Contains(d.Message, "internal/lint/testdata/src/renamed in the API snapshot no longer exists") {
			vanished = true
		}
	}
	if !noSection || !vanished {
		t.Errorf("missing-section findings incomplete (noSection=%v vanished=%v): %v",
			noSection, vanished, diags)
	}
}

// TestExhaustiveCrossPackage: a switch over another package's enum
// resolves through the program-level registry, not object identity —
// the loader gives each package its own type-check universe.
func TestExhaustiveCrossPackage(t *testing.T) {
	prog := loadProgram(t, false, "exhaustive", "exhaustive/client")
	client := progPkg(t, prog, "exhaustive/client")
	matchWants(t, wantsIn(t, client), Run(client, []*Analyzer{Exhaustive}))
}
