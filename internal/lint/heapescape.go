package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HeapEscape enforces the stack-residency contract on `//imc:hotpath`
// functions: a hot kernel's locals must stay on the stack, because a
// heap-escaping local turns every access in the sampling loop into a
// pointer chase and adds GC pressure proportional to the sample count.
// The analysis is a lightweight address-taken escape lattice over the
// function body:
//
//   - roots: `&x` where x is a function-local variable (parameters
//     included) — the only way a local's storage can be aliased;
//   - propagation: a flow-insensitive fixed point over assignments
//     (`p := &x`, `q := p`) builds, per tainted variable, the witness
//     path back to the root — printed like v4's lock-order chains;
//   - sinks: returning a tainted value, storing it outside the frame
//     (package-level var, through a field/deref/index of a non-local),
//     sending it on a channel, or passing it to an external or dynamic
//     callee. Passing `&x` to a statically-resolved IN-module callee is
//     deliberately NOT a sink: the module's own functions are summarized
//     and visible (`imclint -graph`), and the idiom
//     `root.SplitInto(t, &rng)` — handing a stack-allocated PRNG to a
//     known leaf — is exactly how the kernels stay allocation-free.
//
// Two further escape classes are checked inside loops only (their
// depth-0 forms are one-time costs, not per-iteration ones):
//
//   - interface boxing, including variadic `...interface{}` spreads: a
//     concrete non-pointer value crossing into an interface slot is
//     copied to the heap on every iteration;
//   - closure captures: a function literal built per iteration forces
//     every enclosing-frame variable it captures onto the heap for the
//     whole call, on top of its own per-iteration allocation.
//
// The lattice is deliberately unsound in the documented v3 way — it
// over-approximates aliasing (any occurrence in an RHS taints the LHS)
// and under-approximates retention by in-module callees. The gap is
// visible, not hidden: callee parameter writes carry the EffParamWrite
// summary bit.
var HeapEscape = &Analyzer{
	Name: "heapescape",
	Doc:  "forbid heap escapes of locals in //imc:hotpath functions (returned/stored/sent addresses, escapes into external callees, in-loop boxing and closure captures), with the escape path as a witness chain",
	Kind: KindFlowSensitive,
	Run:  runHeapEscape,
}

func runHeapEscape(pkg *Package, r *Reporter) {
	for _, fd := range hotFuncDecls(pkg) {
		checkHeapEscape(pkg, fd, r)
	}
}

// escTrace is the witness path from an address-taken root to the
// expression currently holding it: "p := &x (gen.go:41) → q := p
// (gen.go:44)".
type escTrace struct {
	root  types.Object
	steps []string
}

func (t *escTrace) extend(step string) *escTrace {
	steps := make([]string, 0, len(t.steps)+1)
	steps = append(steps, t.steps...)
	return &escTrace{root: t.root, steps: append(steps, step)}
}

func checkHeapEscape(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	e := &escaper{
		pkg:   pkg,
		fd:    fd,
		taint: make(map[types.Object]*escTrace),
		r:     r,
	}
	e.propagate()
	e.scanSinks()
	e.scanLoopOnly()
}

type escaper struct {
	pkg   *Package
	fd    *ast.FuncDecl
	taint map[types.Object]*escTrace
	r     *Reporter
}

// localVar reports whether obj is a variable that lives in fd's frame:
// declared inside the function (parameters and results included), and
// not a struct field.
func (e *escaper) localVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pos() >= e.fd.Pos() && v.Pos() <= e.fd.End()
}

// addrRoot returns the local variable whose storage `&expr` aliases:
// the base identifier of the operand path (&x, &x.f, &x[i]), nil when
// the operand is not rooted at a local.
func (e *escaper) addrRoot(expr ast.Expr) types.Object {
	for {
		switch x := expr.(type) {
		case *ast.Ident:
			obj := e.pkg.Info.Uses[x]
			if obj == nil {
				obj = e.pkg.Info.Defs[x]
			}
			if obj != nil && e.localVar(obj) {
				// &slice[i] aliases the backing array, not the frame —
				// only value-kinded locals (structs, arrays, scalars)
				// root an escape.
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			if tv, ok := e.pkg.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
					return nil // &p.f derefs p: aliases the pointee, not the frame
				}
			}
			expr = x.X
		case *ast.IndexExpr:
			if tv, ok := e.pkg.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
					return nil // backing array, not the local's frame slot
				}
			}
			expr = x.X
		case *ast.ParenExpr:
			expr = x.X
		default:
			return nil
		}
	}
}

// source returns the escape trace feeding expr: a fresh one when expr
// contains `&x` of a local, or an existing one when it mentions a
// tainted variable. Nil when expr cannot carry a frame address.
func (e *escaper) source(expr ast.Expr) *escTrace {
	var found *escTrace
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // captures are the closure check's business
		case *ast.CallExpr:
			// A call RESULT is not a frame address even when the
			// arguments are: `return f(&x)` returns f's value. The
			// arguments themselves are judged at the call site
			// (checkCallSink), by who the callee is.
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if root := e.addrRoot(n.X); root != nil {
					found = &escTrace{
						root:  root,
						steps: []string{"&" + root.Name() + " (" + e.pos(n.Pos()) + ")"},
					}
					return false
				}
			}
		case *ast.Ident:
			if obj := e.pkg.Info.Uses[n]; obj != nil {
				if tr := e.taint[obj]; tr != nil {
					found = tr
					return false
				}
			}
		}
		return true
	})
	return found
}

// propagate runs the assignment fixed point: `p := &x` seeds, `q := p`
// extends. First-wins per variable keeps traces deterministic (source
// order) and the iteration terminating.
func (e *escaper) propagate() {
	type pair struct {
		lhs types.Object
		val ast.Expr
		pos token.Pos
	}
	var pairs []pair
	ast.Inspect(e.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := e.pkg.Info.Defs[id]
				if obj == nil {
					obj = e.pkg.Info.Uses[id]
				}
				if obj != nil && e.localVar(obj) {
					pairs = append(pairs, pair{lhs: obj, val: n.Rhs[i], pos: n.Pos()})
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i >= len(n.Values) {
					break
				}
				if obj := e.pkg.Info.Defs[id]; obj != nil && e.localVar(obj) {
					pairs = append(pairs, pair{lhs: obj, val: n.Values[i], pos: n.Pos()})
				}
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, p := range pairs {
			if e.taint[p.lhs] != nil {
				continue
			}
			if tr := e.source(p.val); tr != nil {
				e.taint[p.lhs] = tr.extend(
					p.lhs.Name() + " = " + renderExpr(p.val) + " (" + e.pos(p.pos) + ")")
				changed = true
			}
		}
	}
}

// scanSinks walks the body (function literals pruned) and reports every
// point where a frame address leaves the frame.
func (e *escaper) scanSinks() {
	ast.Inspect(e.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if tr := e.source(res); tr != nil {
					e.report(res.Pos(), tr, "returned at "+e.pos(res.Pos()),
						"the caller outlives the frame, so the compiler moves "+tr.root.Name()+" to the heap")
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if e.frameStore(lhs) {
					continue
				}
				if tr := e.source(n.Rhs[i]); tr != nil {
					e.report(n.Rhs[i].Pos(), tr,
						"stored to "+renderExpr(lhs)+" at "+e.pos(n.Pos()),
						"a store outside the frame pins "+tr.root.Name()+" on the heap")
				}
			}
		case *ast.SendStmt:
			if tr := e.source(n.Value); tr != nil {
				e.report(n.Value.Pos(), tr, "sent on "+renderExpr(n.Chan)+" at "+e.pos(n.Pos()),
					"the receiver outlives the frame")
			}
		case *ast.CallExpr:
			e.checkCallSink(n)
		}
		return true
	})
}

// frameStore reports whether an assignment target stays inside fd's
// frame: a plain local variable, or the blank identifier.
func (e *escaper) frameStore(lhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := e.pkg.Info.Defs[id]
	if obj == nil {
		obj = e.pkg.Info.Uses[id]
	}
	return obj != nil && e.localVar(obj)
}

// checkCallSink flags frame addresses handed to callees the analysis
// cannot see into: external (out-of-module) functions and dynamic call
// sites. Statically-resolved in-module callees are exempt (summarized;
// see the analyzer doc).
func (e *escaper) checkCallSink(call *ast.CallExpr) {
	var calleeDesc string
	switch res := resolveCall(e.pkg, call); res.kind {
	case callIgnored:
		return // builtin or conversion: append(&x…) cannot occur; len/cap don't retain
	case callStatic:
		if res.fn.Pkg() != nil && res.fn.Pkg().Path() == e.pkg.Path {
			return // same package: in-module
		}
		if e.pkg.Prog != nil && e.pkg.Prog.Graph.Node(res.fn) != nil {
			return // elsewhere in the module: summarized, not a sink
		}
		calleeDesc = "external callee " + res.fn.Pkg().Path() + "." + res.fn.Name()
	case callDynamic:
		calleeDesc = "a dynamic callee"
	}
	for _, arg := range call.Args {
		if tr := e.source(arg); tr != nil {
			e.report(arg.Pos(), tr,
				"passed to "+calleeDesc+" at "+e.pos(call.Pos()),
				"an unseen callee may retain the address, so "+tr.root.Name()+" escapes")
		}
	}
}

// scanLoopOnly checks the per-iteration escape classes: interface
// boxing and escaping closure captures inside loops.
func (e *escaper) scanLoopOnly() {
	cfg := BuildCFG(e.fd.Body)
	for _, stmt := range loopStmts(cfg) {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				e.checkCapture(n)
				return false
			case *ast.CallExpr:
				e.checkBoxingEscape(n)
			}
			return true
		})
	}
}

// checkBoxingEscape flags concrete non-pointer values crossing into
// interface-typed parameters inside a hot loop — each copy lands on the
// heap. Variadic ...interface{} spreads (the fmt signature shape) are
// named explicitly: they are the classic hidden allocator.
func (e *escaper) checkBoxingEscape(call *ast.CallExpr) {
	tv, ok := e.pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := e.pkg.Info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() || !boxingAllocates(at.Type) {
			continue
		}
		how := "boxed into an interface parameter"
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			how = "boxed through a variadic ...interface{} parameter"
		}
		e.r.Reportf("heapescape", arg.Pos(),
			"%s escapes to the heap on every iteration of a hot loop: %s; box once outside the loop or keep the call off the hot path",
			renderExpr(arg), how)
	}
}

// checkCapture flags an in-loop closure's captured locals: once a
// literal is built per iteration, the compiler gives every variable it
// captures by reference a heap cell for the whole call. (The literal's
// own per-iteration allocation is allocfree's finding; this one names
// what the capture does to the enclosing frame.)
func (e *escaper) checkCapture(lit *ast.FuncLit) {
	var captured []types.Object
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := e.pkg.Info.Uses[id]
		if obj == nil || seen[obj] || !e.localVar(obj) {
			return true
		}
		// Declared outside the literal but inside the function: a capture.
		if obj.Pos() < lit.Pos() {
			seen[obj] = true
			captured = append(captured, obj)
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	names := make([]string, len(captured))
	for i, obj := range captured {
		names[i] = obj.Name()
	}
	e.r.Reportf("heapescape", lit.Pos(),
		"closure in a hot loop captures %s, moving the captured variables to the heap for the whole call; hoist the closure out of the loop or pass the values as parameters",
		formatChain(names))
}

func (e *escaper) report(pos token.Pos, tr *escTrace, sink, why string) {
	chain := formatChain(append(append([]string{}, tr.steps...), sink))
	e.r.Reportf("heapescape", pos,
		"address of local %s escapes to the heap: %s; %s — a hot function must keep its locals on the stack",
		tr.root.Name(), chain, why)
}

func (e *escaper) pos(p token.Pos) string {
	return shortPos(e.pkg.Fset.Position(p))
}
