package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// TestInlineableFixture runs the inlining-contract analyzer over its
// golden fixture with a whole-program load (the callee chase needs the
// call graph).
func TestInlineableFixture(t *testing.T) {
	t.Parallel()
	prog := loadProgram(t, false, "inlineable")
	pkg := progPkg(t, prog, "inlineable")
	diags := Run(pkg, []*Analyzer{Inlineable})
	matchWants(t, wantsIn(t, pkg), diags)

	// The budget finding must print the full call chain from the loop's
	// call site to the oversize callee.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "exceeds the inlining budget") {
			found = true
			if !strings.Contains(d.Message, "viaMid") || !strings.Contains(d.Message, "bigBody") {
				t.Errorf("budget finding does not print the viaMid → bigBody chain: %s", d.Message)
			}
		}
	}
	if !found {
		t.Fatal("no over-budget finding reported")
	}
}

// TestIfaceDispatchFixture runs the static-dispatch analyzer over its
// golden fixture and pins the devirtualization-candidate listing the
// call graph provides.
func TestIfaceDispatchFixture(t *testing.T) {
	t.Parallel()
	prog := loadProgram(t, false, "ifacedispatch")
	pkg := progPkg(t, prog, "ifacedispatch")
	diags := Run(pkg, []*Analyzer{IfaceDispatch})
	matchWants(t, wantsIn(t, pkg), diags)

	withCands := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "concrete implementers in this module") {
			withCands++
			if !strings.Contains(d.Message, "ifacedispatch.circle, ifacedispatch.square") {
				t.Errorf("candidate list is not the sorted concrete-type roster: %s", d.Message)
			}
		}
		if strings.Contains(d.Message, "reaches a dynamic dispatch transitively") &&
			!strings.Contains(d.Message, "indirect") {
			t.Errorf("transitive finding does not name the hiding callee: %s", d.Message)
		}
	}
	if withCands < 2 {
		t.Errorf("want devirtualization candidates on the param and dynamic-call findings, got %d listing(s)", withCands)
	}
}

// TestHeapEscapeWitnessChain pins the escape-path rendering: the
// propagated trace must spell each assignment hop with its position.
func TestHeapEscapeWitnessChain(t *testing.T) {
	t.Parallel()
	pkg := loadFixture(t, "heapescape")
	diags := Run(pkg, []*Analyzer{HeapEscape})
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "q = p") {
			found = true
			for _, frag := range []string{"&x (", "p = &x (", "returned at"} {
				if !strings.Contains(d.Message, frag) {
					t.Errorf("witness chain missing hop %q: %s", frag, d.Message)
				}
			}
		}
	}
	if !found {
		t.Fatal("no chained-copy escape reported for chainThroughCopies")
	}
}

// TestBCEIdiomTable pins the clean side of the bounds-check contract:
// every idiom* function in the fixture's clean file indexes slices in a
// hot loop and must produce zero findings.
func TestBCEIdiomTable(t *testing.T) {
	t.Parallel()
	pkg := loadFixture(t, "boundscheck")
	diags := Run(pkg, []*Analyzer{BoundsCheck})

	type span struct {
		file   string
		lo, hi int
	}
	idioms := make(map[string]span)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !strings.HasPrefix(fd.Name.Name, "idiom") {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			idioms[fd.Name.Name] = span{file: start.Filename, lo: start.Line, hi: end.Line}
		}
	}
	if len(idioms) < 9 {
		t.Fatalf("idiom table has %d entries, want at least 9", len(idioms))
	}
	for name, sp := range idioms {
		for _, d := range diags {
			if d.Pos.Filename == sp.file && d.Pos.Line >= sp.lo && d.Pos.Line <= sp.hi {
				t.Errorf("clean idiom %s produced a finding: %s", name, d)
			}
		}
	}
}

// TestPerfContractDeterminism loads each perf-contract fixture twice,
// independently, and requires byte-identical diagnostic streams — the
// same contract the solver output obeys.
func TestPerfContractDeterminism(t *testing.T) {
	t.Parallel()
	render := func(diags []Diagnostic) string {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	standalone := map[string]*Analyzer{"heapescape": HeapEscape, "boundscheck": BoundsCheck}
	for name, a := range standalone {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			one := render(Run(loadFixture(t, name), []*Analyzer{a}))
			two := render(Run(loadFixture(t, name), []*Analyzer{a}))
			if one != two {
				t.Errorf("diagnostics differ across independent loads:\n--- first\n%s--- second\n%s", one, two)
			}
			if one == "" {
				t.Error("no diagnostics produced; determinism check is vacuous")
			}
		})
	}
	programLevel := map[string]*Analyzer{"inlineable": Inlineable, "ifacedispatch": IfaceDispatch}
	for name, a := range programLevel {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			load := func() string {
				prog := loadProgram(t, false, name)
				return render(Run(progPkg(t, prog, name), []*Analyzer{a}))
			}
			one, two := load(), load()
			if one != two {
				t.Errorf("diagnostics differ across independent loads:\n--- first\n%s--- second\n%s", one, two)
			}
			if one == "" {
				t.Error("no diagnostics produced; determinism check is vacuous")
			}
		})
	}
}
