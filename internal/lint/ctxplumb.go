package lint

import (
	"go/ast"
	"go/types"
)

// CtxPlumb enforces the //imc:longrun cancellation contract. A longrun
// function is a compute entry point that can run for seconds to minutes
// (sample generation, solver loops, MC estimation); it must accept a
// context.Context as its first parameter, and when it hands work to
// another longrun function in the same package it must forward that
// context rather than minting a fresh context.Background()/TODO() —
// doing so silently severs the cancellation chain, which is exactly the
// bug class the ctx plumbing exists to prevent. Delegation shims that
// are NOT annotated (Generate calling GenerateCtx with Background) stay
// legal: the contract binds only annotated functions.
var CtxPlumb = &Analyzer{
	Name: "ctxplumb",
	Doc:  "//imc:longrun functions must take ctx first and forward it to longrun callees",
	Kind: KindSyntactic,
	Run:  runCtxPlumb,
}

func runCtxPlumb(pkg *Package, r *Reporter) {
	dirs := funcDirectives(pkg)
	// Index the type objects of every annotated function so call sites
	// resolve across files and through method values.
	longrun := make(map[types.Object]bool)
	for fd, set := range dirs {
		if set[directiveLongRun] {
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				longrun[obj] = true
			}
		}
	}
	for _, file := range pkg.Files {
		file := file
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(dirs, fd, directiveLongRun) {
				continue
			}
			if !firstParamIsContext(pkg, file, fd.Type) {
				r.Reportf("ctxplumb", fd.Name.Pos(),
					"//imc:longrun function %s must take context.Context as its first parameter", fd.Name.Name)
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeIdent(call)
				if callee == nil || !longrun[pkg.Info.Uses[callee]] || len(call.Args) == 0 {
					return true
				}
				if inner, ok := call.Args[0].(*ast.CallExpr); ok {
					if sel, ok := pkg.selectorCall(file, inner, "context", "Background", "TODO"); ok {
						r.Reportf("ctxplumb", sel.Pos(),
							"%s severs the cancellation chain: forward ctx to longrun %s, not context.%s()",
							fd.Name.Name, callee.Name, sel.Sel.Name)
					}
				}
				return true
			})
		}
	}
}

// calleeIdent returns the identifier a call resolves through: the bare
// name for function calls, the selected name for method calls.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

func firstParamIsContext(pkg *Package, file *ast.File, ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	return isContextType(pkg, file, ft.Params.List[0].Type)
}
