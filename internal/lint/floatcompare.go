package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCompare flags exact ==/!= between floating-point operands. The
// benefit and threshold arithmetic in maxr and core accumulates values
// in different orders depending on solver internals, so exact equality
// on computed floats is a correctness hazard: two mathematically equal
// benefits can differ in the last ulp and silently flip a comparison.
// Use an explicit tolerance (math.Abs(a-b) <= eps), an integer/ordinal
// comparison, or a range check instead. Two comparisons are exempt
// because they are exact by construction: both sides compile-time
// constants, and comparison against the literal zero (the unset-field
// sentinel idiom `if opts.Eps == 0 { opts.Eps = defaultEps }`, where
// the zero value is assigned, never computed).
var FloatCompare = &Analyzer{
	Name: "floatcompare",
	Doc:  "flag ==/!= on floating-point operands; compare with an explicit tolerance",
	Kind: KindSyntactic,
	Run:  runFloatCompare,
}

func runFloatCompare(pkg *Package, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, xok := pkg.Info.Types[be.X]
			yt, yok := pkg.Info.Types[be.Y]
			if !xok || !yok {
				return true
			}
			// Constant folding is exact; only computed values drift.
			if xt.Value != nil && yt.Value != nil {
				return true
			}
			if isZeroConst(xt) || isZeroConst(yt) {
				return true
			}
			if isFloat(xt.Type) || isFloat(yt.Type) {
				r.Reportf("floatcompare", be.OpPos,
					"%s on floating-point operands is exact-equality on computed values; compare with an explicit tolerance", be.Op)
			}
			return true
		})
	}
}

// isZeroConst reports whether tv is the compile-time constant 0.
func isZeroConst(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isFloat reports whether t is (or aliases) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}
