package lint

import (
	"go/ast"
)

// CtxFirst enforces the standard Go convention that context.Context,
// where a function takes one, is the first parameter. Mixed positions
// make call sites ambiguous and break mechanical refactors (adding
// cancellation to a call chain should never require reordering
// arguments).
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter",
	Kind: KindSyntactic,
	Run:  runCtxFirst,
}

func runCtxFirst(pkg *Package, r *Reporter) {
	for _, file := range pkg.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			var ft *ast.FuncType
			var name string
			switch n := n.(type) {
			case *ast.FuncDecl:
				ft, name = n.Type, n.Name.Name
			case *ast.FuncLit:
				ft, name = n.Type, "function literal"
			default:
				return true
			}
			if ft.Params == nil {
				return true
			}
			// Position counts individual names: f(a int, ctx context.Context)
			// has ctx at index 1 even though it is the second *field*.
			idx := 0
			for _, field := range ft.Params.List {
				width := len(field.Names)
				if width == 0 {
					width = 1
				}
				if isContextType(pkg, file, field.Type) && idx > 0 {
					r.Reportf("ctxfirst", field.Type.Pos(),
						"context.Context is parameter %d of %s; it must come first", idx+1, name)
				}
				idx += width
			}
			return true
		})
	}
}

// isContextType matches the type expression context.Context.
func isContextType(pkg *Package, file *ast.File, expr ast.Expr) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	path, ok := pkg.importedPkgName(file, sel.X)
	return ok && path == "context"
}
