package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Inlineable enforces the inlining contract on hot call trees. The
// compiler only erases call overhead (and unlocks the downstream
// escape/bounds-check optimizations the other perf contracts assume)
// when the callees in a hot loop actually inline, so:
//
//   - every statically-resolved callee reachable from a hot loop —
//     transitively, stopping at callees that carry their own
//     `//imc:hotpath` annotation (kernels are call targets, not inline
//     candidates; their contracts are enforced at their declaration) —
//     must be free of unconditional inlining blockers and under the
//     size budget;
//   - a hot LEAF function (no in-module static calls, no dynamic
//     calls) is itself an inline candidate for its hot callers, so its
//     own body must be blocker-free.
//
// The unconditional blockers are the constructs the Go inliner refuses
// outright: defer, recover, go statements, select, range over a
// channel, and a `//go:noinline` pragma on the declaration. Plain
// loops are deliberately NOT blockers — whether the inliner accepts
// them varies by toolchain, and the tight word-scan helpers
// (Mask.OnesCount, bitset unions) that hot loops depend on are loops
// by nature; the budget bounds them instead.
//
// The budget counts AST nodes (statements and expressions, roughly
// proportional to the compiler's own IR cost) and is calibrated so the
// module's sanctioned helpers — neighbor accessors, alias-table draws,
// epoch-mask tests — pass with headroom while anything resembling
// business logic fails.
var Inlineable = &Analyzer{
	Name: "inlineable",
	Doc:  "forbid inlining blockers (defer, recover, go, select, range-over-channel, //go:noinline, oversize bodies) in hot leaf functions and in every callee reachable from a hot loop",
	Kind: KindInterprocedural,
	Run:  runInlineable,
}

// inlineBudget is the AST-node cost ceiling for a callee on a hot
// path. See astCost for the unit.
const inlineBudget = 130

func runInlineable(pkg *Package, r *Reporter) {
	for _, fd := range hotFuncDecls(pkg) {
		checkInlineLeaf(pkg, fd, r)
		checkInlineCallees(pkg, fd, r)
	}
}

// inlineBlocker is one unconditional reason a function cannot inline.
type inlineBlocker struct {
	what string
	pos  string
}

// inlineBlockers scans a declaration for the constructs the inliner
// refuses, in source order.
func inlineBlockers(pkg *Package, fd *ast.FuncDecl) []inlineBlocker {
	var out []inlineBlocker
	add := func(what string, n ast.Node) {
		out = append(out, inlineBlocker{what: what, pos: shortPos(pkg.Fset.Position(n.Pos()))})
	}
	if hasNoinlinePragma(fd) {
		add("a //go:noinline pragma", fd.Name)
	}
	if fd.Body == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a nested literal is its own function
		case *ast.DeferStmt:
			add("defer", n)
		case *ast.GoStmt:
			add("a go statement", n)
		case *ast.SelectStmt:
			add("select", n)
		case *ast.RangeStmt:
			if pkg.Info == nil {
				break
			}
			if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					add("range over a channel", n)
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "recover" && isBuiltin(pkg, id) {
				add("recover", n)
			}
		}
		return true
	})
	return out
}

// hasNoinlinePragma reports a //go:noinline directive in the
// declaration's doc block.
func hasNoinlinePragma(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//go:noinline") {
			return true
		}
	}
	return false
}

// astCost is the size metric behind inlineBudget: one unit per
// statement or expression node, skipping the pure syntax carriers
// (blocks, parens, field lists) so the count tracks work, not
// formatting.
func astCost(fd *ast.FuncDecl) int {
	if fd.Body == nil {
		return 0
	}
	cost := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.BlockStmt, *ast.ParenExpr, *ast.FieldList, *ast.Field,
			*ast.CommentGroup, *ast.Comment:
			return true
		case *ast.FuncLit:
			cost += 2 // the closure itself; its body is its own function
			return false
		default:
			cost++
		}
		return true
	})
	return cost
}

// checkInlineLeaf applies the blocker scan to a hot function that calls
// nothing the module can see — the innermost kernels whose cost model
// assumes their hot CALLERS inline them.
func checkInlineLeaf(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	if pkg.Info == nil || !isLeafFunc(pkg, fd) {
		return
	}
	for _, b := range inlineBlockers(pkg, fd) {
		r.Reportf("inlineable", fd.Name.Pos(),
			"hot leaf function %s contains %s (%s), which prevents the compiler from inlining it into its hot callers; restructure or move the blocker behind a non-hot wrapper",
			fd.Name.Name, b.what, b.pos)
	}
}

// isLeafFunc reports whether fd resolves no static in-module calls and
// no dynamic calls. In a whole-program load "in-module" means the call
// graph; standalone (fixture) loads fall back to same-package
// resolution.
func isLeafFunc(pkg *Package, fd *ast.FuncDecl) bool {
	if node := funcNodeOf(pkg, fd); node != nil {
		for i := range node.Calls {
			if node.Calls[i].Callee != nil {
				return false
			}
		}
		return len(node.Dynamic) == 0
	}
	leaf := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch res := resolveCall(pkg, call); res.kind {
		case callDynamic:
			leaf = false
		case callStatic:
			if res.fn.Pkg() != nil && res.fn.Pkg().Path() == pkg.Path {
				leaf = false
			}
		}
		return true
	})
	return leaf
}

// checkInlineCallees walks the static call tree out of fd's loops —
// breadth-first, in call-site order, stopping at //imc:hotpath
// boundaries — and reports every reachable callee that cannot inline.
// The chain from the loop's call site to the offender is printed like
// v4's witness chains.
func checkInlineCallees(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	cfg := BuildCFG(fd.Body)
	node, edges := loopCallEdges(pkg, fd, loopStmts(cfg))
	if node == nil {
		return
	}
	type item struct {
		callee *FuncNode
		site   *CallEdge // the in-loop edge the chain starts at
		chain  []string
	}
	var queue []item
	visited := make(map[*FuncNode]bool)
	for _, e := range edges {
		if e.Callee == nil || e.Callee.Directives[directiveHotPath] || visited[e.Callee] {
			continue
		}
		visited[e.Callee] = true
		queue = append(queue, item{callee: e.Callee, site: e, chain: []string{e.Callee.Name()}})
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		reportInlineProblems(pkg, fd, it.callee, it.site, it.chain, r)
		for i := range it.callee.Calls {
			next := it.callee.Calls[i].Callee
			if next == nil || next.Directives[directiveHotPath] || visited[next] {
				continue
			}
			visited[next] = true
			queue = append(queue, item{
				callee: next,
				site:   it.site,
				chain:  append(append([]string{}, it.chain...), next.Name()),
			})
		}
	}
}

func reportInlineProblems(pkg *Package, fd *ast.FuncDecl, callee *FuncNode, site *CallEdge, chain []string, r *Reporter) {
	for _, b := range inlineBlockers(callee.Pkg, callee.Decl) {
		r.Reportf("inlineable", site.Site.Pos(),
			"call in a hot loop reaches %s → %s, which cannot inline: %s (%s); the call overhead recurs every iteration — restructure the callee or annotate it //imc:hotpath",
			fd.Name.Name, formatChain(chain), b.what, b.pos)
	}
	if cost := astCost(callee.Decl); cost > inlineBudget {
		r.Reportf("inlineable", site.Site.Pos(),
			"call in a hot loop reaches %s → %s, whose body exceeds the inlining budget (cost %d > %d); split the callee or annotate it //imc:hotpath to make the boundary explicit",
			fd.Name.Name, formatChain(chain), cost, inlineBudget)
	}
}
