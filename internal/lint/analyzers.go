package lint

import "strings"

// All lists every analyzer in the suite, in reporting order.
var All = []*Analyzer{
	Determinism,
	FloatCompare,
	GoroutineLeak,
	Printer,
	SeedPlumb,
	CtxFirst,
}

// ByName resolves a comma-separated analyzer list ("determinism,printer").
func ByName(names string) ([]*Analyzer, bool) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// samplingPackages are the packages under the seedplumb contract: the
// ones that draw RIC/RR samples or simulate diffusion in parallel.
var samplingPackages = map[string]bool{
	"imc/internal/ric":       true,
	"imc/internal/ris":       true,
	"imc/internal/diffusion": true,
	"imc/internal/maxr":      true,
}

// isLibraryPackage reports whether path is library code (the root
// package or anything under internal/), as opposed to cmd/ binaries and
// examples/ which legitimately print and read the clock.
func isLibraryPackage(modulePath, path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/internal/")
}

// AnalyzersFor returns the subset of candidates that applies to the
// package at the given import path. Gating lives here — analyzers
// themselves are unconditional, which keeps their fixture tests simple:
//
//   - determinism, floatcompare, printer: library packages only;
//   - seedplumb: the four sampling packages;
//   - goroutineleak, ctxfirst: everywhere.
func AnalyzersFor(modulePath, path string, candidates []*Analyzer) []*Analyzer {
	lib := isLibraryPackage(modulePath, path)
	var out []*Analyzer
	for _, a := range candidates {
		switch a.Name {
		case "determinism", "floatcompare", "printer":
			if lib {
				out = append(out, a)
			}
		case "seedplumb":
			if samplingPackages[path] {
				out = append(out, a)
			}
		default:
			out = append(out, a)
		}
	}
	return out
}
