package lint

import "strings"

// All lists every analyzer in the suite, in reporting order.
var All = []*Analyzer{
	Determinism,
	FloatCompare,
	GoroutineLeak,
	Printer,
	SeedPlumb,
	CtxFirst,
	CtxPlumb,
	AllocFree,
	ErrFlow,
	Purity,
	ShareMut,
	Layering,
	APISurface,
	Exhaustive,
	ChanCtx,
	GuardedBy,
	LockHeld,
	LockOrder,
	HeapEscape,
	Inlineable,
	BoundsCheck,
	IfaceDispatch,
	StructLayout,
	FalseShare,
	ValueCopy,
	Presize,
}

// ByName resolves a comma-separated analyzer list ("determinism,printer").
func ByName(names string) ([]*Analyzer, bool) {
	parts := strings.Split(names, ",")
	out := make([]*Analyzer, 0, len(parts))
	for _, name := range parts {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// samplingPackages are the packages under the seedplumb contract: the
// ones that draw RIC/RR samples or simulate diffusion in parallel.
var samplingPackages = map[string]bool{
	"imc/internal/ric":       true,
	"imc/internal/ris":       true,
	"imc/internal/diffusion": true,
	"imc/internal/maxr":      true,
}

// isLibraryPackage reports whether path is library code (the root
// package or anything under internal/), as opposed to cmd/ binaries and
// examples/ which legitimately print and read the clock.
func isLibraryPackage(modulePath, path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/internal/")
}

// clockPackage is the sanctioned wall-clock access point: the ONLY
// library package allowed to call time.Now. Exempting it here replaces
// the //lint:allow suppression it used to carry — the boundary is now
// policy, not a per-line waiver.
const clockPackage = "/internal/clock"

// AnalyzersFor returns the subset of candidates that applies to the
// package at the given import path. Gating lives here — analyzers
// themselves are unconditional, which keeps their fixture tests simple:
//
//   - determinism: library packages only, except internal/clock (the
//     sanctioned time.Now wrapper);
//   - floatcompare, printer: library packages only;
//   - seedplumb: the four sampling packages;
//   - allocfree, purity, ctxplumb: library packages only (the //imc:
//     annotation contracts live in library code; cmd/ and examples/ are
//     not on the sampling hot path);
//   - apisurface: library packages only (cmd/ binaries and examples/
//     have no API consumers);
//   - exhaustive: the dispatch packages (expt, serve) whose switches
//     route on registered algorithm/scheme const sets;
//   - chanctx, guardedby, lockheld: library packages only (cmd/
//     binaries hold no long-lived locks and their signal-wait selects
//     are the process's own lifetime, not a leaked goroutine's);
//   - heapescape, inlineable, boundscheck, ifacedispatch: library
//     packages only (the //imc:hotpath perf contracts live in library
//     code, like allocfree);
//   - structlayout, falseshare, valuecopy, presize: library packages
//     only (the memory-layout contracts guard the pooled kernel
//     structs and worker fan-outs; cmd/ wiring is not bandwidth-bound);
//   - goroutineleak, ctxfirst, errflow, sharemut, layering, lockorder:
//     everywhere (a lock-order cycle is a deadlock wherever it lives).
func AnalyzersFor(modulePath, path string, candidates []*Analyzer) []*Analyzer {
	lib := isLibraryPackage(modulePath, path)
	out := make([]*Analyzer, 0, len(candidates))
	for _, a := range candidates {
		switch a.Name {
		case "determinism":
			if lib && path != modulePath+clockPackage {
				out = append(out, a)
			}
		case "floatcompare", "printer", "allocfree", "purity", "ctxplumb", "apisurface",
			"chanctx", "guardedby", "lockheld",
			"heapescape", "inlineable", "boundscheck", "ifacedispatch",
			"structlayout", "falseshare", "valuecopy", "presize":
			if lib {
				out = append(out, a)
			}
		case "seedplumb":
			if samplingPackages[path] {
				out = append(out, a)
			}
		case "exhaustive":
			if dispatchPackages[path] {
				out = append(out, a)
			}
		default:
			out = append(out, a)
		}
	}
	return out
}

// dispatchPackages route requests to algorithms by name — the switches
// the exhaustive analyzer polices.
var dispatchPackages = map[string]bool{
	"imc/internal/expt":  true,
	"imc/internal/serve": true,
}
