package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches `// want "substr"` golden-diagnostic annotations in
// fixture sources.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// loadFixture loads one fixture package under testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(filepath.Join("internal", "lint", "testdata", "src", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

// wantsIn extracts line → expected-substring annotations from every
// file of the fixture.
func wantsIn(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(filename)
		if err != nil {
			t.Fatalf("read fixture %s: %v", filename, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", filename, i+1)
				out[key] = append(out[key], m[1])
			}
		}
	}
	return out
}

// TestAnalyzerFixtures runs every analyzer against its golden fixture
// package: each `// want "substr"` line must produce exactly one
// matching diagnostic, and no unannotated line may fire.
func TestAnalyzerFixtures(t *testing.T) {
	fixtures := map[string]*Analyzer{
		"determinism":   Determinism,
		"floatcompare":  FloatCompare,
		"goroutineleak": GoroutineLeak,
		"printer":       Printer,
		"seedplumb":     SeedPlumb,
		"ctxfirst":      CtxFirst,
		"ctxplumb":      CtxPlumb,
		"allocfree":     AllocFree,
		"errflow":       ErrFlow,
		"purity":        Purity,
		"sharemut":      ShareMut,
		"exhaustive":    Exhaustive,
		"chanctx":       ChanCtx,
		"guardedby":     GuardedBy,
		"heapescape":    HeapEscape,
		"boundscheck":   BoundsCheck,
		"structlayout":  StructLayout,
		"falseshare":    FalseShare,
		"valuecopy":     ValueCopy,
		"presize":       Presize,
	}
	// layering and apisurface need a whole Program (contract file, API
	// snapshot) rather than a bare fixture package; lockorder and
	// lockheld need the call graph; inlineable and ifacedispatch need
	// call-graph nodes and effect summaries. Their fixture coverage
	// lives in interproc_test.go, concurrency_test.go, and
	// perfcontract_test.go. Everything else must have a golden fixture
	// here.
	programOnly := map[string]bool{
		"layering": true, "apisurface": true,
		"lockorder": true, "lockheld": true,
		"inlineable": true, "ifacedispatch": true,
	}
	if len(fixtures)+len(programOnly) != len(All) {
		t.Fatalf("fixture table covers %d analyzers (+%d program-level), suite has %d",
			len(fixtures), len(programOnly), len(All))
	}
	for _, a := range All {
		if fixtures[a.Name] == nil && !programOnly[a.Name] {
			t.Fatalf("analyzer %s has neither a fixture nor program-level coverage", a.Name)
		}
	}
	for name, analyzer := range fixtures {
		t.Run(name, func(t *testing.T) {
			t.Parallel() // fixtures load into independent packages
			pkg := loadFixture(t, name)
			wants := wantsIn(t, pkg)
			diags := Run(pkg, []*Analyzer{analyzer})

			matched := make(map[string]int)
			for _, d := range diags {
				key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
				subs, ok := wants[key]
				if !ok {
					t.Errorf("unexpected diagnostic: %s", d)
					continue
				}
				found := false
				for _, sub := range subs {
					if strings.Contains(d.Message, sub) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("diagnostic at %s does not match any want %q: %s", key, subs, d.Message)
				}
				matched[key]++
			}
			for key, subs := range wants {
				if matched[key] != len(subs) {
					t.Errorf("%s: want %d diagnostic(s) matching %q, got %d", key, len(subs), subs, matched[key])
				}
			}
		})
	}
}

// TestAllowSuppression spot-checks that the fixture's //lint:allow line
// is genuinely a violation that only the escape hatch silences.
func TestAllowSuppression(t *testing.T) {
	pkg := loadFixture(t, "determinism")
	var suppressed *Reporter
	// Re-run with a reporter whose allow index is empty: the sanctioned
	// time.Now must now surface, proving suppression (not blindness).
	bare := &Reporter{pkg: pkg, allow: map[string]map[int][]*allowComment{}}
	Determinism.Run(pkg, bare)
	full := NewReporter(pkg)
	Determinism.Run(pkg, full)
	if len(bare.Diagnostics()) != len(full.Diagnostics())+1 {
		t.Fatalf("allow comment should suppress exactly one diagnostic: bare=%d full=%d",
			len(bare.Diagnostics()), len(full.Diagnostics()))
	}
	_ = suppressed
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		in     string
		checks []string
		reason string
		legacy bool
		ok     bool
	}{
		{"//lint:allow determinism: the one sanctioned clock read", []string{"determinism"}, "the one sanctioned clock read", false, true},
		{"//lint:allow determinism floatcompare: two checks", []string{"determinism", "floatcompare"}, "two checks", false, true},
		{"//lint:allow determinism", []string{"determinism"}, "", false, true},
		{"// lint:allow determinism — legacy separator", []string{"determinism"}, "legacy separator", true, true},
		{"//lint:allow determinism -- legacy separator", []string{"determinism"}, "legacy separator", true, true},
		{"//lint:allowother", nil, "", false, false},
		{"//lint:allow", nil, "", false, false},
		{"//lint:allow : reason but no check", nil, "", false, false},
		{"// plain comment", nil, "", false, false},
	}
	for _, c := range cases {
		checks, reason, legacy, ok := parseAllow(c.in)
		if ok != c.ok {
			t.Errorf("parseAllow(%q) ok=%v, want %v", c.in, ok, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if fmt.Sprint(checks) != fmt.Sprint(c.checks) {
			t.Errorf("parseAllow(%q) checks = %v, want %v", c.in, checks, c.checks)
		}
		if reason != c.reason {
			t.Errorf("parseAllow(%q) reason = %q, want %q", c.in, reason, c.reason)
		}
		if legacy != c.legacy {
			t.Errorf("parseAllow(%q) legacy = %v, want %v", c.in, legacy, c.legacy)
		}
	}
}

// TestSuppressionHygiene exercises the escape-hatch police: stale
// allows, missing reasons, legacy separators, and unknown checks are
// reported; a live, well-formed allow is not.
func TestSuppressionHygiene(t *testing.T) {
	pkg := loadFixture(t, "suppression")
	diags := Run(pkg, []*Analyzer{Determinism})
	wants := wantsIn(t, pkg)
	matched := make(map[string]int)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		subs, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		found := false
		for _, sub := range subs {
			if strings.Contains(d.Message, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("diagnostic at %s does not match any want %q: %s", key, subs, d.Message)
		}
		matched[key]++
	}
	for key, subs := range wants {
		if matched[key] != len(subs) {
			t.Errorf("%s: want %d diagnostic(s) matching %q, got %d", key, len(subs), subs, matched[key])
		}
	}
}

// TestAnalyzersFor checks the driver's per-package gating.
func TestAnalyzersFor(t *testing.T) {
	names := func(as []*Analyzer) string {
		var out []string
		for _, a := range as {
			out = append(out, a.Name)
		}
		return strings.Join(out, ",")
	}
	cases := []struct {
		path string
		want string
	}{
		{"imc", "determinism,floatcompare,goroutineleak,printer,ctxfirst,ctxplumb,allocfree,errflow,purity,sharemut,layering,apisurface,chanctx,guardedby,lockheld,lockorder,heapescape,inlineable,boundscheck,ifacedispatch,structlayout,falseshare,valuecopy,presize"},
		{"imc/internal/graph", "determinism,floatcompare,goroutineleak,printer,ctxfirst,ctxplumb,allocfree,errflow,purity,sharemut,layering,apisurface,chanctx,guardedby,lockheld,lockorder,heapescape,inlineable,boundscheck,ifacedispatch,structlayout,falseshare,valuecopy,presize"},
		{"imc/internal/ric", "determinism,floatcompare,goroutineleak,printer,seedplumb,ctxfirst,ctxplumb,allocfree,errflow,purity,sharemut,layering,apisurface,chanctx,guardedby,lockheld,lockorder,heapescape,inlineable,boundscheck,ifacedispatch,structlayout,falseshare,valuecopy,presize"},
		{"imc/internal/maxr", "determinism,floatcompare,goroutineleak,printer,seedplumb,ctxfirst,ctxplumb,allocfree,errflow,purity,sharemut,layering,apisurface,chanctx,guardedby,lockheld,lockorder,heapescape,inlineable,boundscheck,ifacedispatch,structlayout,falseshare,valuecopy,presize"},
		{"imc/internal/clock", "floatcompare,goroutineleak,printer,ctxfirst,ctxplumb,allocfree,errflow,purity,sharemut,layering,apisurface,chanctx,guardedby,lockheld,lockorder,heapescape,inlineable,boundscheck,ifacedispatch,structlayout,falseshare,valuecopy,presize"},
		{"imc/internal/expt", "determinism,floatcompare,goroutineleak,printer,ctxfirst,ctxplumb,allocfree,errflow,purity,sharemut,layering,apisurface,exhaustive,chanctx,guardedby,lockheld,lockorder,heapescape,inlineable,boundscheck,ifacedispatch,structlayout,falseshare,valuecopy,presize"},
		{"imc/internal/serve", "determinism,floatcompare,goroutineleak,printer,ctxfirst,ctxplumb,allocfree,errflow,purity,sharemut,layering,apisurface,exhaustive,chanctx,guardedby,lockheld,lockorder,heapescape,inlineable,boundscheck,ifacedispatch,structlayout,falseshare,valuecopy,presize"},
		{"imc/cmd/imcrun", "goroutineleak,ctxfirst,errflow,sharemut,layering,lockorder"},
		{"imc/examples/quickstart", "goroutineleak,ctxfirst,errflow,sharemut,layering,lockorder"},
	}
	for _, c := range cases {
		if got := names(AnalyzersFor("imc", c.path, All)); got != c.want {
			t.Errorf("AnalyzersFor(%s) = %s, want %s", c.path, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	as, ok := ByName("determinism, printer")
	if !ok || len(as) != 2 || as[0].Name != "determinism" || as[1].Name != "printer" {
		t.Fatalf("ByName = %v, %v", as, ok)
	}
	if _, ok := ByName("nosuch"); ok {
		t.Fatal("ByName accepted unknown analyzer")
	}
}
