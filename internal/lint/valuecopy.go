package lint

import (
	"go/ast"
	"go/types"
)

// ValueCopy flags the memmove traffic heapescape cannot see: big struct
// values copied wholesale inside `//imc:hotpath` functions.
// heapescape polices the pointer side (values boxed onto the heap);
// valuecopy polices the value side (bytes moved per iteration). Three
// shapes fire, each finding carrying the byte size under the canonical
// layout model and the loop depth it executes at:
//
//  1. range-by-value: `for _, v := range s` where s's elements are
//     structs of at least valueCopyThreshold bytes — every iteration
//     memmoves the element into v; range by index and take &s[i];
//
//  2. pass-by-value in a loop: a call at loop depth ≥ 1 whose argument
//     lands in a struct parameter of at least the threshold (including
//     big value receivers on method calls); pass a pointer;
//
//  3. interface boxing of big values: a call argument or assignment at
//     loop depth ≥ 1 that converts a struct of at least the threshold
//     into an interface — a copy plus a likely allocation per
//     iteration; pass a pointer or prebuild the interface value once.
//
// The threshold is deliberately above the kernels' pooled entry types
// (CoverEntry is 32 bytes; copying it beats chasing a pointer): only
// copies big enough to out-cost an indirection fire.
var ValueCopy = &Analyzer{
	Name: "valuecopy",
	Doc:  "flag range-by-value, pass-by-value, and interface boxing of large structs inside //imc:hotpath functions, with byte size and loop depth",
	Kind: KindFlowSensitive,
	Run:  runValueCopy,
}

// valueCopyThreshold is the struct size (bytes) from which a copy per
// iteration costs more than the pointer indirection that avoids it.
const valueCopyThreshold = 64

func runValueCopy(pkg *Package, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	for _, fd := range hotFuncDecls(pkg) {
		checkValueCopy(pkg, fd, r)
	}
}

// bigStructSize returns t's size when t is a struct (or named struct)
// of at least the threshold, else -1.
func bigStructSize(t types.Type) int64 {
	if t == nil {
		return -1
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok || !sizeableType(st) {
		return -1
	}
	if sz := layoutSizes.Sizeof(st); sz >= valueCopyThreshold {
		return sz
	}
	return -1
}

func checkValueCopy(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	cfg := BuildCFG(fd.Body)
	depthOf := func(n ast.Node) int {
		if d, ok := cfg.NodeLoopDepth(n); ok {
			return d
		}
		return 0
	}

	// Shape 1: range-by-value, at any depth — the range is its own loop.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		val, ok := rs.Value.(*ast.Ident)
		if !ok || val.Name == "_" {
			return true
		}
		rt := exprType(pkg, rs.X)
		if rt == nil {
			return true
		}
		var elem types.Type
		switch u := rt.Underlying().(type) {
		case *types.Slice:
			elem = u.Elem()
		case *types.Array:
			elem = u.Elem()
		default:
			return true
		}
		if sz := bigStructSize(elem); sz >= 0 {
			r.Reportf("valuecopy", rs.Pos(),
				"range copies a %d-byte %s into %s on every iteration (loop depth %d); range by index and use &%s[i], or range over a []*T",
				sz, elem.String(), val.Name, depthOf(rs), renderExpr(rs.X))
		}
		return true
	})

	// Shapes 2 and 3 fire per call/assignment executed inside a loop.
	for _, stmt := range loopStmts(cfg) {
		depth, _ := cfg.NodeLoopDepth(stmt)
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				checkCallCopies(pkg, n, depth, r)
			case *ast.AssignStmt:
				checkAssignBoxing(pkg, n, depth, r)
			}
			return true
		})
	}
}

// checkCallCopies inspects one in-loop call for big-struct arguments
// landing in value parameters (shape 2) or interface parameters
// (shape 3), plus big value receivers.
func checkCallCopies(pkg *Package, call *ast.CallExpr, depth int, r *Reporter) {
	ft := exprType(pkg, call.Fun)
	sig, ok := ft.(*types.Signature)
	if !ok {
		return // builtin, conversion, or unresolved
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		at := exprType(pkg, arg)
		if _, isIface := pt.Underlying().(*types.Interface); isIface {
			if sz := bigStructSize(at); sz >= 0 {
				r.Reportf("valuecopy", arg.Pos(),
					"boxes a %d-byte %s into %s per call at loop depth %d — a copy and usually an allocation per iteration; pass a pointer or prebuild the interface value outside the loop",
					sz, at.String(), pt.String(), depth)
			}
			continue
		}
		if sz := bigStructSize(pt); sz >= 0 {
			r.Reportf("valuecopy", arg.Pos(),
				"passes a %d-byte %s by value at loop depth %d; pass a pointer",
				sz, pt.String(), depth)
		}
	}
	// Big value receiver: the hidden first argument.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if msig, ok := s.Obj().Type().(*types.Signature); ok && msig.Recv() != nil {
				if sz := bigStructSize(msig.Recv().Type()); sz >= 0 {
					r.Reportf("valuecopy", call.Pos(),
						"calls %s on a %d-byte value receiver at loop depth %d — the receiver is copied per call; use a pointer receiver",
						s.Obj().Name(), sz, depth)
				}
			}
		}
	}
}

// checkAssignBoxing is shape 3's assignment form: storing a big struct
// into an interface-typed variable inside a loop.
func checkAssignBoxing(pkg *Package, as *ast.AssignStmt, depth int, r *Reporter) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := exprType(pkg, lhs)
		if lt == nil {
			continue
		}
		if _, isIface := lt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if sz := bigStructSize(exprType(pkg, as.Rhs[i])); sz >= 0 {
			r.Reportf("valuecopy", as.Rhs[i].Pos(),
				"boxes a %d-byte %s into %s per iteration at loop depth %d; store a pointer or hoist the conversion out of the loop",
				sz, exprType(pkg, as.Rhs[i]).String(), lt.String(), depth)
		}
	}
}
