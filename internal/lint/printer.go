package lint

import (
	"go/ast"
	"strings"
)

// Printer forbids writing to process stdout from library packages.
// Library code returns values or writes to an injected io.Writer; only
// cmd/ binaries own the terminal. This keeps every internal package
// usable from the HTTP server and the experiment harness without
// polluting their output streams.
var Printer = &Analyzer{
	Name: "printer",
	Doc:  "forbid fmt.Print*/os.Stdout in library packages; return values or accept an io.Writer",
	Kind: KindSyntactic,
	Run:  runPrinter,
}

func runPrinter(pkg *Package, r *Reporter) {
	for _, file := range pkg.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if path, ok := pkg.importedPkgName(file, sel.X); ok && path == "fmt" &&
						strings.HasPrefix(sel.Sel.Name, "Print") {
						r.Reportf("printer", sel.Sel.Pos(),
							"fmt.%s writes to process stdout from library code; accept an io.Writer instead", sel.Sel.Name)
					}
				}
			case *ast.SelectorExpr:
				if path, ok := pkg.importedPkgName(file, n.X); ok && path == "os" &&
					(n.Sel.Name == "Stdout" || n.Sel.Name == "Stderr") {
					r.Reportf("printer", n.Sel.Pos(),
						"os.%s referenced from library code; accept an io.Writer instead", n.Sel.Name)
				}
			}
			return true
		})
	}
}
