package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file holds the helpers shared by the v5 performance-contract
// analyzers (heapescape, inlineable, boundscheck, ifacedispatch). All
// four enforce properties of `//imc:hotpath` functions — the RIC/RIS
// sampling kernels and the MAXR marginal-gain scans — where the paper's
// cost concentrates. They reuse the v3 substrate: loop membership from
// the CFG (cfg.go), callee reachability from the call graph
// (callgraph.go), and transitive effects from the summaries
// (summary.go).

// hotFuncDecls returns the `//imc:hotpath` function declarations of the
// package in file/source order — the deterministic iteration order all
// perf-contract analyzers report in.
func hotFuncDecls(pkg *Package) []*ast.FuncDecl {
	dirs := funcDirectives(pkg)
	out := make([]*ast.FuncDecl, 0, len(dirs))
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(dirs, fd, directiveHotPath) {
				continue
			}
			out = append(out, fd)
		}
	}
	return out
}

// loopStmts returns the statements (and header expressions) of fd's
// body that execute once per iteration of some loop — CFG blocks with
// LoopDepth ≥ 1, minus the rangeBind markers (the ranged-over
// expression itself was placed, and is checked, at the outer depth).
func loopStmts(cfg *CFG) []ast.Node {
	n := 0
	for _, blk := range cfg.Blocks {
		if blk.LoopDepth >= 1 {
			n += len(blk.Stmts)
		}
	}
	out := make([]ast.Node, 0, n)
	for _, blk := range cfg.Blocks {
		if blk.LoopDepth < 1 {
			continue
		}
		for _, stmt := range blk.Stmts {
			if _, ok := stmt.(rangeBind); ok {
				continue
			}
			out = append(out, stmt)
		}
	}
	return out
}

// loopCallEdges maps the in-loop statements back to fd's resolved call
// edges, in source order — the edge set transitive perf contracts are
// checked against. Function-literal interiors are pruned: a closure's
// body runs on its own schedule. Returns nil outside a whole-program
// load.
func loopCallEdges(pkg *Package, fd *ast.FuncDecl, inLoop []ast.Node) (*FuncNode, []*CallEdge) {
	node := funcNodeOf(pkg, fd)
	if node == nil {
		return nil, nil
	}
	edgeAt := make(map[*ast.CallExpr]*CallEdge, len(node.Calls))
	for i := range node.Calls {
		edgeAt[node.Calls[i].Site] = &node.Calls[i]
	}
	seen := make(map[*CallEdge]bool)
	var edges []*CallEdge
	for _, stmt := range inLoop {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if e := edgeAt[call]; e != nil && !seen[e] {
					seen[e] = true
					edges = append(edges, e)
				}
			}
			return true
		})
	}
	return node, edges
}

// funcNodeOf resolves fd to its whole-program call-graph node, nil when
// the package was loaded standalone (fixture mode) or fd was not
// type-checked.
func funcNodeOf(pkg *Package, fd *ast.FuncDecl) *FuncNode {
	if pkg.Prog == nil || pkg.Info == nil {
		return nil
	}
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return pkg.Prog.Graph.Node(fn)
}

// ctxParamObjects returns fd's parameters of type context.Context. The
// ctx-first / longrun contract (ctxplumb) REQUIRES long-running hot
// kernels to carry a context and poll it in batches, so perf-contract
// analyzers exempt the ctx parameter and calls through it — the poll
// idiom (`t & (ctxPollBatch-1) == 0`) amortizes its dispatch to nothing.
func ctxParamObjects(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if pkg.Info == nil || fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj != nil && isContextTyped(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

// isContextTyped reports whether t is context.Context.
func isContextTyped(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// paramTypeAt returns the declared parameter type that the i-th
// argument of a call to sig lands in, unwrapping the variadic slice's
// element type. Nil when the call shape doesn't line up (e.g. f(g())
// tuple spreading, which no hot path uses).
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	switch {
	case sig.Variadic() && i >= params.Len()-1:
		if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
	case i < params.Len():
		return params.At(i).Type()
	}
	return nil
}

// renderExpr prints an expression the way the source spells it — the
// form perf-contract findings quote so the reader can grep for the
// site.
func renderExpr(e ast.Expr) string {
	return types.ExprString(e)
}

// implementerNames lists the module's concrete types that provide every
// method of iface, as "pkg.Type" (package base name), sorted, capped at
// three — the devirtualization candidates ifacedispatch names. The
// match is by method-name superset over the call graph's declared
// methods: the loader type-checks each package in its own universe, so
// nominal types.Implements checks cannot cross packages; a name-set
// match is the deterministic, universe-independent approximation.
func implementerNames(prog *Program, iface *types.Interface) []string {
	if prog == nil || iface == nil || iface.NumMethods() == 0 {
		return nil
	}
	want := make(map[string]bool, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		want[iface.Method(i).Name()] = true
	}
	// Group declared methods by receiver type.
	methods := make(map[string]map[string]bool)
	for _, node := range prog.Graph.Nodes {
		recv := recvTypeName(node.Fn)
		if recv == "" {
			continue
		}
		base := node.Pkg.Path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		key := base + "." + recv
		if methods[key] == nil {
			methods[key] = make(map[string]bool)
		}
		methods[key][node.Fn.Name()] = true
	}
	var out []string
	for key, have := range methods {
		all := true
		for m := range want {
			if !have[m] {
				all = false
				break
			}
		}
		if all {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	if len(out) > 3 {
		out = append(out[:3], "…")
	}
	return out
}
