package lint

import (
	"fmt"
	"go/token"
	"os"
	"strings"
)

// The layering analyzer enforces the module's import DAG contract: a
// checked-in file (internal/lint/layers.txt) lists the module's
// packages bottom-up in layers, and a package may import only packages
// in the same or a lower layer. The contract makes the architecture a
// build-failing fact instead of a README aspiration: `ric` and
// `diffusion` (sampling kernels) can never grow a dependency on `maxr`
// or `serve` (orchestration) without the diff touching layers.txt,
// where the inversion is visible at review time.
//
// Contract file grammar (one layer per line, bottom-up):
//
//	# comment
//	layer internal/bitset internal/clock internal/xrand
//	layer internal/graph
//	layer cmd/* examples/*
//
// Paths are module-relative ("." is the module root package); a
// trailing "/*" matches a directory's immediate children. Every loaded
// package must be covered — an unlisted package is itself a finding,
// so the contract cannot silently rot as packages are added.

// layerContract is the parsed layering contract.
type layerContract struct {
	// exact maps a module-relative package path to its layer index.
	exact map[string]int
	// globs maps a directory prefix ("cmd") to a layer index, matching
	// that directory's immediate children.
	globs map[string]int
	// names renders each layer for findings ("layer 3 (internal/ric …)").
	names []string
}

// parseLayers parses the contract file.
func parseLayers(path string) (*layerContract, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lc := &layerContract{exact: make(map[string]int), globs: make(map[string]int)}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rest, ok := strings.CutPrefix(line, "layer")
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			return nil, fmt.Errorf("%s:%d: expected \"layer pkg pkg …\", got %q", path, ln+1, line)
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return nil, fmt.Errorf("%s:%d: empty layer", path, ln+1)
		}
		idx := len(lc.names)
		for _, f := range fields {
			if dir, ok := strings.CutSuffix(f, "/*"); ok {
				if _, dup := lc.globs[dir]; dup {
					return nil, fmt.Errorf("%s:%d: %s/* listed twice", path, ln+1, dir)
				}
				lc.globs[dir] = idx
				continue
			}
			if _, dup := lc.exact[f]; dup {
				return nil, fmt.Errorf("%s:%d: %s listed twice", path, ln+1, f)
			}
			lc.exact[f] = idx
		}
		lc.names = append(lc.names, strings.Join(fields, " "))
	}
	if len(lc.names) == 0 {
		return nil, fmt.Errorf("%s: contract declares no layers", path)
	}
	return lc, nil
}

// layerOf resolves a module-relative package path to its layer index;
// ok is false for packages the contract does not cover.
func (lc *layerContract) layerOf(rel string) (int, bool) {
	if idx, ok := lc.exact[rel]; ok {
		return idx, true
	}
	if i := strings.LastIndex(rel, "/"); i > 0 {
		if idx, ok := lc.globs[rel[:i]]; ok {
			return idx, true
		}
	}
	return 0, false
}

// layers returns the program's parsed contract, reading LayersPath once.
func (p *Program) layersContract() (*layerContract, error) {
	if !p.layersSet {
		p.layersSet = true
		p.layers, p.layersErr = parseLayers(p.LayersPath)
	}
	return p.layers, p.layersErr
}

// relPath maps an import path inside the module to its module-relative
// form ("." for the root package); ok is false for external paths.
func (p *Program) relPath(importPath string) (string, bool) {
	if importPath == p.ModulePath {
		return ".", true
	}
	if rest, ok := strings.CutPrefix(importPath, p.ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// Layering enforces the import-DAG contract in layers.txt.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "module-internal imports must respect the layer contract in internal/lint/layers.txt",
	Kind: KindInterprocedural,
	Run:  checkLayering,
}

func checkLayering(pkg *Package, r *Reporter) {
	prog := pkg.Prog
	if prog == nil {
		return // bare fixture load: no program, no contract
	}
	lc, err := prog.layersContract()
	if err != nil {
		r.ReportAt("layering", token.Position{Filename: prog.LayersPath, Line: 1},
			"cannot load layering contract: %v", err)
		return
	}
	rel, ok := prog.relPath(pkg.Path)
	if !ok {
		return
	}
	pkgLayer, ok := lc.layerOf(rel)
	if !ok {
		pos := pkg.Fset.Position(firstFilePos(pkg))
		r.ReportAt("layering", pos,
			"package %s is not covered by the layering contract; add it to %s", rel, prog.LayersPath)
		return
	}
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			impRel, ok := prog.relPath(path)
			if !ok {
				continue // stdlib: outside the contract
			}
			impLayer, ok := lc.layerOf(impRel)
			if !ok {
				r.Reportf("layering", imp.Pos(),
					"import of %s, which is not covered by the layering contract", impRel)
				continue
			}
			if impLayer > pkgLayer {
				r.Reportf("layering", imp.Pos(),
					"upward import: %s (layer %d: %s) may not import %s (layer %d: %s)",
					rel, pkgLayer, lc.names[pkgLayer], impRel, impLayer, lc.names[impLayer])
			}
		}
	}
}

// firstFilePos returns a stable position inside pkg for package-level
// findings: the package clause of the first (sorted-order) file.
func firstFilePos(pkg *Package) token.Pos {
	if len(pkg.Files) == 0 {
		return token.NoPos
	}
	return pkg.Files[0].Package
}
