package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BoundsCheck flags index patterns inside `//imc:hotpath` loops that
// defeat Go's bounds-check elimination (BCE) — each defeated check is
// a compare-and-branch per element per sample. Three patterns fire:
//
//  1. `len(x.f)` in a for-loop condition: a field (or any selector)
//     length is reloaded every iteration, because the compiler must
//     assume calls and stores in the body change it, and the reload
//     blocks BCE on indexes bounded by it. Hoist the slice into a
//     local (`s := x.f`) before the loop — and write it back after, if
//     the loop appends.
//
//  2. Additive index arithmetic on slices: `s[i+1]` / `s[i-1]` keeps
//     its bounds check even when `i < len(s)` holds, because the proof
//     needed is about i±1, not i. Widen the loop bound
//     (`i < len(s)-1`) or add a dominating bound hint.
//
//  3. Parallel-slice indexing: `b[i]` inside a loop whose induction
//     variable is bounded by a DIFFERENT slice's length (`i <
//     len(a)`, `range a`) is checked on every access — the compiler
//     cannot relate len(b) to len(a). The standard idioms are
//     recognized as clean when they appear before the loop:
//     `b = b[:len(a)]` (or `[:n]` for an `i < n` bound), a
//     `_ = b[...]` bound hint, or `b := make(T, len(a))` /
//     `make(T, n)`.
//
// The clean-idiom table (pinned by the BCE table test):
//
//   - `for i := range s { s[i] }` and `for i := 0; i < len(s); i++ {
//     s[i] }` on the SAME slice — the canonical BCE shapes;
//   - data-dependent gathers `s[e.Sample]`, `s[v]` — a different
//     optimization problem (the index is data), not a defeated proof;
//   - packing arithmetic `s[i/64]`, `s[i%64]`, shifts — the masked
//     word-index idiom of the bitset layer;
//   - map indexing (no bounds checks exist) and fixed-size arrays
//     (length is a compile-time constant);
//   - the hoisted-length form `n := len(s); for i := 0; i < n; i++ {
//     s[i] }` — the assignment relates n back to s;
//   - re-sliced or hinted parallel slices, per pattern 3.
//
// The analysis is per-function and flow-light: "before the loop" is
// source order, not dominance — precise enough for lint, cheap enough
// to run on every package.
var BoundsCheck = &Analyzer{
	Name: "boundscheck",
	Doc:  "flag hot-loop index patterns that defeat bounds-check elimination (selector len() in loop conditions, additive index arithmetic, unre-sliced parallel slices)",
	Kind: KindFlowSensitive,
	Run:  runBoundsCheck,
}

func runBoundsCheck(pkg *Package, r *Reporter) {
	for _, fd := range hotFuncDecls(pkg) {
		checkBounds(pkg, fd, r)
	}
}

func checkBounds(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	b := &boundsChecker{pkg: pkg, r: r}
	b.collectSanctions(fd.Body)
	cfg := BuildCFG(fd.Body)

	// Pattern 2 scans the per-iteration statements from the CFG;
	// patterns 1 and 3 key off the loop statements themselves.
	for _, stmt := range loopStmts(cfg) {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.IndexExpr:
				b.checkIndexArith(n)
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			b.checkLenCondition(n)
			b.checkParallel(n, nil)
		case *ast.RangeStmt:
			b.checkParallel(nil, n)
		}
		return true
	})
}

type boundsChecker struct {
	pkg *Package
	r   *Reporter
	// sanctions records the re-slice / hint / sized-make facts: for a
	// slice object b, the bound objects it has been related to (nil
	// entry = related to anything, e.g. by a `_ = b[...]` hint), with
	// the source position the fact holds from.
	sanctions []sanction
}

type sanction struct {
	slice types.Object
	bound types.Object // nil: any bound
	pos   token.Pos
}

// exprObj resolves a plain identifier or selector to its object.
func (b *boundsChecker) exprObj(e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := b.pkg.Info.Uses[e]; obj != nil {
			return obj
		}
		return b.pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := b.pkg.Info.Selections[e]; ok {
			return sel.Obj()
		}
	}
	return nil
}

// isSliceExpr reports whether e has slice type (arrays and maps have
// no BCE problem worth flagging: constant length / no checks).
func (b *boundsChecker) isSliceExpr(e ast.Expr) bool {
	tv, ok := b.pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

// collectSanctions records every `b = x[:len(a)]` / `b = x[:n]`
// re-slice, `_ = b[...]` bound hint, `b := make(T, len(a))` /
// `make(T, n)`, and `n := len(s)` hoisted-length assignment in the
// body.
func (b *boundsChecker) collectSanctions(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lhs := as.Lhs[i]
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				// `_ = b[hint]`: pins b's length for everything after.
				if ix, ok := rhs.(*ast.IndexExpr); ok && b.isSliceExpr(ix.X) {
					if obj := b.exprObj(ix.X); obj != nil {
						b.sanctions = append(b.sanctions, sanction{slice: obj, pos: as.Pos()})
					}
				}
				continue
			}
			target := b.exprObj(lhs)
			if target == nil {
				continue
			}
			switch rhs := rhs.(type) {
			case *ast.SliceExpr:
				// b = b[:len(a)], b = b[:n], b := x.f[:n] — the target's
				// length now IS the bound, whatever the base was.
				if rhs.Low != nil || rhs.High == nil {
					continue
				}
				if bound := b.boundObj(rhs.High); bound != nil {
					b.sanctions = append(b.sanctions, sanction{slice: target, bound: bound, pos: as.Pos()})
				}
			case *ast.CallExpr:
				if id, ok := rhs.Fun.(*ast.Ident); ok && isBuiltin(b.pkg, id) {
					switch {
					case id.Name == "make" && len(rhs.Args) >= 2:
						// b := make(T, len(a)) / make(T, n[, cap])
						if bound := b.boundObj(rhs.Args[1]); bound != nil {
							b.sanctions = append(b.sanctions, sanction{slice: target, bound: bound, pos: as.Pos()})
						}
					case id.Name == "len" && len(rhs.Args) == 1:
						// n := len(s) — the hoisted-length idiom relates n
						// back to s, so `for i := 0; i < n` covers s[i].
						if sliceObj := b.exprObj(rhs.Args[0]); sliceObj != nil {
							b.sanctions = append(b.sanctions, sanction{slice: sliceObj, bound: target, pos: as.Pos()})
						}
					}
				}
			}
		}
		return true
	})
}

// boundObj resolves a bound expression to the object that defines it:
// `len(a)` → a's object, a plain identifier `n` → n's object.
func (b *boundsChecker) boundObj(e ast.Expr) types.Object {
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" && isBuiltin(b.pkg, id) {
			return b.exprObj(call.Args[0])
		}
	}
	if _, ok := e.(*ast.Ident); ok {
		return b.exprObj(e)
	}
	return nil
}

// sanctioned reports whether slice b has a recorded relation to bound
// (or to anything) established before pos.
func (b *boundsChecker) sanctioned(slice, bound types.Object, before token.Pos) bool {
	for _, s := range b.sanctions {
		if s.slice != slice || s.pos >= before {
			continue
		}
		if s.bound == nil || s.bound == bound {
			return true
		}
	}
	return false
}

// checkLenCondition is pattern 1: len(<selector>) in a for condition.
func (b *boundsChecker) checkLenCondition(loop *ast.ForStmt) {
	if loop.Cond == nil {
		return
	}
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "len" || !isBuiltin(b.pkg, id) {
			return true
		}
		if sel, ok := call.Args[0].(*ast.SelectorExpr); ok && b.isSliceExpr(sel) {
			b.r.Reportf("boundscheck", call.Pos(),
				"len(%s) in a hot-loop condition is reloaded every iteration and blocks bounds-check elimination on indexes it bounds; hoist the field into a local before the loop (and write it back if the loop appends)",
				renderExpr(sel))
		}
		return true
	})
}

// checkIndexArith is pattern 2: additive arithmetic in a slice index.
func (b *boundsChecker) checkIndexArith(ix *ast.IndexExpr) {
	bin, ok := ix.Index.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
		return
	}
	if !b.isSliceExpr(ix.X) {
		return
	}
	b.r.Reportf("boundscheck", ix.Pos(),
		"index %s[%s] in a hot loop keeps its bounds check: the compiler proves facts about the index variable, not about %s; widen the loop bound or add a dominating hint (_ = %s[max])",
		renderExpr(ix.X), renderExpr(ix.Index), renderExpr(ix.Index), renderExpr(ix.X))
}

// checkParallel is pattern 3. Exactly one of forLoop / rangeLoop is
// non-nil.
func (b *boundsChecker) checkParallel(forLoop *ast.ForStmt, rangeLoop *ast.RangeStmt) {
	var (
		indVar   types.Object // the induction variable
		boundVar types.Object // the slice (or scalar bound) it is bounded by
		body     *ast.BlockStmt
		loopPos  token.Pos
	)
	switch {
	case rangeLoop != nil:
		key, ok := rangeLoop.Key.(*ast.Ident)
		if !ok || key.Name == "_" {
			return
		}
		if !b.isSliceExpr(rangeLoop.X) {
			return
		}
		indVar = b.pkg.Info.Defs[key]
		if indVar == nil {
			indVar = b.pkg.Info.Uses[key]
		}
		boundVar = b.exprObj(rangeLoop.X)
		body, loopPos = rangeLoop.Body, rangeLoop.Pos()
	case forLoop != nil:
		indVar, boundVar = b.inductionOf(forLoop)
		body, loopPos = forLoop.Body, forLoop.Pos()
	}
	if indVar == nil || boundVar == nil {
		return
	}
	reported := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		id, ok := ix.Index.(*ast.Ident)
		if !ok || b.pkg.Info.Uses[id] != indVar {
			return true
		}
		if !b.isSliceExpr(ix.X) {
			return true
		}
		sliceObj := b.exprObj(ix.X)
		if sliceObj == nil || sliceObj == boundVar || reported[sliceObj] {
			return true
		}
		if b.sanctioned(sliceObj, boundVar, loopPos) {
			return true
		}
		reported[sliceObj] = true
		boundExpr := boundVar.Name()
		if _, isSlice := boundVar.Type().Underlying().(*types.Slice); isSlice {
			boundExpr = "len(" + boundVar.Name() + ")"
		}
		b.r.Reportf("boundscheck", ix.Pos(),
			"parallel-slice index %s[%s] keeps its bounds check on every iteration: the loop bound comes from %s, and the compiler cannot relate the two lengths; re-slice before the loop (%s = %s[:%s]) or add a bound hint",
			renderExpr(ix.X), id.Name, boundVar.Name(), renderExpr(ix.X), renderExpr(ix.X), boundExpr)
		return true
	})
}

// inductionOf matches the canonical counting header `for i := 0; i <
// len(a); i++` (or `i < n`), returning the induction variable and the
// bound's defining object. Any deviation returns nils — pattern 3
// only reasons about loops it fully understands.
func (b *boundsChecker) inductionOf(loop *ast.ForStmt) (ind, bound types.Object) {
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
		return nil, nil
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	ind = b.pkg.Info.Defs[id]
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return nil, nil
	}
	lhs, ok := cond.X.(*ast.Ident)
	if !ok || b.pkg.Info.Uses[lhs] != ind {
		return nil, nil
	}
	post, ok := loop.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return nil, nil
	}
	bound = b.boundObj(cond.Y)
	if ind == nil || bound == nil {
		return nil, nil
	}
	return ind, bound
}
