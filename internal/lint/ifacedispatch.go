package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// IfaceDispatch enforces the static-dispatch contract on hot paths:
// inside an `//imc:hotpath` function's loops, every call should bind
// at compile time, because a dynamic call blocks inlining AND every
// optimization the other perf contracts assume behind it (escape
// analysis, bounds-check elimination through the callee). Four
// patterns fire:
//
//   - an interface-typed PARAMETER on a hot function: every method
//     call through it anywhere in the body dispatches dynamically —
//     the signature itself gives the concrete type away;
//   - a dynamic method call in a hot loop (interface dispatch), with
//     the module's concrete implementers of the interface named as
//     devirtualization candidates via the call graph;
//   - a call through a function VALUE in a hot loop;
//   - an argument that converts a concrete value to a non-empty
//     interface parameter at a hot-loop call site — the callee
//     dispatches on it even though this function does not (the
//     container/heap shape: Push(h heap.Interface, x any));
//   - transitively: a statically-resolved in-loop callee whose effect
//     summary carries EffDynamic, reported with the v3 witness chain.
//
// Sanctioned and exempt: context.Context. The ctx-first contract
// (ctxplumb) REQUIRES long-running kernels to take ctx and poll
// ctx.Err() in batches of ctxPollBatch; the poll's dispatch cost is
// amortized to nothing, so ctx parameters and calls through them never
// fire. Dynamic sites reached through deeper callees remain visible as
// the EffDynamic bit in `imclint -graph` even where this analyzer
// stays quiet.
var IfaceDispatch = &Analyzer{
	Name: "ifacedispatch",
	Doc:  "forbid dynamic dispatch on hot paths (interface-typed parameters, interface method calls, function-value calls, concrete→interface argument conversions, dynamic callees reached transitively), naming devirtualization candidates",
	Kind: KindInterprocedural,
	Run:  runIfaceDispatch,
}

func runIfaceDispatch(pkg *Package, r *Reporter) {
	for _, fd := range hotFuncDecls(pkg) {
		checkIfaceDispatch(pkg, fd, r)
	}
}

func checkIfaceDispatch(pkg *Package, fd *ast.FuncDecl, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	ctxParams := ctxParamObjects(pkg, fd)
	checkIfaceParams(pkg, fd, ctxParams, r)

	cfg := BuildCFG(fd.Body)
	inLoop := loopStmts(cfg)
	for _, stmt := range inLoop {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch res := resolveCall(pkg, call); res.kind {
			case callDynamic:
				checkDynamicSite(pkg, fd, call, ctxParams, r)
			case callStatic:
				checkIfaceArgs(pkg, call, r)
			}
			return true
		})
	}

	// Transitive: in-loop static callees that dispatch somewhere down
	// their call tree.
	_, edges := loopCallEdges(pkg, fd, inLoop)
	for _, v := range walkContract(pkg, edges, EffDynamic, directiveHotPath) {
		r.Reportf("ifacedispatch", v.Edge.Site.Pos(),
			"call in a hot loop reaches a dynamic dispatch transitively: %s → %s (%s at %s); devirtualize the chain or annotate the callee //imc:hotpath",
			fd.Name.Name, formatChain(v.Chain), v.Desc, shortPos(v.Pos))
	}
}

// checkIfaceParams is the signature-level pattern: interface-typed
// parameters on the hot function itself.
func checkIfaceParams(pkg *Package, fd *ast.FuncDecl, ctxParams map[types.Object]bool, r *Reporter) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj == nil || ctxParams[obj] {
				continue
			}
			iface, ok := obj.Type().Underlying().(*types.Interface)
			if !ok || iface.NumMethods() == 0 {
				continue // empty interface: nothing dispatches (boxing is allocfree's)
			}
			msg := "hot function takes interface-typed parameter %s %s; every method call through it dispatches dynamically — accept the concrete type"
			if cands := implementerNames(pkg.Prog, iface); len(cands) > 0 {
				msg += " (concrete implementers in this module: " + strings.Join(cands, ", ") + ")"
			}
			r.Reportf("ifacedispatch", name.Pos(), msg, obj.Name(), renderExpr(field.Type))
		}
	}
}

// checkDynamicSite classifies one unresolved call in a hot loop:
// interface method dispatch (with devirtualization candidates) or a
// function-value call.
func checkDynamicSite(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, ctxParams map[types.Object]bool, r *Reporter) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recv := s.Recv()
			if iface, isIface := recv.Underlying().(*types.Interface); isIface {
				// The sanctioned ctx.Err() batch poll.
				if base, ok := sel.X.(*ast.Ident); ok && ctxParams[pkg.Info.Uses[base]] {
					return
				}
				msg := "dynamic method call %s.%s in a hot loop cannot be devirtualized or inlined"
				if cands := implementerNames(pkg.Prog, iface); len(cands) > 0 {
					msg += " (concrete implementers in this module: " + strings.Join(cands, ", ") + ")"
				}
				msg += "; accept or assert the concrete type on the hot path"
				r.Reportf("ifacedispatch", call.Pos(), msg, renderExpr(sel.X), sel.Sel.Name)
				return
			}
		}
	}
	r.Reportf("ifacedispatch", call.Pos(),
		"call through function value %s in a hot loop dispatches dynamically and cannot inline; call the function directly or hoist the indirection out of the loop",
		renderExpr(call.Fun))
}

// checkIfaceArgs is the conversion pattern: a statically-bound call
// whose arguments cross into non-empty interface parameters. The
// caller's own call is static, but the callee will dispatch on what it
// was handed — the container/heap cost model. Empty interfaces carry
// no methods to dispatch; they are allocfree's boxing finding instead.
func checkIfaceArgs(pkg *Package, call *ast.CallExpr, r *Reporter) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		iface, ok := pt.Underlying().(*types.Interface)
		if !ok || iface.NumMethods() == 0 || isContextTyped(pt) {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if _, argIsIface := at.Type.Underlying().(*types.Interface); argIsIface {
			continue // already an interface: the conversion happened elsewhere
		}
		r.Reportf("ifacedispatch", arg.Pos(),
			"argument %s converts concrete %s to interface %s at a hot-loop call; the callee dispatches dynamically on it — use a concrete implementation on the hot path",
			renderExpr(arg), at.Type, pt)
	}
}
