package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Purity enforces the `//imc:pure` contract on the estimators and
// comparators: the functions whose results the solvers compare across
// runs must be mathematical functions of their inputs. A marked
// function may not:
//
//   - write package-level state (directly or through a selector);
//   - write through its parameters or receiver (mutating an argument
//     slice or a pointed-to struct is a side effect the caller sees);
//   - retain an argument slice by storing it into non-local state
//     (aliasing bugs: a caller's buffer mutated later by a different
//     code path);
//   - perform channel operations or spawn goroutines;
//   - call an impure function. Same-package callees are classified by
//     a bottom-up fixed point over the package's call graph; stdlib
//     callees are pure only from the whitelisted numeric packages
//     (math, math/bits); dynamic calls (function values, interface
//     methods) are assumed impure. Cross-package repo callees are
//     judged by their whole-program effect summary (summary.go) when
//     one is available — a callee whose transitive effect set contains
//     IO, locking, channel ops, goroutine spawns, dynamic dispatch, or
//     writes to package-level or parameter state is impure, and the
//     finding prints the call chain down to the evidence. Callees
//     annotated `//imc:pure` are trusted (the contract is enforced at
//     their own declaration). On partial loads with no summaries the
//     hand-vouched assumedPure table is the fallback.
//
// Unmarked functions are never reported — their summaries exist only
// to classify calls from marked ones.
var Purity = &Analyzer{
	Name: "purity",
	Doc:  "forbid //imc:pure functions from writing package or argument state, retaining argument slices, or calling (transitively) impure callees",
	Kind: KindInterprocedural,
	Run:  runPurity,
}

// pureStdlib lists import paths whose entire API is side-effect free
// for our purposes.
var pureStdlib = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// assumedPure lists fully-qualified cross-package functions and
// methods vouched for as read-only — the FALLBACK for partial loads
// where no whole-program summaries exist; full-module runs verify these
// callees by summary instead of trusting the table. Keys look like
// "imc/internal/community.Partition.NumCommunities" (receiver
// pointer-ness stripped) or "imc/internal/graph.Graph.NumNodes".
var assumedPure = map[string]bool{
	"imc/internal/community.Partition.NumCommunities": true,
	"imc/internal/community.Partition.NumNodes":       true,
	"imc/internal/community.Partition.Community":      true,
	"imc/internal/community.Partition.TotalBenefit":   true,
	"imc/internal/graph.Graph.NumNodes":               true,
	"imc/internal/graph.Graph.NumEdges":               true,
}

// impurity describes why a function is impure: a human-readable reason
// plus the offending position, or nil when pure.
type impurity struct {
	reason string
	pos    ast.Node
}

// purityState is the per-package fixed-point computation.
type purityState struct {
	pkg *Package
	// summaries maps each declared function object to its first
	// impurity (nil = pure so far).
	summaries map[types.Object]*impurity
	decls     map[types.Object]*ast.FuncDecl
}

func runPurity(pkg *Package, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	dirs := funcDirectives(pkg)
	st := &purityState{
		pkg:       pkg,
		summaries: make(map[types.Object]*impurity),
		decls:     make(map[types.Object]*ast.FuncDecl),
	}
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				st.decls[obj] = fd
			}
		}
	}
	// Bottom-up fixed point: start optimistic (everything pure), then
	// recompute summaries until stable — recursion settles correctly
	// because impurity only ever spreads, never retracts.
	for changed := true; changed; {
		changed = false
		for obj, fd := range st.decls {
			imp := st.classify(fd)
			prev := st.summaries[obj]
			if (prev == nil) != (imp == nil) {
				st.summaries[obj] = imp
				changed = true
			}
		}
	}
	// Report every violation inside marked functions.
	for obj, fd := range st.decls {
		if !hasDirective(dirs, fd, directivePure) {
			continue
		}
		_ = obj
		st.reportViolations(fd, r)
	}
}

// classify returns fd's first impurity (or nil), consulting current
// summaries for same-package calls.
func (st *purityState) classify(fd *ast.FuncDecl) *impurity {
	var found *impurity
	st.walk(fd, func(imp *impurity) bool {
		if found == nil {
			found = imp
		}
		return false // first reason is enough for a summary
	})
	return found
}

// reportViolations reports every impurity in a marked function.
func (st *purityState) reportViolations(fd *ast.FuncDecl, r *Reporter) {
	st.walk(fd, func(imp *impurity) bool {
		r.Reportf("purity", imp.pos.Pos(), "//imc:pure function %s %s", fd.Name.Name, imp.reason)
		return true // keep going: report all sites
	})
}

// walk scans fd's body for impurities, invoking visit for each; visit
// returns whether to continue scanning.
func (st *purityState) walk(fd *ast.FuncDecl, visit func(*impurity) bool) {
	locals := localObjects(st.pkg, fd)
	stop := false
	emit := func(imp *impurity) {
		if !stop && !visit(imp) {
			stop = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				st.checkStore(fd, lhs, n.Rhs, locals, emit)
			}
		case *ast.IncDecStmt:
			st.checkStore(fd, n.X, nil, locals, emit)
		case *ast.SendStmt:
			emit(&impurity{reason: "performs a channel send", pos: n})
		case *ast.GoStmt:
			emit(&impurity{reason: "spawns a goroutine", pos: n})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				emit(&impurity{reason: "performs a channel receive", pos: n})
			}
		case *ast.CallExpr:
			st.checkCall(n, emit)
		}
		return true
	})
}

// checkStore classifies one assignment target. rhs (the assignment's
// right-hand sides, nil for ++/--) refines the message when an
// argument slice is being retained.
func (st *purityState) checkStore(fd *ast.FuncDecl, lhs ast.Expr, rhs []ast.Expr, locals map[types.Object]bool, emit func(*impurity)) {
	root := storeRoot(lhs)
	id, ok := root.(*ast.Ident)
	if !ok {
		// Store through an arbitrary expression (e.g. f().field = x):
		// not provably local.
		emit(&impurity{reason: "writes through a non-local expression", pos: lhs})
		return
	}
	if id.Name == "_" {
		return
	}
	obj := identObject(st.pkg, id)
	if obj == nil {
		return
	}
	if locals[obj] {
		// Writing a local is fine — unless the write path dereferences
		// a pointer-typed local that aliases a parameter; tracking that
		// precisely needs escape analysis, so we accept locals.
		// A plain `x = …` to a local never mutates shared state; an
		// indexed write x[i] through a local SLICE that came from a
		// parameter does, which parameter-derived check below covers
		// only for direct parameters. Documented limitation.
		return
	}
	if isParamObject(st.pkg, fd, obj) {
		// Plain reassignment of the parameter variable itself is a
		// local effect; writing THROUGH it (index, deref, field) is
		// what callers observe.
		if _, plain := lhs.(*ast.Ident); plain {
			return
		}
		emit(&impurity{reason: fmt.Sprintf("writes through parameter %s", id.Name), pos: lhs})
		return
	}
	// Package-level (or outer-scope captured) state.
	imp := &impurity{reason: fmt.Sprintf("writes package-level state %s", id.Name), pos: lhs}
	if retainsParamSlice(st.pkg, fd, rhs) {
		imp.reason = fmt.Sprintf("retains an argument slice in package-level state %s", id.Name)
	}
	emit(imp)
}

// checkCall classifies one call expression.
func (st *purityState) checkCall(call *ast.CallExpr, emit func(*impurity)) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj := identObject(st.pkg, fun)
		if obj == nil {
			return
		}
		if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
			return // len/cap/append/copy/make write only locals here; stores are caught at assignment
		}
		if _, isType := obj.(*types.TypeName); isType {
			return // conversion
		}
		st.checkCallee(call, obj, emit)
	case *ast.SelectorExpr:
		// pkg.Fn or value.Method.
		if sel, ok := st.pkg.Info.Selections[fun]; ok {
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				emit(&impurity{reason: "calls an interface method (dynamic dispatch)", pos: call})
				return
			}
			st.checkCallee(call, sel.Obj(), emit)
			return
		}
		// Qualified identifier (package function) or conversion.
		obj := identObject(st.pkg, fun.Sel)
		if obj == nil {
			emit(&impurity{reason: "calls an unresolvable function", pos: call})
			return
		}
		if _, isType := obj.(*types.TypeName); isType {
			return
		}
		st.checkCallee(call, obj, emit)
	default:
		// Function value, method expression, etc.
		emit(&impurity{reason: "makes a dynamic call (function value or interface method)", pos: call})
	}
}

// checkCallee decides whether the resolved callee object is pure.
func (st *purityState) checkCallee(call *ast.CallExpr, obj types.Object, emit func(*impurity)) {
	fn, ok := obj.(*types.Func)
	if !ok {
		// Calling a variable: dynamic.
		emit(&impurity{reason: fmt.Sprintf("makes a dynamic call through %s", obj.Name()), pos: call})
		return
	}
	pkgOf := fn.Pkg()
	if pkgOf == nil {
		return // universe (error.Error etc.): treat as pure reads
	}
	if pkgOf.Path() == st.pkg.Path {
		if imp := st.summaries[fn]; imp != nil {
			emit(&impurity{reason: fmt.Sprintf("calls impure %s (which %s)", fn.Name(), imp.reason), pos: call})
		} else if _, known := st.decls[fn]; !known {
			// Same-package function without a body we saw (assembly,
			// generated): conservative.
			emit(&impurity{reason: fmt.Sprintf("calls %s, whose body is not analyzable", fn.Name()), pos: call})
		}
		return
	}
	if pureStdlib[pkgOf.Path()] {
		return
	}
	// Whole-program load: judge the cross-package callee by its effect
	// summary instead of demanding a hand-vouched table entry.
	if st.pkg.Prog != nil {
		if node := st.pkg.Prog.Graph.Node(fn); node != nil && node.Summary != nil {
			if node.Directives[directivePure] {
				return // enforced at its own declaration
			}
			const banned = EffGlobalWrite | EffParamWrite | EffIO | EffLock | EffChan | EffGo | EffDynamic
			hit := node.Summary.Effects & banned
			if hit == 0 {
				return
			}
			bit := firstEffect(hit)
			names, local := chainThrough(node, bit, directivePure)
			if local == nil {
				return // the only chains run through //imc:pure boundaries
			}
			chain := append([]string{node.Name()}, names...)
			pos := node.Pkg.Fset.Position(local.Pos)
			emit(&impurity{
				reason: fmt.Sprintf("calls %s, which transitively %s: %s (%s at %s)",
					fn.Name(), effectDesc(bit), formatChain(chain), local.Desc, shortPos(pos)),
				pos: call,
			})
			return
		}
	}
	if assumedPure[qualifiedName(fn)] {
		return
	}
	emit(&impurity{reason: fmt.Sprintf("calls %s.%s, which is not known to be pure", pkgOf.Path(), fn.Name()), pos: call})
}

// qualifiedName renders fn as "pkgpath.Recv.Name" (receiver optional,
// pointers stripped) for the assumedPure table.
func qualifiedName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	name := ""
	if named, ok := rt.(*types.Named); ok {
		name = named.Obj().Name()
	}
	return fn.Pkg().Path() + "." + name + "." + fn.Name()
}

// storeRoot peels index/selector/star/paren layers off an assignment
// target, returning the root expression.
func storeRoot(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return e
		}
	}
}

// localObjects collects every object declared inside fd's body (:=,
// var, range vars, type switches). Parameters and results are NOT
// locals for purity purposes — they are the caller-visible surface.
func localObjects(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if pkg.Info == nil {
		return out
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// isParamObject reports whether obj is one of fd's parameters, results,
// or receiver.
func isParamObject(pkg *Package, fd *ast.FuncDecl, obj types.Object) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if pkg.Info.Defs[name] == obj {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params) || check(fd.Type.Results)
}

// retainsParamSlice reports whether any rhs expression mentions a
// slice-typed parameter identifier — the aliasing half of the purity
// contract.
func retainsParamSlice(pkg *Package, fd *ast.FuncDecl, rhs []ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	params := make(map[types.Object]bool)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil || obj.Type() == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					params[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	found := false
	for _, e := range rhs {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil && params[obj] {
					found = true
				}
			}
			return !found
		})
	}
	return found
}
