package lint

import "testing"

// TestRepositoryIsClean is the meta-check behind `make lint`: the
// entire module must pass its own static-analysis suite. A failure
// here means a new determinism/concurrency/numeric violation slipped
// in — fix the code or add a justified //lint:allow, never weaken the
// analyzer.
func TestRepositoryIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("Load ./... found only %d packages; loader is missing the tree", len(pkgs))
	}
	prog := NewProgram(loader.ModulePath, loader.ModuleDir, pkgs, true)
	if s := prog.Graph.Stats(); s.Nodes == 0 || s.Edges == 0 {
		t.Fatalf("call graph is empty (%+v); interprocedural checks would be vacuous", s)
	}
	for _, pkg := range pkgs {
		active := AnalyzersFor(loader.ModulePath, pkg.Path, All)
		for _, d := range Run(pkg, active) {
			t.Errorf("%s", d)
		}
	}
}
