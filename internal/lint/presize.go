package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Presize flags the growth pattern the allocator pays for N times when
// once would do: a local slice born WITHOUT capacity (`var x []T`,
// `x := []T{}`, `make([]T, 0)`) that grows by self-append inside a loop
// whose trip count is statically derivable. Every doubling is an
// allocation plus a copy of everything appended so far; with the bound
// in hand, `make([]T, 0, n)` pays one.
//
// A bound is "derivable" when the innermost loop around the append is:
//
//   - `for …, v := range s` — bound len(s);
//   - `for i := 0; i < n; i++` — bound n (a constant, an identifier,
//     or len(s));
//   - `for len(x) < k { … x = append(x, …) }` — the slice's own length
//     compared against k: the bound is k exactly (the CELF
//     seed-selection shape).
//
// Sanctioned idioms, never reported:
//
//   - birth with capacity: `make([]T, 0, n)` (any non-zero cap
//     expression);
//   - reuse-and-reslice: `x = x[:0]` before the loop keeps the old
//     backing array — the steady-state cost is zero allocations;
//   - spread appends (`append(x, ys…)`) — the growth per iteration is
//     not one element, so the loop bound alone is not the capacity;
//   - non-local slices (fields, params) and slices born from unknown
//     producers — their history is not visible to a per-function
//     analysis.
var Presize = &Analyzer{
	Name: "presize",
	Doc:  "flag self-append in a statically bounded loop on a local slice born without capacity; sanction make([]T,0,n) and x = x[:0] reuse",
	Kind: KindFlowSensitive,
	Run:  runPresize,
}

func runPresize(pkg *Package, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	sigVars := signatureVars(pkg)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPresize(pkg, fd, sigVars, r)
		}
	}
}

// sliceBirth records how a local slice variable came to life.
type sliceBirth struct {
	pos token.Pos
	// capless is true for the no-capacity births (nil, empty literal,
	// make(…, 0)); false marks the variable as sanctioned or unknown —
	// either way, not reportable.
	capless bool
}

func checkPresize(pkg *Package, fd *ast.FuncDecl, sigVars map[types.Object]bool, r *Reporter) {
	births := collectBirths(pkg, sigVars, fd.Body)
	reported := make(map[types.Object]bool)
	walkStack(fd.Body, func(stack []ast.Node) bool {
		if _, ok := stack[len(stack)-1].(*ast.FuncLit); ok && len(stack) > 1 {
			return false // a closure's appends run on its own schedule
		}
		as, ok := stack[len(stack)-1].(*ast.AssignStmt)
		if !ok {
			return true
		}
		obj, spread := selfAppend(pkg, sigVars, as)
		if obj == nil || spread || reported[obj] {
			return true
		}
		birth, ok := births[obj]
		if !ok || !birth.capless || birth.pos >= as.Pos() {
			return true
		}
		bound := innermostLoopBound(pkg, stack, obj)
		if bound == "" {
			return true
		}
		reported[obj] = true
		r.Reportf("presize", as.Pos(),
			"%s grows by append inside a loop bounded by %s but was born without capacity at line %d — each doubling reallocates and copies the slice; pre-size with make(…, 0, %s) or reuse a scratch buffer with %s = %s[:0]",
			obj.Name(), bound, pkg.Fset.Position(birth.pos).Line, bound, obj.Name(), obj.Name())
		return true
	})
}

// collectBirths scans the body for slice-variable origins: capacity-less
// births stay reportable until a sanctioning event (non-zero cap make,
// x = x[:0] reslice, or any opaque producer) downgrades them.
func collectBirths(pkg *Package, sigVars map[types.Object]bool, body *ast.BlockStmt) map[types.Object]sliceBirth {
	births := make(map[types.Object]sliceBirth)
	set := func(obj types.Object, pos token.Pos, capless bool) {
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if old, ok := births[obj]; ok && !old.capless {
			return // once sanctioned, stays sanctioned
		}
		births[obj] = sliceBirth{pos: pos, capless: capless}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					set(pkg.Info.Defs[name], name.Pos(), true) // var x []T — nil birth
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
				return true
			}
			if len(n.Lhs) != len(n.Rhs) {
				// Multi-value producer: opaque.
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						set(identObject(pkg, id), n.Pos(), false)
					}
				}
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := identObject(pkg, id)
				if obj == nil {
					continue
				}
				if aObj, _ := selfAppendExpr(pkg, sigVars, id, n.Rhs[i]); aObj != nil {
					continue // growth, not a birth
				}
				set(obj, n.Pos(), caplessBirthExpr(pkg, obj, n.Rhs[i]))
			}
		}
		return true
	})
	return births
}

// caplessBirthExpr classifies one initializer: true for the
// no-capacity births, false for everything that sanctions or obscures.
func caplessBirthExpr(pkg *Package, obj types.Object, rhs ast.Expr) bool {
	switch e := rhs.(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0 // x := []T{} — empty, no capacity
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		if !ok || id.Name != "make" || !isBuiltin(pkg, id) {
			return false // opaque producer
		}
		if len(e.Args) >= 3 {
			return false // make([]T, n, cap) — capacity given
		}
		if len(e.Args) == 2 {
			tv := pkg.Info.Types[e.Args[1]]
			return tv.Value != nil && tv.Value.String() == "0" // make([]T, 0)
		}
		return false
	case *ast.SliceExpr:
		// x = x[:0] — the reuse idiom — keeps the backing array;
		// any reslice means an array already exists.
		return false
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}

// selfAppend matches `x = append(x, v)` (single element, no spread) and
// returns x's object.
func selfAppend(pkg *Package, sigVars map[types.Object]bool, as *ast.AssignStmt) (types.Object, bool) {
	if (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	return selfAppendExpr(pkg, sigVars, id, as.Rhs[0])
}

// selfAppendExpr matches rhs as append(x, …) where x is the given
// identifier; spread reports append(x, ys…).
func selfAppendExpr(pkg *Package, sigVars map[types.Object]bool, x *ast.Ident, rhs ast.Expr) (types.Object, bool) {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || !isBuiltin(pkg, fn) {
		return nil, false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := identObject(pkg, x)
	if obj == nil || identObject(pkg, first) != obj {
		return nil, false
	}
	if !isBodyLocalVar(sigVars, obj) {
		return nil, false
	}
	return obj, call.Ellipsis.IsValid()
}

// innermostLoopBound walks the ancestor stack from the append outward
// to the nearest loop and derives its static bound, "" when the loop
// shape is not understood. obj is the appended slice (the
// `for len(x) < k` shape needs it).
func innermostLoopBound(pkg *Package, stack []ast.Node, obj types.Object) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch loop := stack[i].(type) {
		case *ast.RangeStmt:
			if t := exprType(pkg, loop.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Map:
					return "len(" + renderExpr(loop.X) + ")"
				}
			}
			return ""
		case *ast.ForStmt:
			return forBound(pkg, loop, obj)
		}
	}
	return ""
}

// forBound derives the bound of a for-loop: the canonical counting
// header, or the `for len(x) < k` growth condition on the appended
// slice itself.
func forBound(pkg *Package, loop *ast.ForStmt, obj types.Object) string {
	cond, ok := loop.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return ""
	}
	// `for len(x) < k` on the appended slice: bound is k.
	if call, ok := cond.X.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" && isBuiltin(pkg, id) {
			if argID, ok := call.Args[0].(*ast.Ident); ok && identObject(pkg, argID) == obj {
				if boundish(pkg, cond.Y) {
					return renderExpr(cond.Y)
				}
			}
		}
	}
	// Canonical counting loop `for i := 0; i < n; i++`.
	init, ok := loop.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
		return ""
	}
	indID, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return ""
	}
	ind := pkg.Info.Defs[indID]
	lhs, ok := cond.X.(*ast.Ident)
	if !ok || ind == nil || pkg.Info.Uses[lhs] != ind {
		return ""
	}
	post, ok := loop.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return ""
	}
	if !boundish(pkg, cond.Y) {
		return ""
	}
	return renderExpr(cond.Y)
}

// boundish reports whether e is a usable capacity expression: a
// constant, a plain identifier or selector, or len(…) of one.
func boundish(pkg *Package, e ast.Expr) bool {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Value != nil {
		return true // any constant expression
	}
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr:
		return true
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "len" && isBuiltin(pkg, id) && len(e.Args) == 1 {
			return boundish(pkg, e.Args[0])
		}
	}
	return false
}
