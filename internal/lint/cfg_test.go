package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncCFG parses src (a full file), finds the named function, and
// builds its CFG.
func parseFuncCFG(t *testing.T, src, name string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// depthOfAssign returns the loop depth of the statement assigning to
// the named identifier (via = or :=).
func depthOfAssign(t *testing.T, cfg *CFG, name string) int {
	t.Helper()
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Stmts {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
					d, ok := cfg.NodeLoopDepth(n)
					if !ok {
						t.Fatalf("assignment to %s not placed in any block", name)
					}
					return d
				}
			}
		}
	}
	t.Fatalf("no assignment to %s found in CFG", name)
	return -1
}

func TestCFGLoopDepth(t *testing.T) {
	src := `package p
func f(n int, items []int) {
	setup := 0
	for i := 0; i < n; i++ {
		inner := 1
		for _, v := range items {
			deep := v
			_ = deep
		}
		_ = inner
	}
	_ = setup
}`
	cfg := parseFuncCFG(t, src, "f")
	for name, want := range map[string]int{"setup": 0, "inner": 1, "deep": 2} {
		if got := depthOfAssign(t, cfg, name); got != want {
			t.Errorf("loop depth of %q = %d, want %d", name, got, want)
		}
	}
}

func TestCFGBreakContinueDepth(t *testing.T) {
	src := `package p
func h(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		if i%2 == 0 {
			continue
		}
		work := i
		_ = work
	}
	done := 0
	_ = done
}`
	cfg := parseFuncCFG(t, src, "h")
	if got := depthOfAssign(t, cfg, "work"); got != 1 {
		t.Errorf("loop depth of work = %d, want 1", got)
	}
	if got := depthOfAssign(t, cfg, "done"); got != 0 {
		t.Errorf("loop depth of done = %d, want 0", got)
	}
	// The post-loop code must be reachable despite break/continue.
	idom := cfg.Dominators()
	blk := blockAssigning(t, cfg, "done")
	if idom[blk.Index] == -1 {
		t.Error("block after loop with break/continue is unreachable")
	}
}

// blockAssigning finds the block containing the assignment to name.
func blockAssigning(t *testing.T, cfg *CFG, name string) *Block {
	t.Helper()
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Stmts {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
					return blk
				}
			}
		}
	}
	t.Fatalf("no assignment to %s found", name)
	return nil
}

func TestCFGDominators(t *testing.T) {
	src := `package p
func g(c bool) int {
	x := 0
	if c {
		y := 1
		_ = y
	} else {
		z := 2
		_ = z
	}
	w := 3
	return w
}`
	cfg := parseFuncCFG(t, src, "g")
	idom := cfg.Dominators()
	entry := cfg.Entry.Index
	thenB := blockAssigning(t, cfg, "y").Index
	elseB := blockAssigning(t, cfg, "z").Index
	joinB := blockAssigning(t, cfg, "w").Index

	if !cfg.Dominates(idom, entry, joinB) {
		t.Error("entry must dominate the join block")
	}
	if cfg.Dominates(idom, thenB, joinB) {
		t.Error("then-arm must not dominate the join block")
	}
	if cfg.Dominates(idom, elseB, joinB) {
		t.Error("else-arm must not dominate the join block")
	}
	if !cfg.Dominates(idom, entry, thenB) || !cfg.Dominates(idom, entry, elseB) {
		t.Error("entry must dominate both arms")
	}
	if idom[joinB] != entry {
		t.Errorf("idom(join) = %d, want entry %d", idom[joinB], entry)
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	src := `package p
func r(c bool) int {
	if c {
		return 1
	} else {
		return 2
	}
}`
	cfg := parseFuncCFG(t, src, "r")
	// Both arms return, so the if's join block exists but is
	// unreachable — dominators must mark it so, and exit must still see
	// both return blocks.
	if len(cfg.Exit.Preds) < 2 {
		t.Fatalf("exit has %d predecessors, want >= 2", len(cfg.Exit.Preds))
	}
	idom := cfg.Dominators()
	reachable := 0
	for _, blk := range cfg.Blocks {
		if blk == cfg.Entry || idom[blk.Index] != -1 {
			reachable++
		}
	}
	if reachable == len(cfg.Blocks) {
		t.Error("expected at least one unreachable block (the post-if join)")
	}
}

func TestCFGRangeHeaderPlacement(t *testing.T) {
	src := `package p
func s(items []int) int {
	total := 0
	for _, v := range items {
		total += v
	}
	return total
}`
	cfg := parseFuncCFG(t, src, "s")
	// The ranged-over expression must sit at depth 0 (evaluated once);
	// the rangeBind marker and the body at depth 1.
	var xDepth, bindDepth = -1, -1
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Stmts {
			switch n := n.(type) {
			case rangeBind:
				bindDepth = blk.LoopDepth
			case *ast.Ident:
				if n.Name == "items" {
					xDepth = blk.LoopDepth
				}
			}
		}
	}
	if xDepth != 0 {
		t.Errorf("ranged-over expression depth = %d, want 0", xDepth)
	}
	if bindDepth != 1 {
		t.Errorf("range bind depth = %d, want 1", bindDepth)
	}
}

// dumpCFG renders a CFG compactly for golden comparison: one line per
// block with its loop depth, the kinds of its placed nodes, and its
// successor list. The golden tests below pin the builder's block
// structure on the exotic control-flow shapes.
func dumpCFG(cfg *CFG) string {
	var b strings.Builder
	for _, blk := range cfg.Blocks {
		fmt.Fprintf(&b, "b%d d%d:", blk.Index, blk.LoopDepth)
		for _, n := range blk.Stmts {
			b.WriteString(" ")
			b.WriteString(nodeKind(n))
		}
		b.WriteString(" ->")
		for _, s := range blk.Succs {
			fmt.Fprintf(&b, " b%d", s.Index)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// nodeKind names one placed node for the dump.
func nodeKind(n ast.Node) string {
	if _, ok := n.(rangeBind); ok {
		return "rangeBind"
	}
	return strings.TrimPrefix(fmt.Sprintf("%T", n), "*ast.")
}

func TestCFGGoldenDeferInLoop(t *testing.T) {
	src := `package p
func f(items []int) {
	for _, v := range items {
		defer release(v)
	}
	done := 0
	_ = done
}`
	got := dumpCFG(parseFuncCFG(t, src, "f"))
	want := `b0 d0: Ident -> b2
b1 d0: ->
b2 d1: rangeBind -> b3 b4
b3 d0: AssignStmt AssignStmt -> b1
b4 d1: DeferStmt -> b2
`
	if got != want {
		t.Errorf("defer-in-loop CFG dump:\n%s\nwant:\n%s", got, want)
	}
}

func TestCFGGoldenLabeledBreakContinue(t *testing.T) {
	src := `package p
func g(grid [][]int) int {
	total := 0
outer:
	for _, row := range grid {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 99 {
				break outer
			}
			total += v
		}
	}
	return total
}`
	got := dumpCFG(parseFuncCFG(t, src, "g"))
	want := `b0 d0: AssignStmt -> b2
b1 d0: ->
b2 d0: Ident -> b4
b3 d0: ReturnStmt -> b1
b4 d1: rangeBind -> b3 b5
b5 d1: Ident -> b6
b6 d2: rangeBind -> b7 b8
b7 d1: -> b4
b8 d2: BinaryExpr -> b10 b9
b9 d2: BinaryExpr -> b12 b11
b10 d2: BranchStmt -> b4
b11 d2: AssignStmt -> b6
b12 d2: BranchStmt -> b3
`
	if got != want {
		t.Errorf("labeled break/continue CFG dump:\n%s\nwant:\n%s", got, want)
	}
}

func TestCFGGoldenGoto(t *testing.T) {
	src := `package p
func h(n int) int {
	i := 0
retry:
	i++
	if i < n {
		goto retry
	}
	return i
}`
	got := dumpCFG(parseFuncCFG(t, src, "h"))
	want := `b0 d0: AssignStmt -> b2
b1 d0: ->
b2 d0: IncDecStmt BinaryExpr -> b4 b3
b3 d0: ReturnStmt -> b1
b4 d0: BranchStmt -> b2
`
	if got != want {
		t.Errorf("goto CFG dump:\n%s\nwant:\n%s", got, want)
	}
}

func TestCFGGoldenSingleCaseSelect(t *testing.T) {
	src := `package p
func s(ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
}`
	got := dumpCFG(parseFuncCFG(t, src, "s"))
	want := `b0 d0: -> b3 b2
b1 d0: ->
b2 d0: -> b1
b3 d0: AssignStmt ReturnStmt -> b1
`
	if got != want {
		t.Errorf("single-case select CFG dump:\n%s\nwant:\n%s", got, want)
	}
}
