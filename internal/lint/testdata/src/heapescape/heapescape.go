// Package heapescape is a lint fixture for the stack-residency
// contract: every want-annotated line marks a frame address leaving the
// frame (or an in-loop boxing/capture); everything else — local-only
// pointer use, in-module callees, one-time setup — must stay silent.
package heapescape

import "fmt"

type node struct {
	next *node
	val  int
}

var global *int

func inModule(p *int) int { return *p }

func sink(v interface{}) {}

func variadicSink(vs ...interface{}) {}

//imc:hotpath
func returnsAddr() *int {
	x := 0
	p := &x
	return p // want "address of local x escapes to the heap"
}

//imc:hotpath
func returnsAddrDirect() *int {
	x := 1
	return &x // want "address of local x escapes"
}

//imc:hotpath
func storesGlobal() {
	x := 2
	global = &x // want "stored to global"
}

//imc:hotpath
func storesThroughParam(n *node) {
	local := node{val: 3}
	n.next = &local // want "stored to n.next"
}

//imc:hotpath
func sendsAddr(ch chan *int) {
	x := 4
	ch <- &x // want "sent on ch"
}

//imc:hotpath
func passesExternal() {
	x := 5
	fmt.Sprint(&x) // want "passed to external callee fmt.Sprint"
}

//imc:hotpath
func passesDynamic(f func(*int)) {
	x := 6
	f(&x) // want "passed to a dynamic callee"
}

//imc:hotpath
func chainThroughCopies() *int {
	x := 7
	p := &x
	q := p
	return q // want "p = &x"
}

//imc:hotpath
func cleanLocalPointer() int {
	x := 8
	p := &x
	*p = 9 // clean: the address never leaves the frame
	return x
}

//imc:hotpath
func cleanInModuleCallee() int {
	x := 10
	return inModule(&x) // clean: statically-resolved in-module callee
}

//imc:hotpath
func boxesInLoop(items []int) {
	for _, v := range items {
		sink(v) // want "boxed into an interface parameter"
	}
}

//imc:hotpath
func boxesVariadicInLoop(items []int) {
	for _, v := range items {
		variadicSink(v) // want "boxed through a variadic"
	}
}

//imc:hotpath
func cleanBoxOutsideLoop(items []int) int {
	sink(len(items)) // clean: one-time boxing, not per-iteration
	total := 0
	for _, v := range items {
		total += v
	}
	return total
}

//imc:hotpath
func capturesInLoop(items []int) int {
	total := 0
	for _, v := range items {
		add := func() int { return total + v } // want "closure in a hot loop captures"
		total = add()
	}
	return total
}

// Not annotated: the same escapes are legal here.
func coldReturnsAddr() *int {
	x := 11
	return &x // clean: not a hot function
}
