// Package lockheld is the golden fixture for the blocking-under-mutex
// analyzer: file writes (direct and one call frame down), bare channel
// operations, and default-less selects inside a critical section must
// flag; selects with a default, IO after Unlock, and conditionally-held
// locks (the intersection meet discards them) must stay quiet.
package lockheld

import (
	"os"
	"sync"
)

type Logger struct {
	mu  sync.Mutex
	f   *os.File
	ch  chan int
	buf []byte
}

// Write stalls every contender behind disk latency.
func (l *Logger) Write(p []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.f.Write(p) // want "may block while holding"
}

// Append reaches the blocking write one call frame down; the finding
// prints the chain to the evidence.
func (l *Logger) Append(p []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = append(l.buf, p...)
	l.sync() // want "may block while holding"
}

func (l *Logger) sync() {
	l.f.Sync()
}

// Publish sends on an unbuffered-capable channel under the lock.
func (l *Logger) Publish(v int) {
	l.mu.Lock()
	l.ch <- v // want "blocks on a channel send while holding"
	l.mu.Unlock()
}

// WaitOne parks in a select with no default under the lock.
func (l *Logger) WaitOne() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	select { // want "blocks on a select without a default case while holding"
	case v := <-l.ch:
		return v
	}
}

// TryPublish is clean: the default clause means the select cannot block.
func (l *Logger) TryPublish(v int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	select {
	case l.ch <- v:
		return true
	default:
		return false
	}
}

// Snapshot is clean: copy under the lock, write after releasing it.
func (l *Logger) Snapshot() {
	l.mu.Lock()
	buf := append([]byte(nil), l.buf...)
	l.mu.Unlock()
	l.f.Write(buf)
}

// MaybeLocked is clean: the lock is held on only one path into the
// write, and must-held analysis intersects over predecessors.
func (l *Logger) MaybeLocked(cond bool, p []byte) {
	if cond {
		l.mu.Lock()
		l.buf = append(l.buf[:0], p...)
		l.mu.Unlock()
	}
	l.f.Write(p)
}
