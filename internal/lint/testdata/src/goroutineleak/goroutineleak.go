// Package goroutineleak is a lint fixture for the worker fan-out
// contract.
package goroutineleak

import "sync"

func addInsideGoroutine(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "before the go statement"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func addBeforeSpawn(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func nakedUnbufferedSend() int {
	ch := make(chan int)
	go func() {
		ch <- compute() // want "no escape path"
	}()
	return <-ch
}

func bufferedSend() int {
	ch := make(chan int, 1)
	go func() {
		ch <- compute() // buffered: sender cannot block forever
	}()
	return <-ch
}

func sendWithCancellation(done chan struct{}) int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		case <-done:
		}
	}()
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}

func sendWithDefault() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		default:
		}
	}()
}

func compute() int { return 1 }
