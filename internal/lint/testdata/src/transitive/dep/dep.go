// Package dep supplies the callees for the transitive fixture: the
// interesting effects sit one and two frames below the annotated
// callers in the parent package.
package dep

var hits int

// Level1 forwards to level2 — the allocation is one more frame down.
func Level1(n int) int { return level2(n) }

func level2(n int) int {
	buf := make([]int, n)
	return len(buf)
}

// Bump forwards to bump2, which writes package-level state.
func Bump() int { return bump2() }

func bump2() int {
	hits = hits + 1
	return hits
}

// Sum is transitively clean: no allocation, no observable effects.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Carve allocates at depth 0 of its own annotated declaration — a
// checked boundary the transitive walk must stop at, not chase.
//
//imc:hotpath
func Carve(n int) []int {
	return make([]int, n)
}
