// Package transitive is the interprocedural golden fixture: annotated
// hot paths and pure functions whose violations live in callees of the
// nested package dep, one and two frames down. It is loaded together
// with ./dep by interproc_test.go — a bare single-package load cannot
// resolve the cross-package edges, and the analyzers degrade to their
// intra-procedural behavior.
package transitive

import "imc/internal/lint/testdata/src/transitive/dep"

// Hot's loop calls a helper that only allocates two frames down; the
// finding must print the full call chain to the evidence.
//
//imc:hotpath
func Hot(xs []int) int {
	total := 0
	for _, x := range xs {
		total += dep.Level1(x) // want "may allocate transitively: Hot → imc/internal/lint/testdata/src/transitive/dep.Level1 → imc/internal/lint/testdata/src/transitive/dep.level2 (calls make at dep.go:"
	}
	return total
}

// HotClean exercises the two non-findings: a transitively clean callee
// and an //imc:hotpath boundary enforced at its own declaration.
//
//imc:hotpath
func HotClean(xs []int) int {
	total := 0
	for range xs {
		total += dep.Sum(xs)
		total += len(dep.Carve(8))
	}
	return total
}

// HotOnce calls the allocating chain outside any loop — legal under
// the hot-path contract (setup cost, not per-iteration cost).
//
//imc:hotpath
func HotOnce(n int) int {
	return dep.Level1(n)
}

// PureBad calls a function that transitively writes package state.
//
//imc:pure
func PureBad(n int) int {
	return n + dep.Bump() // want "calls Bump, which transitively writes package-level state"
}

// PureGood's callee is transitively effect-free.
//
//imc:pure
func PureGood(xs []int) int {
	return dep.Sum(xs)
}
