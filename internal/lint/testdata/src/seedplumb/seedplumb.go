// Package seedplumb is a lint fixture for the parallel-determinism
// plumbing rule: exported worker fan-outs must be seedable.
package seedplumb

import (
	"sync"

	"imc/internal/xrand"
)

// Options mirrors the sampling packages' options structs.
type Options struct {
	Seed    uint64
	Workers int
}

// Pool mirrors a receiver that owns its randomness.
type Pool struct {
	root *xrand.RNG
}

func UnseededFanOut(n int) { // want "no xrand stream or seed"
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

func StreamParameter(n int, rng *xrand.RNG) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(r *xrand.RNG) { defer wg.Done(); r.Uint64() }(rng.Split(uint64(i)))
	}
	wg.Wait()
}

func SeedParameter(n int, seed uint64) {
	root := xrand.New(seed)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(r *xrand.RNG) { defer wg.Done(); r.Uint64() }(root.Split(uint64(i)))
	}
	wg.Wait()
}

func OptionsParameter(n int, opts Options) {
	SeedParameter(n, opts.Seed)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// SeededReceiver spawns workers but derives all streams from the
// receiver's RNG — the ric.Pool pattern.
func (p *Pool) SeededReceiver(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(r *xrand.RNG) { defer wg.Done(); r.Uint64() }(p.root.Split(uint64(i)))
	}
	wg.Wait()
}

func unexportedFanOut(n int) { // unexported: out of contract scope
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}

// NoWorkers is exported and unseeded but spawns nothing: silent.
func NoWorkers(n int) int { return n * 2 }
