// Package guardedby is the golden fixture for the guarded-field
// annotation analyzer: reads and writes of //imc:guardedby fields
// outside a dominating Lock must flag, along with writes under RLock
// only, writes to immutable fields after construction, calls to
// //imc:locked helpers without the guard, and malformed annotations.
// Construction (locally-created receivers, //imc:prepublish), locked
// helpers called under the guard, closures that lock for themselves,
// and RLock-covered reads must all stay quiet.
package guardedby

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int //imc:guardedby mu
	rw sync.RWMutex
	m  map[string]int //imc:guardedby rw
	id int //imc:guardedby immutable
}

// NewCounter is clean: the value is local until returned, so no other
// goroutine can observe the unguarded writes.
func NewCounter(id int) *Counter {
	c := &Counter{m: make(map[string]int)}
	c.id = id
	c.n = 0
	return c
}

// Bump is clean: the access is dominated by the Lock.
func (c *Counter) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek reads the guarded counter with no lock at all.
func (c *Counter) Peek() int {
	return c.n // want "read of Counter.n is not dominated by c.mu.Lock()"
}

// Reset writes it with no lock.
func (c *Counter) Reset() {
	c.n = 0 // want "write to Counter.n is not dominated"
}

// Get is clean: RLock suffices for reads of an RWMutex-guarded field.
func (c *Counter) Get(k string) int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.m[k]
}

// Put mutates the map while holding only the read lock.
func (c *Counter) Put(k string, v int) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.m[k] = v // want "writes require the write lock"
}

// Set is clean: the write lock covers map mutation.
func (c *Counter) Set(k string, v int) {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.m[k] = v
}

// ID is clean: immutable fields may be read anywhere.
func (c *Counter) ID() int {
	return c.id
}

// Rename writes the immutable field after construction.
func (c *Counter) Rename(id int) {
	c.id = id // want "write to Counter.id outside construction"
}

// bumpLocked is the *Locked helper idiom: the body assumes mu is held;
// every caller is checked instead.
//
//imc:locked mu
func (c *Counter) bumpLocked(d int) {
	c.n += d
}

// Add is clean: it holds mu across the locked helper.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked(d)
}

// Sneak calls the locked helper without the guard.
func (c *Counter) Sneak(d int) {
	c.bumpLocked(d) // want "call to Counter.bumpLocked requires c.mu to be held"
}

// restore replays persisted state before the receiver is published;
// the directive waives the guard for the construction path.
//
//imc:prepublish
func (c *Counter) restore(n, id int) {
	c.n = n
	c.id = id
}

// BumpRacy locks on only one branch: the access after the merge is not
// dominated by the Lock.
func (c *Counter) BumpRacy(cond bool) {
	if cond {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	c.n++ // want "not dominated by c.mu.Lock()"
}

// Watch is clean: the closure locks for itself.
func (c *Counter) Watch() func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}

// Leak returns a closure that skips the lock; the enclosing critical
// section does not cover a body that runs after it ends.
func (c *Counter) Leak() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.n++ // want "not dominated"
	}
}

// Bad carries malformed annotations; silent no-op directives are their
// own bug class, so both are findings.
type Bad struct {
	x int //imc:guardedby nosuch // want "not a sync.Mutex/RWMutex field of Bad"
	y int //imc:guardedby // want "needs a guard"
}
