// Package ifacedispatch is a lint fixture for the static-dispatch
// contract: hot functions must not take interface parameters, dispatch
// through interfaces or function values in their loops, convert
// concrete values to interfaces at hot call sites, or reach dynamic
// dispatch through their static callees. The ctx.Err batch poll and
// empty-interface parameters stay silent.
package ifacedispatch

import "context"

type shape interface {
	area() float64
	perim() float64
}

type square struct{ side float64 }

func (s square) area() float64  { return s.side * s.side }
func (s square) perim() float64 { return 4 * s.side }

type circle struct{ r float64 }

func (c circle) area() float64  { return 3 * c.r * c.r }
func (c circle) perim() float64 { return 6 * c.r }

var shapePool []shape

//imc:hotpath
func hotIfaceParam(sh shape) float64 { // want "interface-typed parameter"
	return sh.area()
}

//imc:hotpath
func sumAreas() float64 {
	t := 0.0
	for _, sh := range shapePool {
		t += sh.area() // want "dynamic method call sh.area"
	}
	return t
}

//imc:hotpath
func applyAll(xs []float64, f func(float64) float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += f(x) // want "call through function value f"
	}
	return t
}

// consume dispatches nothing itself (the assertion is a type test, not
// a method call), so the only cost at its call sites is the conversion.
func consume(v shape) float64 {
	if s, ok := v.(square); ok {
		return s.side * s.side
	}
	return 0
}

//imc:hotpath
func convertsPerCall(sqs []square) float64 {
	t := 0.0
	for _, s := range sqs {
		t += consume(s) // want "converts concrete"
	}
	return t
}

// indirect hides an interface dispatch behind a static call.
func indirect(v float64) float64 {
	return shapePool[0].area() + v
}

//imc:hotpath
func hotTransitive(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += indirect(x) // want "reaches a dynamic dispatch transitively"
	}
	return t
}

// The sanctioned shape: ctx is required by the longrun contract, and
// the batched ctx.Err poll amortizes its dispatch to nothing.
//
//imc:hotpath
func pollsCtx(ctx context.Context, xs []float64) (float64, error) {
	t := 0.0
	for i, x := range xs {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		t += x
	}
	return t, nil
}

// Empty interfaces carry no methods to dispatch; boxing them is
// allocfree's finding, not ours.
//
//imc:hotpath
func cleanAnyParam(v interface{}) bool { return v != nil }

//imc:hotpath
func cleanConcrete(sqs []square) float64 {
	t := 0.0
	for _, s := range sqs {
		t += s.area() // clean: concrete receiver, static dispatch
	}
	return t
}
