// Package exhaustive is the golden fixture for the exhaustive
// analyzer: a switch whose cases name members of a registered const
// group must cover every member or carry a default.
package exhaustive

// Algo is a named-type enum; its package-level constants form one
// registered group.
type Algo int

const (
	AlgGreedy Algo = iota
	AlgUBG
	AlgSandwich
)

// Weight-scheme names: an untyped-string const block forms a group
// keyed by its declaration site.
const (
	WeightUniform    = "uniform"
	WeightTrivalency = "trivalency"
	WeightDegree     = "degree"
)

func dispatchMissing(a Algo) string {
	switch a { // want "switch over Algo is not exhaustive: missing AlgSandwich"
	case AlgGreedy:
		return "greedy"
	case AlgUBG:
		return "ubg"
	}
	return ""
}

func dispatchFull(a Algo) string {
	switch a {
	case AlgGreedy:
		return "greedy"
	case AlgUBG:
		return "ubg"
	case AlgSandwich:
		return "sandwich"
	}
	return ""
}

func dispatchDefault(a Algo) string {
	switch a {
	case AlgGreedy:
		return "greedy"
	default:
		return "other"
	}
}

func dispatchScheme(s string) int {
	switch s { // want "is not exhaustive: missing WeightDegree"
	case WeightUniform:
		return 0
	case WeightTrivalency:
		return 1
	}
	return -1
}

// Switches over values outside any registered group are ignored.
func dispatchPlain(s string) int {
	switch s {
	case "x":
		return 0
	}
	return 1
}
