// Package client switches over the parent fixture package's enum —
// the cross-package case (serve dispatching on expt's algorithm
// names). Loaded together with ../ by interproc_test.go; the foreign
// registry only resolves inside a whole-program load.
package client

import "imc/internal/lint/testdata/src/exhaustive"

// Dispatch forgets AlgSandwich.
func Dispatch(a exhaustive.Algo) string {
	switch a { // want "switch over Algo is not exhaustive: missing AlgSandwich"
	case exhaustive.AlgGreedy:
		return "greedy"
	case exhaustive.AlgUBG:
		return "ubg"
	}
	return ""
}

// DispatchAll covers the foreign enum completely: no finding.
func DispatchAll(a exhaustive.Algo) string {
	switch a {
	case exhaustive.AlgGreedy:
		return "greedy"
	case exhaustive.AlgUBG:
		return "ubg"
	case exhaustive.AlgSandwich:
		return "sandwich"
	}
	return ""
}
