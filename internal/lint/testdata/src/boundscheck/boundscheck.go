// Package boundscheck is a lint fixture for the bounds-check
// elimination contract: want lines mark hot-loop index patterns the
// compiler cannot prove safe (reloaded selector lengths, additive index
// arithmetic, unrelated parallel slices). clean.go pins the idiom table
// that must stay silent.
package boundscheck

type ring struct {
	buf []int
}

//imc:hotpath
func lenOfField(r *ring) int {
	t := 0
	for i := 0; i < len(r.buf); i++ { // want "reloaded every iteration"
		t += r.buf[i]
	}
	return t
}

//imc:hotpath
func offByOne(s []int) int {
	t := 0
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) {
			t += s[i+1] // want "keeps its bounds check"
		}
	}
	return t
}

//imc:hotpath
func parallelUnhinted(a, b []int) int {
	t := 0
	for i := 0; i < len(a); i++ {
		t += a[i] + b[i] // want "parallel-slice index"
	}
	return t
}

//imc:hotpath
func parallelRange(a, b []int) int {
	t := 0
	for i, v := range a {
		t += v + b[i] // want "parallel-slice index"
	}
	return t
}

// Not annotated: the same patterns are legal off the hot path.
func coldParallel(a, b []int) int {
	t := 0
	for i := range a {
		t += b[i] // clean: not a hot function
	}
	return t
}
