package boundscheck

// The BCE idiom table: every function here is hot, indexes slices in
// its loops, and must produce zero findings. The lint_test BCE table
// test pins each entry by name.

//imc:hotpath
func idiomRangeSelf(s []int) int {
	t := 0
	for i := range s {
		t += s[i]
	}
	return t
}

//imc:hotpath
func idiomCountedSelf(s []int) int {
	t := 0
	for i := 0; i < len(s); i++ {
		t += s[i]
	}
	return t
}

//imc:hotpath
func idiomLocalLen(s []int) int {
	n := len(s)
	t := 0
	for i := 0; i < n; i++ {
		t += s[i]
	}
	return t
}

//imc:hotpath
func idiomGather(vals []float64, idx []int) float64 {
	t := 0.0
	for _, j := range idx {
		t += vals[j] // data-dependent gather: the index is data, not induction
	}
	return t
}

//imc:hotpath
func idiomWordPack(words []uint64, n int) int {
	c := 0
	for i := 0; i < n; i++ {
		if words[i/64]&(1<<(uint(i)%64)) != 0 {
			c++
		}
	}
	return c
}

//imc:hotpath
func idiomResliced(a, b []int) int {
	b = b[:len(a)]
	t := 0
	for i := range a {
		t += b[i]
	}
	return t
}

//imc:hotpath
func idiomHinted(a, b []int) int {
	if len(b) < len(a) {
		return 0
	}
	_ = b[len(a)-1]
	t := 0
	for i := range a {
		t += b[i]
	}
	return t
}

//imc:hotpath
func idiomSizedMake(a []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = a[i] * 2
	}
	return out
}

//imc:hotpath
func idiomMapAndArray(m map[int]int, keys []int) int {
	var tbl [16]int
	t := 0
	for _, k := range keys {
		t += m[k] + tbl[k&15]
	}
	return t
}
