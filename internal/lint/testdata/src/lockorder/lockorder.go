// Package lockorder is the golden fixture for the lock-order cycle
// analyzer: TakeAB/TakeBA acquire the pair muA, muB in opposite orders
// through one call frame each — the classic inverted-pair deadlock —
// and Re re-acquires muC through a helper while already holding it.
// TakeABDirect nests the pair in the SAME order as TakeAB and must
// stay quiet: consistent nesting is the fix, not a finding. Each cycle
// is reported once, at the first witness edge, with every witness call
// chain in the message.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
)

var n int

// TakeAB holds muA while its callee takes muB: the edge muA → muB.
func TakeAB() {
	muA.Lock()
	defer muA.Unlock()
	lockB() // want "lock-order cycle"
}

func lockB() {
	muB.Lock()
	n++
	muB.Unlock()
}

// TakeBA holds muB while its callee takes muA: the inverted edge.
func TakeBA() {
	muB.Lock()
	defer muB.Unlock()
	lockA()
}

func lockA() {
	muA.Lock()
	n++
	muA.Unlock()
}

// Re re-acquires muC through a helper while already holding it: a
// guaranteed self-deadlock, since Go mutexes are not reentrant.
func Re() {
	muC.Lock()
	defer muC.Unlock()
	relockC() // want "not reentrant"
}

func relockC() {
	muC.Lock()
	n++
	muC.Unlock()
}

// TakeABDirect nests the pair in the same order TakeAB uses — clean.
func TakeABDirect() {
	muA.Lock()
	muB.Lock()
	n++
	muB.Unlock()
	muA.Unlock()
}
