// Package ctxfirst is a lint fixture for context parameter placement.
package ctxfirst

import "context"

func CtxSecond(name string, ctx context.Context) error { // want "must come first"
	_ = ctx
	_ = name
	return nil
}

func CtxFirst(ctx context.Context, name string) error {
	_ = ctx
	_ = name
	return nil
}

func NoCtx(name string) string { return name }

var _ = func(a int, ctx context.Context) { // want "must come first"
	_ = ctx
	_ = a
}

type handler struct{}

// CtxThird also fires on methods.
func (handler) CtxThird(a, b int, ctx context.Context) { // want "must come first"
	_ = ctx
	_, _ = a, b
}
