// Package printer is a lint fixture for the no-stdout-in-library rule.
package printer

import (
	"fmt"
	"io"
	"os"
)

func printsToStdout(v int) {
	fmt.Println("value:", v)     // want "fmt.Println"
	fmt.Printf("value: %d\n", v) // want "fmt.Printf"
	fmt.Print(v)                 // want "fmt.Print"
}

func writesThroughOSStdout(v int) {
	fmt.Fprintf(os.Stdout, "%d\n", v) // want "os.Stdout"
	os.Stderr.WriteString("oops")     // want "os.Stderr"
}

func returnsValue(v int) string {
	return fmt.Sprintf("value: %d", v) // Sprint family is fine
}

func writesInjected(w io.Writer, v int) {
	fmt.Fprintf(w, "value: %d\n", v) // injected writer is the idiom
}
