// Package structlayout is a lint fixture for the memory-layout
// contract: want lines mark field orders that waste padding under the
// canonical gc/amd64 model. Unannotated structs fire only at 8+ bytes
// of reorderable waste; //imc:compact structs are held to zero;
// //imc:padded structs are skipped (falseshare verifies them); the
// directives themselves are policed against non-struct types.
package structlayout

// 14 bytes of alignment holes a permutation removes: the two float64s
// force 7-byte pads after each bool.
type wasteful struct { // want "packs it to 24 bytes (8 saved per value)"
	a bool
	b float64
	c bool
	d float64
}

// Only 4 reorderable bytes — below the unannotated threshold — but the
// compact pin demands zero waste.
//
//imc:compact
type pinned struct { // want "//imc:compact struct pinned"
	a bool
	b int32
	c bool
}

// Same shape unannotated: 4 bytes of waste is tolerated churn.
type tolerated struct {
	a bool
	b int32
	c bool
}

// Already minimal: the tail pad after b survives every permutation, and
// unfixable padding is not a finding.
type tail struct {
	a int64
	b int32
}

// Deliberate cache-line insulation: structlayout leaves padded structs
// to the falseshare analyzer.
//
//imc:padded
type lane struct {
	v int64
	_ [56]byte
}

// Fewer than two fields cannot be reordered.
type one struct {
	x byte
}

//imc:compact
type scalar int // want "applies to struct types only"

//imc:padded
type alias []int // want "applies to struct types only"

// keep the declared-only types referenced
var _ = []any{wasteful{}, pinned{}, tolerated{}, tail{}, lane{}, one{}, scalar(0), alias(nil)}
