// Package inlineable is a lint fixture for the inlining contract: hot
// leaf functions must be blocker-free, and every callee reachable from
// a hot loop (transitively, up to //imc:hotpath boundaries) must inline.
// Want lines mark the blockers; the clean cases pin what must stay
// silent: plain loops, depth-0 calls, and annotated kernel boundaries.
package inlineable

// --- hot leaf functions with unconditional blockers -------------------

//imc:hotpath
func hotLeafDefer(ch chan int) { // want "contains defer"
	defer close(ch)
	ch <- 1
}

//imc:hotpath
func hotLeafSelect(ch chan int) int { // want "contains select"
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

//imc:hotpath
func hotLeafRangeChan(ch chan int) int { // want "range over a channel"
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

//imc:hotpath
func hotLeafRecover(vals []int) (total int) { // want "contains recover"
	if r := recover(); r != nil {
		return 0
	}
	for _, v := range vals {
		total += v
	}
	return total
}

// A plain loop is NOT a blocker: the word-scan helpers hot loops depend
// on are loops by nature.
//
//imc:hotpath
func cleanLeafLoop(vals []int) int {
	total := 0
	for _, v := range vals {
		total += v
	}
	return total
}

// --- callees reached from hot loops -----------------------------------

func noop() {}

func withDefer(v int) int {
	defer noop()
	return v + 1
}

//imc:hotpath
func hotCallsDefer(items []int) int {
	t := 0
	for _, v := range items {
		t += withDefer(v) // want "cannot inline: defer"
	}
	return t
}

func viaMid(v int) int { return bigBody(v) }

// bigBody is deliberately over the inlining budget.
func bigBody(v int) int {
	a := v*3 + 1
	b := a*5 + 2
	c := b*7 + 3
	d := c*11 + 4
	e := d*13 + 5
	f := e*17 + 6
	g := f*19 + 7
	h := g*23 + 8
	a = a ^ (b << 1)
	b = b ^ (c << 2)
	c = c ^ (d << 3)
	d = d ^ (e << 4)
	e = e ^ (f << 5)
	f = f ^ (g << 6)
	g = g ^ (h << 7)
	h = h ^ (a << 8)
	a += b * c
	b += c * d
	c += d * e
	d += e * f
	e += f * g
	f += g * h
	return a + b + c + d + e + f + g + h
}

//imc:hotpath
func hotCallsBig(items []int) int {
	t := 0
	for i := range items {
		t += viaMid(items[i]) // want "exceeds the inlining budget"
	}
	return t
}

//go:noinline
func pinned(v int) int { return v * 2 }

//imc:hotpath
func hotCallsNoinline(items []int) int {
	t := 0
	for _, v := range items {
		t += pinned(v) // want "go:noinline pragma"
	}
	return t
}

func spawns(v int) {
	go func() { _ = v }()
}

//imc:hotpath
func hotCallsSpawner(items []int) {
	for _, v := range items {
		spawns(v) // want "a go statement"
	}
}

// --- clean callee shapes ----------------------------------------------

func double(v int) int { return v + v }

//imc:hotpath
func hotCallsSmall(items []int) int {
	t := 0
	for _, v := range items {
		t += double(v) // clean: small blocker-free callee inlines
	}
	return t
}

func trace() {}

// kernelBoundary carries its own annotation: callers stop chasing here,
// and its contracts are enforced at this declaration (it is not a leaf,
// so the depth-0 defer is its own business, not an inline blocker).
//
//imc:hotpath
func kernelBoundary(items []int) int {
	defer trace()
	t := 0
	for _, v := range items {
		t += double(v)
	}
	return t
}

//imc:hotpath
func hotCallsKernel(xss [][]int) int {
	t := 0
	for _, s := range xss {
		t += kernelBoundary(s) // clean: callee is a hotpath boundary
	}
	return t
}

//imc:hotpath
func hotSetupOnly(items []int) int {
	n := withDefer(0) // clean: depth-0 call, not in a loop
	t := 0
	for _, v := range items {
		t += v + n
	}
	return t
}
