// Package chanctx is the golden fixture for the select-cancellation
// analyzer: inside a context-taking function, a select with no default
// must wait on ctx cancellation — directly, or through a local bound
// to Done(). Selects with a default never block, and functions without
// a context parameter have nothing to plumb.
package chanctx

import "context"

type worker struct {
	jobs chan int
	done chan struct{}
}

// Wait parks on worker channels with no cancellation path: the caller
// can give up, but this goroutine never learns.
func (w *worker) Wait(ctx context.Context) int {
	select { // want "without waiting on ctx cancellation"
	case v := <-w.jobs:
		return v
	case <-w.done:
		return 0
	}
}

// WaitCtx is clean: one case waits on ctx.Done().
func (w *worker) WaitCtx(ctx context.Context) int {
	select {
	case v := <-w.jobs:
		return v
	case <-ctx.Done():
		return 0
	}
}

// WaitAlias is clean: the Done channel flows through a local.
func (w *worker) WaitAlias(ctx context.Context) int {
	stop := ctx.Done()
	select {
	case v := <-w.jobs:
		return v
	case <-stop:
		return 0
	}
}

// Poll is clean: a default clause means the select cannot block.
func Poll(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return -1
	}
}

// Pump has no context parameter; there is no cancellation to plumb.
func (w *worker) Pump() int {
	select {
	case v := <-w.jobs:
		return v
	}
}
