// Package errflow is a lint fixture for the flow-sensitive error
// tracker: want-annotated lines mark assignments whose error value is
// overwritten or dropped on some path; the clean functions encode the
// idioms the analyzer must NOT flag (loop-check, named results,
// closure captures, explicit discards, sticky-writer expression calls).
package errflow

import "errors"

var sentinel = errors.New("boom")

func doA() error { return sentinel }

func doB() error { return nil }

func pair() (int, error) { return 1, nil }

func cond() bool { return true }

// Straight-line overwrite: doA's failure is silently lost.
func overwrite() error {
	err := doA() // want "overwritten"
	err = doB()
	return err
}

// Overwritten on one branch only — still a lost error on that path.
func branchOverwrite() error {
	err := doA() // want "overwritten"
	if cond() {
		err = doB()
	}
	return err
}

// Checked under one condition, dropped when cond() is false.
func branchDrop() int {
	err := doA() // want "never checked"
	if cond() {
		if err != nil {
			return 1
		}
	}
	return 0
}

// Tuple assignment whose error is dropped on the early-return path.
func tupleDrop() int {
	v, err := pair() // want "never checked"
	if v > 0 {
		return v
	}
	if err != nil {
		return -1
	}
	return 0
}

// The loop idiom: assigned then checked before every back edge — clean.
func loopChecked(n int) error {
	for i := 0; i < n; i++ {
		if err := doA(); err != nil {
			return err
		}
	}
	return nil
}

// Reassignment around the back edge is the same assignment site, not an
// overwrite, and the value is read after the loop — clean.
func loopReassign(n int) error {
	var err error
	for i := 0; i < n; i++ {
		err = doB()
	}
	return err
}

// Checked immediately in the if-init idiom — clean.
func checkedNow() error {
	if err := doB(); err != nil {
		return err
	}
	return nil
}

// Explicit discard is visible intent — clean.
func discard() {
	err := doA()
	_ = err
}

// Named error results belong to the signature: a naked return hands
// them to the caller without an identifier use — clean.
func namedResult() (err error) {
	err = doA()
	return
}

// A goroutine assigning an outer error variable (the errgroup idiom)
// surfaces it to code this closure cannot see — clean.
func closureCapture() error {
	var err error
	done := make(chan struct{})
	go func() {
		err = doA()
		close(done)
	}()
	<-done
	return err
}

// Expression-statement calls discarding their error outright are the
// sticky-writer pattern, deliberately out of scope — clean.
func stickyWriter() {
	doA()
}
