// Package falseshare is a lint fixture for the cache-line sharing
// contract: want lines mark writes from distinct goroutines that land
// in one 64-byte line — per-worker slots in an unpadded slice, and
// sibling struct fields — plus an //imc:padded annotation whose pad
// has rotted. Line-sized elements and single spawns stay silent.
package falseshare

import "sync"

// The per-worker-accumulator shape: one spawn site in a loop, each
// goroutine storing its partial into its own slot — eight slots per
// cache line.
func stridedSlots(n int) []float64 {
	partial := make([]float64, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sum := 0.0
			for i := w; i < n; i += 4 {
				sum += float64(i)
			}
			partial[w] = sum // want "distinct goroutines write elements of partial"
		}(w)
	}
	wg.Wait()
	return partial
}

// Two distinct spawn sites writing fixed neighboring slots of one
// slice: constant indices, but plural writers.
func twoSpawns(out []int64) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		out[0] = 1 // want "distinct goroutines write elements of out"
	}()
	go func() {
		defer wg.Done()
		out[1] = 2
	}()
	wg.Wait()
}

type counters struct {
	hits   int64
	misses int64
}

// Sibling fields of one shared struct, 8 bytes apart.
func siblingFields(c *counters) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.hits++ // want "write fields hits and misses of shared c"
	}()
	go func() {
		defer wg.Done()
		c.misses++
	}()
	wg.Wait()
}

// The sanctioned fix: a line-sized padded slot type. Elements are a
// cache-line multiple, so strided writes stay silent.
//
//imc:padded
type slot struct {
	sum float64
	_   [56]byte
}

func paddedSlots(n int) float64 {
	partial := make([]slot, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				partial[w].sum += float64(i)
			}
		}(w)
	}
	wg.Wait()
	return partial[0].sum
}

// The annotation is verified, not trusted: a field grew past the pad
// and the struct is 72 bytes — adjacent elements share lines again.
//
//imc:padded
type drifted struct { // want "not a multiple of the 64-byte cache line"
	sum   float64
	count int64
	_     [56]byte
}

var _ = drifted{}

// One goroutine writing one slot shares its line with nobody.
func singleSpawn(out []float64, i int) {
	done := make(chan struct{})
	go func() {
		out[i] = 1
		close(done)
	}()
	<-done
}
