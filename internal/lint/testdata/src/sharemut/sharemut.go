// Package sharemut is a lint fixture for the share-then-freeze checker:
// want-annotated lines mutate a slice after it was handed to a
// goroutine, sent on a channel, or stored into long-lived state. The
// clean functions encode the sanctioned orders — mutate before sharing,
// reassign a fresh buffer, or join workers with WaitGroup.Wait first.
package sharemut

import "sync"

type pool struct {
	index [][]int
}

func mutateAfterGo(buf []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		_ = buf[0]
		wg.Done()
	}()
	buf[0] = 1 // want "writes element of buf"
	wg.Wait()
}

func mutateAfterWait(buf []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		_ = buf[0]
		wg.Done()
	}()
	wg.Wait()
	buf[0] = 1 // clean: Wait joins the goroutine first
}

func storeThenMutate(p *pool, v int) {
	row := make([]int, 4)
	p.index[v] = row
	row[0] = 9 // want "writes element of row"
}

func mutateBeforeShare(p *pool, v int) {
	row := make([]int, 4)
	row[0] = 1 // clean: not yet shared
	p.index[v] = row
}

func freshAfterStore(p *pool, v int) {
	row := make([]int, 4)
	p.index[v] = row
	row = make([]int, 4)
	row[0] = 9 // clean: fresh backing array, pool keeps the old one
}

func growShared(p *pool, v int) {
	row := make([]int, 0, 4)
	p.index[v] = row
	row = append(row, v) // want "grows or reslices row"
	_ = row
}

func bumpShared(done chan []int, counts []int) {
	done <- counts
	counts[0]++ // want "mutates element of counts"
}

func copyIntoShared(p *pool, v int, src []int) {
	row := make([]int, 4)
	p.index[v] = row
	copy(row, src) // want "copies into row"
}

func branchShare(p *pool, v int, cond bool) {
	row := make([]int, 4)
	if cond {
		p.index[v] = row
	}
	row[0] = 1 // want "writes element of row"
}
