// Package allocfree is a lint fixture for the //imc:hotpath contract:
// every want-annotated line marks a per-iteration allocation the
// analyzer must flag; every other line — one-time setup, amortized
// scratch, unannotated functions — must stay silent.
package allocfree

type gen struct {
	queue []int
}

func sink(v interface{}) {}

//imc:hotpath
func makesPerIteration(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]int, 8) // want "make inside a hot loop"
		total += len(buf) + i
	}
	return total
}

//imc:hotpath
func setupOutsideLoop(n int) int {
	buf := make([]int, n) // clean: one-time setup before the loop
	total := 0
	for i := range buf {
		total += buf[i]
	}
	return total
}

//imc:hotpath
func newPerIteration(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		p := new(gen) // want "new inside a hot loop"
		total += len(p.queue)
	}
	return total
}

//imc:hotpath
func appendChurn(items []int) []int {
	var out []int
	for _, v := range items {
		out = append(out, v) // want "append to a non-scratch slice"
	}
	return out
}

//imc:hotpath
func appendScratch(g *gen, items []int) {
	g.queue = g.queue[:0] // sanctions g.queue as amortized scratch
	for _, v := range items {
		g.queue = append(g.queue, v) // clean: scratch growth amortizes
	}
}

//imc:hotpath
func appendPrealloc(items []int) []int {
	out := make([]int, 0, len(items)) // capacity preallocated
	for _, v := range items {
		out = append(out, v) // clean: within preallocated capacity
	}
	return out
}

//imc:hotpath
func closureInLoop(items []int) int {
	total := 0
	for _, v := range items {
		f := func() int { return v * v } // want "closure literal"
		total += f()
	}
	return total
}

//imc:hotpath
func literalsInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		xs := []int{i, i + 1}  // want "slice literal"
		m := map[int]int{i: i} // want "map literal"
		total += xs[0] + len(m)
	}
	return total
}

//imc:hotpath
func stringConcat(names []string, prefix string) int {
	total := 0
	for _, name := range names {
		msg := prefix + name // want "string concatenation"
		total += len(msg)
	}
	return total
}

//imc:hotpath
func stringGrow(names []string) string {
	var all string
	for _, name := range names {
		all += name // want "string +="
	}
	return all
}

//imc:hotpath
func boxesInLoop(vals []int) {
	for _, v := range vals {
		sink(v) // want "boxes it on the heap"
	}
}

//imc:hotpath
func pointerNoBox(vals []*gen) {
	for _, v := range vals {
		sink(v) // clean: a pointer fits the interface data word
	}
}

//imc:hotpath
func rangedExprOnce(n int) int {
	total := 0
	for _, v := range make([]int, n) { // clean: evaluated once, before iteration
		total += v
	}
	return total
}

//imc:hotpath
func nestedRangedExpr(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		for _, v := range make([]int, 4) { // want "make inside a hot loop"
			total += v + i
		}
	}
	return total
}

// unannotated carries no //imc:hotpath: its allocations are its own
// business and must not be reported.
func unannotated(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
