// Package valuecopy is a lint fixture for the big-value copy contract
// inside //imc:hotpath functions: want lines mark range-by-value over
// big-struct elements, big structs passed (or received) by value per
// loop iteration, and big values boxed into interfaces per iteration.
// Small structs, pointers, cold functions, and one-off copies at loop
// depth 0 stay silent.
package valuecopy

// big is exactly at the 64-byte threshold.
type big struct {
	a, b, c, d int64
	e, f, g, h int64
}

// small is well under it: copying beats the indirection.
type small struct {
	a, b int32
}

func use(b big) int64     { return b.a }
func usePtr(b *big) int64 { return b.a }
func sinkIface(v any)     {}

func (b big) total() int64 { return b.a + b.e }

//imc:hotpath
func sumRange(s []big) int64 {
	t := int64(0)
	for _, v := range s { // want "range copies a 64-byte"
		t += v.a
	}
	return t
}

//imc:hotpath
func passLoop(s []big) int64 {
	t := int64(0)
	for i := range s {
		t += use(s[i]) // want "passes a 64-byte"
	}
	return t
}

//imc:hotpath
func boxCall(s []big) {
	for i := range s {
		sinkIface(s[i]) // want "boxes a 64-byte"
	}
}

//imc:hotpath
func boxAssign(s []big) any {
	var acc any
	for i := range s {
		acc = s[i] // want "boxes a 64-byte"
	}
	return acc
}

//imc:hotpath
func recvLoop(s []big) int64 {
	t := int64(0)
	for i := range s {
		t += s[i].total() // want "value receiver"
	}
	return t
}

// Silent: below the threshold.
//
//imc:hotpath
func sumSmall(s []small) int32 {
	t := int32(0)
	for _, v := range s {
		t += v.a
	}
	return t
}

// Silent: the contract scopes to //imc:hotpath functions.
func coldRange(s []big) int64 {
	t := int64(0)
	for _, v := range s {
		t += v.a
	}
	return t
}

// Silent: a pointer per iteration is the sanctioned idiom.
//
//imc:hotpath
func viaPointer(s []big) int64 {
	t := int64(0)
	for i := range s {
		t += usePtr(&s[i])
	}
	return t
}

// Silent: one copy at loop depth 0 is not per-iteration traffic.
//
//imc:hotpath
func onceIsFine(b big) int64 {
	return use(b)
}
