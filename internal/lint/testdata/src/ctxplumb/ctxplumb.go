// Package ctxplumb is a lint fixture for the //imc:longrun contract.
package ctxplumb

import "context"

type pool struct{}

// GenerateCtx is a correctly plumbed entry point.
//
//imc:longrun
func (p *pool) GenerateCtx(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// DoubleCtx forwards its context — legal.
//
//imc:longrun
func (p *pool) DoubleCtx(ctx context.Context) error {
	return p.GenerateCtx(ctx, 10)
}

// SolveCtx mints fresh contexts for longrun callees — both call forms
// (method and plain function) must fire.
//
//imc:longrun
func SolveCtx(ctx context.Context, p *pool) error {
	_ = ctx
	if err := p.GenerateCtx(context.Background(), 10); err != nil { // want "severs the cancellation chain"
		return err
	}
	return estimateCtx(context.TODO(), p) // want "severs the cancellation chain"
}

//imc:longrun
func estimateCtx(ctx context.Context, p *pool) error {
	return p.GenerateCtx(ctx, 1)
}

// MissingCtx is annotated longrun but takes no context at all.
//
//imc:longrun
func MissingCtx(n int) error { // want "must take context.Context as its first parameter"
	return nil
}

// CtxNotFirst is annotated longrun but hides the context mid-signature
// (ctxfirst also flags this; ctxplumb owns the longrun contract).
//
//imc:longrun
func CtxNotFirst(n int, ctx context.Context) error { // want "must take context.Context as its first parameter"
	return ctx.Err()
}

// Generate is an UNANNOTATED delegation shim: minting a background
// context here is the sanctioned compatibility pattern, not a
// violation.
func Generate(p *pool, n int) error {
	return p.GenerateCtx(context.Background(), n)
}

// helperCtx calls a longrun function from an unannotated helper with a
// fresh context — also legal: the contract binds annotated functions
// only.
func helperCtx(p *pool) error {
	return SolveCtx(context.TODO(), p)
}
