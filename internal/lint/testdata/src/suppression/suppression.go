// Package suppression is a lint fixture for the escape-hatch police
// (the pseudo-check "suppression"). It is exercised with ONLY the
// determinism analyzer active: the live allow must suppress silently,
// while stale, reasonless, legacy, and unknown-check allows must each
// be reported on their own line.
package suppression

import "time"

// sanctioned carries a live, well-formed allow: it suppresses a real
// determinism finding, so the hygiene pass must stay silent.
func sanctioned() time.Time {
	return time.Now() //lint:allow determinism: fixture demonstrates a live suppression
}

// stale allows a check that fires nowhere on this line: the comment
// suppresses nothing and determinism IS in the active set, so the
// hygiene pass must call it out.
func stale() int {
	return 1 //lint:allow determinism: nothing here draws time or randomness // want "stale suppression"
}

// missingReason omits the mandatory justification. Its check
// (floatcompare) is not in the active set, so no stale report — only
// the grammar violation.
func missingReason() int {
	return 2 //lint:allow floatcompare // want "without a justification"
}

// legacySeparator still uses the pre-v2 em-dash; it suppresses a real
// finding (so it is not stale) but must be flagged for migration.
func legacySeparator() time.Time {
	return time.Now() //lint:allow determinism — migrate me to the colon form // want "legacy allow syntax"
}

// unknownCheck names a check that does not exist.
func unknownCheck() int {
	return 3 //lint:allow nosuchcheck: typo in the check name // want "unknown check"
}
