// Package presize is a lint fixture for the slice pre-sizing contract:
// want lines mark self-appends in statically bounded loops on local
// slices born without capacity. Births with capacity, reuse-and-
// reslice, spread appends, non-local slices, and unbounded loops stay
// silent.
package presize

func collectRange(s []int) []int {
	var out []int
	for _, v := range s {
		if v > 0 {
			out = append(out, v) // want "bounded by len(s) but was born without capacity"
		}
	}
	return out
}

func counted(n int) []int {
	out := []int{}
	for i := 0; i < n; i++ {
		out = append(out, i) // want "bounded by n but was born without capacity"
	}
	return out
}

// The CELF seed-selection shape: the slice's own length compared
// against the target is the bound.
func celf(k int) []int {
	var seeds []int
	for len(seeds) < k {
		seeds = append(seeds, len(seeds)) // want "bounded by k but was born without capacity"
	}
	return seeds
}

// make with an explicit zero capacity is still capacity-less.
func makeZero(s []string) []string {
	out := make([]string, 0)
	for _, v := range s {
		out = append(out, v) // want "born without capacity"
	}
	return out
}

// Sanctioned: born with the loop's capacity.
func presized(s []int) []int {
	out := make([]int, 0, len(s))
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

// Sanctioned: reuse-and-reslice keeps the old backing array — the
// steady-state cost is zero allocations.
func reuseBuffer(s []int) []int {
	buf := make([]int, len(s))
	out := buf[:0]
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

// Sanctioned: spread appends grow by more than one element per
// iteration, so the loop bound alone is not the capacity.
func spread(chunks [][]int) []int {
	var out []int
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

// Silent: no derivable trip count.
func unbounded(next func() (int, bool)) []int {
	var out []int
	for {
		v, ok := next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

type sink struct {
	buf []int
}

// Silent: a field's allocation history is not visible to a
// per-function analysis.
func (s *sink) fill(vals []int) {
	for _, v := range vals {
		s.buf = append(s.buf, v)
	}
}
