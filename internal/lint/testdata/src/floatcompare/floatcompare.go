// Package floatcompare is a lint fixture for the float-equality check.
package floatcompare

import "math"

func exactEquality(a, b float64) bool {
	return a == b // want "explicit tolerance"
}

func exactInequality(a, b float32) bool {
	return a != b // want "explicit tolerance"
}

func mixedOperands(a float64, b int) bool {
	return a == float64(b) // want "explicit tolerance"
}

func nonZeroConstant(a float64) bool {
	return a == 0.5 // want "explicit tolerance"
}

func zeroSentinel(eps float64) float64 {
	if eps == 0 { // unset-field sentinel: exempt
		eps = 0.2
	}
	return eps
}

func toleranceIdiom(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9 // approved epsilon comparison
}

func integerComparison(a, b int) bool {
	return a == b // integers compare exactly
}

const half = 0.5

func constantFold() bool {
	return half == 0.5 // both constants: exact, exempt
}
