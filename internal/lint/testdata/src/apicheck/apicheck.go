// Package apicheck is the apisurface fixture: a small exported API
// covering every entry kind the snapshot renders — const, var, func,
// named types (struct and method set), and both receiver shapes.
package apicheck

// Limit is an exported constant.
const Limit = 16

// Version is an exported variable.
var Version string

// Weight is a named type with a value-receiver method.
type Weight float64

// Scale multiplies the weight.
func (w Weight) Scale(f float64) Weight { return Weight(float64(w) * f) }

// Counter mixes exported and unexported fields; only N may appear in
// the snapshot.
type Counter struct {
	N      int
	hidden int
}

// Add bumps the counter (pointer receiver).
func (c *Counter) Add(delta int) { c.N += delta + c.hidden }

// Clamp has named parameters, which must not leak into the snapshot.
func Clamp(value, lo, hi float64) float64 {
	if value < lo {
		return lo
	}
	if value > hi {
		return hi
	}
	return value
}

// internal is unexported and invisible to the snapshot.
func internal() {}
