// Package determinism is a lint fixture: every want-annotated comment
// marks a line where the determinism analyzer must fire with a message
// containing the quoted substring; every other line must stay silent.
package determinism

import (
	"fmt"
	"math/rand" // want "math/rand"
	"sort"
	"time"
)

func drawsFromGlobalRand() int {
	return rand.Intn(6)
}

func readsWallClock() time.Duration {
	start := time.Now() // want "wall clock"
	doWork()
	return time.Since(start) // want "wall clock"
}

func untilDeadline(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "wall clock"
}

func sanctionedWallClock() time.Time {
	return time.Now() //lint:allow determinism: fixture demonstrates the escape hatch
}

func leakyMapAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "nondeterministic iteration order"
	}
	return keys
}

func leakyMapPrint(m map[string]int) {
	for k, v := range m {
		fmt.Sprintf("%s=%d", k, v)  // Sprint does not emit; silent
		fmt.Printf("%s=%d\n", k, v) // want "nondeterministic order"
	}
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below: deterministic idiom
	}
	sort.Strings(keys)
	return keys
}

func perKeySlots(m map[int][]int) map[int][]int {
	out := make(map[int][]int, len(m))
	for k, vs := range m {
		out[k] = append(out[k], vs...) // per-key slot: order-independent
	}
	return out
}

func doWork() {}
