// Package b is in the fixture contract's top layer, but imports a
// package the contract does not cover at all.
package b

import "imc/internal/lint/testdata/src/layercheck/c" // want "import of internal/lint/testdata/src/layercheck/c, which is not covered"

// B leans on the uncovered package.
func B() int { return c.C() }
