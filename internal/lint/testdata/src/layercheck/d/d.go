// Package d imports downward (layer 1 → layer 0), which the contract
// permits: no finding anywhere in this file.
package d

import "imc/internal/lint/testdata/src/layercheck/a"

// D leans on the lower layer.
func D() int { return a.A() }
