// Package c is absent from the fixture contract; being loaded at all
// is its finding.
package c // want "package internal/lint/testdata/src/layercheck/c is not covered by the layering contract; add it"

// C exists so b has something to import.
func C() int { return 3 }
