// Package a sits in the bottom layer of the fixture contract, so its
// import of b (one layer up) is the inversion the analyzer exists to
// catch.
package a

import "imc/internal/lint/testdata/src/layercheck/b" // want "upward import: internal/lint/testdata/src/layercheck/a (layer 0"

// A leans on the higher layer.
func A() int { return b.B() }
