// Package purity is a lint fixture for the //imc:pure contract:
// want-annotated lines mark writes to shared state, impure calls, and
// channel/goroutine effects inside marked functions. Unmarked impure
// functions must stay silent, and the marked pure ones (including the
// mutually recursive pair) prove the bottom-up fixed point converges.
package purity

import (
	"fmt"
	"math"
)

var counter int

var cache []float64

type measurer interface{ Len() int }

//imc:pure
func pureNorm(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x * x
	}
	return math.Sqrt(total)
}

//imc:pure
func callsPure(xs []float64) float64 {
	return pureNorm(xs)
}

//imc:pure
func writesGlobal(x int) int {
	counter++ // want "writes package-level state counter"
	return x + counter
}

func helper() int {
	counter++
	return counter
}

//imc:pure
func callsImpure(x int) int {
	return x + helper() // want "calls impure helper"
}

//imc:pure
func retains(xs []float64) float64 {
	cache = xs // want "retains an argument slice in package-level state cache"
	return 0
}

//imc:pure
func writesParam(xs []float64, f float64) {
	for i := range xs {
		xs[i] *= f // want "writes through parameter xs"
	}
}

//imc:pure
func sends(c chan int, x int) int {
	c <- x // want "channel send"
	return x
}

//imc:pure
func receives(c chan int) int {
	return <-c // want "channel receive"
}

//imc:pure
func spawns(xs []float64) float64 {
	go callsPure(xs) // want "spawns a goroutine"
	return 0
}

//imc:pure
func callsIface(m measurer) int {
	return m.Len() // want "dynamic dispatch"
}

//imc:pure
func callsValue(f func() int) int {
	return f() // want "dynamic call"
}

//imc:pure
func formats(x int) string {
	return fmt.Sprintf("%d", x) // want "not known to be pure"
}

// Mutual recursion: the optimistic fixed point must classify both as
// pure rather than looping or defaulting to impure.

//imc:pure
func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

//imc:pure
func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// unmarked is impure but carries no directive — silent.
func unmarked() {
	counter++
}
