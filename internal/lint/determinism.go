package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repository's reproducibility contract in
// library packages: every stochastic draw must come from the splittable
// PRNG in internal/xrand and every timestamp from an injected
// internal/clock source. math/rand (seeded from global state),
// time.Now/Since/Until (wall clock), and map-range-ordered output all
// make results depend on something other than the experiment seed,
// which silently invalidates seed-for-seed comparisons between UBG,
// MAF, BT, and MB runs.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid math/rand, wall-clock reads, and map-range-ordered output in library code; use internal/xrand and internal/clock",
	Kind: KindSyntactic,
	Run:  runDeterminism,
}

// forbiddenImports maps import path → replacement advice.
var forbiddenImports = map[string]string{
	"math/rand":    "use imc/internal/xrand (deterministic, splittable)",
	"math/rand/v2": "use imc/internal/xrand (deterministic, splittable)",
}

func runDeterminism(pkg *Package, r *Reporter) {
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if advice, ok := forbiddenImports[path]; ok {
				r.Reportf("determinism", imp.Pos(), "import of %s breaks seed-for-seed reproducibility; %s", path, advice)
			}
		}
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := pkg.selectorCall(file, n, "time", "Now", "Since", "Until"); ok {
					r.Reportf("determinism", sel.Sel.Pos(),
						"time.%s reads the wall clock; inject an imc/internal/clock.Func instead", sel.Sel.Name)
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRangeOrder(pkg, file, n.Body, r)
				}
			}
			return true
		})
	}
}

// checkMapRangeOrder flags map ranges in fn that leak Go's randomized
// iteration order into ordered output. Two idioms are deterministic and
// therefore allowed:
//
//   - collect-then-sort: appending keys/values to a slice that is later
//     passed to a sort call in the same function;
//   - per-key slots: appending into a container indexed by the range
//     variables, where cross-key order cannot matter.
//
// Printing (fmt.Print*/Fprint*) inside a map range is always flagged —
// there is no way to sort output after it has been written.
func checkMapRangeOrder(pkg *Package, file *ast.File, fn *ast.BlockStmt, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	sorted := sortedExprs(pkg, fn)
	ast.Inspect(fn, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rng.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		rangeVars := make(map[types.Object]bool)
		for _, v := range []ast.Expr{rng.Key, rng.Value} {
			if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
				if obj := pkg.Info.Defs[id]; obj != nil {
					rangeVars[obj] = true
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					rangeVars[obj] = true
				}
			}
		}
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
				dst := call.Args[0]
				if perKeySlot(pkg, dst, rangeVars) {
					return true
				}
				if sorted[types.ExprString(dst)] {
					return true
				}
				r.Reportf("determinism", call.Pos(),
					"append inside a map range leaks nondeterministic iteration order; sort afterwards or index by the range key")
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				path, pathOK := pkg.importedPkgName(file, sel.X)
				printing := strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")
				if pathOK && path == "fmt" && printing {
					r.Reportf("determinism", call.Pos(),
						"printing inside a map range emits nondeterministic order; collect and sort the keys first")
				}
			}
			return true
		})
		return true
	})
}

// perKeySlot reports whether dst writes into a per-key slot: the range
// value variable itself, or any expression indexed by a range variable
// (out[key], s.buckets[v]); such appends are independent of iteration
// order.
func perKeySlot(pkg *Package, dst ast.Expr, rangeVars map[types.Object]bool) bool {
	switch dst := dst.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[dst]
		return obj != nil && rangeVars[obj]
	case *ast.IndexExpr:
		if id, ok := dst.Index.(*ast.Ident); ok {
			obj := pkg.Info.Uses[id]
			return obj != nil && rangeVars[obj]
		}
	}
	return false
}

// sortedExprs collects the printed form of every argument passed to a
// sort call (sort.Slice, sort.Sort, sort.Ints, slices.Sort*, ...)
// anywhere in fn, plus receivers of .Sort() method calls.
func sortedExprs(pkg *Package, fn *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isSort := false
		switch id.Name {
		case "sort":
			switch sel.Sel.Name {
			case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Strings", "Float64s":
				isSort = true
			}
		case "slices":
			isSort = strings.HasPrefix(sel.Sel.Name, "Sort")
		}
		if isSort {
			for _, arg := range call.Args {
				out[types.ExprString(arg)] = true
			}
		}
		return true
	})
	return out
}
