package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedPlumb enforces the sampling packages' parallel-determinism
// contract: any exported function or method in ric, ris, diffusion, or
// maxr that spawns worker goroutines must be driven by caller-supplied
// randomness — an *xrand.RNG parameter, an integer seed parameter, or
// an options/receiver struct carrying a Seed or *xrand.RNG field. A
// worker fan-out with no seed input has nowhere to split deterministic
// per-task streams from, so its output would depend on scheduling.
var SeedPlumb = &Analyzer{
	Name: "seedplumb",
	Doc:  "exported functions that spawn workers must accept an xrand stream or seed (directly or via an options/receiver struct)",
	Kind: KindSyntactic,
	Run:  runSeedPlumb,
}

const xrandPath = "imc/internal/xrand"

func runSeedPlumb(pkg *Package, r *Reporter) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !spawnsGoroutine(fd.Body) {
				continue
			}
			if funcAcceptsSeed(pkg, fd) {
				continue
			}
			r.Reportf("seedplumb", fd.Name.Pos(),
				"exported %s spawns worker goroutines but accepts no xrand stream or seed; deterministic parallelism needs caller-supplied randomness", fd.Name.Name)
		}
	}
}

// spawnsGoroutine reports whether body contains a go statement.
func spawnsGoroutine(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// funcAcceptsSeed checks the receiver and every parameter for a seed
// source.
func funcAcceptsSeed(pkg *Package, fd *ast.FuncDecl) bool {
	if pkg.Info == nil {
		return true // cannot prove a violation without types
	}
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return true
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return true
	}
	if recv := sig.Recv(); recv != nil && typeCarriesSeed(recv.Type(), recv.Name()) {
		return true
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if typeCarriesSeed(p.Type(), p.Name()) {
			return true
		}
	}
	return false
}

// typeCarriesSeed reports whether a value of type t named name can act
// as a randomness source: an xrand.RNG (pointer or value), an integer
// whose name mentions "seed", or a struct with such a field.
func typeCarriesSeed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return typeCarriesSeed(ptr.Elem(), name)
	}
	if isXrandRNG(t) {
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 &&
		strings.Contains(strings.ToLower(name), "seed") {
		return true
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			ft := f.Type()
			if ptr, ok := ft.Underlying().(*types.Pointer); ok {
				ft = ptr.Elem()
			}
			if isXrandRNG(ft) {
				return true
			}
			if b, ok := ft.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 &&
				strings.Contains(strings.ToLower(f.Name()), "seed") {
				return true
			}
		}
	}
	return false
}

// isXrandRNG matches the named type imc/internal/xrand.RNG.
func isXrandRNG(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "RNG" && obj.Pkg() != nil && obj.Pkg().Path() == xrandPath
}
