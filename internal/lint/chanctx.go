package lint

import (
	"go/ast"
	"go/token"
)

// The chanctx analyzer enforces cancellation plumbing at blocking
// selects: inside a function that takes a context.Context, any select
// without a default clause must also wait on ctx cancellation —
// a `<-ctx.Done()` comm case (directly, or through a local variable
// assigned from Done()). A select that waits only on job or worker
// channels keeps the goroutine alive after the caller gave up, which
// is exactly the leak the context parameter was threaded through to
// prevent. Selects with a default never block, so they are exempt;
// functions without a context parameter have nothing to plumb and are
// skipped (top-level signal loops in cmd/ stay quiet via AnalyzersFor
// gating as well).

// ChanCtx is the select-cancellation analyzer.
var ChanCtx = &Analyzer{
	Name: "chanctx",
	Doc:  "selects in context-taking functions must wait on ctx cancellation",
	Kind: KindSyntactic,
	Run:  runChanCtx,
}

func runChanCtx(pkg *Package, r *Reporter) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasContextParam(pkg, file, fd.Type) {
				continue
			}
			doneVars := doneChannelVars(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectStmt)
				if !ok {
					return true
				}
				if selectHasDefault(sel) || selectWaitsOnDone(sel, doneVars) {
					return true
				}
				r.Reportf("chanctx", sel.Pos(),
					"select blocks without waiting on ctx cancellation; add a <-ctx.Done() case or a default clause")
				return true
			})
		}
	}
}

// hasContextParam reports whether the signature takes a context.Context.
func hasContextParam(pkg *Package, file *ast.File, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pkg, file, field.Type) {
			return true
		}
	}
	return false
}

// doneChannelVars collects names bound to a Done() channel
// (`done := ctx.Done()`), so receives through the alias count as
// waiting on cancellation.
func doneChannelVars(body ast.Node) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isDoneCall(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				out[id.Name] = true
			}
		}
		return true
	})
	return out
}

// selectWaitsOnDone reports whether any comm clause receives from a
// Done() channel or a recorded alias of one.
func selectWaitsOnDone(sel *ast.SelectStmt, doneVars map[string]bool) bool {
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		var ch ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			ch = recvOperand(s.X)
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				ch = recvOperand(s.Rhs[0])
			}
		}
		if ch == nil {
			continue
		}
		if isDoneCall(ch) {
			return true
		}
		if id, ok := ast.Unparen(ch).(*ast.Ident); ok && doneVars[id.Name] {
			return true
		}
	}
	return false
}

// recvOperand unwraps `<-ch` to ch, nil for non-receive expressions.
func recvOperand(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}

// isDoneCall matches a call to a method named Done with no arguments —
// context.Context.Done() and anything shaped like it.
func isDoneCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	s, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && s.Sel.Name == "Done"
}
