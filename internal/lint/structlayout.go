package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StructLayout measures every named struct type of a library package
// under the canonical gc/amd64 layout model (go/types.Sizes) and flags
// field orders that waste padding:
//
//   - unannotated structs are reported when a reordering would save at
//     least structLayoutThreshold bytes per value — below that, the
//     churn of reordering beats the bytes saved;
//   - `//imc:compact` structs are held to zero reorderable waste: ANY
//     saving a permutation can realize is reported. The annotation is
//     the pin for kernel structs whose arrays dominate the working set
//     (RIC samples, cover entries, CELF heap items), where one wasted
//     word is one wasted word per pooled element;
//   - `//imc:padded` structs are skipped — their padding is deliberate
//     cache-line insulation, verified by the falseshare analyzer.
//
// Each finding prints the current layout (name@offset:size per field)
// and a minimal-padding reordering with the size it achieves, computed
// by re-laying the permuted struct under the same model — the fix is in
// the message. Unfixable padding (tail alignment a reorder cannot
// remove) is never reported: a struct at its minimal size passes even
// with internal holes.
//
// The analyzer also polices the annotation grammar itself: compact or
// padded on a non-struct type is dead weight and reported.
var StructLayout = &Analyzer{
	Name: "structlayout",
	Doc:  "flag struct field orders that waste padding bytes (any waste on //imc:compact structs), printing the layout and a minimal-padding reordering",
	Kind: KindSyntactic,
	Run:  runStructLayout,
}

// structLayoutThreshold is the minimum per-value saving (bytes) that
// makes an unannotated struct worth reordering.
const structLayoutThreshold = 8

func runStructLayout(pkg *Package, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	dirs := typeDirectives(pkg)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				checkStructLayout(pkg, ts, dirs[ts], r)
			}
		}
	}
}

func checkStructLayout(pkg *Package, ts *ast.TypeSpec, dirs map[string]bool, r *Reporter) {
	obj, _ := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if obj == nil {
		return
	}
	st, isStruct := obj.Type().Underlying().(*types.Struct)
	if !isStruct {
		for _, d := range []string{directiveCompact, directivePadded} {
			if dirs[d] {
				r.Reportf("structlayout", ts.Pos(),
					"//imc:%s on %s has no effect: the directive applies to struct types only", d, ts.Name.Name)
			}
		}
		return
	}
	if dirs[directivePadded] {
		return // deliberate cache-line padding; falseshare verifies it
	}
	if st.NumFields() < 2 {
		return
	}
	fields, size, ok := structLayout(st)
	if !ok {
		return // incompletely typed; unknown is not evidence
	}
	order, minSize := minimalReorder(st)
	saving := size - minSize
	compact := dirs[directiveCompact]
	if saving <= 0 || (!compact && saving < structLayoutThreshold) {
		return
	}
	pin := ""
	if compact {
		pin = "//imc:compact struct "
	}
	r.Reportf("structlayout", ts.Pos(),
		"%s%s is %d bytes laid out as [%s]; reordering fields to [%s] packs it to %d bytes (%d saved per value)",
		pin, ts.Name.Name, size, renderLayout(fields), renderOrder(st, order), minSize, saving)
}
