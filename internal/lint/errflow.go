package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrFlow tracks `error` values flow-sensitively through each
// function's CFG and reports the two ways an error silently vanishes:
//
//   - overwritten unchecked: an error-typed variable holding the result
//     of one call is reassigned from another call while some path from
//     the first assignment reaches the second without the value ever
//     being read (`err = doA(); err = doB()` — doA's failure is gone);
//   - dropped unchecked: a path reaches the function's exit on which an
//     assigned error value was never read at all.
//
// "Read" is any use: comparison against nil, being returned, passed as
// an argument, assigned onward, captured by a closure, or explicitly
// discarded with `_ = err` (visible intent). The analyzer is
// flow-sensitive where PR 1's syntactic suite could not be: an error
// checked on one branch but not the other is reported, while an error
// checked before every reassignment — the loop idiom
// `for { err = f(); if err != nil { return err } }` — is not.
//
// Unlike errcheck-style tools it does NOT flag expression-statement
// calls whose error result is discarded outright (`fmt.Fprintf(w, …)`):
// the repository writes through sticky-error writers (bufio.Writer),
// where per-call checks are noise and the Flush check is the contract.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "flow-sensitively flag error values overwritten or dropped before any path reads them",
	Kind: KindFlowSensitive,
	Run:  runErrFlow,
}

// errFact is the dataflow fact: for each tracked error variable, the
// position of the assignment whose value is still unread. A variable
// missing from the map is clean (checked, or never assigned).
type errFact map[types.Object]token.Pos

// errFlowProblem implements FlowProblem for one function body.
type errFlowProblem struct {
	pkg *Package
}

func (p *errFlowProblem) Entry() any { return errFact{} }

func (p *errFlowProblem) Merge(a, b any) any {
	fa, fb := a.(errFact), b.(errFact)
	// Union: unchecked on any incoming path means unchecked. Keep the
	// earliest position for stable reporting.
	out := make(errFact, len(fa)+len(fb))
	for k, v := range fa {
		out[k] = v
	}
	for k, v := range fb {
		if old, ok := out[k]; !ok || v < old {
			out[k] = v
		}
	}
	return out
}

func (p *errFlowProblem) Equal(a, b any) bool {
	fa, fb := a.(errFact), b.(errFact)
	if len(fa) != len(fb) {
		return false
	}
	for k, v := range fa {
		if w, ok := fb[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func (p *errFlowProblem) Transfer(fact any, n ast.Node) any {
	f := fact.(errFact)
	out := make(errFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	if rb, ok := n.(rangeBind); ok {
		n = rb.Range // uses in the key/value/X of the range count
	}
	// Every identifier USE of a tracked variable clears it — with one
	// exception: the identifier being the plain assignment target of
	// this very statement (that is a write, handled below).
	writes := assignedErrorIdents(p.pkg, n)
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if writes[id] {
			return true
		}
		if obj := p.pkg.Info.Uses[id]; obj != nil {
			delete(out, obj)
		}
		return true
	})
	// Then record fresh unread assignments.
	for id, fromCall := range writes {
		obj := identObject(p.pkg, id)
		if obj == nil {
			continue
		}
		if fromCall {
			out[obj] = id.Pos()
		} else {
			delete(out, obj) // e.g. err = nil resets tracking
		}
	}
	return out
}

// assignedErrorIdents returns the error-typed identifiers that stmt
// assigns to (as plain `x =` / `x :=` targets), mapped to whether the
// right-hand side is a call (the only RHS whose loss matters).
func assignedErrorIdents(pkg *Package, n ast.Node) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool)
	as, ok := n.(*ast.AssignStmt)
	if !ok || pkg.Info == nil {
		return out
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return out
	}
	fromCall := false
	if len(as.Rhs) >= 1 {
		if _, ok := as.Rhs[len(as.Rhs)-1].(*ast.CallExpr); ok {
			fromCall = true
		}
	}
	// Tuple assignment from a call (`v, err := f()`) or one-to-one.
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if !isErrorIdent(pkg, id) {
			continue
		}
		rhsIsCall := fromCall
		if len(as.Lhs) == len(as.Rhs) {
			_, rhsIsCall = as.Rhs[i].(*ast.CallExpr)
		}
		out[id] = rhsIsCall
	}
	return out
}

// identObject resolves an identifier to its object (def or use).
func identObject(pkg *Package, id *ast.Ident) types.Object {
	if pkg.Info == nil {
		return nil
	}
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

// isErrorIdent reports whether id has static type error.
func isErrorIdent(pkg *Package, id *ast.Ident) bool {
	obj := identObject(pkg, id)
	if obj == nil || obj.Type() == nil {
		return false
	}
	return types.Identical(obj.Type(), types.Universe.Lookup("error").Type())
}

func runErrFlow(pkg *Package, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body == nil {
				return true
			}
			checkErrFlow(pkg, body, r)
			return true
		})
	}
}

// checkErrFlow runs the dataflow over one body and reports.
func checkErrFlow(pkg *Package, body *ast.BlockStmt, r *Reporter) {
	cfg := BuildCFG(body)
	prob := &errFlowProblem{pkg: pkg}
	in := Forward(cfg, prob)

	reported := make(map[token.Pos]bool) // dedupe per origin assignment
	report := func(origin token.Pos, format string, args ...any) {
		if reported[origin] {
			return
		}
		reported[origin] = true
		r.Reportf("errflow", origin, format, args...)
	}

	// Only variables DECLARED inside this body are reported. Named error
	// results live in the signature (a naked return hands them to the
	// caller without an identifier use), and closures assigning an outer
	// error variable (the errgroup idiom) surface it to code the closure
	// cannot see — both are the enclosing scope's business, not ours.
	local := func(obj types.Object) bool {
		return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
	}

	// Overwrites: replay each block; a fresh call assignment to a
	// variable whose fact is still unread kills the earlier error.
	ReplayBlocks(cfg, prob, in, func(fact any, n ast.Node) {
		f := fact.(errFact)
		for id, fromCall := range assignedErrorIdents(pkg, n) {
			if !fromCall {
				continue
			}
			obj := identObject(pkg, id)
			if obj == nil {
				continue
			}
			if origin, unread := f[obj]; unread && origin != id.Pos() && local(obj) {
				report(origin, "error assigned here is overwritten at line %d before being checked",
					pkg.Fset.Position(id.Pos()).Line)
			}
		}
	})

	// Drops: any unread fact flowing into the exit block means some
	// path ends the function without reading the error. A variable
	// whose unread state only loops (never reaches exit) is still
	// eventually read or overwritten, so exit is the right sink.
	exitFact := errFact{}
	for _, pred := range cfg.Exit.Preds {
		// Recompute pred's out fact from its in fact.
		pf := in[pred.Index]
		if pf == nil {
			continue
		}
		outFact := transferBlock(prob, pf, pred).(errFact)
		merged := prob.Merge(exitFact, outFact).(errFact)
		exitFact = merged
	}
	for obj, origin := range exitFact {
		if !local(obj) {
			continue
		}
		report(origin, "error assigned here is never checked on some path to return; check it, return it, or discard it explicitly with _ = err")
	}
}
