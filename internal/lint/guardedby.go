package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The guardedby analyzer enforces `//imc:guardedby` field annotations:
// every read or write of an annotated struct field must sit on a path
// dominated by the guard's Lock() — the CFG dominator relation from
// cfg.go, so a lock taken in only one branch does not excuse an access
// after the merge. The annotation grammar (see annot.go):
//
//	mu sync.Mutex
//	n  int //imc:guardedby mu          — n is protected by mu
//	id int //imc:guardedby immutable   — n is written only during construction
//
// For a sync.RWMutex guard, RLock suffices for reads; writes require
// the write lock. Three exemptions keep construction idioms quiet:
//
//   - accesses rooted at a locally-created value (`s := &Store{…}`,
//     `s := new(Store)` in the same body) — nothing else can see it;
//   - functions marked //imc:prepublish — they run before the
//     receiver is published (replay/restore paths);
//   - functions marked //imc:locked <mu> — the *Locked helper idiom:
//     the body is checked as if <mu> were held, and every CALLER is
//     checked to hold <mu> at the call site instead.
//
// Matching is expression-textual on the guard path ("s.mu.Lock()"
// satisfies accesses under "s." with guard mu) plus dominator-based on
// the CFG. Two documented imprecisions: within a single basic block,
// statement order is not checked (Lock after the access in the same
// block passes); and Unlock does not end the guarded region (an access
// after Unlock but dominated by the Lock passes). Both keep the
// analysis simple and neither hides the high-value bug class — a field
// touched with no locking discipline at all on some path.
//
// Function literals are analyzed separately with their own CFGs (a
// closure runs under its invoker's schedule): a Lock inside the
// closure guards accesses inside the closure, and locked/prepublish
// exemptions do not leak in from the enclosing declaration.

// GuardedBy is the guarded-field annotation analyzer.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "enforce //imc:guardedby field annotations via CFG dominators",
	Kind: KindFlowSensitive,
	Run:  runGuardedBy,
}

// guardSpec is one parsed field annotation.
type guardSpec struct {
	immutable bool
	guard     string // sibling mutex field name when !immutable
	owner     string // declaring struct type name, for messages
}

func runGuardedBy(pkg *Package, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	guards := fieldGuards(pkg, r)
	locked, prepub := funcGuardDirectives(pkg, r)
	if len(guards) == 0 && len(locked) == 0 {
		return
	}
	lockedObjs := make(map[types.Object]string, len(locked))
	for fd, g := range locked {
		if obj := pkg.Info.Defs[fd.Name]; obj != nil {
			lockedObjs[obj] = g
		}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctx := &guardCtx{
				pkg:        pkg,
				r:          r,
				guards:     guards,
				lockedObjs: lockedObjs,
				recvObj:    receiverObject(pkg, fd),
				lockedWith: locked[fd],
				prepublish: prepub[fd],
			}
			analyzeGuardBody(ctx, fd.Body)
		}
	}
}

// guardCtx carries one body's checking context.
type guardCtx struct {
	pkg        *Package
	r          *Reporter
	guards     map[types.Object]*guardSpec
	lockedObjs map[types.Object]string
	recvObj    types.Object // receiver object, nil for functions
	lockedWith string       // //imc:locked guard name, "" otherwise
	prepublish bool
}

// literalCtx strips the declaration-scoped exemptions for a nested
// function literal: the closure runs later, under a schedule where
// neither "the caller holds mu" nor "the receiver is unpublished"
// still holds.
func (c *guardCtx) literalCtx() *guardCtx {
	child := *c
	child.lockedWith = ""
	child.prepublish = false
	child.recvObj = nil
	return &child
}

// analyzeGuardBody checks one body (a declaration's or a literal's)
// and recurses into directly-nested literals.
func analyzeGuardBody(ctx *guardCtx, body *ast.BlockStmt) {
	pkg := ctx.pkg
	cfg := BuildCFG(body)
	idom := cfg.Dominators()
	writes := writeTargets(body)
	localMade := locallyCreated(pkg, body)

	type lockEvt struct {
		blk  int
		read bool
	}
	events := make(map[string][]lockEvt)
	type accessRec struct {
		sel   *ast.SelectorExpr
		obj   types.Object
		spec  *guardSpec
		blk   int
		write bool
	}
	var accesses []accessRec
	type lockedCallRec struct {
		call  *ast.CallExpr
		x     ast.Expr
		obj   types.Object
		guard string
		blk   int
	}
	var lockedCalls []lockedCallRec
	var literals []*ast.FuncLit

	for _, blk := range cfg.Blocks {
		for _, stmt := range blk.Stmts {
			if _, ok := stmt.(rangeBind); ok {
				continue
			}
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					literals = append(literals, n)
					return false
				case *ast.CallExpr:
					if recv, method, ok := mutexMethodCall(pkg, n); ok {
						switch method {
						case "Lock":
							events[types.ExprString(recv)] = append(events[types.ExprString(recv)], lockEvt{blk: blk.Index})
						case "RLock":
							events[types.ExprString(recv)] = append(events[types.ExprString(recv)], lockEvt{blk: blk.Index, read: true})
						}
						return true
					}
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if obj := pkg.Info.Uses[sel.Sel]; obj != nil {
							if g, ok := ctx.lockedObjs[obj]; ok {
								lockedCalls = append(lockedCalls, lockedCallRec{call: n, x: sel.X, obj: obj, guard: g, blk: blk.Index})
							}
						}
					}
				case *ast.SelectorExpr:
					if obj := pkg.Info.Uses[n.Sel]; obj != nil {
						if spec := ctx.guards[obj]; spec != nil {
							accesses = append(accesses, accessRec{sel: n, obj: obj, spec: spec, blk: blk.Index, write: writes[n]})
						}
					}
				}
				return true
			})
		}
	}

	// dominatedBy reports whether some lock event on `key` dominates
	// block b; wantWrite additionally requires a non-RLock event.
	dominatedBy := func(key string, b int, wantWrite bool) (held, heldWrite bool) {
		for _, ev := range events[key] {
			if cfg.Dominates(idom, ev.blk, b) {
				held = true
				if !ev.read {
					heldWrite = true
				}
			}
		}
		_ = wantWrite
		return held, heldWrite
	}

	exempt := func(root types.Object) bool {
		if root == nil {
			return false
		}
		if localMade[root] {
			return true
		}
		return ctx.prepublish && ctx.recvObj != nil && root == ctx.recvObj
	}

	for _, a := range accesses {
		root := rootIdentObj(pkg, a.sel.X)
		if exempt(root) {
			continue
		}
		display := a.spec.owner + "." + a.obj.Name()
		if a.spec.immutable {
			if a.write {
				ctx.r.Reportf("guardedby", a.sel.Pos(),
					"write to %s outside construction; the field is declared //imc:guardedby immutable", display)
			}
			continue
		}
		if ctx.lockedWith == a.spec.guard && isIdentFor(pkg, a.sel.X, ctx.recvObj) {
			continue // body of an //imc:locked helper: guard assumed held
		}
		key := types.ExprString(a.sel.X) + "." + a.spec.guard
		held, heldWrite := dominatedBy(key, a.blk, a.write)
		switch {
		case !held:
			verb := "read of"
			if a.write {
				verb = "write to"
			}
			ctx.r.Reportf("guardedby", a.sel.Pos(),
				"%s %s is not dominated by %s.Lock(); the field is guarded by %s (//imc:guardedby)",
				verb, display, key, a.spec.guard)
		case a.write && !heldWrite:
			ctx.r.Reportf("guardedby", a.sel.Pos(),
				"write to %s while %s may be held in read mode only; writes require the write lock", display, key)
		}
	}

	for _, lc := range lockedCalls {
		root := rootIdentObj(pkg, lc.x)
		if exempt(root) {
			continue
		}
		if ctx.lockedWith == lc.guard && isIdentFor(pkg, lc.x, ctx.recvObj) {
			continue
		}
		key := types.ExprString(lc.x) + "." + lc.guard
		if held, _ := dominatedBy(key, lc.blk, false); !held {
			ctx.r.Reportf("guardedby", lc.call.Pos(),
				"call to %s requires %s to be held (//imc:locked %s)", funcDisplayShort(pkg, lc.obj), key, lc.guard)
		}
	}

	for _, lit := range literals {
		analyzeGuardBody(ctx.literalCtx(), lit.Body)
	}
}

// funcDisplayShort renders a called method for messages ("Pool.enqueueLocked").
func funcDisplayShort(pkg *Package, obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if recv := recvTypeName(fn); recv != "" {
			return recv + "." + fn.Name()
		}
	}
	return obj.Name()
}

// writeTargets marks every SelectorExpr that sits in store position:
// the spine of an assignment LHS or IncDec target (through index and
// deref), and operands of unary & (the address may be written through).
// Nested function literals are excluded (analyzed separately).
func writeTargets(body ast.Node) map[ast.Node]bool {
	out := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markStoreSpine(out, lhs)
			}
		case *ast.IncDecStmt:
			markStoreSpine(out, n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				markStoreSpine(out, n.X)
			}
		}
		return true
	})
	return out
}

// markStoreSpine walks the store path through index/deref wrappers and
// marks the first selector it reaches: `s.jobs[id] = j` writes the map
// held in s.jobs (the field must be write-locked), while `s.jl.pending
// = x` writes pending and only READS jl — so marking stops at the
// outermost selector.
func markStoreSpine(set map[ast.Node]bool, e ast.Expr) {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SelectorExpr:
			set[t] = true
			return
		default:
			return
		}
	}
}

// locallyCreated collects objects bound (in this body) to freshly
// created values — `s := &Store{…}`, `s := Store{…}`, `s := new(Store)`
// — whose fields cannot yet be shared with another goroutine.
func locallyCreated(pkg *Package, body ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if !isFreshValue(pkg, n.Rhs[i]) {
					continue
				}
				if obj := pkg.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isFreshValue matches expressions that produce a brand-new value.
func isFreshValue(pkg *Package, e ast.Expr) bool {
	switch t := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if t.Op == token.AND {
			_, ok := ast.Unparen(t.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(t.Fun).(*ast.Ident); ok && id.Name == "new" && isBuiltin(pkg, id) {
			return true
		}
	}
	return false
}

// rootIdentObj resolves the leftmost identifier of an access path
// (`s.jl.pending` → s) to its object, or nil when the path roots in a
// call result or other untrackable expression.
func rootIdentObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.Ident:
			return pkg.Info.Uses[t]
		default:
			return nil
		}
	}
}

// isIdentFor reports whether e is a bare identifier bound to obj.
func isIdentFor(pkg *Package, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pkg.Info.Uses[id] == obj
}

// receiverObject returns fd's receiver object, nil for plain functions
// or anonymous receivers.
func receiverObject(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[fd.Recv.List[0].Names[0]]
}

// --- annotation parsing -------------------------------------------------

// parseDirectiveArg splits an //imc: directive into its name and first
// argument ("guardedby", "mu" from "//imc:guardedby mu — queue state").
func parseDirectiveArg(text string) (name, arg string, ok bool) {
	rest, ok2 := strings.CutPrefix(text, "//imc:")
	if !ok2 {
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", false
	}
	name = fields[0]
	if len(fields) > 1 {
		arg = fields[1]
	}
	if !identShaped(arg) {
		arg = "" // trailing prose ("— queue state"), not an argument
	}
	return name, arg, true
}

// identShaped reports whether s looks like a Go identifier — the only
// thing a directive argument can be.
func identShaped(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case i > 0 && r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}

// fieldGuards parses //imc:guardedby annotations off struct fields
// (doc comment or trailing line comment), validating that the named
// guard is a sibling mutex field. Malformed annotations are findings,
// not silent no-ops.
func fieldGuards(pkg *Package, r *Reporter) map[types.Object]*guardSpec {
	out := make(map[types.Object]*guardSpec)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				mutexFields := make(map[string]bool)
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						if obj := pkg.Info.Defs[name]; obj != nil && isSyncMutexType(obj.Type()) {
							mutexFields[name.Name] = true
						}
					}
				}
				for _, f := range st.Fields.List {
					arg, pos, found := fieldGuardArg(f)
					if !found {
						continue
					}
					switch {
					case arg == "":
						r.Reportf("guardedby", pos,
							"//imc:guardedby needs a guard: a sibling mutex field name or \"immutable\"")
						continue
					case arg != "immutable" && !mutexFields[arg]:
						r.Reportf("guardedby", pos,
							"//imc:guardedby names %q, which is not a sync.Mutex/RWMutex field of %s", arg, ts.Name.Name)
						continue
					}
					gs := &guardSpec{immutable: arg == "immutable", owner: ts.Name.Name}
					if !gs.immutable {
						gs.guard = arg
					}
					for _, name := range f.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							out[obj] = gs
						}
					}
				}
			}
		}
	}
	return out
}

// fieldGuardArg extracts the guardedby argument from a field's doc or
// trailing comment.
func fieldGuardArg(f *ast.Field) (arg string, pos token.Pos, found bool) {
	scan := func(cg *ast.CommentGroup) {
		if cg == nil || found {
			return
		}
		for _, c := range cg.List {
			if name, a, ok := parseDirectiveArg(c.Text); ok && name == directiveGuardedBy {
				arg, pos, found = a, c.Pos(), true
				return
			}
		}
	}
	scan(f.Doc)
	scan(f.Comment)
	return arg, pos, found
}

// funcGuardDirectives parses //imc:locked and //imc:prepublish off
// function declarations, validating locked's guard argument against
// the receiver's mutex fields.
func funcGuardDirectives(pkg *Package, r *Reporter) (locked map[*ast.FuncDecl]string, prepub map[*ast.FuncDecl]bool) {
	locked = make(map[*ast.FuncDecl]string)
	prepub = make(map[*ast.FuncDecl]bool)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				name, arg, ok := parseDirectiveArg(c.Text)
				if !ok {
					continue
				}
				switch name {
				case directiveLocked:
					switch {
					case fd.Recv == nil:
						r.Reportf("guardedby", c.Pos(), "//imc:locked applies to methods only")
					case arg == "":
						r.Reportf("guardedby", c.Pos(), "//imc:locked needs the guard's field name")
					case !recvHasMutexField(pkg, fd, arg):
						r.Reportf("guardedby", c.Pos(),
							"//imc:locked names %q, which is not a sync.Mutex/RWMutex field of the receiver", arg)
					default:
						locked[fd] = arg
					}
				case directivePrepublish:
					prepub[fd] = true
				}
			}
		}
	}
	return locked, prepub
}

// recvHasMutexField reports whether fd's receiver struct declares a
// mutex field with the given name.
func recvHasMutexField(pkg *Package, fd *ast.FuncDecl, name string) bool {
	obj := receiverObject(pkg, fd)
	if obj == nil {
		// Anonymous receiver: resolve through the declared type instead.
		if len(fd.Recv.List) == 0 {
			return false
		}
		tv, ok := pkg.Info.Types[fd.Recv.List[0].Type]
		if !ok || tv.Type == nil {
			return false
		}
		return structMutexField(tv.Type, name)
	}
	return structMutexField(obj.Type(), name)
}

// structMutexField looks for a mutex field on t's underlying struct.
func structMutexField(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == name && isSyncMutexType(f.Type()) {
			return true
		}
	}
	return false
}
