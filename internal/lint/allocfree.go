package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree enforces the zero-allocation contract on functions marked
// `//imc:hotpath` — the RIC/RIS sampling kernels whose inner loops run
// once per sample across pools of millions. Inside any loop of such a
// function it flags the constructs that allocate on every iteration:
//
//   - make / new calls;
//   - slice and map composite literals, and &T{} (heap-escaping
//     literal pointers);
//   - function literals (closure allocation);
//   - string concatenation (+ / += on strings builds a fresh string);
//   - interface boxing: passing or converting a concrete non-pointer
//     value to an interface-typed slot copies it to the heap (the
//     classic hidden cost of fmt calls in hot loops);
//   - append, UNLESS the destination is recognized amortized scratch:
//     a slice that is somewhere in the same function reset with
//     `x = x[:0]` (the epoch-scratch idiom) or preallocated with an
//     explicit capacity (`make(T, n, cap)`). Growth of such a slice
//     amortizes to zero allocations across samples; growth of anything
//     else is per-iteration churn.
//
// Loop membership comes from the CFG (see cfg.go), so allocations in a
// loop's one-time setup (init statements, the ranged-over expression)
// are not flagged while the condition, post statement, and body are.
//
// Since v3 the check is transitive: every statically-resolved call made
// inside a hot loop is checked against the callee's effect summary
// (summary.go), and a callee that may allocate — anywhere down its
// transitive call tree — is flagged with the offending chain. Two
// deliberate boundaries keep the contract compositional rather than
// viral:
//
//   - callees that are themselves annotated `//imc:hotpath` are NOT
//     chased: the contract is enforced at their own declaration, and
//     their depth-0 allocations (setup outside their loops) are legal
//     there, hence legal to reach;
//   - dynamic call sites (interface methods, function values) are NOT
//     chased — ctx.Err() polls and injected samplers in hot loops would
//     otherwise drown the signal. The gap is surfaced, not hidden: the
//     EffDynamic summary bit and `imclint -graph` count every such
//     site (see DESIGN.md §7.3).
//
// Scratch recognition is package-wide: a struct field sanctioned as
// amortized scratch anywhere in the package (reset with `x.f = x.f[:0]`
// or sized with a 3-argument make, typically in the constructor) is
// trusted in every method that appends to it.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "forbid per-iteration allocation (make, literals, closures, string concat, boxing, unamortized append, allocating callees) inside loops of //imc:hotpath functions",
	Kind: KindInterprocedural,
	Run:  runAllocFree,
}

func runAllocFree(pkg *Package, r *Reporter) {
	dirs := funcDirectives(pkg)
	pkgScratch := packageScratchFields(pkg)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(dirs, fd, directiveHotPath) {
				continue
			}
			checkAllocFree(pkg, fd, pkgScratch, r)
		}
	}
}

// checkAllocFree analyzes one annotated function: the intra-procedural
// in-loop construct scan, then (inside a whole-program load) the
// transitive check on every in-loop call edge.
func checkAllocFree(pkg *Package, fd *ast.FuncDecl, pkgScratch map[types.Object]bool, r *Reporter) {
	cfg := BuildCFG(fd.Body)
	scratch := scratchSlices(pkg, fd.Body)
	for obj := range pkgScratch {
		scratch[obj] = true
	}
	stmts := 0
	for _, blk := range cfg.Blocks {
		if blk.LoopDepth >= 1 {
			stmts += len(blk.Stmts)
		}
	}
	inLoop := make([]ast.Node, 0, stmts)
	for _, blk := range cfg.Blocks {
		if blk.LoopDepth < 1 {
			continue
		}
		for _, stmt := range blk.Stmts {
			if rb, ok := stmt.(rangeBind); ok {
				// Only the per-iteration bind lives here; the ranged
				// expression was placed (and checked) at the loop's
				// outer depth.
				_ = rb
				continue
			}
			inLoop = append(inLoop, stmt)
			inspectAllocs(pkg, stmt, scratch, r)
		}
	}
	checkTransitiveAllocs(pkg, fd, inLoop, r)
}

// checkTransitiveAllocs flags in-loop calls whose callees may allocate
// anywhere down the call tree, printing the chain to the evidence.
func checkTransitiveAllocs(pkg *Package, fd *ast.FuncDecl, inLoop []ast.Node, r *Reporter) {
	prog := pkg.Prog
	if prog == nil || pkg.Info == nil {
		return
	}
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	node := prog.Graph.Node(fn)
	if node == nil {
		return
	}
	edgeAt := make(map[*ast.CallExpr]*CallEdge, len(node.Calls))
	for i := range node.Calls {
		edgeAt[node.Calls[i].Site] = &node.Calls[i]
	}
	seen := make(map[*CallEdge]bool)
	var edges []*CallEdge
	for _, stmt := range inLoop {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // runs on its own schedule; the literal itself was flagged
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if e := edgeAt[call]; e != nil && !seen[e] {
					seen[e] = true
					edges = append(edges, e)
				}
			}
			return true
		})
	}
	for _, v := range walkContract(pkg, edges, EffAlloc, directiveHotPath) {
		r.Reportf("allocfree", v.Edge.Site.Pos(),
			"call in a hot loop may allocate transitively: %s → %s (%s at %s); make the chain allocation-free or annotate the callee //imc:hotpath",
			fd.Name.Name, formatChain(v.Chain), v.Desc, shortPos(v.Pos))
	}
}

// inspectAllocs walks one in-loop statement (or header expression) and
// reports every allocating construct. Nested function literals are
// flagged as closures and then pruned — their bodies run on their own
// schedule.
func inspectAllocs(pkg *Package, root ast.Node, scratch map[types.Object]bool, r *Reporter) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			r.Reportf("allocfree", n.Pos(),
				"closure literal allocates on every iteration of a hot loop; hoist it out of the loop or use a method value")
			return false
		case *ast.CallExpr:
			checkAllocCall(pkg, n, scratch, r)
		case *ast.CompositeLit:
			checkCompositeLit(pkg, n, r)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(pkg, n.X) {
				r.Reportf("allocfree", n.OpPos,
					"string concatenation builds a fresh string on every iteration of a hot loop; preformat outside the loop or use a reused []byte buffer")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringExpr(pkg, n.Lhs[0]) {
				r.Reportf("allocfree", n.TokPos,
					"string += builds a fresh string on every iteration of a hot loop; use a reused []byte buffer")
			}
		}
		return true
	})
}

// checkAllocCall handles make/new/append and interface-boxing call
// arguments.
func checkAllocCall(pkg *Package, call *ast.CallExpr, scratch map[types.Object]bool, r *Reporter) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if isBuiltin(pkg, id) {
				r.Reportf("allocfree", call.Pos(),
					"make inside a hot loop allocates per iteration; preallocate the buffer outside the loop and reuse it")
				return
			}
		case "new":
			if isBuiltin(pkg, id) {
				r.Reportf("allocfree", call.Pos(),
					"new inside a hot loop allocates per iteration; hoist the allocation out of the loop")
				return
			}
		case "append":
			if isBuiltin(pkg, id) && len(call.Args) > 0 {
				if obj := sliceBaseObject(pkg, call.Args[0]); obj == nil || !scratch[obj] {
					r.Reportf("allocfree", call.Pos(),
						"append to a non-scratch slice inside a hot loop reallocates as it grows; preallocate with capacity (make(T, 0, cap)) or reuse a `x = x[:0]` scratch buffer")
				}
				return
			}
		}
	}
	checkBoxing(pkg, call, r)
}

// checkBoxing flags concrete non-pointer arguments passed to
// interface-typed parameters — each such call copies the value to the
// heap to build the interface.
func checkBoxing(pkg *Package, call *ast.CallExpr, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if boxingAllocates(at.Type) {
			r.Reportf("allocfree", arg.Pos(),
				"passing a concrete %s to an interface parameter boxes it on the heap every iteration; move the call out of the hot loop", at.Type)
		}
	}
}

// boxingAllocates reports whether converting a value of concrete type t
// to an interface requires a heap allocation: true for everything but
// pointers, whose word fits the interface data slot directly.
func boxingAllocates(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
		return false
	}
	return true
}

// checkCompositeLit flags slice/map literals (backing allocation) and
// leaves plain struct values alone — T{} on the stack is free; &T{}
// shows up as the unary & which escapes, caught via the literal when
// its type is a pointer-escaping composite. We flag slice, map, and
// pointer-taken literals.
func checkCompositeLit(pkg *Package, lit *ast.CompositeLit, r *Reporter) {
	if pkg.Info == nil {
		return
	}
	tv, ok := pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		r.Reportf("allocfree", lit.Pos(),
			"slice literal allocates its backing array on every iteration of a hot loop; hoist it out of the loop")
	case *types.Map:
		r.Reportf("allocfree", lit.Pos(),
			"map literal allocates on every iteration of a hot loop; hoist it out of the loop")
	}
}

// isBuiltin reports whether id resolves to the universe-scope builtin
// of the same name (and not a shadowing local).
func isBuiltin(pkg *Package, id *ast.Ident) bool {
	if pkg.Info == nil {
		return true // no type info: assume the spelling means the builtin
	}
	obj, ok := pkg.Info.Uses[id]
	if !ok {
		return true
	}
	_, isB := obj.(*types.Builtin)
	return isB
}

// isStringExpr reports whether expr has (an alias of) string type.
func isStringExpr(pkg *Package, expr ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// sliceBaseObject resolves the object a slice expression ultimately
// names: the identifier itself, or the field/element path's root when
// the expression is obj.field / obj[i] — appends through either reuse
// the same backing storage, so scratch status attaches to the printed
// root form. Returns nil for unresolvable expressions.
func sliceBaseObject(pkg *Package, expr ast.Expr) types.Object {
	if pkg.Info == nil {
		return nil
	}
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[e]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[e]
		case *ast.SelectorExpr:
			// Scratch status attaches to the selected field when
			// resolvable (gen.queue → the queue field object).
			if sel, ok := pkg.Info.Selections[e]; ok {
				return sel.Obj()
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// scratchSlices collects the objects sanctioned as amortized scratch in
// body: targets of an `x = x[:0]` reset, variables initialized from a
// `[:0]` re-slice, and slices made with an explicit capacity
// (3-argument make).
func scratchSlices(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if pkg.Info == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			sanction := false
			if se, ok := rhs.(*ast.SliceExpr); ok && isZeroLenReslice(se) {
				sanction = true
			}
			if call, ok := rhs.(*ast.CallExpr); ok && len(call.Args) == 3 {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && isBuiltin(pkg, id) {
					sanction = true
				}
			}
			if !sanction {
				continue
			}
			if obj := sliceBaseObject(pkg, as.Lhs[i]); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// isZeroLenReslice matches x[:0] (with a constant 0 high bound).
func isZeroLenReslice(se *ast.SliceExpr) bool {
	if se.Low != nil || se.High == nil || se.Slice3 {
		return false
	}
	lit, ok := se.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}
