package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file builds the whole-program call graph — the substrate of the
// suite's interprocedural analyzers (transitive allocfree/purity,
// layering's call-DAG view, and the -graph debug dump). The v2 layer
// stopped at function boundaries: allocfree could prove "this loop does
// not allocate" but not "…and neither does anything it calls", so a
// `//imc:hotpath` kernel calling an unannotated helper that allocates
// two frames down sailed through. The call graph closes that gap.
//
// Resolution policy (deliberately conservative, never speculative):
//
//   - package-level functions, same-package or cross-package, resolve
//     statically through go/types (Uses);
//   - method calls resolve statically when the receiver's static type
//     is concrete (non-interface) — Go has no subclassing, so a
//     concrete receiver pins the callee exactly;
//   - interface method calls, calls through function values, and
//     method expressions are NOT resolved. Each such site is recorded
//     as a dynamic site on the caller and surfaces as the EffDynamic
//     summary bit — a documented soundness gap (see DESIGN.md §7.3),
//     not a silent one;
//   - function literals are not separate nodes: a literal's body is
//     folded into its enclosing declared function (its effects and
//     call edges are attributed to the function that created it). This
//     over-approximates (the closure may never run) but matches how
//     the v2 purity pass already treated nested literals;
//   - calls into packages outside the loaded program (the standard
//     library) become external edges, classified by the effect table
//     in summary.go rather than by analyzing their bodies.

// Program is a whole-module view: every loaded package plus the call
// graph and function summaries computed over them. Analyzers reach it
// through Package.Prog; when it is nil (single-fixture loads) the
// interprocedural analyzers degrade to their intra-procedural v2
// behavior or skip entirely.
type Program struct {
	// ModulePath and ModuleDir identify the enclosing module.
	ModulePath string
	ModuleDir  string
	// Packages lists the loaded packages in load order (sorted by dir).
	Packages []*Package
	// Graph is the whole-program call graph.
	Graph *CallGraph
	// LayersPath locates the layering contract (default
	// <module>/internal/lint/layers.txt).
	LayersPath string
	// APISnapPath locates the API-surface snapshot (default
	// <module>/internal/lint/testdata/api.snap).
	APISnapPath string

	// layers caches the parsed layering contract (lazy; see layering.go).
	layers    *layerContract
	layersErr error
	// apiSnap caches the parsed API snapshot (lazy; see apisurface.go).
	apiSnap map[string]map[string]string
	apiErr  error
	// lockinfo caches the lock-order graph and per-function acquired-lock
	// facts (lazy; see locks.go).
	lockinfo *lockInfo

	// The flag bytes sit together at the tail so they pack into one
	// word instead of each padding out an 8-byte-aligned neighbor (the
	// structlayout analyzer holds the struct to its minimal layout).
	//
	// FullModule records whether the program covers the entire module
	// ("./..."); the apisurface analyzer only runs on full loads, since
	// a partial load cannot distinguish "package removed" from "package
	// not requested".
	FullModule bool
	// layersSet and apiSet record that the lazy caches above are filled.
	layersSet bool
	apiSet    bool
	// apiChecked guards the once-per-program "package removed" pass of
	// the apisurface analyzer.
	apiChecked bool
}

// NewProgram assembles the interprocedural view over pkgs: builds the
// call graph, computes function summaries, and back-links every package
// (pkg.Prog) so per-package analyzer runs can reach program facts.
func NewProgram(modulePath, moduleDir string, pkgs []*Package, fullModule bool) *Program {
	prog := &Program{
		ModulePath:  modulePath,
		ModuleDir:   moduleDir,
		Packages:    pkgs,
		FullModule:  fullModule,
		LayersPath:  filepath.Join(moduleDir, "internal", "lint", "layers.txt"),
		APISnapPath: filepath.Join(moduleDir, "internal", "lint", "testdata", "api.snap"),
	}
	for _, pkg := range pkgs {
		pkg.Prog = prog
	}
	prog.Graph = buildCallGraph(pkgs)
	computeSummaries(prog.Graph)
	return prog
}

// CallGraph is the whole-program call graph over declared functions.
type CallGraph struct {
	// Nodes lists every analyzed function declaration, ordered by
	// package path then source position — the deterministic order every
	// dump and fixed point iterates in.
	Nodes []*FuncNode
	// byName resolves a function's display name to its node. Keying by
	// name instead of *types.Func matters: the loader type-checks each
	// analyzed package independently, so the SAME declared function has
	// distinct type objects in its own package's universe and in every
	// importer's universe. The qualified display name is identical in
	// all of them (Go has no overloading).
	byName map[string]*FuncNode
	// NumEdges counts resolved static call edges; NumDynamic counts
	// unresolved (interface / function-value) call sites; NumSCCs and
	// LargestSCC describe the condensation computed by the summary pass.
	NumEdges   int
	NumDynamic int
	NumSCCs    int
	LargestSCC int
}

// FuncNode is one declared function in the call graph.
type FuncNode struct {
	// Fn is the function's type object.
	Fn *types.Func
	// Decl is the declaration (Body may be nil for assembly stubs).
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Package
	// Calls lists resolved static call edges in source order.
	Calls []CallEdge
	// Dynamic lists the positions of unresolved call sites (interface
	// dispatch, function values) — the soundness gap, made visible.
	Dynamic []token.Pos
	// Directives holds the //imc: annotations on the declaration.
	Directives map[string]bool
	// Summary is the function's effect summary (set by the summary
	// pass; see summary.go).
	Summary *Summary

	scc int
}

// Name renders the node as "pkgpath.Func" or "pkgpath.(*Recv).Method".
func (n *FuncNode) Name() string {
	return funcDisplayName(n.Fn)
}

// funcDisplayName renders fn with its receiver, qualified by package.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	rt := sig.Recv().Type()
	ptr := ""
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
		ptr = "*"
	}
	recv := "?"
	if named, ok := rt.(*types.Named); ok {
		recv = named.Obj().Name()
	}
	return fn.Pkg().Path() + ".(" + ptr + recv + ")." + fn.Name()
}

// recvTypeName returns the name of fn's receiver's named type (pointer
// dereferenced), or "" for package-level functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// CallEdge is one resolved call site.
type CallEdge struct {
	// Site is the call expression (positions point here in findings).
	Site *ast.CallExpr
	// Callee is the in-program target, nil for external (stdlib) calls.
	Callee *FuncNode
	// ExtPkg/ExtName identify an external callee ("math", "Log") when
	// Callee is nil. ExtRecv is the external callee's receiver type name
	// ("WaitGroup" for (*sync.WaitGroup).Wait), empty for package-level
	// functions — the blocking-op table needs it to tell WaitGroup.Wait
	// (parks while holding) from Cond.Wait (releases its mutex).
	ExtPkg  string
	ExtName string
	ExtRecv string
}

// Node returns the graph node for fn, or nil when fn is not a declared
// function of the program (external, interface method, …).
func (g *CallGraph) Node(fn *types.Func) *FuncNode {
	if g == nil || fn == nil || fn.Pkg() == nil {
		return nil
	}
	return g.byName[funcDisplayName(fn)]
}

// buildCallGraph walks every function declaration of every package and
// resolves its call sites.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{byName: make(map[string]*FuncNode)}
	// First pass: create nodes so cross-package edges resolve in any
	// package order.
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		dirs := funcDirectives(pkg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg, Directives: dirs[fd]}
				g.Nodes = append(g.Nodes, node)
				g.byName[funcDisplayName(fn)] = node
			}
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool {
		a, b := g.Nodes[i], g.Nodes[j]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		pa, pb := a.Pkg.Fset.Position(a.Decl.Pos()), b.Pkg.Fset.Position(b.Decl.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	})
	// Second pass: resolve call sites. Nested function literals are NOT
	// pruned — their calls fold into the enclosing declaration.
	for _, node := range g.Nodes {
		if node.Decl.Body == nil {
			continue
		}
		pkg := node.Pkg
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch res := resolveCall(pkg, call); res.kind {
			case callStatic:
				if callee := g.byName[funcDisplayName(res.fn)]; callee != nil {
					node.Calls = append(node.Calls, CallEdge{Site: call, Callee: callee})
					g.NumEdges++
				} else {
					node.Calls = append(node.Calls, CallEdge{
						Site: call, ExtPkg: res.fn.Pkg().Path(), ExtName: res.fn.Name(),
						ExtRecv: recvTypeName(res.fn),
					})
					g.NumEdges++
				}
			case callDynamic:
				node.Dynamic = append(node.Dynamic, call.Pos())
				g.NumDynamic++
			}
			return true
		})
	}
	return g
}

// callKind classifies one call site's resolution.
type callKind int

const (
	// callIgnored: builtin, conversion, or unresolvable-without-types —
	// no edge, no dynamic site.
	callIgnored callKind = iota
	// callStatic: resolved to a specific *types.Func.
	callStatic
	// callDynamic: interface dispatch or function value.
	callDynamic
)

type callResolution struct {
	kind callKind
	fn   *types.Func
}

// resolveCall classifies call's callee. Universe functions (error.Error
// has no package) are ignored rather than treated as dynamic.
func resolveCall(pkg *Package, call *ast.CallExpr) callResolution {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](…) wraps the callee in an index expr.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		obj := identObject(pkg, fun)
		switch obj := obj.(type) {
		case *types.Func:
			if obj.Pkg() == nil {
				return callResolution{kind: callIgnored}
			}
			return callResolution{kind: callStatic, fn: obj}
		case *types.Builtin, *types.TypeName, nil:
			return callResolution{kind: callIgnored}
		default:
			// A variable holding a func value.
			return callResolution{kind: callDynamic}
		}
	case *ast.SelectorExpr:
		if pkg.Info == nil {
			return callResolution{kind: callIgnored}
		}
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return callResolution{kind: callDynamic}
			}
			if fn, ok := sel.Obj().(*types.Func); ok && fn.Pkg() != nil {
				return callResolution{kind: callStatic, fn: fn}
			}
			// Selecting a func-typed field and calling it.
			return callResolution{kind: callDynamic}
		}
		// Qualified identifier: pkg.Fn, or a conversion pkg.T(x).
		obj := identObject(pkg, fun.Sel)
		switch obj := obj.(type) {
		case *types.Func:
			if obj.Pkg() == nil {
				return callResolution{kind: callIgnored}
			}
			return callResolution{kind: callStatic, fn: obj}
		case *types.TypeName, nil:
			return callResolution{kind: callIgnored}
		default:
			return callResolution{kind: callDynamic}
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is folded into the
		// enclosing function, so the call itself carries no extra fact.
		return callResolution{kind: callIgnored}
	default:
		// Method expressions, type asserts producing funcs, etc.
		return callResolution{kind: callDynamic}
	}
}

// Stats summarizes the graph for the -graph dump and the JSON findings
// artifact.
type CallGraphStats struct {
	Nodes        int `json:"nodes"`
	Edges        int `json:"edges"`
	DynamicSites int `json:"dynamicSites"`
	SCCs         int `json:"sccs"`
	LargestSCC   int `json:"largestSCC"`
}

// Stats returns the graph's node/edge/SCC counts.
func (g *CallGraph) Stats() CallGraphStats {
	if g == nil {
		return CallGraphStats{}
	}
	return CallGraphStats{
		Nodes:        len(g.Nodes),
		Edges:        g.NumEdges,
		DynamicSites: g.NumDynamic,
		SCCs:         g.NumSCCs,
		LargestSCC:   g.LargestSCC,
	}
}

// Dump renders the graph for `imclint -graph`: a stats header followed
// by one line per function listing its resolved callees (deduplicated,
// external callees included) and its effect summary. Deterministic.
func (g *CallGraph) Dump(w *strings.Builder) {
	s := g.Stats()
	w.WriteString("callgraph:")
	w.WriteString(" nodes=")
	writeInt(w, s.Nodes)
	w.WriteString(" edges=")
	writeInt(w, s.Edges)
	w.WriteString(" dynamic=")
	writeInt(w, s.DynamicSites)
	w.WriteString(" sccs=")
	writeInt(w, s.SCCs)
	w.WriteString(" largest-scc=")
	writeInt(w, s.LargestSCC)
	w.WriteString("\n")
	for _, node := range g.Nodes {
		w.WriteString(node.Name())
		if node.Summary != nil && node.Summary.Effects != 0 {
			w.WriteString(" [")
			w.WriteString(node.Summary.Effects.String())
			w.WriteString("]")
		}
		seen := make(map[string]bool)
		callees := make([]string, 0, len(node.Calls))
		for _, e := range node.Calls {
			name := ""
			if e.Callee != nil {
				name = e.Callee.Name()
			} else {
				name = e.ExtPkg + "." + e.ExtName
			}
			if !seen[name] {
				seen[name] = true
				callees = append(callees, name)
			}
		}
		sort.Strings(callees)
		for _, c := range callees {
			w.WriteString("\n\t-> ")
			w.WriteString(c)
		}
		if len(node.Dynamic) > 0 {
			w.WriteString("\n\t-> <dynamic x")
			writeInt(w, len(node.Dynamic))
			w.WriteString(">")
		}
		w.WriteString("\n")
	}
}

// writeInt appends a base-10 integer without fmt (keeps Dump cheap).
func writeInt(w *strings.Builder, v int) {
	var buf [20]byte
	i := len(buf)
	if v == 0 {
		w.WriteByte('0')
		return
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	w.Write(buf[i:])
}
