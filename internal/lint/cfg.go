package lint

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs — the substrate of
// the suite's flow-sensitive analyzers (allocfree, errflow, sharemut).
// PR-1-era analyzers were purely syntactic: they could say "this
// expression allocates" but not "…and it does so on every iteration of
// the sampling loop" or "…only on the error path that never merges back
// before the check". The CFG gives them three things:
//
//   - basic blocks with successor/predecessor edges, so a forward
//     dataflow pass (see dataflow.go) can propagate facts around
//     branches, loops, and early returns;
//   - a per-statement loop depth, so allocation checks can distinguish
//     one-time setup from per-iteration churn;
//   - dominators, so an analyzer can ask "is this check guaranteed to
//     run before that use".
//
// The builder is deliberately conservative where Go's control flow gets
// exotic: a goto to an unresolvable label, or a panic/recover pair, is
// modelled as an edge to the exit block rather than rejected, because a
// lint analyzer must never crash on legal code. Function literals are
// NOT inlined — each literal gets its own CFG on demand; a closure's
// body executes under a different schedule than its enclosing function.

// Block is one basic block: a maximal run of straight-line statements.
// Stmts holds the statements (and, for compound statements, the header
// expressions — an if's condition, a switch's tag) that execute when
// control enters the block. Bodies of compound statements live in
// successor blocks, never in Stmts, so analyzers may inspect Stmts
// nodes without re-traversing nested control flow.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Stmts lists the AST nodes that execute in this block, in order.
	Stmts []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
	// LoopDepth counts the enclosing loops: statements in a block with
	// LoopDepth ≥ 1 run once per iteration of some loop.
	LoopDepth int
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block, entry first. The exit block (index 1)
	// collects every return path and the fallthrough off the end.
	Blocks []*Block
	// Entry and Exit are Blocks[0] and Blocks[1].
	Entry, Exit *Block

	// depth maps every statement node placed in a block to that block's
	// loop depth (see NodeLoopDepth).
	depth map[ast.Node]int
}

// NodeLoopDepth returns the loop depth of a statement node that was
// placed in a block, and false for nodes the builder never saw (nodes
// nested inside expressions inherit their statement's depth; resolve
// them through their enclosing statement).
func (c *CFG) NodeLoopDepth(n ast.Node) (int, bool) {
	d, ok := c.depth[n]
	return d, ok
}

// builder carries the under-construction CFG plus the jump context.
type builder struct {
	cfg *CFG
	cur *Block
	// loopDepth is the number of loops enclosing the statement being
	// placed right now.
	loopDepth int
	// breakTo / continueTo are the current targets of unlabeled break
	// and continue.
	breakTo, continueTo *Block
	// labels maps label names to their continue/break/goto targets.
	labels map[string]*labelTarget
	// gotos records forward gotos to resolve once all labels are seen.
	gotos []pendingGoto
}

type labelTarget struct {
	// entry is where a goto / continue-to-label lands (loop head for
	// labeled loops).
	entry *Block
	// brk is where a labeled break lands.
	brk *Block
	// cont is the labeled loop's continue target (nil for non-loops).
	cont *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the control-flow graph of body. The body may be a
// function declaration's or a function literal's.
func BuildCFG(body *ast.BlockStmt) *CFG {
	cfg := &CFG{depth: make(map[ast.Node]int)}
	b := &builder{cfg: cfg, labels: make(map[string]*labelTarget)}
	entry := b.newBlock(0)
	exit := b.newBlock(0)
	cfg.Entry, cfg.Exit = entry, exit
	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end of the body flows to exit.
	b.edge(b.cur, exit)
	// Resolve gotos; unknown labels (impossible in type-checked code,
	// possible in partially-broken code) conservatively edge to exit.
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok && t.entry != nil {
			b.edge(g.from, t.entry)
		} else {
			b.edge(g.from, exit)
		}
	}
	return cfg
}

// newBlock appends a fresh block at the given loop depth.
func (b *builder) newBlock(depth int) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), LoopDepth: depth}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge links from → to (nil-safe; no-op on a nil source, which stands
// for unreachable code after a terminating statement).
func (b *builder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// place records a node in the current block (creating an unreachable
// continuation block if control already left).
func (b *builder) place(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock(b.loopDepth)
	}
	b.cur.Stmts = append(b.cur.Stmts, n)
	b.cfg.depth[n] = b.cur.LoopDepth
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt threads one statement through the graph.
func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.place(s.Init)
		}
		b.place(s.Cond)
		condBlk := b.cur
		after := b.newBlock(b.loopDepth)
		// then arm
		b.cur = b.newBlock(b.loopDepth)
		b.edge(condBlk, b.cur)
		b.stmt(s.Body)
		b.edge(b.cur, after)
		// else arm (or fallthrough straight to after)
		if s.Else != nil {
			b.cur = b.newBlock(b.loopDepth)
			b.edge(condBlk, b.cur)
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.place(s.Init)
		}
		head := b.newBlock(b.loopDepth + 1)
		b.edge(b.cur, head)
		after := b.newBlock(b.loopDepth)
		post := b.newBlock(b.loopDepth + 1)
		b.cur = head
		if s.Cond != nil {
			b.place(s.Cond)
			b.edge(b.cur, after)
		}
		body := b.newBlock(b.loopDepth + 1)
		b.edge(b.cur, body)
		b.cur = body
		b.loop(after, post, func() { b.stmt(s.Body) })
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.place(s.Post)
		}
		b.edge(b.cur, head) // back edge
		b.cur = after

	case *ast.RangeStmt:
		// The ranged-over expression is evaluated once, outside the loop.
		b.place(s.X)
		head := b.newBlock(b.loopDepth + 1)
		b.edge(b.cur, head)
		after := b.newBlock(b.loopDepth)
		b.edge(head, after) // range exhausted
		body := b.newBlock(b.loopDepth + 1)
		b.edge(head, body)
		// The per-iteration key/value bind happens in the head; record
		// the RangeStmt itself there so analyzers see the bind depth.
		head.Stmts = append(head.Stmts, rangeBind{s})
		b.cfg.depth[s] = head.LoopDepth
		b.cur = body
		b.loop(after, head, func() { b.stmt(s.Body) })
		b.edge(b.cur, head) // back edge
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.place(s.Init)
		}
		if s.Tag != nil {
			b.place(s.Tag)
		}
		b.switchBody(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.place(s.Init)
		}
		b.place(s.Assign)
		b.switchBody(s.Body, nil)

	case *ast.SelectStmt:
		b.switchBody(s.Body, func(cc *ast.CommClause) ast.Stmt { return cc.Comm })

	case *ast.LabeledStmt:
		// Give the label a landing block; loops behind the label expose
		// their break/continue targets through it.
		land := b.newBlock(b.loopDepth)
		b.edge(b.cur, land)
		b.cur = land
		t := &labelTarget{entry: land}
		b.labels[s.Label.Name] = t
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			after := b.newBlock(b.loopDepth)
			t.brk = after
			prevBreak, prevCont := b.breakTo, b.continueTo
			// The inner loop's own builder wires unlabeled break and
			// continue; a labeled break/continue resolves through t,
			// which we point at the same blocks via labelLoop.
			b.labelLoop(inner, t, after)
			b.breakTo, b.continueTo = prevBreak, prevCont
			b.cur = after
		default:
			t.brk = nil
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		b.place(s)
		b.branch(s)

	case *ast.ReturnStmt:
		b.place(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	default:
		// Straight-line statements: decls, assignments, calls, sends,
		// go/defer, inc/dec, empty.
		b.place(s)
	}
}

// loop runs body() with break/continue targets pushed.
func (b *builder) loop(brk, cont *Block, body func()) {
	prevBreak, prevCont := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = brk, cont
	prevDepth := b.loopDepth
	b.loopDepth++
	body()
	b.loopDepth = prevDepth
	b.breakTo, b.continueTo = prevBreak, prevCont
}

// labelLoop rebuilds a labeled for/range with the label's targets
// aliased to the loop's own, so `break L` / `continue L` / `goto L`
// resolve correctly.
func (b *builder) labelLoop(s ast.Stmt, t *labelTarget, after *Block) {
	switch s := s.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			b.place(s.Init)
		}
		head := b.newBlock(b.loopDepth + 1)
		b.edge(b.cur, head)
		post := b.newBlock(b.loopDepth + 1)
		t.cont = post
		b.cur = head
		if s.Cond != nil {
			b.place(s.Cond)
			b.edge(b.cur, after)
		}
		body := b.newBlock(b.loopDepth + 1)
		b.edge(b.cur, body)
		b.cur = body
		b.loop(after, post, func() { b.stmt(s.Body) })
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.place(s.Post)
		}
		b.edge(b.cur, head)
	case *ast.RangeStmt:
		b.place(s.X)
		head := b.newBlock(b.loopDepth + 1)
		b.edge(b.cur, head)
		b.edge(head, after)
		t.cont = head
		body := b.newBlock(b.loopDepth + 1)
		b.edge(head, body)
		head.Stmts = append(head.Stmts, rangeBind{s})
		b.cfg.depth[s] = head.LoopDepth
		b.cur = body
		b.loop(after, head, func() { b.stmt(s.Body) })
		b.edge(b.cur, head)
	}
}

// branch wires one break/continue/goto/fallthrough.
func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if label != "" {
			if t, ok := b.labels[label]; ok && t.brk != nil {
				b.edge(b.cur, t.brk)
				b.cur = nil
				return
			}
		}
		b.edge(b.cur, b.breakTo)
		b.cur = nil
	case "continue":
		if label != "" {
			if t, ok := b.labels[label]; ok && t.cont != nil {
				b.edge(b.cur, t.cont)
				b.cur = nil
				return
			}
		}
		b.edge(b.cur, b.continueTo)
		b.cur = nil
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		b.cur = nil
	case "fallthrough":
		// Handled structurally by switchBody (clauses are chained);
		// nothing to wire here.
	}
}

// switchBody builds the clause fan-out of a switch / type-switch /
// select. comm extracts a select clause's communication statement (nil
// for plain switches).
func (b *builder) switchBody(body *ast.BlockStmt, comm func(*ast.CommClause) ast.Stmt) {
	dispatch := b.cur
	after := b.newBlock(b.loopDepth)
	hasDefault := false
	// Build every clause; collect clause-entry blocks for fallthrough.
	type clause struct{ entry, exit *Block }
	clauses := make([]clause, 0, len(body.List))
	for _, raw := range body.List {
		entry := b.newBlock(b.loopDepth)
		b.edge(dispatch, entry)
		b.cur = entry
		var list []ast.Stmt
		switch cc := raw.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else if comm != nil {
				b.stmt(comm(cc))
			}
			list = cc.Body
		}
		prevBreak := b.breakTo
		b.breakTo = after
		b.stmtList(list)
		b.breakTo = prevBreak
		exit := b.cur
		b.edge(exit, after)
		clauses = append(clauses, clause{entry: entry, exit: exit})
	}
	// fallthrough chains clause i into clause i+1's entry.
	for i, raw := range body.List {
		cc, ok := raw.(*ast.CaseClause)
		if !ok || i+1 >= len(clauses) {
			continue
		}
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				b.edge(clauses[i].exit, clauses[i+1].entry)
			}
		}
	}
	if !hasDefault {
		// No default: the switch can fall through without entering any
		// clause (or, for select, block — same merge semantics).
		b.edge(dispatch, after)
	}
	b.cur = after
}

// rangeBind wraps a RangeStmt when recorded in a loop-head block: it
// marks the per-iteration key/value binding without re-exposing the
// loop body to block-statement walkers.
type rangeBind struct {
	Range *ast.RangeStmt
}

// Pos/End make rangeBind an ast.Node.
func (r rangeBind) Pos() token.Pos { return r.Range.Pos() }
func (r rangeBind) End() token.Pos { return r.Range.TokPos }

// Dominators computes the immediate-dominator relation with the
// classic iterative algorithm over a reverse postorder. idom[i] is the
// immediate dominator of Blocks[i] (entry's idom is itself);
// unreachable blocks get -1.
func (c *CFG) Dominators() []int {
	n := len(c.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	rpo := c.reversePostorder()
	order := make([]int, n) // block index → rpo position
	for i := range order {
		order[i] = -1
	}
	for pos, blk := range rpo {
		order[blk.Index] = pos
	}
	idom[c.Entry.Index] = c.Entry.Index
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			if blk == c.Entry {
				continue
			}
			newIdom := -1
			for _, p := range blk.Preds {
				if idom[p.Index] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p.Index
				} else {
					newIdom = intersect(newIdom, p.Index)
				}
			}
			if newIdom != -1 && idom[blk.Index] != newIdom {
				idom[blk.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom (as
// returned by Dominators).
func (c *CFG) Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		next := idom[b]
		if next == b || next == -1 {
			return b == a
		}
		b = next
	}
}

// reversePostorder returns the reachable blocks in reverse postorder
// (entry first) — the iteration order under which forward dataflow
// converges fastest.
func (c *CFG) reversePostorder() []*Block {
	seen := make([]bool, len(c.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(c.Entry)
	// reverse
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
