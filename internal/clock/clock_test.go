package clock

import (
	"testing"
	"time"
)

func TestFixed(t *testing.T) {
	at := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	f := Fixed(at)
	if got := f(); !got.Equal(at) {
		t.Fatalf("Fixed = %v, want %v", got, at)
	}
	if got := f(); !got.Equal(at) {
		t.Fatalf("Fixed moved on second read: %v", got)
	}
}

func TestTicking(t *testing.T) {
	at := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	f := Ticking(at, time.Second)
	if got := f(); !got.Equal(at) {
		t.Fatalf("first read = %v, want %v", got, at)
	}
	if got := f(); !got.Equal(at.Add(time.Second)) {
		t.Fatalf("second read = %v, want %v", got, at.Add(time.Second))
	}
	if got := f(); !got.Equal(at.Add(2 * time.Second)) {
		t.Fatalf("third read = %v, want %v", got, at.Add(2*time.Second))
	}
}

func TestOrWall(t *testing.T) {
	at := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	if got := OrWall(Fixed(at))(); !got.Equal(at) {
		t.Fatalf("OrWall(Fixed) = %v, want %v", got, at)
	}
	before := time.Now()
	got := OrWall(nil)()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("OrWall(nil) = %v, want within [%v, %v]", got, before, after)
	}
}
