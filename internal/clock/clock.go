// Package clock is the library's single approved wall-clock access
// point. Library packages never call time.Now directly (the
// determinism analyzer in internal/lint enforces this); they take an
// injectable clock.Func so tests can pin timestamps and reproduce
// timing-labelled output byte-for-byte. Only elapsed-time *reporting*
// flows through this package — no algorithmic decision may ever depend
// on the clock, which is exactly why the access point is centralized
// and auditable.
package clock

import "time"

// Func is an injectable time source. The zero value (nil) means "use
// the real wall clock"; resolve it with OrWall at the point of use.
type Func func() time.Time

// Wall reads the real wall clock. This package is the one sanctioned
// time.Now access point in library code; the lint driver exempts it
// from the determinism check by policy (see lint.AnalyzersFor) rather
// than by per-line suppression.
func Wall() time.Time { return time.Now() }

// OrWall returns f, or the real wall clock when f is nil.
func OrWall(f Func) Func {
	if f == nil {
		return Wall
	}
	return f
}

// Fixed returns a Func pinned to t. Tests use it to freeze time.
func Fixed(t time.Time) Func {
	return func() time.Time { return t }
}

// Ticking returns a Func that starts at t and advances by step on every
// read. It lets tests observe elapsed-time plumbing with exact,
// reproducible durations. The returned Func is not safe for concurrent
// use; tests that need concurrency should use Fixed.
func Ticking(t time.Time, step time.Duration) Func {
	cur := t
	return func() time.Time {
		out := cur
		cur = cur.Add(step)
		return out
	}
}
