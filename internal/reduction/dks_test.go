package reduction

import (
	"testing"
	"testing/quick"

	"imc/internal/maxr"
	"imc/internal/ric"
	"imc/internal/xrand"
)

// triangle-plus-pendant: nodes 0-1-2 form a triangle, node 3 hangs off
// node 0.
func testDkS(t *testing.T) *Instance {
	t.Helper()
	inst, err := FromDkS(4, []DkSEdge{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestConstructionShape(t *testing.T) {
	inst := testDkS(t)
	if inst.NumCommunities() != 4 {
		t.Fatalf("r = %d, want 4", inst.NumCommunities())
	}
	if inst.G.NumNodes() != 8 {
		t.Fatalf("IMC nodes = %d, want 2 per edge", inst.G.NumNodes())
	}
	// Node 0 has three incident edges, so three copies in a 3-cycle.
	if len(inst.Copies[0]) != 3 {
		t.Fatalf("copies of node 0: %v", inst.Copies[0])
	}
	if err := inst.Part.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < inst.Part.NumCommunities(); i++ {
		c := inst.Part.Community(i)
		if len(c.Members) != 2 || c.Threshold != 2 || c.Benefit != 1 {
			t.Fatalf("community %d malformed: %+v", i, c)
		}
	}
}

func TestConstructionRejectsBadInput(t *testing.T) {
	if _, err := FromDkS(0, nil); err == nil {
		t.Fatal("want n error")
	}
	if _, err := FromDkS(3, []DkSEdge{{1, 1}}); err == nil {
		t.Fatal("want self-loop error")
	}
	if _, err := FromDkS(3, []DkSEdge{{0, 5}}); err == nil {
		t.Fatal("want range error")
	}
	if _, err := FromDkS(3, []DkSEdge{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("want duplicate error")
	}
}

func TestTheorem1EquivalenceOnTriangle(t *testing.T) {
	inst := testDkS(t)
	cases := []struct {
		nodes []int
		want  int
	}{
		{[]int{0, 1}, 1},
		{[]int{0, 1, 2}, 3},
		{[]int{0, 3}, 1},
		{[]int{1, 3}, 0},
		{[]int{0, 1, 2, 3}, 4},
	}
	for _, c := range cases {
		seeds, err := inst.LiftSeeds(c.nodes)
		if err != nil {
			t.Fatal(err)
		}
		if got := inst.Benefit(seeds); got != float64(c.want) {
			t.Errorf("c(lift(%v)) = %g, want %d", c.nodes, got, c.want)
		}
		if got := inst.InducedEdges(c.nodes); got != c.want {
			t.Errorf("e(%v) = %d, want %d", c.nodes, got, c.want)
		}
	}
}

// Property (Theorem 1, forward direction): for random DkS instances and
// random node subsets, c(lift(S)) = e(S) exactly.
func TestQuickLiftPreservesObjective(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		rng := xrand.New(seed)
		n := 6 + rng.Intn(5)
		var edges []DkSEdge
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Bernoulli(0.4) {
					edges = append(edges, DkSEdge{a, b})
				}
			}
		}
		if len(edges) == 0 {
			return true
		}
		inst, err := FromDkS(n, edges)
		if err != nil {
			return false
		}
		k := int(kRaw%uint8(n)) + 1
		nodes := rng.SampleK(n, k)
		seeds, err := inst.LiftSeeds(nodes)
		if err != nil {
			return false
		}
		return inst.Benefit(seeds) == float64(inst.InducedEdges(nodes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property (Theorem 1, backward direction): projecting an arbitrary IMC
// seed set to DkS nodes can only preserve or grow the objective
// (activated copies activate their whole class, so every influenced
// community's endpoints appear in the projection).
func TestQuickProjectDominates(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		rng := xrand.New(seed)
		n := 6 + rng.Intn(4)
		var edges []DkSEdge
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Bernoulli(0.5) {
					edges = append(edges, DkSEdge{a, b})
				}
			}
		}
		if len(edges) == 0 {
			return true
		}
		inst, err := FromDkS(n, edges)
		if err != nil {
			return false
		}
		total := inst.G.NumNodes()
		k := int(kRaw%uint8(total)) + 1
		var seeds []int32
		for _, v := range rng.SampleK(total, k) {
			seeds = append(seeds, int32(v))
		}
		nodes, err := inst.ProjectSeeds(seeds)
		if err != nil {
			return false
		}
		return float64(inst.InducedEdges(nodes)) >= inst.Benefit(seeds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSolveDkSViaIMC runs a MAXR solver on the reduced instance and
// checks the projected DkS solution matches the IMC benefit — the
// algorithmic content of Theorem 1's approximation transfer.
func TestSolveDkSViaIMC(t *testing.T) {
	inst := testDkS(t)
	pool, err := ric.NewPool(inst.G, inst.Part, ric.PoolOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Generate(2000); err != nil {
		t.Fatal(err)
	}
	// Budget 3 on the triangle instance: the optimum seeds one copy of
	// each triangle node, influencing the 3 triangle communities.
	res, err := maxr.UBG{}.Solve(pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := inst.ProjectSeeds(res.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	got := inst.InducedEdges(nodes)
	if got < 3 {
		t.Fatalf("projected DkS solution %v has %d edges, want the triangle (3)", nodes, got)
	}
}
