// Package reduction implements the paper's Theorem 1 construction: the
// approximation-preserving reduction from Densest k-Subgraph (DkS) to
// IMC that establishes IMC's O(r^{1/2(loglog r)^c}) inapproximability
// under the exponential time hypothesis.
//
// Given an undirected DkS instance H, every edge e = {a, b} becomes a
// two-node community C_e = {a_e, b_e} with threshold 2 and benefit 1,
// and all copies of an original node a (one per incident edge) are wired
// into a weight-1 directed cycle so that seeding any copy activates all
// of them. Then for the natural solution mappings,
// e(S_DkS) = c(S_IMC): the number of edges inside a k-subgraph equals
// the (deterministic) community benefit of the corresponding seed set.
//
// Besides documenting the hardness proof in executable form, the
// reduction doubles as a worst-case instance generator for solver
// stress tests.
package reduction

import (
	"fmt"
	"sort"

	"imc/internal/community"
	"imc/internal/graph"
)

// DkSEdge is one undirected edge {A, B} of a DkS instance.
type DkSEdge struct {
	A, B int
}

// Instance is the IMC instance produced from a DkS instance, together
// with the bookkeeping needed to map solutions in both directions.
type Instance struct {
	// G is the IMC social graph: one node per (original node, incident
	// edge) pair, deterministic weight-1 edges inside each copy cycle.
	G *graph.Graph
	// Part holds one 2-node community per DkS edge (threshold 2,
	// benefit 1).
	Part *community.Partition
	// CopyOf maps each IMC node to its original DkS node.
	CopyOf []int
	// Copies lists, per original DkS node, its IMC copies.
	Copies [][]graph.NodeID

	numOriginal int
	edges       []DkSEdge
}

// FromDkS builds the IMC instance for a DkS instance over n nodes.
// Self-loops and duplicate edges are rejected; isolated original nodes
// simply get no copies (they can never contribute an edge).
func FromDkS(n int, edges []DkSEdge) (*Instance, error) {
	if n <= 0 {
		return nil, fmt.Errorf("reduction: node count %d must be positive", n)
	}
	seen := make(map[[2]int]struct{}, len(edges))
	for _, e := range edges {
		if e.A == e.B {
			return nil, fmt.Errorf("reduction: self-loop on node %d", e.A)
		}
		if e.A < 0 || e.B < 0 || e.A >= n || e.B >= n {
			return nil, fmt.Errorf("reduction: edge {%d,%d} out of range [0,%d)", e.A, e.B, n)
		}
		key := [2]int{min(e.A, e.B), max(e.A, e.B)}
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("reduction: duplicate edge {%d,%d}", e.A, e.B)
		}
		seen[key] = struct{}{}
	}

	inst := &Instance{
		numOriginal: n,
		edges:       append([]DkSEdge(nil), edges...),
		Copies:      make([][]graph.NodeID, n),
	}
	// Two IMC nodes per DkS edge: copy of A then copy of B.
	total := 2 * len(edges)
	inst.CopyOf = make([]int, total)
	memberSets := make([][]graph.NodeID, 0, len(edges))
	next := graph.NodeID(0)
	for _, e := range edges {
		aCopy, bCopy := next, next+1
		next += 2
		inst.CopyOf[aCopy] = e.A
		inst.CopyOf[bCopy] = e.B
		inst.Copies[e.A] = append(inst.Copies[e.A], aCopy)
		inst.Copies[e.B] = append(inst.Copies[e.B], bCopy)
		memberSets = append(memberSets, []graph.NodeID{aCopy, bCopy})
	}

	b := graph.NewBuilder(total)
	// Strongly connect each copy class with a weight-1 cycle.
	for _, copies := range inst.Copies {
		if len(copies) < 2 {
			continue
		}
		sorted := append([]graph.NodeID(nil), copies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			b.AddEdge(sorted[i], sorted[(i+1)%len(sorted)], 1)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	part, err := community.New(total, memberSets)
	if err != nil {
		return nil, err
	}
	part.SetBoundedThresholds(2)
	part.SetUniformBenefits(1)
	inst.G = g
	inst.Part = part
	return inst, nil
}

// NumCommunities returns r = |E(H)|.
func (inst *Instance) NumCommunities() int { return len(inst.edges) }

// LiftSeeds maps a DkS node set to an IMC seed set by picking one
// arbitrary copy per node (the paper's S'_I construction). Nodes
// without copies (isolated in H) are skipped.
func (inst *Instance) LiftSeeds(dksNodes []int) ([]graph.NodeID, error) {
	out := make([]graph.NodeID, 0, len(dksNodes))
	for _, a := range dksNodes {
		if a < 0 || a >= inst.numOriginal {
			return nil, fmt.Errorf("reduction: DkS node %d out of range", a)
		}
		if len(inst.Copies[a]) > 0 {
			out = append(out, inst.Copies[a][0])
		}
	}
	return out, nil
}

// ProjectSeeds maps an IMC seed set back to DkS nodes (the paper's S'_D
// construction), deduplicating copies of the same original node.
func (inst *Instance) ProjectSeeds(seeds []graph.NodeID) ([]int, error) {
	seen := make(map[int]struct{}, len(seeds))
	out := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= len(inst.CopyOf) {
			return nil, fmt.Errorf("reduction: IMC node %d out of range", s)
		}
		a := inst.CopyOf[s]
		if _, dup := seen[a]; !dup {
			seen[a] = struct{}{}
			out = append(out, a)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Benefit evaluates c(S) on the reduced instance. All edges have
// weight 1, so the cascade is deterministic and c is computed by plain
// reachability — no sampling needed.
func (inst *Instance) Benefit(seeds []graph.NodeID) float64 {
	n := inst.G.NumNodes()
	active := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)
	for _, s := range seeds {
		if s >= 0 && int(s) < n && !active[s] {
			active[s] = true
			queue = append(queue, s)
		}
	}
	for head := 0; head < len(queue); head++ {
		tos, _ := inst.G.OutNeighbors(queue[head])
		for _, v := range tos {
			if !active[v] {
				active[v] = true
				queue = append(queue, v)
			}
		}
	}
	benefit := 0.0
	for i := 0; i < inst.Part.NumCommunities(); i++ {
		c := inst.Part.Community(i)
		hits := 0
		for _, u := range c.Members {
			if active[u] {
				hits++
			}
		}
		if hits >= c.Threshold {
			benefit += c.Benefit
		}
	}
	return benefit
}

// InducedEdges counts e(S): the DkS objective for a node subset.
func (inst *Instance) InducedEdges(dksNodes []int) int {
	in := make(map[int]struct{}, len(dksNodes))
	for _, a := range dksNodes {
		in[a] = struct{}{}
	}
	count := 0
	for _, e := range inst.edges {
		if _, okA := in[e.A]; okA {
			if _, okB := in[e.B]; okB {
				count++
			}
		}
	}
	return count
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
