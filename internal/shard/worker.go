package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"

	"imc/internal/community"
	"imc/internal/graph"
	"imc/internal/job"
	"imc/internal/poolcache"
	"imc/internal/ric"
)

// BuildFunc rebuilds the (graph, partition) an InstanceSpec names. The
// builder is injected — usually a thin wrapper over the experiment
// harness — so this package stays independent of how instances are
// constructed and tests can substitute cheap fixtures.
type BuildFunc func(spec InstanceSpec) (*graph.Graph, *community.Partition, error)

// WorkerConfig assembles a Worker.
type WorkerConfig struct {
	// Build rebuilds instances from specs. Required.
	Build BuildFunc
	// Cache, when set, persists generated ranges as content-addressed
	// shard entries (poolcache.KeyForShard), so repeated and
	// post-restart requests are served from disk instead of
	// regenerated. Nil disables persistence — every request generates.
	Cache *poolcache.Cache
	// LedgerPath, when non-empty, opens an append-only journal (the
	// same JSONL format as the async job store) recording each
	// completed generation, so a restarted worker can report
	// exactly-once completions even for ranges the cache has evicted.
	LedgerPath string
	// Logger may be nil (discards to slog.Default).
	Logger *slog.Logger
}

// Worker serves shard ranges over HTTP. It is stateless beyond its
// instance cache, pool cache, and ledger: any request can be answered
// from scratch because generation is deterministic per (identity,
// range), which is what makes worker restarts and range reassignment
// safe without coordination.
type Worker struct {
	build  BuildFunc        //imc:guardedby immutable
	cache  *poolcache.Cache //imc:guardedby immutable
	logger *slog.Logger     //imc:guardedby immutable
	led    *ledger          //imc:guardedby immutable

	mu sync.Mutex
	// instances holds built (graph, partition) pairs per spec, with one
	// in-flight build slot each (singleflight): concurrent requests for
	// the same spec wait on the first build instead of duplicating it.
	instances map[string]*instanceSlot //imc:guardedby mu
}

// instanceSlot is one singleflight build. g, part, and err are written
// exactly once before done closes; the close publishes them.
type instanceSlot struct {
	done chan struct{}
	g    *graph.Graph
	part *community.Partition
	err  error
}

// NewWorker builds a Worker. The ledger file is opened (and its torn
// tail truncated) immediately, so replay errors surface at boot.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("shard: WorkerConfig.Build is required")
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	w := &Worker{
		build:     cfg.Build,
		cache:     cfg.Cache,
		logger:    cfg.Logger,
		instances: make(map[string]*instanceSlot),
	}
	if cfg.LedgerPath != "" {
		led, err := openLedger(cfg.LedgerPath)
		if err != nil {
			return nil, err
		}
		w.led = led
	}
	return w, nil
}

// Close releases the ledger journal (if any).
func (w *Worker) Close() error {
	if w.led == nil {
		return nil
	}
	return w.led.close()
}

// Routes mounts the worker endpoints on mux.
func (w *Worker) Routes(mux *http.ServeMux) {
	mux.HandleFunc("GET "+PingPath, w.handlePing)
	mux.HandleFunc("POST "+GeneratePath, w.handleGenerate)
	mux.HandleFunc("POST "+PoolPath, w.handlePool)
	mux.HandleFunc("POST "+EvalPath, w.handleEval)
}

func (w *Worker) handlePing(rw http.ResponseWriter, _ *http.Request) {
	writeShardJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
}

func (w *Worker) handleGenerate(rw http.ResponseWriter, r *http.Request) {
	var req GenRequest
	if err := decodeShardJSON(r, &req); err != nil {
		writeShardError(rw, http.StatusBadRequest, err)
		return
	}
	pool, cached, ledgered, err := w.ensureRange(r, req)
	if err != nil {
		writeShardError(rw, http.StatusInternalServerError, err)
		return
	}
	writeShardJSON(rw, http.StatusOK, GenResponse{
		Lo: req.Lo, Hi: req.Hi,
		Samples: pool.NumSamples(), Cached: cached, Ledgered: ledgered,
	})
}

func (w *Worker) handlePool(rw http.ResponseWriter, r *http.Request) {
	var req GenRequest
	if err := decodeShardJSON(r, &req); err != nil {
		writeShardError(rw, http.StatusBadRequest, err)
		return
	}
	pool, _, _, err := w.ensureRange(r, req)
	if err != nil {
		writeShardError(rw, http.StatusInternalServerError, err)
		return
	}
	var buf bytes.Buffer
	if err := pool.ExportRange(&buf, req.Lo, req.Hi); err != nil {
		writeShardError(rw, http.StatusInternalServerError, err)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	if err := WriteFrame(rw, buf.Bytes()); err != nil {
		// Headers are gone; all we can do is log and drop the connection.
		w.logger.Warn("shard pool response failed", "err", err)
	}
}

func (w *Worker) handleEval(rw http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	if err := decodeShardJSON(r, &req); err != nil {
		writeShardError(rw, http.StatusBadRequest, err)
		return
	}
	pool, _, _, err := w.ensureRange(r, req.GenRequest)
	if err != nil {
		writeShardError(rw, http.StatusInternalServerError, err)
		return
	}
	base := pool.CoverageCount(req.Seeds)
	gains := make([]int, len(req.Candidates))
	probe := make([]graph.NodeID, len(req.Seeds), len(req.Seeds)+1)
	copy(probe, req.Seeds)
	for i, v := range req.Candidates {
		gains[i] = pool.CoverageCount(append(probe, v)) - base
	}
	writeShardJSON(rw, http.StatusOK, EvalResponse{
		Lo: req.Lo, Hi: req.Hi, Coverage: base, Gains: gains,
	})
}

// ensureRange returns a pool holding exactly global samples [Lo, Hi),
// served from the shard cache when possible and generated (then cached
// and ledgered) otherwise. Deterministic streams make the two paths
// byte-identical, so "cached" is an economics flag, not a semantic one.
func (w *Worker) ensureRange(r *http.Request, req GenRequest) (pool *ric.Pool, cached, ledgered bool, err error) {
	if err := req.validate(); err != nil {
		return nil, false, false, err
	}
	g, part, err := w.instance(req.Instance)
	if err != nil {
		return nil, false, false, err
	}
	model, err := req.Instance.model()
	if err != nil {
		return nil, false, false, err
	}
	opts := ric.PoolOptions{Model: model, Seed: req.PoolSeed, Offset: req.Lo}
	pool, err = ric.NewPool(g, part, opts)
	if err != nil {
		return nil, false, false, err
	}
	base := poolcache.KeyFor(g, part, model, req.PoolSeed)
	ledgered = w.led.has(base.String(), req.Lo, req.Hi)
	if w.cache != nil {
		found, lerr := w.cache.LoadShard(base, pool, req.Lo, req.Hi)
		if lerr != nil {
			// A post-import mismatch leaves the pool mutated; rebuild it
			// before generating from scratch.
			w.logger.Warn("shard cache load failed", "err", lerr)
			if pool, err = ric.NewPool(g, part, opts); err != nil {
				return nil, false, false, err
			}
		} else if found {
			return pool, true, ledgered, nil
		}
	}
	if err := pool.EnsureCtx(r.Context(), req.Hi-req.Lo); err != nil {
		return nil, false, false, err
	}
	if w.cache != nil {
		if err := w.cache.SaveShard(base, pool, req.Lo, req.Hi); err != nil {
			w.logger.Warn("shard cache save failed", "err", err)
		}
	}
	if err := w.led.record(base.String(), req.Lo, req.Hi); err != nil {
		w.logger.Warn("shard ledger append failed", "err", err)
	}
	return pool, false, ledgered, nil
}

// instance returns the built (graph, partition) for spec, building at
// most once per spec (singleflight; concurrent requests wait).
func (w *Worker) instance(spec InstanceSpec) (*graph.Graph, *community.Partition, error) {
	key := spec.key()
	w.mu.Lock()
	if slot, ok := w.instances[key]; ok {
		w.mu.Unlock()
		<-slot.done
		return slot.g, slot.part, slot.err
	}
	slot := &instanceSlot{done: make(chan struct{})}
	w.instances[key] = slot
	w.mu.Unlock()

	slot.g, slot.part, slot.err = w.build(spec)
	if slot.err != nil {
		// Failed builds are not cached: a transient failure should not
		// poison the spec forever.
		w.mu.Lock()
		delete(w.instances, key)
		w.mu.Unlock()
	}
	close(slot.done)
	return slot.g, slot.part, slot.err
}

// ledger is the worker's exactly-once receipt book: one JSONL record
// per completed range generation, on the job store's journal machinery
// (torn-tail truncation, fsync-per-append). A nil *ledger is valid and
// records nothing.
type ledger struct {
	mu   sync.Mutex
	jl   *job.Journal    //imc:guardedby mu
	done map[string]bool //imc:guardedby mu
}

// ledgerRecord is one completed generation.
type ledgerRecord struct {
	Op  string `json:"op"` // always "shard-generate"
	Key string `json:"key"`
	Lo  int    `json:"lo"`
	Hi  int    `json:"hi"`
}

const ledgerOp = "shard-generate"

func ledgerKey(key string, lo, hi int) string {
	return fmt.Sprintf("%s:%d:%d", key, lo, hi)
}

// openLedger replays the journal (stopping at any torn or foreign
// tail) and opens it for appending at the last intact byte.
func openLedger(path string) (*ledger, error) {
	done := make(map[string]bool)
	intact, err := job.ReplayJournal(path, func(line json.RawMessage) (bool, error) {
		var rec ledgerRecord
		if json.Unmarshal(line, &rec) != nil || rec.Op != ledgerOp {
			return false, nil
		}
		done[ledgerKey(rec.Key, rec.Lo, rec.Hi)] = true
		return true, nil
	})
	if err != nil {
		return nil, fmt.Errorf("shard: replay ledger: %w", err)
	}
	jl, err := job.OpenJournalAt(path, intact)
	if err != nil {
		return nil, fmt.Errorf("shard: open ledger: %w", err)
	}
	return &ledger{jl: jl, done: done}, nil
}

func (l *ledger) has(key string, lo, hi int) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.done[ledgerKey(key, lo, hi)]
}

func (l *ledger) record(key string, lo, hi int) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := ledgerKey(key, lo, hi)
	if l.done[k] {
		return nil
	}
	//lint:allow lockheld: mu exists to serialize the journal fsync with the dedupe map; a record is one append per generated range, and nothing hot ever waits on it
	if err := l.jl.Append(ledgerRecord{Op: ledgerOp, Key: key, Lo: lo, Hi: hi}); err != nil {
		return err
	}
	l.done[k] = true
	return nil
}

func (l *ledger) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	//lint:allow lockheld: shutdown-only path; holding mu across the final flush keeps a racing record from appending to a closed journal
	return l.jl.Close()
}

func decodeShardJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("shard: decode request: %w", err)
	}
	return nil
}

func writeShardJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}

func writeShardError(rw http.ResponseWriter, status int, err error) {
	writeShardJSON(rw, status, map[string]string{"error": err.Error()})
}
