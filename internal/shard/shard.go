// Package shard is the distributed RIC runtime: a coordinator splits
// the sample sequence [0, Θ) into disjoint contiguous ranges, dispatches
// each range to a worker process over a small HTTP protocol, and splices
// the returned shards back into the exact pool a single process would
// have generated.
//
// Determinism is the whole design: sample i is always drawn from PRNG
// stream i (ric.PoolOptions.Offset), so the union of any disjoint range
// decomposition is byte-identical to in-process generation regardless of
// worker count, worker deaths, or retries. The coordinator therefore
// never needs consensus — a range can be regenerated anywhere, including
// locally, and the result cannot change.
//
// Protocol endpoints (mounted by Worker.Routes / Coordinator.HandleJoin):
//
//	GET  /shard/ping      liveness probe
//	POST /shard/generate  ensure samples [lo, hi) exist (idempotent)
//	POST /shard/pool      stream the range as a length-prefixed, CRC-framed
//	                      IMCS export (ric.ExportRange)
//	POST /shard/eval      per-candidate coverage marginals over the range
//	POST /shard/join      worker self-registration with the coordinator
//
// Requests are JSON; the pool payload is binary (IMCS) inside the CRC
// frame from internal/atomicio, so corruption in transit fails closed.
// Workers persist generated ranges in the content-addressed pool cache
// (poolcache.SaveShard) and record completions in a job.Journal ledger,
// so a killed-and-restarted worker serves the same bytes without
// regenerating — exactly-once generation per (identity, range).
package shard

import (
	"fmt"
	"strings"

	"imc/internal/diffusion"
)

// Protocol paths. Workers mount the first four; coordinators mount Join.
const (
	PingPath     = "/shard/ping"
	GeneratePath = "/shard/generate"
	PoolPath     = "/shard/pool"
	EvalPath     = "/shard/eval"
	JoinPath     = "/shard/join"
)

// maxRangeWidth bounds how many samples one request may name, so a
// corrupt or hostile request cannot make a worker allocate unbounded
// memory. 1<<26 samples is far past any Θ the solvers reach.
const maxRangeWidth = 1 << 26

// Range is a half-open global sample-index interval [Lo, Hi).
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Width returns the number of samples in the range.
func (r Range) Width() int { return r.Hi - r.Lo }

// SplitRanges cuts [lo, hi) into at most n contiguous, disjoint ranges
// whose union is exactly [lo, hi), using the same ⌊width·w/n⌋ bounds for
// every caller — the coordinator, the tests, and the CI smoke job all
// agree on the decomposition. Fewer than n ranges come back when the
// interval is narrower than n (no empty ranges are produced); nil when
// the interval is empty or n < 1.
func SplitRanges(lo, hi, n int) []Range {
	width := hi - lo
	if width <= 0 || n < 1 {
		return nil
	}
	if n > width {
		n = width
	}
	out := make([]Range, 0, n)
	for w := 0; w < n; w++ {
		out = append(out, Range{Lo: lo + width*w/n, Hi: lo + width*(w+1)/n})
	}
	return out
}

// InstanceSpec names one experimental instance by construction recipe,
// not by value: coordinator and workers run the same code, so the spec
// rebuilds the identical (graph, partition) everywhere. The wdigest in
// the IMCS identity header re-checks that assumption at import time —
// a worker built against different code fails closed, never silently.
type InstanceSpec struct {
	Dataset   string  `json:"dataset"`
	Scale     float64 `json:"scale"`
	Formation string  `json:"formation,omitempty"` // "louvain" (default) | "random"
	SizeCap   int     `json:"sizeCap,omitempty"`
	Bounded   bool    `json:"bounded,omitempty"`
	Seed      uint64  `json:"seed"`
	// Model is the diffusion model, "IC" (default) or "LT".
	Model string `json:"model,omitempty"`
}

// key is the worker's instance-cache key.
func (s InstanceSpec) key() string {
	return fmt.Sprintf("%s|%g|%s|%d|%v|%d|%s",
		s.Dataset, s.Scale, s.Formation, s.SizeCap, s.Bounded, s.Seed, s.Model)
}

// model resolves the diffusion model named by the spec.
func (s InstanceSpec) model() (diffusion.Model, error) {
	switch strings.ToUpper(s.Model) {
	case "", "IC":
		return diffusion.IC, nil
	case "LT":
		return diffusion.LT, nil
	default:
		return 0, fmt.Errorf("shard: unknown diffusion model %q", s.Model)
	}
}

// GenRequest asks a worker to ensure global samples [Lo, Hi) of the
// pool identified by (Instance, PoolSeed, Instance.Model) exist. It is
// the body of both /shard/generate and /shard/pool — generation is
// idempotent, so the pool endpoint generates on demand when the range
// is not cached.
type GenRequest struct {
	Instance InstanceSpec `json:"instance"`
	PoolSeed uint64       `json:"poolSeed"`
	Lo       int          `json:"lo"`
	Hi       int          `json:"hi"`
}

func (r GenRequest) validate() error {
	if r.Lo < 0 || r.Hi < r.Lo {
		return fmt.Errorf("shard: range [%d, %d) is not a valid sample interval", r.Lo, r.Hi)
	}
	if r.Hi-r.Lo > maxRangeWidth {
		return fmt.Errorf("shard: range width %d exceeds the %d-sample limit", r.Hi-r.Lo, maxRangeWidth)
	}
	return nil
}

// GenResponse reports one ensured range. Cached is true when the range
// was served from the worker's pool cache without generating; Ledgered
// is true when the journal ledger already recorded a completed
// generation of this exact range (the exactly-once receipt — on a
// restarted worker it stays true even if the cache entry was evicted
// and the bytes had to be deterministically regenerated).
type GenResponse struct {
	Lo       int  `json:"lo"`
	Hi       int  `json:"hi"`
	Samples  int  `json:"samples"`
	Cached   bool `json:"cached"`
	Ledgered bool `json:"ledgered"`
}

// EvalRequest asks a worker for exact per-candidate coverage marginals
// over its range: for each candidate v, how many additional samples in
// [Lo, Hi) become influenced when v joins Seeds. Counts are integers,
// so the coordinator's cross-worker sums are exact — this is the
// verification half of the protocol, used to cross-check a merged
// solve against the flat pool.
type EvalRequest struct {
	GenRequest
	Seeds      []int32 `json:"seeds"`
	Candidates []int32 `json:"candidates"`
}

// EvalResponse carries the range's coverage of Seeds alone and the
// per-candidate marginal gains, index-aligned with Candidates.
type EvalResponse struct {
	Lo       int   `json:"lo"`
	Hi       int   `json:"hi"`
	Coverage int   `json:"coverage"`
	Gains    []int `json:"gains"`
}

// JoinRequest is a worker's self-registration: Addr is the base URL the
// coordinator should dial back (scheme://host:port).
type JoinRequest struct {
	Addr string `json:"addr"`
}

// JoinResponse acknowledges a registration.
type JoinResponse struct {
	Status  string `json:"status"`
	Workers int    `json:"workers"`
}
