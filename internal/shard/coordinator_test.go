package shard

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"imc/internal/graph"
	"imc/internal/maxr"
	"imc/internal/ric"
)

// quietCoordinator builds a coordinator whose retry warnings don't spam
// the test log.
func quietCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	return NewCoordinator(CoordinatorConfig{
		Logger: slog.New(slog.NewTextHandler(nullWriter{}, nil)),
	})
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// startWorkers boots n independent workers (each with its own cache
// dir, like separate machines) and registers them with c.
func startWorkers(t *testing.T, c *Coordinator, n int) []*httptest.Server {
	t.Helper()
	servers := make([]*httptest.Server, n)
	for i := range servers {
		servers[i] = serveWorker(t, newTestWorker(t, t.TempDir()))
		c.Register(servers[i].URL)
	}
	return servers
}

// flatSaveBytes generates [0, theta) locally and returns Save's bytes —
// the reference every distributed grow must reproduce.
func flatSaveBytes(t *testing.T, theta int, poolSeed uint64) []byte {
	t.Helper()
	g, part, err := testBuild(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ric.NewPool(g, part, ric.PoolOptions{Seed: poolSeed})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnsureCtx(context.Background(), theta); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func grownSaveBytes(t *testing.T, c *Coordinator, theta int, poolSeed uint64) []byte {
	t.Helper()
	g, part, err := testBuild(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ric.NewPool(g, part, ric.PoolOptions{Seed: poolSeed})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Grow(context.Background(), testSpec, p, theta); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGrowWorkerCountIndependence: the pool a coordinator assembles
// from 1, 2, or 4 workers is byte-identical to local generation — the
// tentpole determinism pin at the process level.
func TestGrowWorkerCountIndependence(t *testing.T) {
	const theta, poolSeed = 400, 42
	want := flatSaveBytes(t, theta, poolSeed)
	for _, n := range []int{1, 2, 4} {
		c := quietCoordinator(t)
		startWorkers(t, c, n)
		if got := grownSaveBytes(t, c, theta, poolSeed); !bytes.Equal(got, want) {
			t.Errorf("N=%d workers: grown pool differs from local generation", n)
		}
		m := c.Metrics()
		if m.WorkersAlive != n || m.Merges != 1 || m.LocalFallbacks != 0 {
			t.Errorf("N=%d workers: metrics %+v", n, m)
		}
	}
}

// TestGrowExtendsPartialPool: growing a pool that already holds a
// prefix dispatches only the missing tail and still matches local
// generation byte-for-byte.
func TestGrowExtendsPartialPool(t *testing.T) {
	const theta, poolSeed = 300, 9
	c := quietCoordinator(t)
	startWorkers(t, c, 2)
	g, part, err := testBuild(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ric.NewPool(g, part, ric.PoolOptions{Seed: poolSeed})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnsureCtx(context.Background(), 120); err != nil {
		t.Fatal(err)
	}
	if err := c.Grow(context.Background(), testSpec, p, theta); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), flatSaveBytes(t, theta, poolSeed)) {
		t.Fatal("partial-pool grow diverged from local generation")
	}
}

// TestGrowSurvivesWorkerDeath: killing a worker mid-registry reassigns
// its ranges to the survivor; the result is unchanged and the failure
// is visible in the metrics.
func TestGrowSurvivesWorkerDeath(t *testing.T) {
	const theta, poolSeed = 240, 3
	c := quietCoordinator(t)
	servers := startWorkers(t, c, 2)
	servers[0].Close() // dies before the grow ever reaches it

	want := flatSaveBytes(t, theta, poolSeed)
	if got := grownSaveBytes(t, c, theta, poolSeed); !bytes.Equal(got, want) {
		t.Fatal("grow with a dead worker diverged from local generation")
	}
	m := c.Metrics()
	if m.Retries == 0 {
		t.Errorf("no retries recorded after a worker death: %+v", m)
	}
	if m.WorkersAlive != 1 || m.WorkersRegistered != 2 {
		t.Errorf("registry after death: %+v", m)
	}

	// The dead worker restarts (same URL is gone; a fresh process joins)
	// and re-registration revives rotation.
	replacement := serveWorker(t, newTestWorker(t, t.TempDir()))
	c.Register(replacement.URL)
	if got := grownSaveBytes(t, c, theta, poolSeed); !bytes.Equal(got, want) {
		t.Fatal("grow after replacement joined diverged from local generation")
	}
}

// TestGrowDegradesToLocal: with no workers at all, Grow is exactly
// EnsureCtx — same bytes, one recorded fallback. A nil coordinator
// degrades the same way.
func TestGrowDegradesToLocal(t *testing.T) {
	const theta, poolSeed = 150, 21
	want := flatSaveBytes(t, theta, poolSeed)
	c := quietCoordinator(t)
	if got := grownSaveBytes(t, c, theta, poolSeed); !bytes.Equal(got, want) {
		t.Fatal("workerless grow diverged from local generation")
	}
	if m := c.Metrics(); m.LocalFallbacks == 0 {
		t.Errorf("workerless grow recorded no fallback: %+v", m)
	}
	if got := grownSaveBytes(t, (*Coordinator)(nil), theta, poolSeed); !bytes.Equal(got, want) {
		t.Fatal("nil-coordinator grow diverged from local generation")
	}
}

// TestSolveUBGMatchesFlat: the coordinator's merged-marginal sandwich
// solve over 2 worker shards equals UBG on a locally generated flat
// pool — seeds, coverage, and ĉ_R all bit-identical.
func TestSolveUBGMatchesFlat(t *testing.T) {
	const theta, k, poolSeed = 400, 5, 42
	g, part, err := testBuild(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := ric.NewPool(g, part, ric.PoolOptions{Seed: poolSeed})
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.EnsureCtx(context.Background(), theta); err != nil {
		t.Fatal(err)
	}
	want, err := maxr.UBG{}.SolveCtx(context.Background(), flat, k)
	if err != nil {
		t.Fatal(err)
	}

	c := quietCoordinator(t)
	startWorkers(t, c, 2)
	got, err := c.SolveUBG(context.Background(), testSpec, g, part, poolSeed, theta, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Seeds, got.Seeds) || want.Coverage != got.Coverage || want.CHat != got.CHat {
		t.Fatalf("distributed UBG = %+v, flat = %+v", got, want)
	}
}

// TestEvalGainsMatchFlat: summed per-candidate integer marginals across
// workers equal the flat pool's marginals exactly.
func TestEvalGainsMatchFlat(t *testing.T) {
	const theta, poolSeed = 300, 5
	g, part, err := testBuild(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := ric.NewPool(g, part, ric.PoolOptions{Seed: poolSeed})
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.EnsureCtx(context.Background(), theta); err != nil {
		t.Fatal(err)
	}

	c := quietCoordinator(t)
	startWorkers(t, c, 3)
	seeds := []graph.NodeID{2, 9}
	cands := []graph.NodeID{0, 4, 7, 15, 23}
	coverage, gains, err := c.EvalGains(context.Background(), testSpec, poolSeed, theta, seeds, cands)
	if err != nil {
		t.Fatal(err)
	}
	base := flat.CoverageCount(seeds)
	if coverage != base {
		t.Fatalf("merged coverage %d, flat %d", coverage, base)
	}
	for i, v := range cands {
		want := flat.CoverageCount(append(append([]graph.NodeID{}, seeds...), v)) - base
		if gains[i] != want {
			t.Errorf("merged gain for node %d = %d, flat %d", v, gains[i], want)
		}
	}
}

// TestJoinRegistersWorker: the join handshake registers and revives.
func TestJoinRegistersWorker(t *testing.T) {
	c := quietCoordinator(t)
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+JoinPath, c.HandleJoin)
	coord := httptest.NewServer(mux)
	defer coord.Close()

	worker := serveWorker(t, newTestWorker(t, ""))
	if err := Join(context.Background(), nil, coord.URL, worker.URL); err != nil {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.WorkersRegistered != 1 || m.WorkersAlive != 1 {
		t.Fatalf("after join: %+v", m)
	}
	// A dead mark is cleared by the next heartbeat join.
	c.noteFailure(worker.URL, false)
	if m := c.Metrics(); m.WorkersAlive != 0 {
		t.Fatalf("after failure: %+v", m)
	}
	if err := Join(context.Background(), nil, coord.URL, worker.URL); err != nil {
		t.Fatal(err)
	}
	if m := c.Metrics(); m.WorkersAlive != 1 {
		t.Fatalf("after rejoin: %+v", m)
	}
	// Garbage advertise addresses are refused.
	if err := Join(context.Background(), nil, coord.URL, "not-a-url"); err == nil {
		t.Fatal("non-URL advertise accepted")
	}
}
