package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"imc/internal/clock"
	"imc/internal/community"
	"imc/internal/graph"
	"imc/internal/maxr"
	"imc/internal/ric"
	"imc/internal/stats"
)

// maxPoolFrame bounds one worker's pool response; generous next to
// maxRangeWidth but finite, so a corrupt length prefix fails fast.
const maxPoolFrame = 8 << 30

// CoordinatorConfig assembles a Coordinator.
type CoordinatorConfig struct {
	// Client performs worker RPCs; nil uses a dedicated client with a
	// 5-minute timeout (generation-sized, not request-sized).
	Client *http.Client
	// MaxAttempts bounds how many workers one range is tried on before
	// the coordinator generates it locally. Zero means 3.
	MaxAttempts int
	// Logger may be nil.
	Logger *slog.Logger
	// Now is the clock (nil = wall); tests pin it for stable latency
	// histograms.
	Now clock.Func
}

// Coordinator owns the worker registry and runs distributed pool
// generation: it splits a sample interval across the live workers,
// gathers the per-range IMCS exports, and splices them — in range
// order, so the result is byte-identical to local generation. Worker
// death degrades, never corrupts: a failed range is retried on other
// workers a bounded number of times and finally regenerated locally.
//
// A nil *Coordinator is valid: Grow degrades to plain local generation,
// so call sites wire it unconditionally.
type Coordinator struct {
	client      *http.Client //imc:guardedby immutable
	maxAttempts int          //imc:guardedby immutable
	logger      *slog.Logger //imc:guardedby immutable
	now         clock.Func   //imc:guardedby immutable

	mu      sync.Mutex
	workers map[string]*workerInfo //imc:guardedby mu
	// Counters for the /metrics shard section.
	rangesDispatched int64            //imc:guardedby mu
	retries          int64            //imc:guardedby mu
	reassignments    int64            //imc:guardedby mu
	localFallbacks   int64            //imc:guardedby mu
	merges           int64            //imc:guardedby mu
	mergeLatency     *stats.Histogram //imc:guardedby mu
}

// workerInfo is one registered worker's health record.
type workerInfo struct {
	alive    bool
	failures int64
}

// NewCoordinator builds a Coordinator with an empty registry.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Coordinator{
		client:       cfg.Client,
		maxAttempts:  cfg.MaxAttempts,
		logger:       cfg.Logger,
		now:          clock.OrWall(cfg.Now),
		workers:      make(map[string]*workerInfo),
		mergeLatency: stats.NewLatencyHistogram(),
	}
}

// Register adds (or revives) a worker by base URL. Re-registration is
// how a restarted worker returns to rotation after being marked dead.
func (c *Coordinator) Register(addr string) {
	addr = strings.TrimRight(addr, "/")
	if addr == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[addr]; ok {
		w.alive = true
		return
	}
	c.workers[addr] = &workerInfo{alive: true}
}

// HandleJoin is the POST /shard/join handler: workers self-register by
// advertising the base URL the coordinator should dial back.
func (c *Coordinator) HandleJoin(rw http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := decodeShardJSON(r, &req); err != nil {
		writeShardError(rw, http.StatusBadRequest, err)
		return
	}
	if !strings.HasPrefix(req.Addr, "http://") && !strings.HasPrefix(req.Addr, "https://") {
		writeShardError(rw, http.StatusBadRequest,
			fmt.Errorf("shard: join addr %q is not an http(s) base URL", req.Addr))
		return
	}
	c.Register(req.Addr)
	c.mu.Lock()
	n := len(c.workers)
	c.mu.Unlock()
	writeShardJSON(rw, http.StatusOK, JoinResponse{Status: "ok", Workers: n})
}

// alive returns the live worker addresses in sorted order, so range
// assignment is deterministic for a given registry state.
func (c *Coordinator) alive() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.workers))
	for addr, w := range c.workers {
		if w.alive {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// noteFailure marks a worker dead and counts the failed attempt.
func (c *Coordinator) noteFailure(addr string, reassigned bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[addr]; ok {
		w.alive = false
		w.failures++
	}
	c.retries++
	if reassigned {
		c.reassignments++
	}
}

// Grow is the distributed counterpart of ric.Pool.EnsureCtx, matching
// the core.Options.Grow signature once bound to a spec (GrowFunc): it
// brings pool up to target samples by farming the missing tail out to
// the registered workers and splicing their exports back in range
// order. Because sample i always comes from stream i, the grown pool is
// byte-identical to local generation whatever the worker count — and
// with no live workers (or a nil coordinator) it simply generates
// locally.
//
//imc:longrun
func (c *Coordinator) Grow(ctx context.Context, spec InstanceSpec, pool *ric.Pool, target int) error {
	if c == nil {
		return pool.EnsureCtx(ctx, target)
	}
	if pool.Offset() != 0 {
		return fmt.Errorf("shard: Grow requires an offset-0 pool, got offset %d", pool.Offset())
	}
	cur := pool.NumSamples()
	if target <= cur {
		return nil
	}
	workers := c.alive()
	if len(workers) == 0 {
		c.mu.Lock()
		c.localFallbacks++
		c.mu.Unlock()
		return pool.EnsureCtx(ctx, target)
	}
	ranges := SplitRanges(cur, target, len(workers))
	payloads := c.fetchRanges(ctx, spec, pool.Seed(), ranges, workers)

	// Splice sequentially in range order — ImportRange enforces the
	// gap-free contract — regenerating any failed range locally. The
	// merge latency histogram times this splice phase.
	start := c.now()
	for i, r := range ranges {
		if err := ctx.Err(); err != nil {
			return err
		}
		data := payloads[i]
		if data == nil {
			c.mu.Lock()
			c.localFallbacks++
			c.mu.Unlock()
			if err := pool.EnsureCtx(ctx, r.Hi); err != nil {
				return err
			}
			continue
		}
		lo, hi, err := pool.ImportRange(bytes.NewReader(data))
		if err != nil || lo != r.Lo || hi != r.Hi {
			if err == nil {
				err = fmt.Errorf("worker returned range [%d, %d), want [%d, %d)", lo, hi, r.Lo, r.Hi)
			}
			// An import error can leave the pool mid-splice only at a
			// sample boundary (decode appends whole samples); but to stay
			// conservative treat any import failure as fatal for the
			// distributed path and let the caller's pool state be
			// completed locally.
			c.logger.Warn("shard import failed, completing locally", "range", r, "err", err)
			c.mu.Lock()
			c.localFallbacks++
			c.mu.Unlock()
			return pool.EnsureCtx(ctx, target)
		}
	}
	c.mu.Lock()
	c.merges++
	c.mergeLatency.Observe(c.now().Sub(start).Seconds())
	c.mu.Unlock()
	return nil
}

// GrowFunc binds Grow to one instance spec, yielding the
// core.Options.Grow-shaped closure the solvers accept.
func (c *Coordinator) GrowFunc(spec InstanceSpec) func(context.Context, *ric.Pool, int) error {
	return func(ctx context.Context, pool *ric.Pool, target int) error {
		return c.Grow(ctx, spec, pool, target)
	}
}

// fetchRanges gathers each range's IMCS export concurrently. A slot is
// nil when every attempt failed — the caller regenerates that range
// locally. Worker assignment starts round-robin over the sorted live
// set and reassigns on failure.
func (c *Coordinator) fetchRanges(ctx context.Context, spec InstanceSpec, poolSeed uint64, ranges []Range, workers []string) [][]byte {
	payloads := make([][]byte, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r Range, first string) {
			defer wg.Done()
			//lint:allow falseshare: one store per range, after a network round-trip that dwarfs any cache-line bounce; padding would cost more than it saves
			payloads[i] = c.fetchRange(ctx, spec, poolSeed, r, first)
		}(i, r, workers[i%len(workers)])
	}
	wg.Wait()
	return payloads
}

// fetchRange tries one range on up to maxAttempts workers, preferring
// first, then any other live worker not yet tried for this range.
func (c *Coordinator) fetchRange(ctx context.Context, spec InstanceSpec, poolSeed uint64, r Range, first string) []byte {
	tried := make(map[string]bool)
	addr := first
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if addr == "" {
			return nil
		}
		tried[addr] = true
		c.mu.Lock()
		c.rangesDispatched++
		c.mu.Unlock()
		data, err := c.postPool(ctx, addr, GenRequest{Instance: spec, PoolSeed: poolSeed, Lo: r.Lo, Hi: r.Hi})
		if err == nil {
			return data
		}
		if ctx.Err() != nil {
			return nil
		}
		c.logger.Warn("shard range fetch failed", "worker", addr, "range", r, "err", err)
		c.noteFailure(addr, attempt > 0)
		addr = c.pickWorker(tried)
	}
	return nil
}

// pickWorker returns a live worker not in tried, or "".
func (c *Coordinator) pickWorker(tried map[string]bool) string {
	for _, addr := range c.alive() {
		if !tried[addr] {
			return addr
		}
	}
	return ""
}

// postPool performs one /shard/pool RPC and returns the verified frame
// payload (the raw IMCS export).
func (c *Coordinator) postPool(ctx context.Context, addr string, req GenRequest) ([]byte, error) {
	resp, err := c.postJSON(ctx, addr+PoolPath, req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeShardHTTPError(resp)
	}
	return ReadFrame(resp.Body, maxPoolFrame)
}

// EvalGains sums exact per-candidate coverage marginals across the
// workers for the pool identity (spec, poolSeed) over samples
// [0, theta): the integer the flat pool's marginal would be. This is
// the verification RPC — it lets a test or an operator confirm, with
// no float tolerance, that the distributed sample set agrees with a
// local one. Unlike Grow it does not fall back to local generation;
// with no live workers it fails.
func (c *Coordinator) EvalGains(ctx context.Context, spec InstanceSpec, poolSeed uint64, theta int, seeds, cands []graph.NodeID) (coverage int, gains []int, err error) {
	workers := c.alive()
	if len(workers) == 0 {
		return 0, nil, fmt.Errorf("shard: no live workers to evaluate on")
	}
	ranges := SplitRanges(0, theta, len(workers))
	gains = make([]int, len(cands))
	type evalOut struct {
		resp EvalResponse
		err  error
	}
	outs := make([]evalOut, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r Range, first string) {
			defer wg.Done()
			outs[i].resp, outs[i].err = c.evalRange(ctx, spec, poolSeed, r, seeds, cands, first)
		}(i, r, workers[i%len(workers)])
	}
	wg.Wait()
	for i := range outs {
		if outs[i].err != nil {
			return 0, nil, fmt.Errorf("shard: eval range %+v: %w", ranges[i], outs[i].err)
		}
		coverage += outs[i].resp.Coverage
		for j, g := range outs[i].resp.Gains {
			gains[j] += g
		}
	}
	return coverage, gains, nil
}

// evalRange mirrors fetchRange's bounded retry for the eval RPC.
func (c *Coordinator) evalRange(ctx context.Context, spec InstanceSpec, poolSeed uint64, r Range, seeds, cands []graph.NodeID, first string) (EvalResponse, error) {
	req := EvalRequest{
		GenRequest: GenRequest{Instance: spec, PoolSeed: poolSeed, Lo: r.Lo, Hi: r.Hi},
		Seeds:      seeds, Candidates: cands,
	}
	tried := make(map[string]bool)
	addr := first
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if addr == "" {
			break
		}
		tried[addr] = true
		c.mu.Lock()
		c.rangesDispatched++
		c.mu.Unlock()
		var out EvalResponse
		err := func() error {
			resp, err := c.postJSON(ctx, addr+EvalPath, req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return decodeShardHTTPError(resp)
			}
			return json.NewDecoder(io.LimitReader(resp.Body, 1<<26)).Decode(&out)
		}()
		if err == nil {
			if len(out.Gains) != len(cands) {
				return EvalResponse{}, fmt.Errorf("shard: worker returned %d gains for %d candidates", len(out.Gains), len(cands))
			}
			return out, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return EvalResponse{}, err
		}
		c.noteFailure(addr, attempt > 0)
		addr = c.pickWorker(tried)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard: no live workers left")
	}
	return EvalResponse{}, lastErr
}

// SolveUBG runs the sandwich solver on merged marginals without ever
// materializing the flat pool: each worker's range is imported into its
// own offset pool, the set is wrapped as maxr.Shards, and the merged
// greedy loops (which replay the flat kernels' float addition order)
// select the seeds. The result equals UBG on a locally generated pool
// bit-for-bit. Ranges that no worker can serve are generated locally.
//
//imc:longrun
func (c *Coordinator) SolveUBG(ctx context.Context, spec InstanceSpec, g *graph.Graph, part *community.Partition, poolSeed uint64, theta, k int) (maxr.Result, error) {
	model, err := spec.model()
	if err != nil {
		return maxr.Result{}, err
	}
	workers := c.alive()
	ranges := SplitRanges(0, theta, max(len(workers), 1))
	var payloads [][]byte
	if len(workers) > 0 {
		payloads = c.fetchRanges(ctx, spec, poolSeed, ranges, workers)
	} else {
		payloads = make([][]byte, len(ranges))
	}
	start := c.now()
	pools := make([]*ric.Pool, len(ranges))
	for i, r := range ranges {
		p, err := ric.NewPool(g, part, ric.PoolOptions{Model: model, Seed: poolSeed, Offset: r.Lo})
		if err != nil {
			return maxr.Result{}, err
		}
		if data := payloads[i]; data != nil {
			lo, hi, err := p.ImportRange(bytes.NewReader(data))
			if err == nil && lo == r.Lo && hi == r.Hi {
				pools[i] = p
				continue
			}
			c.logger.Warn("shard import failed, generating locally", "range", r, "err", err)
			if p, err = ric.NewPool(g, part, ric.PoolOptions{Model: model, Seed: poolSeed, Offset: r.Lo}); err != nil {
				return maxr.Result{}, err
			}
		}
		c.mu.Lock()
		c.localFallbacks++
		c.mu.Unlock()
		if err := p.EnsureCtx(ctx, r.Width()); err != nil {
			return maxr.Result{}, err
		}
		pools[i] = p
	}
	sh, err := maxr.NewShards(pools)
	if err != nil {
		return maxr.Result{}, err
	}
	res, err := maxr.UBGShards(ctx, sh, k)
	if err != nil {
		return maxr.Result{}, err
	}
	c.mu.Lock()
	c.merges++
	c.mergeLatency.Observe(c.now().Sub(start).Seconds())
	c.mu.Unlock()
	return res, nil
}

func (c *Coordinator) postJSON(ctx context.Context, url string, body any) (*http.Response, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.client.Do(req)
}

// decodeShardHTTPError turns a non-200 worker reply into an error,
// surfacing the worker's JSON error message when present.
func decodeShardHTTPError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body)
	if body.Error != "" {
		return fmt.Errorf("shard: worker %s: %s", resp.Status, body.Error)
	}
	return fmt.Errorf("shard: worker returned %s", resp.Status)
}

// Metrics is the /metrics "shard" section: registry health, dispatch
// and failure counters, and the splice-phase latency histogram.
type Metrics struct {
	WorkersRegistered   int                     `json:"workersRegistered"`
	WorkersAlive        int                     `json:"workersAlive"`
	RangesDispatched    int64                   `json:"rangesDispatched"`
	Retries             int64                   `json:"retries"`
	Reassignments       int64                   `json:"reassignments"`
	LocalFallbacks      int64                   `json:"localFallbacks"`
	Merges              int64                   `json:"merges"`
	MergeLatencySeconds stats.HistogramSnapshot `json:"mergeLatencySeconds"`
}

// Metrics snapshots the coordinator's counters.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	alive := 0
	for _, w := range c.workers {
		if w.alive {
			alive++
		}
	}
	return Metrics{
		WorkersRegistered:   len(c.workers),
		WorkersAlive:        alive,
		RangesDispatched:    c.rangesDispatched,
		Retries:             c.retries,
		Reassignments:       c.reassignments,
		LocalFallbacks:      c.localFallbacks,
		Merges:              c.merges,
		MergeLatencySeconds: c.mergeLatency.Snapshot(),
	}
}

// Join posts one registration of advertise with the coordinator at
// coordURL. Workers call it in a retry loop at boot (and periodically
// as a heartbeat — re-registration revives a worker the coordinator
// marked dead).
func Join(ctx context.Context, client *http.Client, coordURL, advertise string) error {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	raw, err := json.Marshal(JoinRequest{Addr: advertise})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(coordURL, "/")+JoinPath, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeShardHTTPError(resp)
	}
	return nil
}
