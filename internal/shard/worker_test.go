package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"imc/internal/community"
	"imc/internal/diffusion"
	"imc/internal/gen"
	"imc/internal/graph"
	"imc/internal/poolcache"
	"imc/internal/ric"
)

// testBuild is the injected instance builder for tests: cheap,
// deterministic in spec.Seed, and independent across calls — two
// workers building the same spec get equal (not shared) objects,
// exactly like two real processes.
func testBuild(spec InstanceSpec) (*graph.Graph, *community.Partition, error) {
	g, err := gen.RandomDirected(25, 80, 0.5, spec.Seed)
	if err != nil {
		return nil, nil, err
	}
	part, err := community.Random(25, 5, spec.Seed+1)
	if err != nil {
		return nil, nil, err
	}
	part.SetBoundedThresholds(2)
	part.SetPopulationBenefits()
	return g, part, nil
}

var testSpec = InstanceSpec{Dataset: "test", Scale: 1, Seed: 7}

// newTestWorker builds a worker over testBuild with a cache and ledger
// rooted at dir ("" disables both).
func newTestWorker(t *testing.T, dir string) *Worker {
	t.Helper()
	cfg := WorkerConfig{Build: testBuild}
	if dir != "" {
		cache, err := poolcache.Open(filepath.Join(dir, "cache"), poolcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = cache
		cfg.LedgerPath = filepath.Join(dir, "ledger.jsonl")
	}
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func serveWorker(t *testing.T, w *Worker) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	w.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func postJSONT(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func fetchGen(t *testing.T, base string, req GenRequest) GenResponse {
	t.Helper()
	resp := postJSONT(t, base+GeneratePath, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate returned %s", resp.Status)
	}
	var out GenResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func fetchPool(t *testing.T, base string, req GenRequest) []byte {
	t.Helper()
	resp := postJSONT(t, base+PoolPath, req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pool returned %s", resp.Status)
	}
	data, err := ReadFrame(resp.Body, maxPoolFrame)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// localExport generates [lo, hi) in-process and returns its IMCS bytes
// — the reference a worker's wire payload must equal.
func localExport(t *testing.T, lo, hi int, poolSeed uint64) []byte {
	t.Helper()
	g, part, err := testBuild(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ric.NewPool(g, part, ric.PoolOptions{Seed: poolSeed, Offset: lo})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnsureCtx(context.Background(), hi-lo); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.ExportRange(&buf, lo, hi); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorkerPoolMatchesLocalGeneration: the wire payload is the exact
// IMCS export a local offset pool produces, and a second request is a
// cache hit serving the same bytes.
func TestWorkerPoolMatchesLocalGeneration(t *testing.T) {
	ts := serveWorker(t, newTestWorker(t, t.TempDir()))
	req := GenRequest{Instance: testSpec, PoolSeed: 42, Lo: 30, Hi: 90}

	first := fetchGen(t, ts.URL, req)
	if first.Cached || first.Ledgered || first.Samples != 60 {
		t.Fatalf("first generate = %+v, want fresh 60-sample range", first)
	}
	second := fetchGen(t, ts.URL, req)
	if !second.Cached || !second.Ledgered {
		t.Fatalf("second generate = %+v, want cached and ledgered", second)
	}

	want := localExport(t, req.Lo, req.Hi, req.PoolSeed)
	if got := fetchPool(t, ts.URL, req); !bytes.Equal(got, want) {
		t.Fatal("worker pool bytes differ from local generation")
	}
}

// TestWorkerRestartResumes: a restarted worker (same cache dir, same
// ledger) reports the range as already generated and serves identical
// bytes — the exactly-once receipt survives the process.
func TestWorkerRestartResumes(t *testing.T) {
	dir := t.TempDir()
	req := GenRequest{Instance: testSpec, PoolSeed: 11, Lo: 0, Hi: 50}

	w1 := newTestWorker(t, dir)
	ts1 := serveWorker(t, w1)
	before := fetchPool(t, ts1.URL, req)
	ts1.Close()
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}

	ts2 := serveWorker(t, newTestWorker(t, dir))
	resumed := fetchGen(t, ts2.URL, req)
	if !resumed.Cached || !resumed.Ledgered {
		t.Fatalf("restarted worker = %+v, want cached and ledgered", resumed)
	}
	if after := fetchPool(t, ts2.URL, req); !bytes.Equal(before, after) {
		t.Fatal("restarted worker serves different bytes")
	}
}

// TestWorkerWithoutDurability: no cache, no ledger — every request
// regenerates, and the bytes are still identical (determinism does not
// depend on persistence).
func TestWorkerWithoutDurability(t *testing.T) {
	ts := serveWorker(t, newTestWorker(t, ""))
	req := GenRequest{Instance: testSpec, PoolSeed: 42, Lo: 10, Hi: 40}
	if out := fetchGen(t, ts.URL, req); out.Cached || out.Ledgered {
		t.Fatalf("cacheless worker reported %+v", out)
	}
	if out := fetchGen(t, ts.URL, req); out.Cached || out.Ledgered {
		t.Fatalf("cacheless worker reported %+v on repeat", out)
	}
	if got := fetchPool(t, ts.URL, req); !bytes.Equal(got, localExport(t, req.Lo, req.Hi, req.PoolSeed)) {
		t.Fatal("cacheless worker bytes differ from local generation")
	}
}

// TestWorkerEvalMatchesFlat: per-candidate marginals from the worker
// equal the flat pool's integer marginals exactly.
func TestWorkerEvalMatchesFlat(t *testing.T) {
	const theta, poolSeed = 200, 5
	ts := serveWorker(t, newTestWorker(t, t.TempDir()))
	g, part, err := testBuild(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := ric.NewPool(g, part, ric.PoolOptions{Seed: poolSeed})
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.EnsureCtx(context.Background(), theta); err != nil {
		t.Fatal(err)
	}

	seeds := []int32{3, 8}
	cands := []int32{0, 1, 5, 12, 20}
	resp := postJSONT(t, ts.URL+EvalPath, EvalRequest{
		GenRequest: GenRequest{Instance: testSpec, PoolSeed: poolSeed, Lo: 0, Hi: theta},
		Seeds:      seeds, Candidates: cands,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("eval returned %s", resp.Status)
	}
	var out EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}

	base := flat.CoverageCount(seeds)
	if out.Coverage != base {
		t.Fatalf("eval coverage %d, flat %d", out.Coverage, base)
	}
	for i, v := range cands {
		want := flat.CoverageCount(append(append([]graph.NodeID{}, seeds...), v)) - base
		if out.Gains[i] != want {
			t.Errorf("gain[%d] (node %d) = %d, flat %d", i, v, out.Gains[i], want)
		}
	}
}

// TestWorkerRejectsBadRequests: invalid ranges, unknown models, and
// unparseable bodies are 4xx/5xx with JSON error bodies, never panics.
func TestWorkerRejectsBadRequests(t *testing.T) {
	ts := serveWorker(t, newTestWorker(t, ""))
	for name, req := range map[string]GenRequest{
		"negative lo":   {Instance: testSpec, Lo: -1, Hi: 10},
		"inverted":      {Instance: testSpec, Lo: 10, Hi: 5},
		"huge range":    {Instance: testSpec, Lo: 0, Hi: maxRangeWidth + 1},
		"unknown model": {Instance: InstanceSpec{Dataset: "test", Seed: 7, Model: "bogus"}, Lo: 0, Hi: 10},
	} {
		resp := postJSONT(t, ts.URL+GeneratePath, req)
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s accepted", name)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+GeneratePath, "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body returned %s", resp.Status)
	}
	resp.Body.Close()
}

// TestLedgerSurvivesTornTail: a torn (partial) final line is truncated
// at open and the earlier receipts still replay.
func TestLedgerSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	led, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := led.record("k1", 0, 50); err != nil {
		t.Fatal(err)
	}
	if err := led.close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append.
	f, err := openAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"shard-generate","key":"k2`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.close()
	if !re.has("k1", 0, 50) {
		t.Fatal("intact receipt lost")
	}
	if re.has("k2", 0, 0) {
		t.Fatal("torn receipt replayed")
	}
	if err := re.record("k3", 50, 100); err != nil {
		t.Fatal(err)
	}
	if !re.has("k3", 50, 100) {
		t.Fatal("post-truncation append lost")
	}
}

func openAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

// TestDiffusionModelRoundTrips pins that the spec's model string stays
// in sync with the diffusion enum it names.
func TestDiffusionModelRoundTrips(t *testing.T) {
	for _, m := range []diffusion.Model{diffusion.IC, diffusion.LT} {
		got, err := (InstanceSpec{Model: m.String()}).model()
		if err != nil || got != m {
			t.Errorf("model %v round-trips to %v, %v", m, got, err)
		}
	}
	if _, err := (InstanceSpec{Model: fmt.Sprintf("Model(%d)", 9)}).model(); err == nil {
		t.Error("out-of-range model accepted")
	}
}
