package shard

import (
	"bytes"
	"testing"
)

// TestSplitRanges: decompositions are contiguous, disjoint, union the
// interval exactly, and use the ⌊width·w/n⌋ bounds every other piece
// of the runtime (and the xrand worker-count-independence test) pins.
func TestSplitRanges(t *testing.T) {
	for _, tc := range []struct{ lo, hi, n int }{
		{0, 256, 1}, {0, 256, 2}, {0, 256, 4}, {0, 257, 3},
		{100, 357, 4}, {5, 6, 3}, {0, 3, 8},
	} {
		ranges := SplitRanges(tc.lo, tc.hi, tc.n)
		next := tc.lo
		for i, r := range ranges {
			if r.Lo != next {
				t.Fatalf("SplitRanges(%d,%d,%d)[%d] starts at %d, want %d", tc.lo, tc.hi, tc.n, i, r.Lo, next)
			}
			if r.Width() <= 0 {
				t.Fatalf("SplitRanges(%d,%d,%d)[%d] is empty: %+v", tc.lo, tc.hi, tc.n, i, r)
			}
			width := tc.hi - tc.lo
			n := tc.n
			if n > width {
				n = width
			}
			if want := tc.lo + width*i/n; r.Lo != want {
				t.Fatalf("range %d lo = %d, want ⌊width·w/n⌋ bound %d", i, r.Lo, want)
			}
			next = r.Hi
		}
		if next != tc.hi {
			t.Fatalf("SplitRanges(%d,%d,%d) ends at %d, want %d", tc.lo, tc.hi, tc.n, next, tc.hi)
		}
	}
	if SplitRanges(5, 5, 3) != nil || SplitRanges(0, 10, 0) != nil {
		t.Fatal("degenerate splits should be nil")
	}
}

// TestFrameRoundTrip: a frame survives the wire and every corruption
// (flipped byte, truncation, oversize declaration) fails closed.
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("imcs shard payload \x00\x01\x02")
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	if got, err := ReadFrame(bytes.NewReader(wire), 1<<20); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q, %v", got, err)
	}

	flipped := append([]byte(nil), wire...)
	flipped[10] ^= 0xff
	if _, err := ReadFrame(bytes.NewReader(flipped), 1<<20); err == nil {
		t.Fatal("flipped byte passed the crc")
	}
	if _, err := ReadFrame(bytes.NewReader(wire[:len(wire)-3]), 1<<20); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(wire), 4); err == nil {
		t.Fatal("oversize declaration accepted")
	}
	var empty bytes.Buffer
	if err := WriteFrame(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFrame(bytes.NewReader(empty.Bytes()), 0); err != nil || len(got) != 0 {
		t.Fatalf("empty frame: %q, %v", got, err)
	}
}

// TestInstanceSpecModel: the model names resolve and typos are refused.
func TestInstanceSpecModel(t *testing.T) {
	for _, name := range []string{"", "IC", "ic", "LT"} {
		if _, err := (InstanceSpec{Model: name}).model(); err != nil {
			t.Errorf("model %q refused: %v", name, err)
		}
	}
	if _, err := (InstanceSpec{Model: "bogus"}).model(); err == nil {
		t.Error("bogus model accepted")
	}
}
