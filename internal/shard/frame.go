package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"imc/internal/atomicio"
)

// Binary payloads (the IMCS pool export) cross the wire as one frame:
//
//	u64 LE payload length | payload | u32 LE CRC-32 (IEEE) of payload
//
// The trailing checksum is the same frame internal/atomicio uses for
// durable files, verified with atomicio.VerifyCRCFrame — a flipped bit
// in transit or a truncated body is a descriptive decode error, never a
// silently wrong pool.

// WriteFrame writes payload as one length-prefixed CRC frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("shard: write frame length: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("shard: write frame payload: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("shard: write frame crc: %w", err)
	}
	return nil
}

// ReadFrame reads one frame, verifies the checksum, and returns the
// payload. maxSize bounds the declared length so a corrupt prefix
// cannot trigger an unbounded allocation.
func ReadFrame(r io.Reader, maxSize uint64) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("shard: read frame length: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > maxSize {
		return nil, fmt.Errorf("shard: frame declares %d bytes, limit %d", n, maxSize)
	}
	buf := make([]byte, n+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("shard: read frame body: %w", err)
	}
	body, err := atomicio.VerifyCRCFrame(buf)
	if err != nil {
		return nil, fmt.Errorf("shard: frame: %w", err)
	}
	return body, nil
}
